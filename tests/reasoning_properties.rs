//! Property-based integration tests for the static analyses.
//!
//! * soundness of the satisfiability chase: whenever it says
//!   "satisfiable", the model it returns really satisfies `Σ` and
//!   contains a match of every pattern;
//! * soundness of implication: whenever `Σ ⊨ ϕ` is claimed, no graph
//!   in a randomized sample satisfies `Σ` but violates `ϕ`;
//! * parallel/sequential equivalence on random inputs.
//!
//! Randomization uses the in-repo harness (`gfd_util::prop`): each
//! property runs over a seed range and failures replay by seed.

use gfd::core::sat::{check_satisfiability, SatOutcome};
use gfd::core::validate::detect_violations;
use gfd::core::{implies, Dependency, Gfd, GfdSet, Literal};
use gfd::graph::{Fragmentation, Graph, GraphBuilder, PartitionStrategy, Value, Vocab};
use gfd::matcher::{has_match, MatchOptions};
use gfd::parallel::unitexec::sort_violations;
use gfd::parallel::{dis_val, rep_val, DisValConfig, RepValConfig};
use gfd::pattern::{Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, prop_assert, Rng};
use std::sync::Arc;

/// A small random pattern over `labels` node labels and `elabels` edge
/// labels (connected-ish: each node after the first gets an edge to a
/// random earlier node).
fn random_pattern(rng: &mut Rng, vocab: &Arc<Vocab>, labels: u32, elabels: u32) -> Pattern {
    let n = rng.gen_range(1..4) as u32;
    let mut b = PatternBuilder::new(vocab.clone());
    let mut vars = Vec::new();
    for i in 0..n {
        vars.push(b.node(&format!("v{i}"), &format!("t{}", i % labels)));
    }
    for i in 1..n as usize {
        b.edge(vars[i - 1], vars[i], "e0");
    }
    for _ in 0..rng.gen_range(0..4) {
        let at = rng.gen_range(0..8);
        let el = rng.gen_range(0..elabels as usize);
        let a = vars[at % vars.len()];
        let z = vars[(at / 2) % vars.len()];
        if a != z {
            b.edge(a, z, &format!("e{el}"));
        }
    }
    b.build()
}

/// A random constant/variable dependency over a pattern's variables.
fn random_dep(rng: &mut Rng, vocab: &Arc<Vocab>, nvars: u32) -> Dependency {
    let lit = |rng: &mut Rng| {
        let v = rng.gen_range(0..nvars as usize) as u32;
        let a = rng.gen_range(0..3);
        let attr = vocab.intern(&format!("A{a}"));
        if rng.gen_bool(0.5) {
            Literal::const_eq(VarId(v), attr, format!("c{a}"))
        } else {
            let v2 = rng.gen_range(0..nvars as usize) as u32;
            Literal::var_eq(VarId(v), attr, VarId(v2), attr)
        }
    };
    let x = (0..rng.gen_range(0..2)).map(|_| lit(rng)).collect();
    let y = (0..rng.gen_range(0..2)).map(|_| lit(rng)).collect();
    Dependency::new(x, y)
}

fn random_sigma(rng: &mut Rng) -> GfdSet {
    let vocab = Vocab::shared();
    let count = rng.gen_range(1..4);
    let rules = (0..count)
        .map(|i| {
            let p = random_pattern(rng, &vocab, 2, 2);
            let d = random_dep(rng, &vocab, p.node_count() as u32);
            Gfd::new(format!("r{i}"), p, d)
        })
        .collect();
    GfdSet::new(rules)
}

/// If the chase says satisfiable, the produced model is a model: it
/// satisfies Σ and matches every pattern.
#[test]
fn sat_chase_is_sound() {
    check("satisfiability chase soundness", 24, |rng| {
        let sigma = random_sigma(rng);
        if let SatOutcome::Satisfiable(model) = check_satisfiability(&sigma) {
            prop_assert!(
                gfd::core::graph_satisfies(&sigma, &model),
                "the produced model must satisfy Σ"
            );
            for gfd in &sigma {
                prop_assert!(
                    has_match(&gfd.pattern, &model, &MatchOptions::unrestricted()),
                    "every pattern must match in the model"
                );
            }
        }
        Ok(())
    });
}

/// Random graphs satisfying Σ also satisfy anything Σ implies.
#[test]
fn implication_is_sound() {
    check("implication soundness", 24, |rng| {
        let sigma = random_sigma(rng);
        let phi = sigma.get(0).clone();
        prop_assert!(implies(&sigma, &phi), "Σ must imply its own member");

        // Soundness on a random graph: generate a graph from the
        // canonical model plus clutter, check the contrapositive.
        let seed = rng.gen_range(0..1000);
        if let SatOutcome::Satisfiable(model) = check_satisfiability(&sigma) {
            // Add clutter nodes that cannot affect pattern matches.
            let clutter = model.vocab().intern(&format!("clutter{seed}"));
            let model = model.edit(|b| {
                for _ in 0..3 {
                    let c = b.add_node(clutter);
                    b.set_attr_named(c, "A0", Value::str("x"));
                }
            });
            if gfd::core::graph_satisfies(&sigma, &model) {
                prop_assert!(
                    gfd::core::graph_satisfies(&GfdSet::new(vec![phi]), &model),
                    "a Σ-model must satisfy every implied rule"
                );
            }
        }
        Ok(())
    });
}

/// repVal and disVal equal detVio on random graphs and rule sets.
#[test]
fn parallel_equals_sequential() {
    check("repVal/disVal ≡ detVio", 24, |rng| {
        let sigma = random_sigma(rng);
        let nodes = rng.gen_range(4..24);
        // A random graph over the same vocabulary/labels as Σ.
        let vocab = sigma.get(0).pattern.vocab().clone();
        let mut b = GraphBuilder::new(vocab.clone());
        let ids: Vec<_> = (0..nodes)
            .map(|i| {
                let n = b.add_node_labeled(&format!("t{}", i % 2));
                for a in 0..3 {
                    if rng.gen_bool(2.0 / 3.0) {
                        let c = rng.gen_range(0..3);
                        b.set_attr_named(n, &format!("A{a}"), Value::str(&format!("c{c}")));
                    }
                }
                n
            })
            .collect();
        for _ in 0..nodes * 2 {
            let s = ids[rng.gen_range(0..nodes)];
            let d = ids[rng.gen_range(0..nodes)];
            if s != d {
                let e = rng.gen_range(0..2);
                b.add_edge_labeled(s, d, &format!("e{e}"));
            }
        }
        let g: Arc<Graph> = Arc::new(b.freeze());

        let mut expected = detect_violations(&sigma, &g);
        sort_violations(&mut expected);
        let rep = rep_val(&sigma, &g, &RepValConfig::val(3));
        prop_assert!(rep.violations == expected, "repVal disagrees with detVio");
        let frag = Fragmentation::partition(&g, 3, PartitionStrategy::Hash);
        let dis = dis_val(&sigma, &g, &frag, &DisValConfig::val(3));
        prop_assert!(dis.violations == expected, "disVal disagrees with detVio");
        Ok(())
    });
}
