//! Property-based integration tests for the static analyses.
//!
//! * soundness of the satisfiability chase: whenever it says
//!   "satisfiable", the model it returns really satisfies `Σ` and
//!   contains a match of every pattern;
//! * soundness of implication: whenever `Σ ⊨ ϕ` is claimed, no graph
//!   in a randomized sample satisfies `Σ` but violates `ϕ`;
//! * parallel/sequential equivalence on random inputs.

use gfd::core::sat::{check_satisfiability, SatOutcome};
use gfd::core::validate::detect_violations;
use gfd::core::{implies, Dependency, Gfd, GfdSet, Literal};
use gfd::graph::{Fragmentation, Graph, PartitionStrategy, Value, Vocab};
use gfd::matcher::{has_match, MatchOptions};
use gfd::parallel::unitexec::sort_violations;
use gfd::parallel::{dis_val, rep_val, DisValConfig, RepValConfig};
use gfd::pattern::{Pattern, PatternBuilder, VarId};
use proptest::prelude::*;
use std::sync::Arc;

/// A small random pattern over `labels` node labels and `elabels`
/// edge labels (connected-ish: each node after the first gets an edge
/// to a random earlier node).
fn arb_pattern(vocab: Arc<Vocab>, labels: u32, elabels: u32) -> impl Strategy<Value = Pattern> {
    (
        1u32..4,
        proptest::collection::vec((0u32..8, 0..labels, 0..elabels), 0..4),
    )
        .prop_map(move |(n, extra)| {
            let mut b = PatternBuilder::new(vocab.clone());
            let mut vars = Vec::new();
            for i in 0..n {
                vars.push(b.node(&format!("v{i}"), &format!("t{}", i % labels)));
            }
            for i in 1..n as usize {
                b.edge(vars[i - 1], vars[i], "e0");
            }
            for (at, _l, el) in extra {
                let a = vars[(at as usize) % vars.len()];
                let z = vars[((at / 2) as usize) % vars.len()];
                if a != z {
                    b.edge(a, z, &format!("e{el}"));
                }
            }
            b.build()
        })
}

/// A random constant/variable dependency over a pattern's variables.
fn arb_dep(vocab: Arc<Vocab>, nvars: u32) -> impl Strategy<Value = Dependency> {
    let lit = (0u32..nvars, 0u32..2, 0u32..3, 0u32..nvars).prop_map(move |(v, kind, a, v2)| {
        let attr = vocab.intern(&format!("A{a}"));
        if kind == 0 {
            Literal::const_eq(VarId(v), attr, format!("c{a}"))
        } else {
            Literal::var_eq(VarId(v), attr, VarId(v2 % nvars), attr)
        }
    });
    (
        proptest::collection::vec(lit.clone(), 0..2),
        proptest::collection::vec(lit, 0..2),
    )
        .prop_map(|(x, y)| Dependency::new(x, y))
}

fn arb_sigma() -> impl Strategy<Value = GfdSet> {
    let vocab = Vocab::shared();
    let v2 = vocab.clone();
    proptest::collection::vec(
        arb_pattern(vocab.clone(), 2, 2).prop_flat_map(move |p| {
            let n = p.node_count() as u32;
            let v3 = v2.clone();
            arb_dep(v3, n).prop_map(move |d| (p.clone(), d))
        }),
        1..4,
    )
    .prop_map(|pairs| {
        GfdSet::new(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (p, d))| Gfd::new(format!("r{i}"), p, d))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// If the chase says satisfiable, the produced model is a model:
    /// it satisfies Σ and matches every pattern.
    #[test]
    fn sat_chase_is_sound(sigma in arb_sigma()) {
        if let SatOutcome::Satisfiable(model) = check_satisfiability(&sigma) {
            prop_assert!(
                gfd::core::graph_satisfies(&sigma, &model),
                "the produced model must satisfy Σ"
            );
            for gfd in &sigma {
                prop_assert!(
                    has_match(&gfd.pattern, &model, &MatchOptions::unrestricted()),
                    "every pattern must match in the model"
                );
            }
        }
    }

    /// Random graphs satisfying Σ also satisfy anything Σ implies.
    #[test]
    fn implication_is_sound(sigma in arb_sigma(), seed in 0u64..1000) {
        // Pick the first rule's pattern as ϕ's pattern; the dependency
        // is Σ's first rule's too (so Σ ⊨ ϕ should hold trivially) —
        // plus a mutated variant that usually fails.
        let phi = sigma.get(0).clone();
        prop_assert!(implies(&sigma, &phi), "Σ must imply its own member");

        // Soundness on a random graph: generate a graph from the
        // canonical model plus clutter, check the contrapositive.
        if let SatOutcome::Satisfiable(mut model) = check_satisfiability(&sigma) {
            // Add clutter nodes that cannot affect pattern matches.
            let clutter = model.vocab().intern(&format!("clutter{seed}"));
            for _ in 0..3 {
                let c = model.add_node(clutter);
                model.set_attr_named(c, "A0", Value::str("x"));
            }
            if gfd::core::graph_satisfies(&sigma, &model) {
                prop_assert!(
                    gfd::core::graph_satisfies(&GfdSet::new(vec![phi]), &model),
                    "a Σ-model must satisfy every implied rule"
                );
            }
        }
    }

    /// repVal and disVal equal detVio on random graphs and rule sets.
    #[test]
    fn parallel_equals_sequential(sigma in arb_sigma(), nodes in 4usize..24, seed in 0u64..100) {
        // A random graph over the same vocabulary/labels as Σ.
        let vocab = sigma.get(0).pattern.vocab().clone();
        let mut g = Graph::new(vocab.clone());
        let mut rng = seed;
        let mut next = move || { rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (rng >> 33) as usize };
        let ids: Vec<_> = (0..nodes).map(|i| {
            let n = g.add_node_labeled(&format!("t{}", i % 2));
            for a in 0..3 {
                if next() % 3 != 0 {
                    g.set_attr_named(n, &format!("A{a}"), Value::str(&format!("c{}", next() % 3)));
                }
            }
            n
        }).collect();
        for _ in 0..nodes * 2 {
            let s = ids[next() % nodes];
            let d = ids[next() % nodes];
            if s != d {
                g.add_edge_labeled(s, d, &format!("e{}", next() % 2));
            }
        }

        let mut expected = detect_violations(&sigma, &g);
        sort_violations(&mut expected);
        let rep = rep_val(&sigma, &g, &RepValConfig::val(3));
        prop_assert_eq!(&rep.violations, &expected);
        let frag = Fragmentation::partition(&g, 3, PartitionStrategy::Hash);
        let dis = dis_val(&sigma, &g, &frag, &DisValConfig::val(3));
        prop_assert_eq!(&dis.violations, &expected);
    }
}
