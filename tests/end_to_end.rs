//! End-to-end integration: generators → rules → sequential, parallel
//! (replicated / fragmented / threaded) and relational detection all
//! agree; noise is caught by targeted rules.

use gfd::baselines::RelationalValidator;
use gfd::core::validate::detect_violations;
use gfd::core::Violation;
use gfd::datagen::{
    inject_noise, mine_gfds, reallife_graph, synthetic_graph, NoiseConfig, RealLifeConfig,
    RealLifeKind, RuleGenConfig, SynthConfig,
};
use gfd::graph::{Fragmentation, PartitionStrategy};
use gfd::parallel::unitexec::sort_violations;
use gfd::parallel::workload::{estimate_workload, plan_rules, WorkloadOptions};
use gfd::parallel::{dis_val, rep_val, threaded, DisValConfig, RepValConfig};

fn canonical(mut v: Vec<Violation>) -> Vec<Violation> {
    sort_violations(&mut v);
    v
}

#[test]
fn all_engines_agree_on_reallife_graph() {
    // One frozen snapshot behind one Arc, shared by every engine —
    // replicated/threaded execution never clones the graph.
    let g = std::sync::Arc::new(reallife_graph(&RealLifeConfig {
        scale: 0.08,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    }));
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 8,
            pattern_nodes: 3,
            two_component_fraction: 0.25,
            ..Default::default()
        },
    );
    let expected = canonical(detect_violations(&sigma, &g));

    // repVal across processor counts.
    for n in [1usize, 2, 5] {
        let rep = rep_val(&sigma, &g, &RepValConfig::val(n));
        assert_eq!(rep.violations, expected, "repVal n={n}");
    }

    // disVal across partition strategies.
    for strategy in [
        PartitionStrategy::Hash,
        PartitionStrategy::Contiguous,
        PartitionStrategy::BfsClustered,
    ] {
        let frag = Fragmentation::partition(&g, 3, strategy);
        let dis = dis_val(&sigma, &g, &frag, &DisValConfig::val(3));
        assert_eq!(dis.violations, expected, "disVal {strategy:?}");
    }

    // Real OS threads.
    let plans = plan_rules(&sigma);
    let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
    let thr = threaded::run_units_threaded(&g, &sigma, &plans, &wl.units, &wl.slots, 4);
    assert_eq!(thr, expected, "threaded execution");

    // BigDansing-style relational joins.
    let relational = canonical(RelationalValidator::new(&g).detect_violations(&sigma));
    assert_eq!(relational, expected, "relational baseline");
}

#[test]
fn engines_agree_on_synthetic_graph() {
    let g = std::sync::Arc::new(synthetic_graph(&SynthConfig {
        nodes: 800,
        edges: 1600,
        labels: 12,
        seed: 99,
        ..Default::default()
    }));
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 6,
            pattern_nodes: 3,
            two_component_fraction: 0.2,
            max_pivot_extent: 60,
            seed: 5,
        },
    );
    let expected = canonical(detect_violations(&sigma, &g));
    let rep = rep_val(&sigma, &g, &RepValConfig::val(4));
    assert_eq!(rep.violations, expected);
    let frag = Fragmentation::partition(&g, 4, PartitionStrategy::Hash);
    let dis = dis_val(&sigma, &g, &frag, &DisValConfig::nop(4));
    assert_eq!(dis.violations, expected);
}

#[test]
fn twin_rules_catch_injected_noise() {
    let g = reallife_graph(&RealLifeConfig {
        scale: 0.15,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    });
    let sigma = gfd::datagen::twin_rules(&g, RealLifeKind::Yago2);
    assert!(!sigma.is_empty());
    // The clean stand-in satisfies all twin-consistency rules.
    assert!(
        detect_violations(&sigma, &g).is_empty(),
        "clean stand-in must satisfy its own twin rules"
    );
    // Noise is a builder-level mutation: thaw, corrupt, re-freeze.
    let mut b = g.thaw();
    let report = inject_noise(
        &mut b,
        &NoiseConfig {
            rate: 0.08,
            seed: 17,
        },
    );
    assert!(!report.is_empty());
    let g = b.freeze();
    let dirty = detect_violations(&sigma, &g);
    assert!(
        !dirty.is_empty(),
        "attribute noise on twin leaves must violate twin rules"
    );
}

#[test]
fn clean_twin_consistency_rule_fires_only_after_corruption() {
    use gfd::core::{Dependency, Gfd, GfdSet, Literal};
    use gfd::graph::{GraphBuilder, Value};
    use gfd::pattern::PatternBuilder;

    // A tiny curated graph: two twin products sharing an id with equal
    // prices — consistent until we corrupt one price.
    let mut gb = GraphBuilder::with_fresh_vocab();
    let vocab = gb.vocab().clone();
    let mut product = |id: &str, price: i64| {
        let p = gb.add_node_labeled("product");
        let idn = gb.add_node_labeled("pid");
        gb.add_edge_labeled(p, idn, "has_id");
        gb.set_attr_named(idn, "val", Value::str(id));
        gb.set_attr_named(p, "price", Value::Int(price));
        p
    };
    let _p1 = product("X1", 100);
    let p2 = product("X1", 100);
    let _p3 = product("Z9", 50);
    let g = gb.freeze();

    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "product");
    let xi = b.node("xi", "pid");
    b.edge(x, xi, "has_id");
    let y = b.node("y", "product");
    let yi = b.node("yi", "pid");
    b.edge(y, yi, "has_id");
    let q = b.build();
    let val = vocab.intern("val");
    let price = vocab.intern("price");
    let rule = Gfd::new(
        "same-id-same-price",
        q,
        Dependency::new(
            vec![Literal::var_eq(xi, val, yi, val)],
            vec![Literal::var_eq(x, price, y, price)],
        ),
    );
    let sigma = GfdSet::new(vec![rule]);
    assert!(gfd::core::graph_satisfies(&sigma, &g));

    let g = g.edit(|b| b.set_attr(p2, price, Value::Int(999)));
    let violations = detect_violations(&sigma, &g);
    assert_eq!(violations.len(), 2, "both orientations of the twin pair");
}
