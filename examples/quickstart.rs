//! Quickstart: define a property graph, write a GFD, detect
//! violations — the "two capitals" inconsistency of Fig. 1/Example 1.
//!
//! Run with: `cargo run --example quickstart`

use gfd::core::validate::detect_violations;
use gfd::core::{Dependency, Gfd, GfdSet, Literal};
use gfd::graph::{GraphBuilder, Value, Vocab};
use gfd::pattern::PatternBuilder;

fn main() {
    // ── 1. A knowledge-graph fragment with an error ────────────────
    // Both Canberra and Melbourne are recorded as Australia's capital.
    // Graphs are built mutably, then frozen into an immutable CSR
    // snapshot that the validators read.
    let vocab = Vocab::shared();
    let mut builder = GraphBuilder::new(vocab.clone());
    let australia = builder.add_node_labeled("country");
    let canberra = builder.add_node_labeled("city");
    let melbourne = builder.add_node_labeled("city");
    builder.add_edge_labeled(australia, canberra, "capital");
    builder.add_edge_labeled(australia, melbourne, "capital");
    builder.set_attr_named(australia, "val", Value::str("Australia"));
    builder.set_attr_named(canberra, "val", Value::str("Canberra"));
    builder.set_attr_named(melbourne, "val", Value::str("Melbourne"));
    let g = builder.freeze();

    // ── 2. GFD ϕ2 of Example 5 ─────────────────────────────────────
    // Pattern Q2: a country x with capital edges to cities y and z.
    // Dependency: ∅ → y.val = z.val ("a country has one capital").
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "country");
    let y = b.node("y", "city");
    let z = b.node("z", "city");
    b.edge(x, y, "capital");
    b.edge(x, z, "capital");
    let q2 = b.build();
    let val = vocab.intern("val");
    let phi2 = Gfd::new(
        "unique-capital",
        q2,
        Dependency::always(vec![Literal::var_eq(y, val, z, val)]),
    );

    // ── 3. Detect ──────────────────────────────────────────────────
    let sigma = GfdSet::new(vec![phi2]);
    let violations = detect_violations(&sigma, &g);
    println!("violations found: {}", violations.len());
    for v in &violations {
        let gfd = sigma.get(v.rule);
        let names: Vec<String> = gfd
            .pattern
            .vars()
            .map(|var| {
                let node = v.mapping.get(var);
                let value = g
                    .attr(node, val)
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "?".into());
                format!("{} ↦ {}", gfd.pattern.var_name(var), value)
            })
            .collect();
        println!("  rule `{}`: {}", gfd.name, names.join(", "));
    }
    assert_eq!(violations.len(), 2, "both orderings of the capital pair");

    // ── 4. Fix the data and re-check ───────────────────────────────
    // Repair goes back through the builder: thaw, edit, re-freeze.
    let g = g.edit(|b| b.set_attr(melbourne, val, Value::str("Canberra")));
    assert!(gfd::core::graph_satisfies(&sigma, &g));
    println!("after repair: graph satisfies Σ");
}
