//! The three real-life GFDs of Fig. 7, catching real inconsistency
//! shapes from YAGO2/DBpedia:
//!
//! * **GFD 1** — a person cannot have someone as both child and parent
//!   (a denial rule: an unsatisfiable consequent flags every match);
//! * **GFD 2** — an entity cannot have two disjoint types;
//! * **GFD 3** — the mayor of a city and their party must belong to
//!   the same country.
//!
//! Run with: `cargo run --example knowledge_graph_cleaning`

use gfd::core::validate::detect_violations;
use gfd::core::{Dependency, Gfd, GfdSet, Literal};
use gfd::graph::{GraphBuilder, Value, Vocab};
use gfd::pattern::PatternBuilder;
use std::sync::Arc;

fn gfd1_child_parent(vocab: &Arc<Vocab>) -> Gfd {
    // Q10: person x --hasChild--> person y --hasChild--> x (cycle).
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "person");
    let y = b.node("y", "person");
    b.edge(x, y, "hasChild");
    b.edge(y, x, "hasChild");
    let q10 = b.build();
    let val = vocab.intern("val");
    // ∅ → x.val = c ∧ y.val = d with c ≠ d: unsatisfiable, i.e. "no
    // such cycle may exist at all".
    Gfd::new(
        "GFD1:no-child-parent-cycle",
        q10,
        Dependency::always(vec![
            Literal::const_eq(x, val, "__denial_c"),
            Literal::const_eq(y, val, "__denial_d"),
        ]),
    )
}

fn gfd2_disjoint_types(vocab: &Arc<Vocab>) -> Gfd {
    // Q11: entity x with type edges to two type nodes y, y' that are
    // declared disjoint. ∅ → y.val = y'.val (they must be the same).
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.wildcard_node("x");
    let y = b.node("y", "type");
    let y2 = b.node("y2", "type");
    b.edge(x, y, "type_of");
    b.edge(x, y2, "type_of");
    b.edge(y, y2, "disjoint");
    let q11 = b.build();
    let val = vocab.intern("val");
    Gfd::new(
        "GFD2:no-disjoint-types",
        q11,
        Dependency::always(vec![Literal::var_eq(y, val, y2, val)]),
    )
}

fn gfd3_mayor_party_country(vocab: &Arc<Vocab>) -> Gfd {
    // Q12: person mayor_of city in country z, affiliated with party in
    // country z'. ∅ → z.val = z'.val.
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "person");
    let city = b.node("city", "city");
    let party = b.node("party", "party");
    let z = b.node("z", "country");
    let z2 = b.node("z2", "country");
    b.edge(x, city, "mayor_of");
    b.edge(x, party, "affiliated");
    b.edge(city, z, "in_country");
    b.edge(party, z2, "in_country");
    let q12 = b.build();
    let val = vocab.intern("val");
    Gfd::new(
        "GFD3:mayor-party-country",
        q12,
        Dependency::always(vec![Literal::var_eq(z, val, z2, val)]),
    )
}

fn main() {
    let vocab = Vocab::shared();
    let mut g = GraphBuilder::new(vocab.clone());

    // Error 1 (YAGO2-style): a child/parent cycle.
    let anna = g.add_node_labeled("person");
    let boris = g.add_node_labeled("person");
    g.set_attr_named(anna, "val", Value::str("Anna"));
    g.set_attr_named(boris, "val", Value::str("Boris"));
    g.add_edge_labeled(anna, boris, "hasChild");
    g.add_edge_labeled(boris, anna, "hasChild");

    // Error 2 (DBpedia-style): an entity typed with two disjoint types.
    let thing = g.add_node_labeled("entity");
    let t_person = g.add_node_labeled("type");
    let t_building = g.add_node_labeled("type");
    g.set_attr_named(t_person, "val", Value::str("Person"));
    g.set_attr_named(t_building, "val", Value::str("Building"));
    g.add_edge_labeled(thing, t_person, "type_of");
    g.add_edge_labeled(thing, t_building, "type_of");
    g.add_edge_labeled(t_person, t_building, "disjoint");

    // Error 3 (YAGO2-style): NYC's mayor affiliated with a party from
    // another country.
    let mayor = g.add_node_labeled("person");
    let nyc = g.add_node_labeled("city");
    let party = g.add_node_labeled("party");
    let usa = g.add_node_labeled("country");
    let uk = g.add_node_labeled("country");
    g.set_attr_named(mayor, "val", Value::str("Mayor"));
    g.set_attr_named(usa, "val", Value::str("USA"));
    g.set_attr_named(uk, "val", Value::str("UK"));
    g.add_edge_labeled(mayor, nyc, "mayor_of");
    g.add_edge_labeled(mayor, party, "affiliated");
    g.add_edge_labeled(nyc, usa, "in_country");
    g.add_edge_labeled(party, uk, "in_country");

    // A clean mayor for contrast.
    let mayor2 = g.add_node_labeled("person");
    let edi = g.add_node_labeled("city");
    let party2 = g.add_node_labeled("party");
    g.add_edge_labeled(mayor2, edi, "mayor_of");
    g.add_edge_labeled(mayor2, party2, "affiliated");
    g.add_edge_labeled(edi, uk, "in_country");
    g.add_edge_labeled(party2, uk, "in_country");

    let g = g.freeze();
    let sigma = GfdSet::new(vec![
        gfd1_child_parent(&vocab),
        gfd2_disjoint_types(&vocab),
        gfd3_mayor_party_country(&vocab),
    ]);
    let violations = detect_violations(&sigma, &g);

    println!("inconsistencies caught: {}", violations.len());
    for v in &violations {
        println!("  {}", sigma.get(v.rule).name);
    }
    // GFD1 fires twice (cycle symmetry), GFD2 once, GFD3 once for the
    // bad mayor only.
    let by_rule = |r: usize| violations.iter().filter(|v| v.rule == r).count();
    assert_eq!(by_rule(0), 2);
    assert_eq!(by_rule(1), 1);
    assert_eq!(by_rule(2), 1);
    println!("all three Fig. 7 error shapes detected");
}
