//! The full pipeline at bench scale: generate a YAGO2-shaped graph,
//! mine a GFD rule set from its frequent features, then compare
//! sequential `detVio`, replicated `repVal`, and fragmented `disVal`
//! on the same inputs — the Exp-1 setup of §7 in miniature.
//!
//! Run with: `cargo run --release --example parallel_cleaning`

use gfd::core::validate::detect_violations;
use gfd::datagen::{mine_gfds, reallife_graph, RealLifeConfig, RealLifeKind, RuleGenConfig};
use gfd::graph::{Fragmentation, PartitionStrategy};
use gfd::parallel::unitexec::sort_violations;
use gfd::parallel::{dis_val, rep_val, DisValConfig, RepValConfig};

fn main() {
    // A scaled-down YAGO2 stand-in (see DESIGN.md §3), frozen once and
    // shared by every engine through one Arc.
    let g = std::sync::Arc::new(reallife_graph(&RealLifeConfig {
        scale: 0.25,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    }));
    println!("graph: {} nodes, {} edges", g.node_count(), g.edge_count());

    // Mine Σ from frequent features (the paper's rule generator).
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 12,
            pattern_nodes: 3,
            two_component_fraction: 0.25,
            ..Default::default()
        },
    );
    println!(
        "Σ: {} rules, avg pattern size {:.1}",
        sigma.len(),
        sigma.avg_pattern_size()
    );

    // Sequential baseline.
    let t0 = std::time::Instant::now();
    let mut sequential = detect_violations(&sigma, &g);
    let seq_time = t0.elapsed().as_secs_f64();
    sort_violations(&mut sequential);
    println!(
        "detVio (sequential): {} violations in {:.3}s",
        sequential.len(),
        seq_time
    );

    // repVal on 2..8 virtual processors.
    for n in [2usize, 4, 8] {
        let report = rep_val(&sigma, &g, &RepValConfig::val(n));
        assert_eq!(report.violations, sequential, "repVal must equal detVio");
        println!(
            "repVal  n={n}: {:>6} units, simulated {:.3}s (compute {:.3}s, comm {:.4}s)",
            report.units,
            report.total_seconds(),
            report.compute_seconds,
            report.comm_seconds
        );
    }

    // disVal on a fragmented graph.
    for n in [2usize, 4, 8] {
        let frag = Fragmentation::partition(&g, n, PartitionStrategy::BfsClustered);
        let report = dis_val(&sigma, &g, &frag, &DisValConfig::val(n));
        assert_eq!(report.violations, sequential, "disVal must equal detVio");
        println!(
            "disVal  n={n}: {:>6} units, simulated {:.3}s (compute {:.3}s, comm {:.4}s, {:.1} KB shipped)",
            report.units,
            report.total_seconds(),
            report.compute_seconds,
            report.comm_seconds,
            report.bytes_shipped as f64 / 1024.0
        );
    }
    println!("replicated and fragmented detection agree with the sequential algorithm");
}
