//! Fake-account detection on a social graph — GFD ϕ6 of Example 5
//! (the `Q6` pattern of Fig. 2), scaled up and run in parallel with
//! `repVal`.
//!
//! Rule: if account x' is confirmed fake, x and x' both like blogs
//! y₁, y₂, x' posts a blog with a peculiar keyword and x posts a blog
//! with the same keyword, then x is fake too.
//!
//! Run with: `cargo run --release --example fake_account_detection`

use gfd::core::validate::detect_violations;
use gfd::core::{Dependency, Gfd, GfdSet, Literal};
use gfd::graph::{Graph, GraphBuilder, Value, Vocab};
use gfd::parallel::{rep_val, RepValConfig};
use gfd::pattern::PatternBuilder;
use std::sync::Arc;

/// ϕ6 with k = 2 liked blogs.
fn phi6(vocab: &Arc<Vocab>) -> Gfd {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "account");
    let xp = b.node("xp", "account");
    let y1 = b.node("y1", "blog");
    let y2 = b.node("y2", "blog");
    let z1 = b.node("z1", "blog");
    let z2 = b.node("z2", "blog");
    b.edge(x, y1, "like");
    b.edge(x, y2, "like");
    b.edge(xp, y1, "like");
    b.edge(xp, y2, "like");
    b.edge(xp, z1, "post");
    b.edge(x, z2, "post");
    let q6 = b.build();
    let is_fake = vocab.intern("is_fake");
    let keyword = vocab.intern("keyword");
    Gfd::new(
        "phi6:fake-account",
        q6,
        Dependency::new(
            vec![
                Literal::const_eq(xp, is_fake, true),
                Literal::const_eq(z1, keyword, "free prize"),
                Literal::const_eq(z2, keyword, "free prize"),
            ],
            vec![Literal::const_eq(x, is_fake, true)],
        ),
    )
}

/// Builds a social graph with `rings` spam rings. In each ring a
/// confirmed-fake account and an unconfirmed accomplice co-like two
/// blogs and both post "free prize" spam — the accomplice is the
/// account ϕ6 should expose. Honest accounts surround them.
fn social_graph(vocab: &Arc<Vocab>, rings: usize, honest: usize) -> (Graph, usize) {
    let mut g = GraphBuilder::new(vocab.clone());
    let mut expected = 0usize;
    for r in 0..rings {
        let confirmed = g.add_node_labeled("account");
        let accomplice = g.add_node_labeled("account");
        g.set_attr_named(confirmed, "is_fake", Value::Bool(true));
        g.set_attr_named(accomplice, "is_fake", Value::Bool(false)); // wrongly marked clean!
        let y1 = g.add_node_labeled("blog");
        let y2 = g.add_node_labeled("blog");
        for acct in [confirmed, accomplice] {
            g.add_edge_labeled(acct, y1, "like");
            g.add_edge_labeled(acct, y2, "like");
        }
        let z1 = g.add_node_labeled("blog");
        let z2 = g.add_node_labeled("blog");
        g.set_attr_named(z1, "keyword", Value::str("free prize"));
        g.set_attr_named(z2, "keyword", Value::str("free prize"));
        g.add_edge_labeled(confirmed, z1, "post");
        g.add_edge_labeled(accomplice, z2, "post");
        expected += 1;
        let _ = r;
    }
    for h in 0..honest {
        let a = g.add_node_labeled("account");
        g.set_attr_named(a, "is_fake", Value::Bool(false));
        let blog = g.add_node_labeled("blog");
        g.set_attr_named(blog, "keyword", Value::str("holiday photos"));
        g.add_edge_labeled(a, blog, "post");
        let _ = h;
    }
    (g.freeze(), expected)
}

fn main() {
    let vocab = Vocab::shared();
    let (g, expected_rings) = social_graph(&vocab, 12, 200);
    let sigma = GfdSet::new(vec![phi6(&vocab)]);
    println!(
        "graph: {} nodes, {} edges; {} spam rings planted",
        g.node_count(),
        g.edge_count(),
        expected_rings
    );

    // Sequential detVio.
    let violations = detect_violations(&sigma, &g);
    // Each ring violates in both like-blog orderings (y1/y2 swap).
    println!("sequential detVio: {} violating matches", violations.len());

    // Suspicious accounts = images of x in violating matches.
    let x = sigma.get(0).pattern.var_by_name("x").unwrap();
    let mut suspicious: Vec<_> = violations.iter().map(|v| v.mapping.get(x)).collect();
    suspicious.sort_unstable();
    suspicious.dedup();
    println!("accounts exposed as fake: {}", suspicious.len());
    assert_eq!(suspicious.len(), expected_rings);

    // Parallel repVal on 4 virtual processors gives the same answer;
    // every virtual worker reads the same Arc-shared CSR snapshot.
    let g = Arc::new(g);
    let report = rep_val(&sigma, &g, &RepValConfig::val(4));
    let mut par_suspicious: Vec<_> = report.violations.iter().map(|v| v.mapping.get(x)).collect();
    par_suspicious.sort_unstable();
    par_suspicious.dedup();
    assert_eq!(par_suspicious, suspicious);
    println!(
        "repVal(n=4): same {} accounts; simulated time {:.4}s (compute {:.4}s over {} units)",
        par_suspicious.len(),
        report.total_seconds(),
        report.compute_seconds,
        report.units
    );
}
