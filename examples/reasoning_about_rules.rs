//! Static analyses of GFD rule sets: satisfiability (are my data
//! quality rules themselves consistent?) and implication (which rules
//! are redundant?) — Section 4 of the paper, on its own Examples 7
//! and 8.
//!
//! Run with: `cargo run --example reasoning_about_rules`

use gfd::core::implication::{implies, minimize};
use gfd::core::sat::{check_satisfiability, SatOutcome};
use gfd::core::{Dependency, Gfd, GfdSet, Literal};
use gfd::graph::Vocab;
use gfd::pattern::{Pattern, PatternBuilder};
use std::sync::Arc;

fn q8(vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "tau");
    let y = b.node("y", "tau");
    let z = b.node("z", "tau");
    b.edge(x, y, "l");
    b.edge(x, z, "l");
    b.edge(y, z, "l");
    b.build()
}

fn q9(vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "tau");
    let y = b.node("y", "tau");
    let z = b.node("z", "tau");
    let w = b.node("w", "tau");
    b.edge(x, y, "l");
    b.edge(x, z, "l");
    b.edge(y, z, "l");
    b.edge(y, w, "l");
    b.edge(z, w, "l");
    b.build()
}

fn main() {
    let vocab = Vocab::shared();
    let a = vocab.intern("A");
    let b_attr = vocab.intern("B");
    let c_attr = vocab.intern("C");

    // ── Example 7: conflicting rules across different patterns ──────
    // ϕ8 = (Q8, ∅ → x.A = c); ϕ9 = (Q9, ∅ → x.A = d). Q8 embeds in Q9,
    // so a Q9 match forces x.A to be both c and d.
    let x8 = Pattern::var_by_name(&q8(&vocab), "x").unwrap();
    let phi8 = Gfd::new(
        "phi8",
        q8(&vocab),
        Dependency::always(vec![Literal::const_eq(x8, a, "c")]),
    );
    let x9 = q9(&vocab).var_by_name("x").unwrap();
    let phi9 = Gfd::new(
        "phi9",
        q9(&vocab),
        Dependency::always(vec![Literal::const_eq(x9, a, "d")]),
    );

    for (label, sigma) in [
        ("Σ = {ϕ8}", GfdSet::new(vec![phi8.clone()])),
        ("Σ = {ϕ9}", GfdSet::new(vec![phi9.clone()])),
        (
            "Σ = {ϕ8, ϕ9}",
            GfdSet::new(vec![phi8.clone(), phi9.clone()]),
        ),
    ] {
        match check_satisfiability(&sigma) {
            SatOutcome::Satisfiable(model) => println!(
                "{label}: satisfiable (witness model: {} nodes, {} edges)",
                model.node_count(),
                model.edge_count()
            ),
            SatOutcome::Unsatisfiable { left, right } => {
                println!("{label}: UNSATISFIABLE — one node's attribute is forced to both `{left}` and `{right}`")
            }
            SatOutcome::Unknown => println!("{label}: budget exhausted"),
        }
    }

    // ── Example 8: implication across patterns ──────────────────────
    // Σ = { (Q8, x.A=y.A → x.B=y.B), (Q9, x.B=y.B → z.C=w.C) }
    // ⊨ ϕ11 = (Q9, x.A=y.A → z.C=w.C).
    let q8p = q8(&vocab);
    let (x, y) = (q8p.var_by_name("x").unwrap(), q8p.var_by_name("y").unwrap());
    let s1 = Gfd::new(
        "s1",
        q8p,
        Dependency::new(
            vec![Literal::var_eq(x, a, y, a)],
            vec![Literal::var_eq(x, b_attr, y, b_attr)],
        ),
    );
    let q9p = q9(&vocab);
    let (x, y, z, w) = (
        q9p.var_by_name("x").unwrap(),
        q9p.var_by_name("y").unwrap(),
        q9p.var_by_name("z").unwrap(),
        q9p.var_by_name("w").unwrap(),
    );
    let s2 = Gfd::new(
        "s2",
        q9p.clone(),
        Dependency::new(
            vec![Literal::var_eq(x, b_attr, y, b_attr)],
            vec![Literal::var_eq(z, c_attr, w, c_attr)],
        ),
    );
    let sigma = GfdSet::new(vec![s1, s2]);
    let phi11 = Gfd::new(
        "phi11",
        q9p,
        Dependency::new(
            vec![Literal::var_eq(x, a, y, a)],
            vec![Literal::var_eq(z, c_attr, w, c_attr)],
        ),
    );
    println!(
        "Example 8: Σ ⊨ ϕ11? {}",
        if implies(&sigma, &phi11) { "yes" } else { "no" }
    );
    assert!(implies(&sigma, &phi11));

    // ── Workload reduction: dropping redundant rules ────────────────
    let mut with_redundant: Vec<Gfd> = sigma.iter().cloned().collect();
    with_redundant.push(phi11); // implied by the others
    let padded = GfdSet::new(with_redundant);
    let minimized = minimize(&padded);
    println!(
        "minimize: {} rules → {} rules (redundant ϕ11 dropped)",
        padded.len(),
        minimized.len()
    );
    assert_eq!(minimized.len(), 2);
}
