//! # gfd — functional dependencies for graphs
//!
//! A faithful, from-scratch Rust implementation of *Functional
//! Dependencies for Graphs* (Wenfei Fan, Yinghui Wu, Jingbo Xu,
//! SIGMOD 2016): the GFD dependency class, its classical static
//! analyses, and parallel-scalable inconsistency detection on large
//! property graphs.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `gfd-graph` | property graphs as a mutable `GraphBuilder` + frozen CSR `Graph` snapshot, neighborhoods, fragments, stats |
//! | [`pattern`] | `gfd-pattern` | graph patterns `Q[x̄]`, pivots, embeddings |
//! | [`matcher`] | `gfd-match` | subgraph isomorphism, pivoted matching, simulation |
//! | [`core`] | `gfd-core` | GFDs, satisfiability, implication, validation |
//! | [`parallel`] | `gfd-parallel` | workload model, repVal / disVal over one `Arc<Graph>`, cluster runtime |
//! | [`datagen`] | `gfd-datagen` | synthetic + real-life-shaped graphs, rule mining, noise |
//! | [`baselines`] | `gfd-baselines` | GCFD and relational-join comparison validators |
//!
//! ## Storage model
//!
//! Graphs follow a builder/snapshot split: construct with
//! [`graph::GraphBuilder`] (`add_node`, `add_edge`, `set_attr`, …),
//! then [`graph::GraphBuilder::freeze`] into an immutable CSR
//! [`graph::Graph`] that every validator reads. The snapshot stores
//! flat offset/adjacency arrays sorted by `(label, dst)` — `has_edge`
//! is one binary search, per-label neighbor lists and label extents
//! are zero-allocation slices — and is shared across workers behind an
//! `Arc`, never cloned. Repairs go back through
//! [`graph::Graph::thaw`] / [`graph::Graph::edit`].
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use gfd::core::{Gfd, GfdSet, Dependency, Literal, validate::detect_violations};
//! use gfd::graph::{GraphBuilder, Value, Vocab};
//! use gfd::pattern::PatternBuilder;
//!
//! // A graph with one country and two capitals (the Fig. 1 error).
//! let vocab = Vocab::shared();
//! let mut b = GraphBuilder::new(vocab.clone());
//! let au = b.add_node_labeled("country");
//! let canberra = b.add_node_labeled("city");
//! let melbourne = b.add_node_labeled("city");
//! b.add_edge_labeled(au, canberra, "capital");
//! b.add_edge_labeled(au, melbourne, "capital");
//! b.set_attr_named(canberra, "val", Value::str("Canberra"));
//! b.set_attr_named(melbourne, "val", Value::str("Melbourne"));
//! let g = b.freeze(); // immutable CSR snapshot
//!
//! // GFD ϕ2 of Example 5: a country's two capitals must agree.
//! let mut b = PatternBuilder::new(vocab.clone());
//! let x = b.node("x", "country");
//! let y = b.node("y", "city");
//! let z = b.node("z", "city");
//! b.edge(x, y, "capital");
//! b.edge(x, z, "capital");
//! let q2 = b.build();
//! let val = vocab.intern("val");
//! let phi2 = Gfd::new("capital-unique", q2,
//!     Dependency::new(vec![], vec![Literal::var_eq(y, val, z, val)]));
//!
//! let sigma = GfdSet::new(vec![phi2]);
//! let violations = detect_violations(&sigma, &g);
//! assert_eq!(violations.len(), 2); // the two orderings of (Canberra, Melbourne)
//! ```

pub use gfd_baselines as baselines;
pub use gfd_core as core;
pub use gfd_datagen as datagen;
pub use gfd_graph as graph;
pub use gfd_match as matcher;
pub use gfd_parallel as parallel;
pub use gfd_pattern as pattern;
