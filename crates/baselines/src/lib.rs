//! # gfd-baselines — comparison methods for the Fig. 9 experiment
//!
//! The appendix of *Functional Dependencies for Graphs* (Fan, Wu & Xu,
//! SIGMOD 2016) compares GFD-based error detection against
//!
//! * **GCFDs** [23] — CFDs on RDF with *conjunctive path* patterns
//!   only: no cycles, no branching joins, no cross-path value tests.
//!   Module [`gcfd`] re-implements that expressiveness restriction:
//!   a GFD is expressible as a GCFD only when its pattern is a single
//!   directed chain; validation runs through the same engine, so the
//!   measured difference is purely the expressiveness gap (lower
//!   recall, Fig. 9's 0.57 vs 0.91);
//! * **BigDansing** [28] — a relational data-cleansing system where
//!   GFDs must be hand-coded as join-based user-defined functions
//!   over node/edge tables. Module [`relational`] implements that
//!   evaluation strategy faithfully: per-pattern-edge hash joins over
//!   an edge table, no pivot locality, injectivity and dependency
//!   checks applied to the joined tuples — same answers as the graph
//!   engine, paid for with join blow-up (the paper's 4.6× slowdown).

pub mod gcfd;
pub mod relational;

pub use gcfd::{expressible_as_gcfd, gcfd_subset};
pub use relational::RelationalValidator;
