//! The BigDansing-style baseline [28]: GFDs as relational joins.
//!
//! BigDansing cleans *relations*; to run GFDs it must "represent
//! graphs as tables and encode isomorphic functions beyond relational
//! query languages" (§1). This module implements that strategy: the
//! graph becomes a node table and per-label edge tables, and a GFD's
//! pattern is evaluated as a left-deep sequence of hash joins over the
//! edge tables — one join per pattern edge, label-extent scans for
//! isolated pattern nodes — followed by an injectivity filter (the
//! isomorphism encoding) and the dependency check.
//!
//! The answers are identical to the graph engine's; the cost is not:
//! joins materialize intermediate assignments without any pivot
//! locality, which is exactly why the paper measures BigDansing at
//! 4.6× slower with the same accuracy.

use std::collections::HashMap;

use gfd_core::validate::match_satisfies;
use gfd_core::{GfdSet, Violation};
use gfd_graph::{Graph, NodeId, Sym};
use gfd_match::Match;
use gfd_pattern::{PatLabel, Pattern, PatternEdge, VarId};

/// Per-variable constant predicate: `Some((attr, value))` keeps only
/// nodes where `node.attr = value`.
type VarFilter = Option<(gfd_graph::Sym, gfd_graph::Value)>;

/// Relational encoding of a property graph.
pub struct RelationalValidator<'a> {
    g: &'a Graph,
    /// `edge_table[label] = (src, dst)` rows.
    edge_table: HashMap<Sym, Vec<(NodeId, NodeId)>>,
    /// All edges regardless of label (wildcard pattern edges).
    all_edges: Vec<(NodeId, NodeId)>,
}

impl<'a> RelationalValidator<'a> {
    /// Builds the node/edge tables from a graph.
    pub fn new(g: &'a Graph) -> Self {
        let mut edge_table: HashMap<Sym, Vec<(NodeId, NodeId)>> = HashMap::new();
        let mut all_edges = Vec::with_capacity(g.edge_count());
        for e in g.edges() {
            edge_table.entry(e.label).or_default().push((e.src, e.dst));
            all_edges.push((e.src, e.dst));
        }
        RelationalValidator {
            g,
            edge_table,
            all_edges,
        }
    }

    fn rows(&self, label: PatLabel) -> &[(NodeId, NodeId)] {
        match label {
            PatLabel::Sym(s) => self.edge_table.get(&s).map(Vec::as_slice).unwrap_or(&[]),
            PatLabel::Wildcard => &self.all_edges,
        }
    }

    fn node_ok(&self, q: &Pattern, var: VarId, node: NodeId) -> bool {
        q.label(var).admits(self.g.label(node))
    }

    /// Violation detection needs `h ⊨ X`, so constant literals of `X`
    /// act as per-variable selection predicates that a UDF coding
    /// would push below the joins. Returns, per variable, an optional
    /// `(attr, value)` filter.
    fn constant_filters(dep: &gfd_core::Dependency, nvars: usize) -> Vec<VarFilter> {
        let mut filters: Vec<VarFilter> = vec![None; nvars];
        for lit in &dep.x {
            if let gfd_core::Literal::Const { var, attr, value } = lit {
                filters[var.index()] = Some((*attr, value.clone()));
            }
        }
        filters
    }

    fn passes_filter(&self, filters: &[VarFilter], var: VarId, node: NodeId) -> bool {
        match &filters[var.index()] {
            Some((attr, value)) => self.g.attr(node, *attr) == Some(value),
            None => true,
        }
    }

    /// Enumerates all pattern assignments by joining edge tables; no
    /// locality, no pivoting — the BigDansing evaluation strategy.
    pub fn assignments(&self, q: &Pattern) -> Vec<Vec<NodeId>> {
        self.assignments_filtered(q, &vec![None; q.node_count()])
    }

    /// Join evaluation with per-variable constant predicates pushed
    /// below the joins.
    fn assignments_filtered(&self, q: &Pattern, filters: &[VarFilter]) -> Vec<Vec<NodeId>> {
        let nvars = q.node_count();
        // Join order: pattern edges as given, then isolated nodes.
        let mut partial: Vec<Vec<NodeId>> = vec![vec![NodeId(u32::MAX); nvars]];
        let mut bound = vec![false; nvars];
        for PatternEdge { src, dst, label } in q.edges() {
            let rows = self.rows(*label);
            let mut next: Vec<Vec<NodeId>> = Vec::new();
            for p in &partial {
                for &(s, d) in rows {
                    if !self.node_ok(q, *src, s) || !self.node_ok(q, *dst, d) {
                        continue;
                    }
                    if !self.passes_filter(filters, *src, s)
                        || !self.passes_filter(filters, *dst, d)
                    {
                        continue;
                    }
                    let sp = p[src.index()];
                    let dp = p[dst.index()];
                    if sp.0 != u32::MAX && sp != s {
                        continue;
                    }
                    if dp.0 != u32::MAX && dp != d {
                        continue;
                    }
                    let mut np = p.clone();
                    np[src.index()] = s;
                    np[dst.index()] = d;
                    next.push(np);
                }
            }
            bound[src.index()] = true;
            bound[dst.index()] = true;
            partial = next;
            if partial.is_empty() {
                return partial;
            }
        }
        // Isolated pattern nodes: cartesian with their label extents.
        for v in q.vars() {
            if bound[v.index()] {
                continue;
            }
            let extent: Vec<NodeId> = match q.label(v) {
                PatLabel::Sym(s) => self.g.extent(s).to_vec(),
                PatLabel::Wildcard => self.g.nodes().collect(),
            };
            let mut next = Vec::with_capacity(partial.len() * extent.len());
            for p in &partial {
                for &n in &extent {
                    if !self.passes_filter(filters, v, n) {
                        continue;
                    }
                    let mut np = p.clone();
                    np[v.index()] = n;
                    next.push(np);
                }
            }
            partial = next;
            if partial.is_empty() {
                return partial;
            }
        }
        // Injectivity filter — the "isomorphic function" encoded on top
        // of the joins.
        partial.retain(|p| {
            for i in 0..p.len() {
                for j in i + 1..p.len() {
                    if p[i] == p[j] {
                        return false;
                    }
                }
            }
            true
        });
        partial
    }

    /// Computes `Vio(Σ, G)` via relational evaluation (joins as
    /// written, no predicate pushdown — the naive UDF coding).
    pub fn detect_violations(&self, sigma: &GfdSet) -> Vec<Violation> {
        self.detect(sigma, false)
    }

    /// Computes `Vio(Σ, G)` with the antecedent's constant literals
    /// pushed below the joins (the tuned UDF coding). Same answers;
    /// how far BigDansing's measured slowdown moves between the two
    /// codings is reported by the Fig. 9 harness.
    pub fn detect_violations_pushdown(&self, sigma: &GfdSet) -> Vec<Violation> {
        self.detect(sigma, true)
    }

    fn detect(&self, sigma: &GfdSet, pushdown: bool) -> Vec<Violation> {
        let mut out = Vec::new();
        for (rule, gfd) in sigma.iter().enumerate() {
            let filters = if pushdown {
                Self::constant_filters(&gfd.dep, gfd.pattern.node_count())
            } else {
                vec![None; gfd.pattern.node_count()]
            };
            for assignment in self.assignments_filtered(&gfd.pattern, &filters) {
                if !match_satisfies(&gfd.dep, self.g, &assignment) {
                    out.push(Violation {
                        rule,
                        mapping: Match(assignment),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::validate::detect_violations;
    use gfd_core::{Dependency, Gfd, Literal};
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;

    fn flights(dups: usize) -> Graph {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..6 {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            let idv = if i < dups {
                "DUP".into()
            } else {
                format!("F{i}")
            };
            b.set_attr_named(id, "val", Value::str(&idv));
            b.set_attr_named(to, "val", Value::str(&format!("C{i}")));
        }
        b.freeze()
    }

    fn phi(vocab: std::sync::Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "flight");
        let x1 = b.node("x1", "id");
        let x2 = b.node("x2", "city");
        b.edge(x, x1, "number");
        b.edge(x, x2, "to");
        let y = b.node("y", "flight");
        let y1 = b.node("y1", "id");
        let y2 = b.node("y2", "city");
        b.edge(y, y1, "number");
        b.edge(y, y2, "to");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "flight-dest",
            q,
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )
    }

    #[test]
    fn relational_matches_graph_engine() {
        let g = flights(3);
        let sigma = GfdSet::new(vec![phi(g.vocab().clone())]);
        let mut expected = detect_violations(&sigma, &g);
        let validator = RelationalValidator::new(&g);
        let mut got = validator.detect_violations(&sigma);
        let key = |v: &Violation| (v.rule, v.mapping.nodes().to_vec());
        expected.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(got, expected);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn wildcard_edges_join_all() {
        let mut gb = gfd_graph::GraphBuilder::with_fresh_vocab();
        let a = gb.add_node_labeled("a");
        let b_n = gb.add_node_labeled("b");
        gb.add_edge_labeled(a, b_n, "e1");
        gb.add_edge_labeled(b_n, a, "e2");
        let g = gb.freeze();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let gfd = Gfd::new("w", q, Dependency::new(vec![], vec![]));
        let sigma = GfdSet::new(vec![gfd]);
        let v = RelationalValidator::new(&g);
        // Dependency ∅→∅ is never violated; but assignments() must see
        // both edges.
        assert_eq!(v.assignments(&sigma.get(0).pattern).len(), 2);
        assert!(v.detect_violations(&sigma).is_empty());
    }

    #[test]
    fn isolated_pattern_nodes_cartesian() {
        let g = flights(0);
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("x", "flight");
        b.node("y", "flight");
        let q = b.build();
        let v = RelationalValidator::new(&g);
        // 6 flights: ordered injective pairs = 30.
        assert_eq!(v.assignments(&q).len(), 30);
    }

    #[test]
    fn empty_extent_short_circuits() {
        let g = flights(0);
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "flight");
        let y = b.node("y", "spaceship");
        b.edge(x, y, "number");
        let q = b.build();
        let v = RelationalValidator::new(&g);
        assert!(v.assignments(&q).is_empty());
    }
}
