//! The GCFD baseline [23]: CFDs over conjunctive path patterns.
//!
//! GCFDs specify value dependencies along *paths* — they "do not allow
//! general graph patterns" (§7 appendix). Concretely, a GFD is
//! expressible as a GCFD here iff its pattern is one connected simple
//! directed chain: cyclic patterns (GFD 1 of Fig. 7), branching type
//! patterns (GFD 2) and cross-branch tests (GFD 3's `z.val = z'.val`)
//! all fall outside the class. Validation reuses the GFD engine on the
//! expressible subset, so accuracy differences measure expressiveness,
//! not implementation quality.

use gfd_core::{Gfd, GfdSet};
use gfd_pattern::{analysis::connected_components, Pattern};

/// Is the pattern a single simple directed chain `v₀ → v₁ → … → v_k`?
fn is_directed_chain(q: &Pattern) -> bool {
    if q.node_count() == 0 || connected_components(q).len() != 1 {
        return false;
    }
    if q.edge_count() != q.node_count() - 1 {
        return false;
    }
    // Exactly one source (in-degree 0), one sink (out-degree 0), and
    // every node with in/out degree ≤ 1.
    let mut sources = 0;
    let mut sinks = 0;
    for v in q.vars() {
        let ind = q.inn(v).len();
        let outd = q.out(v).len();
        if ind > 1 || outd > 1 {
            return false;
        }
        if ind == 0 {
            sources += 1;
        }
        if outd == 0 {
            sinks += 1;
        }
    }
    sources == 1 && sinks == 1
}

/// Cross-branch (non-adjacent) variable tests are not expressible in
/// path-based GCFDs: every variable literal must relate variables that
/// are adjacent on the chain (or the same variable).
fn literals_path_local(gfd: &Gfd) -> bool {
    gfd.dep.literals().all(|lit| match lit {
        gfd_core::Literal::Const { .. } => true,
        gfd_core::Literal::Vars { x, y, .. } => {
            if x == y {
                return true;
            }
            gfd.pattern.out(*x).iter().any(|&(t, _)| t == *y)
                || gfd.pattern.inn(*x).iter().any(|&(s, _)| s == *y)
        }
    })
}

/// Can this GFD be written as a GCFD?
pub fn expressible_as_gcfd(gfd: &Gfd) -> bool {
    is_directed_chain(&gfd.pattern) && literals_path_local(gfd)
}

/// The GCFD-expressible subset of `Σ`, plus how many rules were
/// dropped (the paper keeps 7 of 10).
pub fn gcfd_subset(sigma: &GfdSet) -> (GfdSet, usize) {
    let kept: Vec<Gfd> = sigma
        .iter()
        .filter(|g| expressible_as_gcfd(g))
        .cloned()
        .collect();
    let dropped = sigma.len() - kept.len();
    (GfdSet::new(kept), dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_core::{Dependency, Literal};
    use gfd_graph::Vocab;
    use gfd_pattern::PatternBuilder;

    fn chain_gfd(vocab: std::sync::Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "person");
        let y = b.node("y", "city");
        let z = b.node("z", "country");
        b.edge(x, y, "mayor_of");
        b.edge(y, z, "in");
        let q = b.build();
        let val = vocab.intern("val");
        Gfd::new(
            "chain",
            q,
            Dependency::new(
                vec![Literal::var_eq(x, val, y, val)],
                vec![Literal::var_eq(y, val, z, val)],
            ),
        )
    }

    #[test]
    fn chains_are_expressible() {
        let vocab = Vocab::shared();
        assert!(expressible_as_gcfd(&chain_gfd(vocab)));
    }

    #[test]
    fn cycles_are_not_expressible() {
        // GFD 1 of Fig. 7 (child/parent cycle).
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "person");
        let y = b.node("y", "person");
        b.edge(x, y, "hasChild");
        b.edge(y, x, "hasChild");
        let q = b.build();
        let val = vocab.intern("val");
        let gfd = Gfd::new(
            "cycle",
            q,
            Dependency::always(vec![Literal::const_eq(x, val, "c")]),
        );
        assert!(!expressible_as_gcfd(&gfd));
    }

    #[test]
    fn branching_trees_are_not_expressible() {
        // GFD 3 of Fig. 7: mayor_of/affiliated branches with a
        // cross-branch test.
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "person");
        let city = b.node("city", "city");
        let party = b.node("party", "party");
        let z = b.node("z", "country");
        let z2 = b.node("z2", "country");
        b.edge(x, city, "mayor_of");
        b.edge(x, party, "affiliated");
        b.edge(city, z, "in");
        b.edge(party, z2, "in");
        let q = b.build();
        let val = vocab.intern("val");
        let gfd = Gfd::new(
            "mayor-party-country",
            q,
            Dependency::always(vec![Literal::var_eq(z, val, z2, val)]),
        );
        assert!(!expressible_as_gcfd(&gfd));
    }

    #[test]
    fn cross_chain_tests_are_not_expressible() {
        // A 3-chain whose literal relates the two END points (skipping
        // the middle) — path-local restriction rejects it.
        let vocab = Vocab::shared();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        let z = b.node("z", "c");
        b.edge(x, y, "e");
        b.edge(y, z, "e");
        let q = b.build();
        let val = vocab.intern("val");
        let gfd = Gfd::new(
            "ends",
            q,
            Dependency::always(vec![Literal::var_eq(x, val, z, val)]),
        );
        assert!(!expressible_as_gcfd(&gfd));
    }

    #[test]
    fn subset_counts_dropped() {
        let vocab = Vocab::shared();
        let good = chain_gfd(vocab.clone());
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "t");
        let y = b.node("y", "t");
        b.edge(x, y, "e");
        b.edge(y, x, "e");
        let q = b.build();
        let bad = Gfd::new("bad", q, Dependency::new(vec![], vec![]));
        let sigma = GfdSet::new(vec![good, bad]);
        let (subset, dropped) = gcfd_subset(&sigma);
        assert_eq!(subset.len(), 1);
        assert_eq!(dropped, 1);
    }
}
