//! Measurement harness for the `SimFilter::Auto` gate (cyclic
//! component + smallest seed pool ≥ `SIM_AUTO_MIN_POOL`).
//!
//! Ignored by default — run it when re-tuning the threshold:
//!
//! ```text
//! cargo test -p gfd-bench --release --test gate_measure -- --ignored --nocapture
//! ```
//!
//! It times `count_matches` with the filter forced on vs off for
//! (a) cyclic triangle patterns over graphs whose candidate pools
//! sweep the gate boundary, and (b) the mined-rule corpus the Auto
//! heuristic actually serves. The gate is correct when `Always` beats
//! `Never` above the threshold and loses below it, and when `Auto`
//! tracks the winner on the corpus.

use std::sync::Arc;
use std::time::Instant;

use gfd_datagen::{mine_gfds, reallife_graph, RealLifeConfig, RealLifeKind, RuleGenConfig};
use gfd_graph::{Graph, GraphBuilder};
use gfd_match::{count_matches, MatchOptions, SimFilter};
use gfd_pattern::PatternBuilder;
use gfd_util::Rng;

/// A random one-label graph with `n` nodes and `edges_per_node * n`
/// `e`-edges — every pool of the triangle pattern then has size
/// exactly `n`. Dense settings leave the simulation nothing to prune
/// (worst case for the filter); sparse settings make most candidates
/// dead ends (best case).
fn pool_graph(n: usize, edges_per_node: f64, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<_> = (0..n).map(|_| b.add_node_labeled("v")).collect();
    for _ in 0..(edges_per_node * n as f64) as usize {
        let s = ids[rng.gen_range(0..n)];
        let d = ids[rng.gen_range(0..n)];
        b.add_edge_labeled(s, d, "e");
    }
    b.freeze()
}

fn time_matches(q: &gfd_pattern::Pattern, g: &Graph, sim: SimFilter, reps: usize) -> f64 {
    let opts = MatchOptions::unrestricted().with_sim_filter(sim);
    let t = Instant::now();
    let mut total = 0usize;
    for _ in 0..reps {
        total += count_matches(q, g, &opts);
    }
    std::hint::black_box(total);
    t.elapsed().as_secs_f64() * 1e6 / reps as f64
}

#[test]
#[ignore = "measurement harness; run with --ignored --nocapture to re-tune the gate"]
fn measure_auto_gate() {
    for (regime, epn) in [("dense (3·n edges)", 3.0), ("sparse (1.2·n edges)", 1.2)] {
        println!("== cyclic triangle, {regime}, pool-size sweep (µs/enumeration) ==");
        println!(
            "{:>6} {:>12} {:>12} {:>8}",
            "pool", "never", "always", "win"
        );
        for n in [16, 32, 64, 128, 256, 512, 1024] {
            let g = pool_graph(n, epn, 0xC0FFEE ^ n as u64);
            let mut b = PatternBuilder::new(g.vocab().clone());
            let x = b.node("x", "v");
            let y = b.node("y", "v");
            let z = b.node("z", "v");
            b.edge(x, y, "e");
            b.edge(y, z, "e");
            b.edge(z, x, "e");
            let q = b.build();
            let reps = (20_000 / n).max(3);
            let never = time_matches(&q, &g, SimFilter::Never, reps);
            let always = time_matches(&q, &g, SimFilter::Always, reps);
            println!(
                "{n:>6} {never:>12.1} {always:>12.1} {:>8}",
                if always < never { "always" } else { "never" }
            );
        }
    }

    println!("== mined-rule corpus (µs, whole corpus) ==");
    let g = Arc::new(reallife_graph(&RealLifeConfig {
        scale: 0.1,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    }));
    for (label, cfg) in [
        (
            "3-node rules",
            RuleGenConfig {
                count: 8,
                pattern_nodes: 3,
                two_component_fraction: 0.25,
                ..Default::default()
            },
        ),
        (
            "4-node rules",
            RuleGenConfig {
                count: 8,
                pattern_nodes: 4,
                two_component_fraction: 0.25,
                ..Default::default()
            },
        ),
    ] {
        let sigma = mine_gfds(&g, &cfg);
        for sim in [SimFilter::Never, SimFilter::Always, SimFilter::Auto] {
            let t = Instant::now();
            let mut total = 0usize;
            for gfd in sigma.iter() {
                total += count_matches(
                    &gfd.pattern,
                    &g,
                    &MatchOptions::unrestricted().with_sim_filter(sim),
                );
            }
            std::hint::black_box(total);
            println!("{label}: {sim:?} {:>12.1}", t.elapsed().as_secs_f64() * 1e6);
        }
    }
}
