//! The allocation-free hot-path guarantee, asserted: after warm-up,
//! [`execute_unit`] performs **zero heap allocations** per call — the
//! cached flat match tables are reused through `Arc` views served by
//! the shared [`ClassRegistry`], the join backtracks inside
//! [`UnitScratch`], and nothing in the per-unit loop grows a buffer.
//! Runs in CI under `BENCH_SMOKE` so a regression that re-introduces
//! per-unit allocation fails the build.

use std::sync::Arc;

use gfd_core::{Dependency, Gfd, GfdSet, Literal};
use gfd_graph::{Graph, NodeId, Value, Vocab};
use gfd_match::types::Flow;
use gfd_match::{
    count_matches_planned, count_matches_with, for_each_match_planned, CacheStats, ClassRegistry,
    MatchOptions, MatchScratch,
};
use gfd_parallel::unitexec::{execute_unit, MultiQueryIndex, UnitScratch};
use gfd_parallel::workload::{estimate_workload, plan_rules, WorkloadOptions};
use gfd_pattern::PatternBuilder;
use gfd_util::alloc::{allocation_count, min_allocation_delta, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A clean flight fleet (distinct ids → no violations): the
/// steady-state detection shape, where units stream through the warm
/// cache and find nothing.
fn clean_flights(n: usize) -> Graph {
    let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
    for i in 0..n {
        let f = b.add_node_labeled("flight");
        let id = b.add_node_labeled("id");
        let to = b.add_node_labeled("city");
        b.add_edge_labeled(f, id, "number");
        b.add_edge_labeled(f, to, "to");
        b.set_attr_named(id, "val", Value::str(&format!("FL{i}")));
        b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
    }
    b.freeze()
}

/// The symmetric two-component rule (Example 10 shape): exercises the
/// both-orientations path, the multi-query cache, and the disjoint
/// join — the full unit-execution machinery.
fn same_id_same_dest(vocab: Arc<Vocab>) -> Gfd {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "flight");
    let x1 = b.node("x1", "id");
    let x2 = b.node("x2", "city");
    b.edge(x, x1, "number");
    b.edge(x, x2, "to");
    let y = b.node("y", "flight");
    let y1 = b.node("y1", "id");
    let y2 = b.node("y2", "city");
    b.edge(y, y1, "number");
    b.edge(y, y2, "to");
    let q = b.build();
    let val = vocab.intern("val");
    Gfd::new(
        "same-id-same-dest",
        q,
        Dependency::new(
            vec![Literal::var_eq(x1, val, y1, val)],
            vec![Literal::var_eq(x2, val, y2, val)],
        ),
    )
}

#[test]
fn warm_execute_unit_allocates_nothing() {
    let g = clean_flights(8);
    let sigma = GfdSet::new(vec![same_id_same_dest(g.vocab().clone())]);
    let plans = plan_rules(&sigma);
    let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
    assert!(wl.units.len() >= 20, "premise: a non-trivial workload");
    let registry = ClassRegistry::new();
    let mqi = MultiQueryIndex::build(&plans, &registry);
    let mut stats = CacheStats::default();
    let mut scratch = UnitScratch::new();
    let mut out = Vec::new();

    let run_all = |stats: &mut CacheStats, scratch: &mut UnitScratch, out: &mut Vec<_>| {
        for u in &wl.units {
            execute_unit(
                &g,
                &sigma,
                &plans,
                &wl.slots,
                u,
                Some(&mqi),
                &registry,
                stats,
                scratch,
                out,
            );
        }
    };

    // Warm-up: fills the registry's table cache (misses allocate) and
    // sizes every scratch buffer.
    run_all(&mut stats, &mut scratch, &mut out);
    assert!(out.is_empty(), "premise: the clean fleet has no violations");
    assert!(stats.misses > 0 && allocation_count() > 0);

    // Steady state: every enumeration is a registry hit served as a
    // shared table view; the loop over ALL units must not allocate.
    // Minimum over rounds guards against unrelated harness threads.
    let misses_before = stats.misses;
    let delta = min_allocation_delta(5, || run_all(&mut stats, &mut scratch, &mut out));
    assert_eq!(
        delta,
        0,
        "warm execute_unit must perform zero heap allocations \
         ({delta} allocations across {} units)",
        wl.units.len()
    );
    assert!(out.is_empty());
    assert_eq!(
        stats.misses, misses_before,
        "steady state must be all hits — a miss means the warm registry \
         stopped covering the workload"
    );
    assert!(stats.hits > 0);
}

/// The tentpole's cross-worker guarantee: a registry warmed by one
/// worker serves another worker's probes as hits — and those hits are
/// as allocation-free as same-worker ones. Worker B never pays a miss:
/// every table it reads was enumerated (and paid for) by worker A.
#[test]
fn warm_cross_worker_registry_hit_allocates_nothing() {
    let g = clean_flights(8);
    let sigma = GfdSet::new(vec![same_id_same_dest(g.vocab().clone())]);
    let plans = plan_rules(&sigma);
    let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
    let registry = ClassRegistry::new();
    let mqi = MultiQueryIndex::build(&plans, &registry);
    let mut out = Vec::new();

    // Worker A: pays every enumeration.
    let mut stats_a = CacheStats::default();
    let mut scratch_a = UnitScratch::new();
    for u in &wl.units {
        execute_unit(
            &g,
            &sigma,
            &plans,
            &wl.slots,
            u,
            Some(&mqi),
            &registry,
            &mut stats_a,
            &mut scratch_a,
            &mut out,
        );
    }
    assert!(stats_a.misses > 0);

    // Worker B: fresh scratch and counters, shared registry. One
    // sizing round for B's own scratch buffers, then the probe.
    let mut stats_b = CacheStats::default();
    let mut scratch_b = UnitScratch::new();
    let run_b = |stats_b: &mut CacheStats, scratch_b: &mut UnitScratch, out: &mut Vec<_>| {
        for u in &wl.units {
            execute_unit(
                &g,
                &sigma,
                &plans,
                &wl.slots,
                u,
                Some(&mqi),
                &registry,
                stats_b,
                scratch_b,
                out,
            );
        }
    };
    run_b(&mut stats_b, &mut scratch_b, &mut out);
    let delta = min_allocation_delta(5, || run_b(&mut stats_b, &mut scratch_b, &mut out));
    assert_eq!(
        delta, 0,
        "a cross-worker registry hit must be allocation-free"
    );
    assert_eq!(
        stats_b.misses, 0,
        "worker B must never enumerate — worker A already paid every table"
    );
    assert!(stats_b.hits > 0);
    assert!(out.is_empty());
}

/// Warm counting — both forms — must be allocation-free: the
/// materialized count backtracks entirely inside `MatchScratch`
/// (candidate sources live in a stack batch, not a heap buffer), and
/// the factorized count rebuilds its d-representation into warm
/// scratch arenas without enumerating a single match.
#[test]
fn warm_counting_allocates_nothing() {
    // Materialized: a star pattern (fewer edges than nodes) keeps the
    // Auto filter off, so this is the pure backtracking count.
    let g = clean_flights(8);
    let mut pb = PatternBuilder::new(g.vocab().clone());
    let f = pb.node("f", "flight");
    let i = pb.node("i", "id");
    let c = pb.node("c", "city");
    pb.edge(f, i, "number");
    pb.edge(f, c, "to");
    let star = pb.build();
    let opts = MatchOptions::unrestricted();
    let mut scratch = MatchScratch::default();
    let expected = count_matches_with(&star, &g, &opts, &mut scratch);
    assert_eq!(expected, 8, "premise: one star per flight");
    let delta = min_allocation_delta(5, || {
        assert_eq!(count_matches_with(&star, &g, &opts, &mut scratch), expected);
    });
    assert_eq!(
        delta, 0,
        "warm materialized counting must perform zero heap allocations"
    );

    // Factorized: a two-bag path counted FAQ-style from the cached
    // space and plan — the 576 matches are never enumerated.
    let per_layer = 24usize;
    let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
    let al: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("a")).collect();
    let bl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("b")).collect();
    let cl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("c")).collect();
    for &a in &al {
        for &x in &bl {
            b.add_edge_labeled(a, x, "e1");
        }
    }
    for j in 0..per_layer {
        b.add_edge_labeled(bl[j], cl[j], "e2");
    }
    let g2 = b.freeze();
    let mut pb = PatternBuilder::new(g2.vocab().clone());
    let x = pb.node("x", "a");
    let y = pb.node("y", "b");
    let z = pb.node("z", "c");
    pb.edge(x, y, "e1");
    pb.edge(y, z, "e2");
    let path = pb.build();

    let reg = ClassRegistry::new();
    let h = reg.register(&path);
    let (cs, plan) = reg.space_and_plan(h, &g2);
    let warm = count_matches_planned(&path, &g2, &opts, &cs, &plan, &mut scratch);
    assert_eq!(warm, per_layer * per_layer);
    assert_eq!(
        scratch.last_factorization().count(),
        Some((per_layer * per_layer) as u64),
        "premise: the count came from an exact factorization"
    );
    let delta = min_allocation_delta(5, || {
        assert_eq!(
            count_matches_planned(&path, &g2, &opts, &cs, &plan, &mut scratch),
            warm
        );
    });
    assert_eq!(
        delta, 0,
        "warm factorized counting must perform zero heap allocations"
    );
}

/// The worst-case-optimal plan executor's steady state: with the
/// candidate space and decomposition plan warm in the registry and
/// scratch at its high-water mark, a full cyclic-pattern enumeration
/// — pools, intersections, bag recursion, match emission — must not
/// touch the heap.
#[test]
fn warm_plan_execution_allocates_nothing() {
    // A skewed cyclic workload: a dense a→b layer, per-index b→c
    // edges, and a handful of c→a closures — triangles exist but are
    // rare relative to the frontier.
    let per_layer = 24usize;
    let closures = 4usize;
    let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
    let al: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("a")).collect();
    let bl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("b")).collect();
    let cl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("c")).collect();
    for &a in &al {
        for &x in &bl {
            b.add_edge_labeled(a, x, "e1");
        }
    }
    for i in 0..per_layer {
        b.add_edge_labeled(bl[i], cl[i], "e2");
    }
    for i in 0..closures {
        b.add_edge_labeled(cl[i], al[i], "e3");
    }
    let g = b.freeze();

    let mut pb = PatternBuilder::new(g.vocab().clone());
    let x = pb.node("x", "a");
    let y = pb.node("y", "b");
    let z = pb.node("z", "c");
    pb.edge(x, y, "e1");
    pb.edge(y, z, "e2");
    pb.edge(z, x, "e3");
    let tri = pb.build();

    let reg = ClassRegistry::new();
    let h = reg.register(&tri);
    let opts = MatchOptions::unrestricted();
    let mut scratch = MatchScratch::default();
    let count = |scratch: &mut MatchScratch| {
        let (cs, plan) = reg.space_and_plan(h, &g);
        assert!(plan.is_cyclic(), "premise: the triangle routes to WCOJ");
        let mut n = 0usize;
        for_each_match_planned(&tri, &g, &opts, &cs, &plan, scratch, &mut |_| {
            n += 1;
            Flow::Continue
        });
        n
    };

    // Warm-up: builds the space and the decomposition plan (both
    // allocate) and sizes the pool hierarchy in the scratch.
    let expected = count(&mut scratch);
    assert_eq!(expected, closures, "premise: one triangle per closure");
    assert!(allocation_count() > 0);

    // Steady state: warm space, cached plan, high-water scratch — the
    // entire plan execution must be allocation-free.
    let delta = min_allocation_delta(5, || {
        assert_eq!(count(&mut scratch), expected);
    });
    assert_eq!(
        delta, 0,
        "warm plan execution must perform zero heap allocations \
         ({delta} allocations per enumeration)"
    );
}
