//! Fig. 5(d)(f)(h): impact of the number of rules — simulated time vs
//! `‖Σ‖ ∈ {50..100}` at fixed `|Q| = 5`, `n = 16`, for all six
//! algorithms on the three stand-ins.

use gfd_bench::{banner, dataset, print_table, rules, run_all_algorithms, DATASETS, DEFAULT_SCALE};

fn main() {
    banner("Fig. 5(d)(f)(h)", "time vs ‖Σ‖ at n = 16, |Q| = 5");
    let n = 16;
    for (name, kind) in DATASETS {
        let g = dataset(kind, DEFAULT_SCALE);
        let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
        let mut xs = Vec::new();
        for count in [50usize, 60, 70, 80, 90, 100] {
            let sigma = rules(&g, count, 5);
            xs.push(count.to_string());
            for cell in run_all_algorithms(&sigma, &g, n) {
                match series.iter_mut().find(|(a, _)| *a == cell.algo) {
                    Some((_, vals)) => vals.push(cell.report.total_seconds()),
                    None => series.push((cell.algo, vec![cell.report.total_seconds()])),
                }
            }
        }
        print_table(
            &format!("Fig 5 — Varying ‖Σ‖ ({name})"),
            "sigma",
            &xs,
            &series,
        );
        let growth = |algo: &str| {
            let vals = &series.iter().find(|(a, _)| *a == algo).unwrap().1;
            vals[vals.len() - 1] / vals[0]
        };
        println!(
            "# growth 50→100 rules: repVal {:.2}x, disVal {:.2}x (expected: roughly linear up)",
            growth("repVal"),
            growth("disVal")
        );
    }
}
