//! Fig. 5(a)(b)(c): parallel scalability — simulated time vs number of
//! processors `n ∈ {4..20}` for all six algorithms on the three
//! real-life stand-ins. Fixed `‖Σ‖ = 50`, `|Q| = 5` as in Exp-1.

use gfd_bench::{
    banner, dataset, print_table, rules, run_all_algorithms, DATASETS, DEFAULT_SCALE,
    PROCESSOR_COUNTS,
};

fn main() {
    banner("Fig. 5(a)(b)(c)", "time vs n, six algorithms, three graphs");
    for (name, kind) in DATASETS {
        let g = dataset(kind, DEFAULT_SCALE);
        let sigma = rules(&g, 50, 5);
        eprintln!(
            "[{name}] |V|={} |E|={} ‖Σ‖={} avg|Q|={:.1}",
            g.node_count(),
            g.edge_count(),
            sigma.len(),
            sigma.avg_pattern_size()
        );
        let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
        let mut xs = Vec::new();
        for &n in &PROCESSOR_COUNTS {
            xs.push(n.to_string());
            for cell in run_all_algorithms(&sigma, &g, n) {
                match series.iter_mut().find(|(a, _)| *a == cell.algo) {
                    Some((_, vals)) => vals.push(cell.report.total_seconds()),
                    None => series.push((cell.algo, vec![cell.report.total_seconds()])),
                }
            }
        }
        print_table(&format!("Fig 5 — Varying n ({name})"), "n", &xs, &series);
        // Headline shape checks mirrored from Exp-1 (printed, not
        // asserted, so partial runs still emit data).
        let speedup = |algo: &str| {
            let vals = &series.iter().find(|(a, _)| *a == algo).unwrap().1;
            vals[0] / vals[vals.len() - 1]
        };
        println!(
            "# speedup 4→20: repVal {:.2}x, disVal {:.2}x (paper: 3.7x / 2.4x avg)",
            speedup("repVal"),
            speedup("disVal")
        );
    }
}
