//! Fig. 5(e)(g)(i): impact of pattern size — simulated time vs
//! `|Q| ∈ {2..6}` at fixed `‖Σ‖ = 50`, `n = 16`, for all six
//! algorithms on the three stand-ins. Larger patterns mean larger
//! radii and hence larger work units.

use gfd_bench::{banner, dataset, print_table, rules, run_all_algorithms, DATASETS, DEFAULT_SCALE};

fn main() {
    banner("Fig. 5(e)(g)(i)", "time vs |Q| at n = 16, ‖Σ‖ = 50");
    let n = 16;
    for (name, kind) in DATASETS {
        let g = dataset(kind, DEFAULT_SCALE);
        let mut series: Vec<(&str, Vec<f64>)> = Vec::new();
        let mut xs = Vec::new();
        for q in [2usize, 3, 4, 5, 6] {
            let sigma = rules(&g, 50, q);
            xs.push(q.to_string());
            for cell in run_all_algorithms(&sigma, &g, n) {
                match series.iter_mut().find(|(a, _)| *a == cell.algo) {
                    Some((_, vals)) => vals.push(cell.report.total_seconds()),
                    None => series.push((cell.algo, vec![cell.report.total_seconds()])),
                }
            }
        }
        print_table(&format!("Fig 5 — Varying |Q| ({name})"), "q", &xs, &series);
        let growth = |algo: &str| {
            let vals = &series.iter().find(|(a, _)| *a == algo).unwrap().1;
            vals[vals.len() - 1] / vals[0]
        };
        println!(
            "# growth |Q| 2→6: repVal {:.2}x, disVal {:.2}x (expected: up, superlinear)",
            growth("repVal"),
            growth("disVal")
        );
    }
}
