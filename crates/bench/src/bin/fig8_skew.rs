//! Fig. 8: impact of skewed graphs — simulated time for the `dis*`
//! family as the degree distribution gets more skewed, `n = 16`,
//! with `disVal` using the replicate-and-split strategy.
//!
//! The paper's skew measure is `|G_dm| / |G_dm'|`: the average size of
//! the 10% smallest d-hop neighborhoods over the 10% largest (smaller
//! = more skewed), swept from 10⁻¹ to 50⁻¹. We control skew via the
//! generator's Zipf exponent, report the measured ratio alongside, and
//! derive the split threshold θ from the observed workload (≈4× the
//! mean block cost, so only the skewed tail is replicated).

use gfd_bench::{banner, measure, print_table};
use gfd_datagen::{mine_gfds, synthetic_graph, RuleGenConfig, SynthConfig};
use gfd_graph::{Fragmentation, GraphStats, PartitionStrategy};
use gfd_parallel::workload::{estimate_workload, WorkloadOptions};
use gfd_parallel::{dis_val, DisValConfig};

fn main() {
    banner(
        "Fig. 8",
        "time vs skew (dis* family, n = 16, disVal splits)",
    );
    let n = 16;
    let mut series: Vec<(&str, Vec<f64>)> =
        vec![("disnop", vec![]), ("disran", vec![]), ("disVal", vec![])];
    let mut xs = Vec::new();
    for skew in [0.6f64, 1.0, 1.4, 1.8, 2.2] {
        let g = std::sync::Arc::new(synthetic_graph(&SynthConfig {
            nodes: 50_000,
            edges: 100_000,
            skew,
            ..Default::default()
        }));
        let ratio = GraphStats::skew_ratio(&g, 2, 500);
        xs.push(format!("{ratio:.4}"));
        let sigma = mine_gfds(
            &g,
            &RuleGenConfig {
                count: 20,
                pattern_nodes: 2,
                two_component_fraction: 0.2,
                max_pivot_extent: 400,
                seed: 0xACE,
            },
        );
        // θ from the observed workload: replicate only the heavy tail.
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        let mean_cost = (wl.total_cost() / wl.units.len().max(1) as u64).max(1);
        let theta = 4 * mean_cost;
        let frag = Fragmentation::partition(&g, n, PartitionStrategy::BfsClustered);
        let cells = [
            ("disnop", DisValConfig::nop(n)),
            ("disran", DisValConfig::ran(n, 0x5EED)),
            ("disVal", DisValConfig::val(n).with_split(theta)),
        ];
        for (algo, cfg) in cells {
            let report = measure(|| dis_val(&sigma, &g, &frag, &cfg));
            let entry = series.iter_mut().find(|(a, _)| *a == algo).unwrap();
            entry.1.push(report.total_seconds());
            eprintln!(
                "[zipf {skew}, ratio {}] {algo}: {:.4}s (units {}, est {:.4}, part {:.4}, comp {:.4}, comm {:.4}, imb {:.2})",
                xs.last().unwrap(),
                report.total_seconds(),
                report.units,
                report.estimation_seconds,
                report.partition_seconds,
                report.compute_seconds,
                report.comm_seconds,
                report.imbalance()
            );
        }
    }
    print_table(
        "Fig 8 — Varying skew (synthetic; x = measured |Gdm|/|Gdm'| ratio, smaller = more skewed)",
        "skew",
        &xs,
        &series,
    );
    let deg = |algo: &str| {
        let vals = &series.iter().find(|(a, _)| *a == algo).unwrap().1;
        vals[vals.len() - 1] / vals[0].max(1e-12)
    };
    println!(
        "# slowdown mild→heavy skew: disVal {:.2}x vs disran {:.2}x vs disnop {:.2}x (paper: 1.7x vs 2.0x vs 2.2x)",
        deg("disVal"),
        deg("disran"),
        deg("disnop")
    );
}
