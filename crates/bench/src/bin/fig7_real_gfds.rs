//! Fig. 7: the three real-life GFDs and the inconsistencies they
//! catch, reproduced on curated graph snippets (same fixtures as the
//! `knowledge_graph_cleaning` example, reported as a table).

use gfd_bench::banner;
use gfd_core::validate::detect_violations;
use gfd_core::{Dependency, Gfd, GfdSet, Literal};
use gfd_graph::{GraphBuilder, Value, Vocab};
use gfd_pattern::PatternBuilder;

fn main() {
    banner("Fig. 7", "three real-life GFDs and their catches");
    let vocab = Vocab::shared();
    let mut g = GraphBuilder::new(vocab.clone());

    // YAGO2-style child/parent cycle.
    let anna = g.add_node_labeled("person");
    let boris = g.add_node_labeled("person");
    g.set_attr_named(anna, "val", Value::str("Anna"));
    g.set_attr_named(boris, "val", Value::str("Boris"));
    g.add_edge_labeled(anna, boris, "hasChild");
    g.add_edge_labeled(boris, anna, "hasChild");

    // DBpedia-style disjoint-type clash.
    let thing = g.add_node_labeled("entity");
    let tp = g.add_node_labeled("type");
    let tb = g.add_node_labeled("type");
    g.set_attr_named(tp, "val", Value::str("Person"));
    g.set_attr_named(tb, "val", Value::str("Building"));
    g.add_edge_labeled(thing, tp, "type_of");
    g.add_edge_labeled(thing, tb, "type_of");
    g.add_edge_labeled(tp, tb, "disjoint");

    // YAGO2-style NYC mayor whose party sits in another country.
    let mayor = g.add_node_labeled("person");
    let nyc = g.add_node_labeled("city");
    let party = g.add_node_labeled("party");
    let usa = g.add_node_labeled("country");
    let uk = g.add_node_labeled("country");
    g.set_attr_named(usa, "val", Value::str("USA"));
    g.set_attr_named(uk, "val", Value::str("UK"));
    g.add_edge_labeled(mayor, nyc, "mayor_of");
    g.add_edge_labeled(mayor, party, "affiliated");
    g.add_edge_labeled(nyc, usa, "in_country");
    g.add_edge_labeled(party, uk, "in_country");

    // GFD 1: (Q10[x,y], ∅ → x.val = c ∧ y.val = d), c ≠ d (denial).
    let gfd1 = {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "person");
        let y = b.node("y", "person");
        b.edge(x, y, "hasChild");
        b.edge(y, x, "hasChild");
        let val = vocab.intern("val");
        Gfd::new(
            "GFD1 (cyclic pattern, not expressible as GCFD/CFD/DC)",
            b.build(),
            Dependency::always(vec![
                Literal::const_eq(x, val, "__c"),
                Literal::const_eq(y, val, "__d"),
            ]),
        )
    };
    // GFD 2: (Q11, ∅ → y.val = y'.val) over disjoint types.
    let gfd2 = {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.wildcard_node("x");
        let y = b.node("y", "type");
        let y2 = b.node("y2", "type");
        b.edge(x, y, "type_of");
        b.edge(x, y2, "type_of");
        b.edge(y, y2, "disjoint");
        let val = vocab.intern("val");
        Gfd::new(
            "GFD2 (wildcard entity, disjoint types)",
            b.build(),
            Dependency::always(vec![Literal::var_eq(y, val, y2, val)]),
        )
    };
    // GFD 3: (Q12, ∅ → z.val = z'.val), mayor/party country agreement.
    let gfd3 = {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "person");
        let c = b.node("c", "city");
        let p = b.node("p", "party");
        let z = b.node("z", "country");
        let z2 = b.node("z2", "country");
        b.edge(x, c, "mayor_of");
        b.edge(x, p, "affiliated");
        b.edge(c, z, "in_country");
        b.edge(p, z2, "in_country");
        let val = vocab.intern("val");
        Gfd::new(
            "GFD3 (cross-branch id test, not expressible as GCFD)",
            b.build(),
            Dependency::always(vec![Literal::var_eq(z, val, z2, val)]),
        )
    };

    let g = g.freeze();
    let sigma = GfdSet::new(vec![gfd1, gfd2, gfd3]);
    let violations = detect_violations(&sigma, &g);

    println!("\n### Fig 7 — real-life GFDs");
    println!("rule\tviolating matches\tGCFD-expressible");
    for (i, gfd) in sigma.iter().enumerate() {
        let count = violations.iter().filter(|v| v.rule == i).count();
        let expressible = gfd_baselines::expressible_as_gcfd(gfd);
        println!("{}\t{}\t{}", gfd.name, count, expressible);
        assert!(count > 0, "each Fig. 7 rule must catch its planted error");
        assert!(!expressible, "Fig. 7 rules are beyond GCFDs (appendix)");
    }
    println!("# all three planted inconsistencies caught; none expressible as GCFDs");
}
