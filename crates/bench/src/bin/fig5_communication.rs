//! Fig. 5(j)(k)(l): communication cost — simulated *communication
//! time* (parallel data shipment) vs `n` for the `dis*` family on the
//! three stand-ins (`rep*` ships no graph data and is omitted, as in
//! the paper). Also reports total bytes shipped and the communication
//! share of total time (the paper observes 12–24%).

use gfd_bench::{
    banner, dataset, print_table, rules, run_dis_family, DATASETS, DEFAULT_SCALE, PROCESSOR_COUNTS,
};

fn main() {
    banner("Fig. 5(j)(k)(l)", "communication time vs n (dis* family)");
    for (name, kind) in DATASETS {
        let g = dataset(kind, DEFAULT_SCALE);
        let sigma = rules(&g, 50, 5);
        let mut comm_series: Vec<(&str, Vec<f64>)> = Vec::new();
        let mut bytes_series: Vec<(&str, Vec<f64>)> = Vec::new();
        let mut share_series: Vec<(&str, Vec<f64>)> = Vec::new();
        let mut xs = Vec::new();
        for &n in &PROCESSOR_COUNTS {
            xs.push(n.to_string());
            for cell in run_dis_family(&sigma, &g, n) {
                let comm = cell.report.comm_seconds;
                let bytes = cell.report.bytes_shipped as f64 / 1024.0;
                let share = comm / cell.report.total_seconds().max(1e-12);
                for (series, v) in [
                    (&mut comm_series, comm),
                    (&mut bytes_series, bytes),
                    (&mut share_series, share),
                ] {
                    match series.iter_mut().find(|(a, _)| *a == cell.algo) {
                        Some((_, vals)) => vals.push(v),
                        None => series.push((cell.algo, vec![v])),
                    }
                }
            }
        }
        print_table(
            &format!("Fig 5 — Communication time vs n ({name}) [seconds]"),
            "n",
            &xs,
            &comm_series,
        );
        print_table(
            &format!("Fig 5 — Data shipped vs n ({name}) [KiB]"),
            "n",
            &xs,
            &bytes_series,
        );
        print_table(
            &format!("Fig 5 — Communication share of total ({name}) [fraction]"),
            "n",
            &xs,
            &share_series,
        );
    }
}
