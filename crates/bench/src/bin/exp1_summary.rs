//! Exp-1 headline numbers (§7 Summary): parallel-scalability speedups
//! from 4 → 20 processors, optimization gains (Val vs nop), and
//! balancing gains (Val vs ran), per dataset — the numbers quoted in
//! the paper's summary ("3.7 and 2.4 times faster…", "1.9 and 1.5
//! times…", "1.4 and 1.3 times…").

use gfd_bench::{banner, dataset, rules, run_all_algorithms, DATASETS, DEFAULT_SCALE};

fn main() {
    banner("Exp-1 summary", "speedups and optimization/balancing gains");
    println!("\ndataset\trep speedup(4→20)\tdis speedup(4→20)\trepVal/repnop\tdisVal/disnop\trepVal/repran\tdisVal/disran");
    let mut agg = [0.0f64; 6];
    for (name, kind) in DATASETS {
        let g = dataset(kind, DEFAULT_SCALE);
        let sigma = rules(&g, 50, 5);
        let at = |n: usize| {
            let cells = run_all_algorithms(&sigma, &g, n);
            let get = |algo: &str| {
                cells
                    .iter()
                    .find(|c| c.algo == algo)
                    .unwrap()
                    .report
                    .total_seconds()
            };
            (
                get("repVal"),
                get("disVal"),
                get("repnop"),
                get("disnop"),
                get("repran"),
                get("disran"),
            )
        };
        let (rv4, dv4, _, _, _, _) = at(4);
        let (rv20, dv20, rn20, dn20, rr20, dr20) = at(20);
        let row = [
            rv4 / rv20,
            dv4 / dv20,
            rn20 / rv20,
            dn20 / dv20,
            rr20 / rv20,
            dr20 / dv20,
        ];
        println!(
            "{name}\t{:.2}x\t{:.2}x\t{:.2}x\t{:.2}x\t{:.2}x\t{:.2}x",
            row[0], row[1], row[2], row[3], row[4], row[5]
        );
        for (a, r) in agg.iter_mut().zip(row) {
            *a += r / DATASETS.len() as f64;
        }
    }
    println!(
        "AVERAGE\t{:.2}x\t{:.2}x\t{:.2}x\t{:.2}x\t{:.2}x\t{:.2}x",
        agg[0], agg[1], agg[2], agg[3], agg[4], agg[5]
    );
    println!("# paper averages: 3.7x, 2.4x, 1.9x, 1.5x, 1.4x, 1.3x");
}
