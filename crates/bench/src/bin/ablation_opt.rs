//! Ablation of the individual design choices DESIGN.md calls out,
//! each toggled separately at `n = 16` on the DBpedia stand-in:
//!
//! * multi-query caching + sub-pattern scheduling (appendix, [31]);
//! * per-unit evaluation-scheme choice in `disVal` (prefetch/partial);
//! * replicate-and-split for skewed blocks;
//! * workload reduction via implication (reported with its semantics
//!   caveat: it may reduce the *reported* violation list);
//! * pivot-feasibility pruning during workload estimation.

use gfd_bench::{banner, dataset, measure, rules, DEFAULT_SCALE};
use gfd_datagen::RealLifeKind;
use gfd_graph::{Fragmentation, PartitionStrategy};
use gfd_parallel::{dis_val, rep_val, DisValConfig, RepValConfig, WorkloadOptions};

fn main() {
    banner("Ablation", "each optimization toggled separately (n = 16)");
    let n = 16;
    let g = dataset(RealLifeKind::DBpedia, DEFAULT_SCALE);
    let sigma = rules(&g, 50, 5);
    let frag = Fragmentation::partition(&g, n, PartitionStrategy::BfsClustered);

    println!("\n### repVal ablations");
    println!("variant\ttime(s)\tunits\tcache hits\tviolations");
    let base = measure(|| rep_val(&sigma, &g, &RepValConfig::val(n)));
    let report = |label: &str, r: &gfd_parallel::ParallelReport| {
        println!(
            "{label}\t{:.4}\t{}\t{}\t{}",
            r.total_seconds(),
            r.units,
            r.cache_hits,
            r.violations.len()
        );
    };
    report("repVal (all on)", &base);
    let no_mq = measure(|| {
        rep_val(
            &sigma,
            &g,
            &RepValConfig {
                multi_query: false,
                ..RepValConfig::val(n)
            },
        )
    });
    report("− multi-query", &no_mq);
    let with_reduce = measure(|| {
        rep_val(
            &sigma,
            &g,
            &RepValConfig {
                reduce_workload: true,
                ..RepValConfig::val(n)
            },
        )
    });
    report("+ workload reduction*", &with_reduce);
    let with_split = measure(|| rep_val(&sigma, &g, &RepValConfig::val(n).with_split(64)));
    report("+ split θ=64", &with_split);
    let no_prune = measure(|| {
        rep_val(
            &sigma,
            &g,
            &RepValConfig {
                workload: WorkloadOptions {
                    prune_empty_pivots: false,
                    ..Default::default()
                },
                ..RepValConfig::val(n)
            },
        )
    });
    report("− pivot pruning", &no_prune);

    println!("\n### disVal ablations");
    println!("variant\ttime(s)\tcomm(s)\tKiB shipped\tviolations");
    let dreport = |label: &str, r: &gfd_parallel::ParallelReport| {
        println!(
            "{label}\t{:.4}\t{:.4}\t{:.1}\t{}",
            r.total_seconds(),
            r.comm_seconds,
            r.bytes_shipped as f64 / 1024.0,
            r.violations.len()
        );
    };
    let dbase = measure(|| dis_val(&sigma, &g, &frag, &DisValConfig::val(n)));
    dreport("disVal (all on)", &dbase);
    let no_scheme = measure(|| {
        dis_val(
            &sigma,
            &g,
            &frag,
            &DisValConfig {
                scheme_choice: false,
                ..DisValConfig::val(n)
            },
        )
    });
    dreport("− scheme choice", &no_scheme);
    let no_mq_d = measure(|| {
        dis_val(
            &sigma,
            &g,
            &frag,
            &DisValConfig {
                multi_query: false,
                ..DisValConfig::val(n)
            },
        )
    });
    dreport("− multi-query", &no_mq_d);
    let hash_frag = Fragmentation::partition(&g, n, PartitionStrategy::Hash);
    let bad_part = measure(|| dis_val(&sigma, &g, &hash_frag, &DisValConfig::val(n)));
    dreport("hash partitioning", &bad_part);

    println!("\n# *workload reduction may drop implied rules; its violation list covers surviving rules only");
    assert_eq!(base.violations, no_mq.violations);
    assert_eq!(base.violations, with_split.violations);
    assert_eq!(base.violations, no_prune.violations);
    assert_eq!(dbase.violations, no_scheme.violations);
    assert_eq!(dbase.violations, no_mq_d.violations);
    assert_eq!(dbase.violations, bad_part.violations);
    println!("# all exact variants report identical violations");
}
