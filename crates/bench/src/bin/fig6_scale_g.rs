//! Fig. 6: scalability with `|G|` on synthetic graphs — simulated
//! time for the `dis*` family as the graph grows, `n = 16`.
//!
//! The paper sweeps (10M,20M) → (50M,100M) nodes/edges; we sweep the
//! same 1:2 node:edge shape at 1:100 scale, (100k,200k) → (500k,1M),
//! per the substitution note in `DESIGN.md` §3. The sequential
//! `detVio` is also attempted with a step budget, mirroring the
//! paper's observation that it does not complete at scale.

use gfd_bench::{banner, measure, print_table};
use gfd_core::validate::detect_violations_budgeted;
use gfd_datagen::{mine_gfds, synthetic_graph, RuleGenConfig, SynthConfig};
use gfd_graph::{Fragmentation, PartitionStrategy};
use gfd_match::SearchBudget;
use gfd_parallel::{dis_val, DisValConfig};

fn main() {
    banner(
        "Fig. 6",
        "time vs |G| on synthetic graphs (dis* family, n = 16)",
    );
    let n = 16;
    let mut series: Vec<(&str, Vec<f64>)> =
        vec![("disnop", vec![]), ("disran", vec![]), ("disVal", vec![])];
    let mut xs = Vec::new();
    for nodes in [100_000usize, 200_000, 300_000, 400_000, 500_000] {
        // |E| = 2|V| as in the paper. Rules are the mined seed
        // features themselves (2-node patterns): on uniformly random
        // synthetic edges, composite features are vanishingly
        // selective, and the paper's point here is workload growth
        // with |G|, which frequent features deliver.
        let g = std::sync::Arc::new(synthetic_graph(&SynthConfig::sized(nodes, 0xF00D)));
        let sigma = mine_gfds(
            &g,
            &RuleGenConfig {
                count: 20,
                pattern_nodes: 2,
                two_component_fraction: 0.2,
                max_pivot_extent: 400,
                seed: 0xACE,
            },
        );
        xs.push(format!("({}k,{}k)", nodes / 1000, 2 * nodes / 1000));
        let frag = Fragmentation::partition(&g, n, PartitionStrategy::BfsClustered);
        let cells = [
            ("disnop", DisValConfig::nop(n)),
            ("disran", DisValConfig::ran(n, 0x5EED)),
            ("disVal", DisValConfig::val(n)),
        ];
        for (algo, cfg) in cells {
            let report = measure(|| dis_val(&sigma, &g, &frag, &cfg));
            let entry = series.iter_mut().find(|(a, _)| *a == algo).unwrap();
            entry.1.push(report.total_seconds());
            eprintln!(
                "[{}] {algo}: {:.3}s ({} units, {} violations)",
                xs.last().unwrap(),
                report.total_seconds(),
                report.units,
                report.violations.len()
            );
        }
    }
    print_table("Fig 6 — Varying |G| (synthetic)", "|G|", &xs, &series);

    // detVio with a budget on the largest graph (the paper: does not
    // run to completion at (30M,60M) within 120 min).
    let g = synthetic_graph(&SynthConfig::sized(500_000, 0xF00D));
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 20,
            pattern_nodes: 2,
            two_component_fraction: 0.2,
            max_pivot_extent: 400,
            seed: 0xACE,
        },
    );
    let t0 = std::time::Instant::now();
    let (_, complete) = detect_violations_budgeted(
        &sigma,
        &g,
        SearchBudget {
            max_matches: None,
            max_steps: Some(50_000_000),
        },
    );
    println!(
        "# detVio on the largest graph: complete={complete} within the step budget ({:.1}s wall)",
        t0.elapsed().as_secs_f64()
    );
}
