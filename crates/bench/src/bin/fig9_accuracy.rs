//! Fig. 9 (appendix table): accuracy and cost of error detection —
//! GFDs vs GCFDs [23] vs a BigDansing-style relational validator [28]
//! on a YAGO2-shaped graph with injected noise.
//!
//! Protocol (mirroring the appendix): sample entities; build Σ with
//! patterns that match the sampled entities and **constants from the
//! original values before noise injection**; inject 2%-style noise
//! (attribute / type / representational) into the sampled entities;
//! score `precision = |Vio ∩ Vio(A)| / |Vio(A)|` and
//! `recall = |Vio ∩ Vio(A)| / |Vio|` over *entities*.
//!
//! Σ contains two rule families: branching two-leaf rules (general
//! graph patterns — not expressible as path-based GCFDs) and chain
//! rules (GCFD-expressible). The GCFD baseline therefore validates a
//! strict subset and loses recall; the relational baseline evaluates
//! all of Σ with joins and matches GFD accuracy at a higher cost —
//! exactly the paper's 0.91/0.57/0.91 recall and 4.6× time pattern.

use std::collections::{HashMap, HashSet};

use gfd_baselines::{gcfd_subset, RelationalValidator};
use gfd_bench::banner;
use gfd_core::validate::detect_violations;
use gfd_core::{Dependency, Gfd, GfdSet, Literal, Violation};
use gfd_datagen::{reallife_graph, RealLifeConfig, RealLifeKind};
use gfd_graph::{Graph, NodeId, Value};
use gfd_pattern::PatternBuilder;
use gfd_util::Rng;

/// A sampled entity: hub, leaves and their original values.
struct Entity {
    hub: NodeId,
    name: Value,
    leaves: Vec<(NodeId, Value)>,
}

fn sample_entities(g: &Graph) -> Vec<Entity> {
    let vocab = g.vocab();
    let has0 = vocab.lookup("yg_has0").expect("yago2 stand-in");
    let has1 = vocab.lookup("yg_has1").expect("yago2 stand-in");
    let val = vocab.lookup("val").unwrap();
    let name = vocab.lookup("name").unwrap();
    let mut out = Vec::new();
    for hub in g.nodes() {
        let mut leaves = Vec::new();
        for a in g.out_slice(hub) {
            if a.label == has0 || a.label == has1 {
                if let Some(v) = g.attr(a.node, val) {
                    leaves.push((a.node, v.clone()));
                }
            }
        }
        if leaves.len() == 2 {
            if let Some(n) = g.attr(hub, name) {
                out.push(Entity {
                    hub,
                    name: n.clone(),
                    leaves,
                });
            }
        }
    }
    out
}

/// Family A: a branching rule per entity (hub with both leaves) —
/// not GCFD-expressible. Family B: two chain rules per entity —
/// GCFD-expressible.
fn build_sigma(g: &Graph, entities: &[Entity]) -> GfdSet {
    let vocab = g.vocab().clone();
    let val = vocab.lookup("val").unwrap();
    let name = vocab.lookup("name").unwrap();
    let mut rules = Vec::new();
    for (i, e) in entities.iter().enumerate() {
        let hub_label = vocab.resolve(g.label(e.hub));
        if i % 2 == 0 {
            // Branching two-leaf rule (GFD-only).
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node("x", &hub_label);
            let xi = b.node("xi", &vocab.resolve(g.label(e.leaves[0].0)));
            let xj = b.node("xj", &vocab.resolve(g.label(e.leaves[1].0)));
            b.edge(x, xi, "yg_has0");
            b.edge(x, xj, "yg_has1");
            rules.push(Gfd::new(
                format!("entity-{i}-branching"),
                b.build(),
                Dependency::new(
                    vec![Literal::const_eq(x, name, e.name.clone())],
                    vec![
                        Literal::const_eq(xi, val, e.leaves[0].1.clone()),
                        Literal::const_eq(xj, val, e.leaves[1].1.clone()),
                    ],
                ),
            ));
        } else {
            // Two chain rules (GCFD-expressible).
            for (slot, (leaf, orig)) in e.leaves.iter().enumerate() {
                let mut b = PatternBuilder::new(vocab.clone());
                let x = b.node("x", &hub_label);
                let xi = b.node("xi", &vocab.resolve(g.label(*leaf)));
                b.edge(x, xi, &format!("yg_has{slot}"));
                rules.push(Gfd::new(
                    format!("entity-{i}-chain{slot}"),
                    b.build(),
                    Dependency::new(
                        vec![Literal::const_eq(x, name, e.name.clone())],
                        vec![Literal::const_eq(xi, val, orig.clone())],
                    ),
                ));
            }
        }
    }
    GfdSet::new(rules)
}

/// Injects noise into the sampled entities only; returns the dirtied
/// snapshot and the dirty entity (hub) set.
fn inject_targeted_noise(
    g: &Graph,
    entities: &[Entity],
    rate: f64,
    seed: u64,
) -> (Graph, HashSet<NodeId>) {
    let mut rng = Rng::seed_from_u64(seed);
    let val = g.vocab().lookup("val").unwrap();
    let mut dirty = HashSet::new();
    let labels: Vec<_> = (0..13)
        .map(|i| g.vocab().intern(&format!("yg_type{i}")))
        .collect();
    let dirtied = g.edit(|b| {
        for (i, e) in entities.iter().enumerate() {
            if !rng.gen_bool(rate) {
                continue;
            }
            // Noise mix 2:1:2 (attribute : type : representational). Type
            // errors are label rewrites; our stand-ins encode types as
            // labels rather than reified type nodes, so attribute rules
            // cannot see them — they are the expected recall loss (the
            // paper's 0.91 recall likewise reflects uncaught noise).
            match rng.gen_range(0..5) {
                0 | 1 => {
                    // Attribute inconsistency on one leaf.
                    let (leaf, _) = e.leaves[rng.gen_range(0..e.leaves.len())];
                    b.set_attr(leaf, val, Value::Str(format!("__noise_{i}").into()));
                }
                2 => {
                    // Type inconsistency: relabel the hub.
                    let cur = b.label(e.hub);
                    let pick = labels.iter().copied().find(|&l| l != cur).unwrap();
                    b.set_label(e.hub, pick);
                }
                _ => {
                    // Representational inconsistency: variant surface form.
                    let (leaf, orig) = &e.leaves[rng.gen_range(0..e.leaves.len())];
                    b.set_attr(*leaf, val, Value::Str(format!("{orig}_repr").into()));
                }
            }
            dirty.insert(e.hub);
        }
    });
    (dirtied, dirty)
}

/// Flagged entities = images of the hub variable in violations.
fn flagged_entities(g: &Graph, sigma: &GfdSet, violations: &[Violation]) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    for v in violations {
        let gfd = sigma.get(v.rule);
        if let Some(x) = gfd.pattern.var_by_name("x") {
            out.insert(v.mapping.get(x));
        }
    }
    let _ = g;
    out
}

fn score(dirty: &HashSet<NodeId>, flagged: &HashSet<NodeId>) -> (f64, f64) {
    let tp = dirty.intersection(flagged).count() as f64;
    let precision = if flagged.is_empty() {
        1.0
    } else {
        tp / flagged.len() as f64
    };
    let recall = if dirty.is_empty() {
        1.0
    } else {
        tp / dirty.len() as f64
    };
    (recall, precision)
}

fn main() {
    banner("Fig. 9", "accuracy & time: GFD vs GCFD vs BigDansing-style");
    let g = reallife_graph(&RealLifeConfig::new(RealLifeKind::Yago2));
    let entities: Vec<Entity> = sample_entities(&g).into_iter().take(400).collect();
    eprintln!("sampled {} entities", entities.len());
    let sigma = build_sigma(&g, &entities);
    let (gcfd_sigma, dropped) = gcfd_subset(&sigma);
    eprintln!(
        "Σ: {} GFD rules; GCFD-expressible subset: {} (dropped {})",
        sigma.len(),
        gcfd_sigma.len(),
        dropped
    );

    let (g, dirty) = inject_targeted_noise(&g, &entities, 0.3, 0x5EED);
    eprintln!("injected noise into {} entities", dirty.len());

    // Index of rules per entity hub label prunes nothing; run all three
    // detectors on the dirtied graph.
    let t0 = std::time::Instant::now();
    let gfd_vio = detect_violations(&sigma, &g);
    let gfd_time = t0.elapsed().as_secs_f64();
    let (gfd_recall, gfd_prec) = score(&dirty, &flagged_entities(&g, &sigma, &gfd_vio));

    let t0 = std::time::Instant::now();
    let gcfd_vio = detect_violations(&gcfd_sigma, &g);
    let gcfd_time = t0.elapsed().as_secs_f64();
    let (gcfd_recall, gcfd_prec) = score(&dirty, &flagged_entities(&g, &gcfd_sigma, &gcfd_vio));

    let validator = RelationalValidator::new(&g);
    let t0 = std::time::Instant::now();
    let rel_vio = validator.detect_violations(&sigma);
    let rel_time = t0.elapsed().as_secs_f64();
    let (rel_recall, rel_prec) = score(&dirty, &flagged_entities(&g, &sigma, &rel_vio));

    let t0 = std::time::Instant::now();
    let rel_push_vio = validator.detect_violations_pushdown(&sigma);
    let rel_push_time = t0.elapsed().as_secs_f64();
    let (rp_recall, rp_prec) = score(&dirty, &flagged_entities(&g, &sigma, &rel_push_vio));

    println!("\n### Fig 9 — accuracy and running time");
    println!("model\trecall\tprec.\ttime(s)");
    println!("GFD\t{gfd_recall:.2}\t{gfd_prec:.2}\t{gfd_time:.3}");
    println!("GCFD\t{gcfd_recall:.2}\t{gcfd_prec:.2}\t{gcfd_time:.3}");
    println!("BigDansing(naive joins)\t{rel_recall:.2}\t{rel_prec:.2}\t{rel_time:.3}");
    println!("BigDansing(pushdown)\t{rp_recall:.2}\t{rp_prec:.2}\t{rel_push_time:.3}");
    println!(
        "# paper: GFD 0.91/1.0/131s, GCFD 0.57/1.0/106s, BigDansing 0.91/1.0/609s (4.6x slower; naive here: {:.1}x; the gap depends on how much predicate pushdown the hand-coded UDFs perform)",
        rel_time / gfd_time.max(1e-9)
    );

    // Count map for a quick sanity summary.
    let mut by_family: HashMap<&str, usize> = HashMap::new();
    for v in &gfd_vio {
        let name = &sigma.get(v.rule).name;
        let fam = if name.contains("branching") {
            "branching"
        } else {
            "chain"
        };
        *by_family.entry(fam).or_insert(0) += 1;
    }
    println!("# GFD violations by family: {by_family:?}");
}
