//! # gfd-bench — harness regenerating every table and figure of §7
//!
//! One binary per paper artifact (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md` for the index):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig5_scalability` | Fig. 5(a)(b)(c) — time vs `n`, 6 algorithms, 3 graphs |
//! | `fig5_vary_sigma` | Fig. 5(d)(f)(h) — time vs `‖Σ‖` |
//! | `fig5_vary_q` | Fig. 5(e)(g)(i) — time vs `|Q|` |
//! | `fig5_communication` | Fig. 5(j)(k)(l) — communication time vs `n` |
//! | `fig6_scale_g` | Fig. 6 — time vs `|G|` on synthetic graphs |
//! | `fig7_real_gfds` | Fig. 7 — the three real-life GFDs and their catches |
//! | `fig8_skew` | Fig. 8 — time vs skew, replicate-and-split ablation |
//! | `fig9_accuracy` | Fig. 9 — recall/precision/time vs GCFD and BigDansing-style baselines |
//! | `exp1_summary` | Exp-1 headline numbers (speedups, optimization gains) |
//! | `ablation_opt` | DESIGN.md ablations: each optimization toggled separately |
//!
//! All binaries print machine-readable tables (TSV-ish) whose rows are
//! the series the paper plots. Graph sizes are scaled (the substitution
//! table in `DESIGN.md` §3); series *shapes* — who wins, scaling
//! trends, crossovers — are the reproduction target, not absolute
//! seconds.

use std::sync::Arc;

use gfd_core::GfdSet;
use gfd_datagen::{mine_gfds, reallife_graph, RealLifeConfig, RealLifeKind, RuleGenConfig};
use gfd_graph::{Fragmentation, Graph, PartitionStrategy};
use gfd_parallel::{dis_val, rep_val, DisValConfig, ParallelReport, RepValConfig};

/// The three real-life stand-in datasets of §7.
pub const DATASETS: [(&str, RealLifeKind); 3] = [
    ("DBpedia", RealLifeKind::DBpedia),
    ("YAGO2", RealLifeKind::Yago2),
    ("Pokec", RealLifeKind::Pokec),
];

/// Default stand-in scale for the Fig. 5 experiments.
pub const DEFAULT_SCALE: f64 = 0.25;

/// The paper's processor counts.
pub const PROCESSOR_COUNTS: [usize; 5] = [4, 8, 12, 16, 20];

/// Builds a stand-in graph, frozen and ready to share across workers.
pub fn dataset(kind: RealLifeKind, scale: f64) -> Arc<Graph> {
    Arc::new(reallife_graph(&RealLifeConfig {
        kind,
        scale,
        seed: 0xBEEF,
    }))
}

/// Mines a rule set with the §7 knobs (`‖Σ‖`, `|Q|`).
pub fn rules(g: &Graph, count: usize, pattern_nodes: usize) -> GfdSet {
    mine_gfds(
        g,
        &RuleGenConfig {
            count,
            pattern_nodes,
            two_component_fraction: 0.3,
            max_pivot_extent: 150,
            seed: 0xACE,
        },
    )
}

/// One measured cell: algorithm name and simulated seconds.
pub struct Cell {
    /// Series name (`repVal`, `disnop`, …).
    pub algo: &'static str,
    /// The full report.
    pub report: ParallelReport,
}

/// Number of repetitions per cell (the paper averages 5 runs; we take
/// the minimum of `GFD_BENCH_RUNS`, default 2, which is the stabler
/// statistic for wall-clock-derived simulated times).
pub fn bench_runs() -> usize {
    std::env::var("GFD_BENCH_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2)
}

/// Runs `f` [`bench_runs`] times and keeps the report with the lowest
/// simulated total time.
pub fn measure(mut f: impl FnMut() -> ParallelReport) -> ParallelReport {
    let mut best = f();
    for _ in 1..bench_runs() {
        let r = f();
        if r.total_seconds() < best.total_seconds() {
            best = r;
        }
    }
    best
}

/// Runs the three `rep*` algorithms at `n` processors.
pub fn run_rep_family(sigma: &GfdSet, g: &Arc<Graph>, n: usize) -> Vec<Cell> {
    vec![
        Cell {
            algo: "repnop",
            report: measure(|| rep_val(sigma, g, &RepValConfig::nop(n))),
        },
        Cell {
            algo: "repran",
            report: measure(|| rep_val(sigma, g, &RepValConfig::ran(n, 0x5EED))),
        },
        Cell {
            algo: "repVal",
            report: measure(|| rep_val(sigma, g, &RepValConfig::val(n))),
        },
    ]
}

/// Runs the three `dis*` algorithms at `n` processors on a BFS-
/// clustered fragmentation (the realistic partitioning).
pub fn run_dis_family(sigma: &GfdSet, g: &Arc<Graph>, n: usize) -> Vec<Cell> {
    let frag = Fragmentation::partition(g, n, PartitionStrategy::BfsClustered);
    vec![
        Cell {
            algo: "disnop",
            report: measure(|| dis_val(sigma, g, &frag, &DisValConfig::nop(n))),
        },
        Cell {
            algo: "disran",
            report: measure(|| dis_val(sigma, g, &frag, &DisValConfig::ran(n, 0x5EED))),
        },
        Cell {
            algo: "disVal",
            report: measure(|| dis_val(sigma, g, &frag, &DisValConfig::val(n))),
        },
    ]
}

/// All six algorithms of Fig. 5.
pub fn run_all_algorithms(sigma: &GfdSet, g: &Arc<Graph>, n: usize) -> Vec<Cell> {
    let mut cells = run_rep_family(sigma, g, n);
    cells.extend(run_dis_family(sigma, g, n));
    cells
}

/// Prints a figure table: one row per x value, one column per series.
pub fn print_table(title: &str, x_name: &str, xs: &[String], series: &[(&str, Vec<f64>)]) {
    println!("\n### {title}");
    print!("{x_name}");
    for (name, _) in series {
        print!("\t{name}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x}");
        for (_, vals) in series {
            print!("\t{:.4}", vals[i]);
        }
        println!();
    }
}

/// Pretty banner for a figure binary.
pub fn banner(fig: &str, what: &str) {
    println!("==============================================================");
    println!("{fig} — {what}");
    println!("(scaled reproduction; see DESIGN.md §3 and EXPERIMENTS.md)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_and_rules_build() {
        let g = dataset(RealLifeKind::Yago2, 0.05);
        assert!(g.node_count() > 100);
        let sigma = rules(&g, 5, 3);
        assert_eq!(sigma.len(), 5);
    }

    #[test]
    fn all_six_algorithms_run_and_agree() {
        let g = dataset(RealLifeKind::Yago2, 0.05);
        let sigma = rules(&g, 4, 3);
        let cells = run_all_algorithms(&sigma, &g, 3);
        assert_eq!(cells.len(), 6);
        let reference = &cells[0].report.violations;
        for c in &cells[1..] {
            assert_eq!(&c.report.violations, reference, "{} disagrees", c.algo);
        }
    }
}
