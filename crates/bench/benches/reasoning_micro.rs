//! Criterion microbenchmarks for the core GFD operations: subgraph
//! matching, satisfiability, implication, workload estimation and
//! single-unit execution. These are the §4 reasoning costs and the
//! §5–6 per-step costs behind every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gfd_core::sat::check_satisfiability;
use gfd_core::validate::detect_violations;
use gfd_core::{implies, Dependency, Gfd, GfdSet, Literal};
use gfd_datagen::{mine_gfds, reallife_graph, RealLifeConfig, RealLifeKind, RuleGenConfig};
use gfd_graph::Vocab;
use gfd_match::{count_matches, MatchOptions};
use gfd_parallel::workload::{estimate_workload, plan_rules, WorkloadOptions};
use gfd_parallel::{rep_val, RepValConfig};
use gfd_pattern::{Pattern, PatternBuilder, VarId};
use std::sync::Arc;

fn tri_pattern(vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "tau");
    let y = b.node("y", "tau");
    let z = b.node("z", "tau");
    b.edge(x, y, "l");
    b.edge(x, z, "l");
    b.edge(y, z, "l");
    b.build()
}

fn quad_pattern(vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "tau");
    let y = b.node("y", "tau");
    let z = b.node("z", "tau");
    let w = b.node("w", "tau");
    b.edge(x, y, "l");
    b.edge(x, z, "l");
    b.edge(y, z, "l");
    b.edge(y, w, "l");
    b.edge(z, w, "l");
    b.build()
}

fn bench_matching(c: &mut Criterion) {
    let g = reallife_graph(&RealLifeConfig {
        scale: 0.1,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    });
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 4,
            pattern_nodes: 3,
            two_component_fraction: 0.0,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("matching");
    for (i, gfd) in sigma.iter().enumerate().take(2) {
        group.bench_with_input(BenchmarkId::new("count_matches", i), gfd, |b, gfd| {
            b.iter(|| count_matches(&gfd.pattern, &g, &MatchOptions::unrestricted()));
        });
    }
    group.finish();
}

fn bench_reasoning(c: &mut Criterion) {
    let vocab = Vocab::shared();
    let a = vocab.intern("A");
    let phi8 = Gfd::new(
        "phi8",
        tri_pattern(&vocab),
        Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
    );
    let phi9 = Gfd::new(
        "phi9",
        quad_pattern(&vocab),
        Dependency::always(vec![Literal::const_eq(VarId(0), a, "d")]),
    );
    let sigma = GfdSet::new(vec![phi8.clone(), phi9.clone()]);
    c.bench_function("satisfiability/example7", |b| {
        b.iter(|| check_satisfiability(&sigma))
    });

    let b_at = vocab.intern("B");
    let c_at = vocab.intern("C");
    let s1 = Gfd::new(
        "s1",
        tri_pattern(&vocab),
        Dependency::new(
            vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
            vec![Literal::var_eq(VarId(0), b_at, VarId(1), b_at)],
        ),
    );
    let s2 = Gfd::new(
        "s2",
        quad_pattern(&vocab),
        Dependency::new(
            vec![Literal::var_eq(VarId(0), b_at, VarId(1), b_at)],
            vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
        ),
    );
    let sigma8 = GfdSet::new(vec![s1, s2]);
    let phi11 = Gfd::new(
        "phi11",
        quad_pattern(&vocab),
        Dependency::new(
            vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
            vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
        ),
    );
    c.bench_function("implication/example8", |b| {
        b.iter(|| implies(&sigma8, &phi11))
    });
}

fn bench_detection(c: &mut Criterion) {
    let g = reallife_graph(&RealLifeConfig {
        scale: 0.08,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    });
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 8,
            pattern_nodes: 3,
            two_component_fraction: 0.25,
            ..Default::default()
        },
    );
    c.bench_function("detection/detVio", |b| {
        b.iter(|| detect_violations(&sigma, &g))
    });
    c.bench_function("detection/estimate_workload", |b| {
        b.iter(|| estimate_workload(&sigma, &g, &WorkloadOptions::default()))
    });
    c.bench_function("detection/plan_rules", |b| b.iter(|| plan_rules(&sigma)));
    c.bench_function("detection/repVal_n4", |b| {
        b.iter(|| rep_val(&sigma, &g, &RepValConfig::val(4)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matching, bench_reasoning, bench_detection
}
criterion_main!(benches);
