//! Microbenchmarks for the hot operations behind every figure: graph
//! storage primitives (`has_edge`, per-label neighbor scans, label
//! extents — the CSR snapshot's reason to exist), subgraph matching,
//! satisfiability, implication, workload estimation and repVal.
//!
//! Runs with `cargo bench -p gfd-bench` (plain `harness = false`
//! timing loop — the offline toolchain has no criterion). Besides the
//! human-readable table it writes `BENCH_graph.json` into the current
//! directory so successive PRs accumulate a perf trajectory.

use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use gfd_core::sat::check_satisfiability;
use gfd_core::validate::{detect_violations, detect_violations_with, DetScratch};
use gfd_core::{implies, Dependency, Gfd, GfdSet, Literal};
use gfd_datagen::{
    isomorphic_twin, mine_gfds, reallife_graph, RealLifeConfig, RealLifeKind, RuleGenConfig,
};
use gfd_graph::intersect::intersect_in_place;
use gfd_graph::{Graph, NodeId, Value, Vocab};
use gfd_match::types::Flow;
use gfd_match::{
    count_matches, count_matches_planned, count_matches_with, dual_simulation,
    for_each_match_planned, CacheStats, ClassRegistry, IncrementalSpace, MatchOptions,
    MatchScratch, SimFilter,
};
use gfd_parallel::unitexec::{execute_unit, MultiQueryIndex, UnitScratch};
use gfd_parallel::workload::{estimate_workload, feasible_pivots, plan_rules, WorkloadOptions};
use gfd_parallel::{rep_val, wal, RepValConfig, ServiceConfig, SyncPolicy, ViolationService};
use gfd_pattern::{Pattern, PatternBuilder, VarId};
use gfd_util::alloc::{allocation_count, CountingAlloc};
use gfd_util::{Rng, TempDir};

/// Count every allocation the measured closures make: each sample also
/// reports `allocs_per_iter`, so BENCH_graph.json carries an
/// allocation trajectory next to the time one (and the
/// `alloc/unit_exec_steady_state` sample asserts the detection hot
/// path stays at zero).
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One measured series: best-of-runs nanoseconds (and allocator calls)
/// per iteration.
struct Sample {
    name: &'static str,
    ns_per_iter: f64,
    iters: u64,
    allocs_per_iter: f64,
}

/// `BENCH_SMOKE=1` runs every sample with a tiny iteration budget —
/// CI uses it to fail fast on perf-harness rot without paying for a
/// full calibrated run (numbers from smoke runs are meaningless).
fn smoke() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var_os("BENCH_SMOKE").is_some())
}

/// Times `f` adaptively: calibrates an iteration count that fills at
/// least 50ms (iters quadruple, so a run lands in 50–200ms), then
/// reports the best of 3 runs (min is the stablest statistic for
/// wall-clock microbenches). Smoke mode skips calibration and runs
/// each sample once.
fn bench<R>(name: &'static str, samples: &mut Vec<Sample>, mut f: impl FnMut() -> R) {
    let (floor_ms, runs) = if smoke() { (0, 1) } else { (50, 3) };
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= floor_ms || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    let mut best = f64::INFINITY;
    let mut best_allocs = u64::MAX;
    for _ in 0..runs {
        let a0 = allocation_count();
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        // Min over runs: robust against one-off warm-up allocations.
        best_allocs = best_allocs.min(allocation_count() - a0);
    }
    let allocs_per_iter = best_allocs as f64 / iters as f64;
    println!("{name:<44} {best:>14.1} ns/iter  {allocs_per_iter:>10.1} allocs  (x{iters})");
    samples.push(Sample {
        name,
        ns_per_iter: best,
        iters,
        allocs_per_iter,
    });
}

fn tri_pattern(vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "tau");
    let y = b.node("y", "tau");
    let z = b.node("z", "tau");
    b.edge(x, y, "l");
    b.edge(x, z, "l");
    b.edge(y, z, "l");
    b.build()
}

fn quad_pattern(vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", "tau");
    let y = b.node("y", "tau");
    let z = b.node("z", "tau");
    let w = b.node("w", "tau");
    b.edge(x, y, "l");
    b.edge(x, z, "l");
    b.edge(y, z, "l");
    b.edge(y, w, "l");
    b.edge(z, w, "l");
    b.build()
}

/// The storage-layer microbench: random probes against the CSR
/// snapshot, the operations `ComponentSearch` hammers.
fn bench_graph_primitives(g: &Graph, samples: &mut Vec<Sample>) {
    let n = g.node_count() as u32;
    let label = {
        // The most common edge label, for a representative scan.
        let mut counts = std::collections::HashMap::new();
        for e in g.edges() {
            *counts.entry(e.label).or_insert(0usize) += 1;
        }
        counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0
    };
    let node_label = g.label(NodeId(0));

    let mut rng = Rng::seed_from_u64(0xBE7C);
    let probes: Vec<(NodeId, NodeId)> = (0..1024)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..n as usize) as u32),
                NodeId(rng.gen_range(0..n as usize) as u32),
            )
        })
        .collect();

    let mut i = 0usize;
    bench("graph/has_edge(random probes)", samples, || {
        let (u, v) = probes[i & 1023];
        i += 1;
        g.has_edge(u, v, label)
    });
    let mut j = 0usize;
    bench("graph/neighbors_labeled(scan+sum)", samples, || {
        let (u, _) = probes[j & 1023];
        j += 1;
        g.neighbors_labeled(u, label)
            .iter()
            .map(|a| a.node.0 as u64)
            .sum::<u64>()
    });
    let mut k = 0usize;
    bench("graph/out_slice(full-run scan)", samples, || {
        let (u, _) = probes[k & 1023];
        k += 1;
        g.out_slice(u).len() + g.in_slice(u).len()
    });
    bench("graph/extent(label lookup)", samples, || {
        g.extent(node_label).len()
    });
}

fn main() {
    let mut samples = Vec::new();
    println!("== gfd microbenches (best of 3, adaptive iters) ==");

    // Storage layer: the Yago2 stand-in at bench scale.
    let g = reallife_graph(&RealLifeConfig {
        scale: 0.1,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    });
    println!("# graph: |V|={} |E|={}", g.node_count(), g.edge_count());
    bench_graph_primitives(&g, &mut samples);

    // Matching.
    let sigma = mine_gfds(
        &g,
        &RuleGenConfig {
            count: 4,
            pattern_nodes: 3,
            two_component_fraction: 0.0,
            ..Default::default()
        },
    );
    if let Some(gfd) = sigma.iter().next() {
        bench("match/count_matches(mined rule 0)", &mut samples, || {
            count_matches(&gfd.pattern, &g, &MatchOptions::unrestricted())
        });
        // The same count through caller-owned scratch: search pools,
        // tables and join arenas persist across calls, so the
        // `allocs_per_iter` column isolates what the per-call path
        // still allocates (the simulation filter, when Auto turns on).
        let count_opts = MatchOptions::unrestricted();
        let mut count_scratch = MatchScratch::default();
        bench(
            "match/count_matches_with(warm scratch)",
            &mut samples,
            || count_matches_with(&gfd.pattern, &g, &count_opts, &mut count_scratch),
        );
        bench("sim/dual_simulation(mined rule 0)", &mut samples, || {
            dual_simulation(&gfd.pattern, &g, None).total_size()
        });

        // Incremental candidate-space maintenance vs recompute on a
        // small delta: one rule-relevant edge removed and re-inserted
        // per iteration (the repair path must win for the maintenance
        // subsystem to be worth its state).
        let q = &gfd.pattern;
        let pattern_label = q.edges().iter().find_map(|e| match e.label {
            gfd_pattern::PatLabel::Sym(s) => Some(s),
            gfd_pattern::PatLabel::Wildcard => None,
        });
        let probe = pattern_label.and_then(|l| g.edges().find(|e| e.label == l));
        if let Some(edge) = probe {
            let (g_minus, d_rm) = g.edit_with_delta(|b| {
                b.remove_edge(edge.src, edge.dst, edge.label);
            });
            let (_, d_add) = g_minus.edit_with_delta(|b| {
                b.add_edge(edge.src, edge.dst, edge.label);
            });
            let mut inc = IncrementalSpace::new(q, &g, None);
            bench("sim/incremental_vs_scratch(repair)", &mut samples, || {
                inc.apply(&g_minus, &d_rm);
                inc.apply(&g, &d_add);
                inc.space().total_size()
            });
            bench("sim/incremental_vs_scratch(scratch)", &mut samples, || {
                dual_simulation(q, &g_minus, None).total_size()
                    + dual_simulation(q, &g, None).total_size()
            });
        }

        // Shared-space reuse across one isomorphism class of k = 8
        // members (Example 10 at rule-set scale): the registry runs
        // one worklist fixpoint and transports the other 7 spaces,
        // versus one simulation per component.
        let members: Vec<Pattern> = std::iter::once(q.clone())
            .chain((0..7).map(|t| isomorphic_twin(q, t)))
            .collect();
        bench("sim/shared_space_reuse(registry k8)", &mut samples, || {
            let reg = ClassRegistry::new();
            let handles: Vec<_> = members.iter().map(|m| reg.register(m)).collect();
            let total: usize = handles.iter().map(|&h| reg.space(h, &g).total_size()).sum();
            assert_eq!(reg.simulations(), 1);
            total
        });
        bench("sim/shared_space_reuse(percomp k8)", &mut samples, || {
            members
                .iter()
                .map(|m| dual_simulation(m, &g, None).total_size())
                .sum::<usize>()
        });
    }

    // The intersection kernel behind every candidate pool: the two
    // largest label extents (comparable sizes → merge path) and a
    // 32×-skewed pair (galloping path), refreshed per iteration.
    {
        let mut extents: Vec<&[NodeId]> = g.label_extents().map(|(_, e)| e).collect();
        extents.sort_by_key(|e| std::cmp::Reverse(e.len()));
        let (big, second) = (extents[0], extents[1]);
        let small: Vec<NodeId> = big.iter().step_by(64).copied().collect();
        let mut pool: Vec<NodeId> = Vec::with_capacity(big.len());
        bench("match/candidate_intersection", &mut samples, || {
            pool.clear();
            pool.extend_from_slice(big);
            intersect_in_place(&mut pool, second, |&x| x);
            let merged = pool.len();
            pool.clear();
            pool.extend_from_slice(big);
            intersect_in_place(&mut pool, &small, |&x| x);
            merged + pool.len()
        });
    }

    // Reasoning (Example 7 / Example 8 shapes).
    let vocab = Vocab::shared();
    let a = vocab.intern("A");
    let phi8 = Gfd::new(
        "phi8",
        tri_pattern(&vocab),
        Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
    );
    let phi9 = Gfd::new(
        "phi9",
        quad_pattern(&vocab),
        Dependency::always(vec![Literal::const_eq(VarId(0), a, "d")]),
    );
    let sigma7 = GfdSet::new(vec![phi8, phi9]);
    bench("reason/satisfiability(example7)", &mut samples, || {
        check_satisfiability(&sigma7)
    });

    let b_at = vocab.intern("B");
    let c_at = vocab.intern("C");
    let s1 = Gfd::new(
        "s1",
        tri_pattern(&vocab),
        Dependency::new(
            vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
            vec![Literal::var_eq(VarId(0), b_at, VarId(1), b_at)],
        ),
    );
    let s2 = Gfd::new(
        "s2",
        quad_pattern(&vocab),
        Dependency::new(
            vec![Literal::var_eq(VarId(0), b_at, VarId(1), b_at)],
            vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
        ),
    );
    let sigma8 = GfdSet::new(vec![s1, s2]);
    let phi11 = Gfd::new(
        "phi11",
        quad_pattern(&vocab),
        Dependency::new(
            vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
            vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
        ),
    );
    bench("reason/implication(example8)", &mut samples, || {
        implies(&sigma8, &phi11)
    });

    // Detection end-to-end.
    let g2 = Arc::new(reallife_graph(&RealLifeConfig {
        scale: 0.08,
        ..RealLifeConfig::new(RealLifeKind::Yago2)
    }));
    let sigma_det = mine_gfds(
        &g2,
        &RuleGenConfig {
            count: 8,
            pattern_nodes: 3,
            two_component_fraction: 0.25,
            ..Default::default()
        },
    );
    bench("detect/detVio", &mut samples, || {
        detect_violations(&sigma_det, &g2)
    });
    // Warm detection: a registry (per-class spaces and plans, built
    // once) plus caller-owned scratch. Per-iteration allocations drop
    // to the violation records themselves.
    {
        let reg = ClassRegistry::new();
        let mut det_scratch = DetScratch::default();
        detect_violations_with(&sigma_det, &g2, &reg, &mut det_scratch);
        bench("detect/detVio_warm(registry+scratch)", &mut samples, || {
            detect_violations_with(&sigma_det, &g2, &reg, &mut det_scratch).len()
        });
    }
    bench("detect/estimate_workload", &mut samples, || {
        estimate_workload(&sigma_det, &g2, &WorkloadOptions::default())
    });
    // A multi-rule Σ (16 mined rules) where the registry's per-class
    // sharing pays across the whole set.
    let sigma16 = mine_gfds(
        &g2,
        &RuleGenConfig {
            count: 16,
            pattern_nodes: 3,
            two_component_fraction: 0.25,
            ..Default::default()
        },
    );
    bench("workload/estimate_sigma16", &mut samples, || {
        estimate_workload(&sigma16, &g2, &WorkloadOptions::default())
    });
    bench("detect/plan_rules", &mut samples, || plan_rules(&sigma_det));
    // The simulation-based pivot filter in isolation (one dual
    // simulation per component instead of a backtracking probe per
    // pivot candidate).
    let det_plans = plan_rules(&sigma_det);
    bench("detect/pivot_feasibility", &mut samples, || {
        det_plans
            .iter()
            .flat_map(|r| &r.components)
            .map(|c| feasible_pivots(&g2, c, true).0.len())
            .sum::<usize>()
    });
    bench("detect/repVal_n4", &mut samples, || {
        rep_val(&sigma_det, &g2, &RepValConfig::val(4))
    });

    // Worst-case-optimal multiway matching on a skewed cyclic
    // workload (the shape of Example 2's dense layers): a complete
    // bipartite a→b layer of 160×160 `e1` edges, per-index b→c / c→d
    // chains, and only 8 cycle-closing edges back into the `a` layer.
    // The unfiltered backtracker (SimFilter::Never) must enumerate all
    // 25 600 (x, y) edge pairs per call before discovering that almost
    // none close; the planned path draws its pools from the registry's
    // warm candidate space — where simulation has already collapsed
    // every layer to the 8 closure indices — and solves each bag by
    // multiway intersection of the space's adjacency runs. The
    // `sim percall` samples pay one dual-simulation fixpoint per call
    // (SimFilter::Always, no registry) — the cost the class-keyed
    // cache amortizes away. Spaces, plans and scratch are caller-owned
    // and warm: the plan samples must report 0 allocs_per_iter (also
    // asserted by tests/alloc_probe.rs).
    {
        let per_layer = 160usize;
        let closures = 8usize;
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let al: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("a")).collect();
        let bl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("b")).collect();
        let cl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("c")).collect();
        let dl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("d")).collect();
        for &a in &al {
            for &x in &bl {
                b.add_edge_labeled(a, x, "e1");
            }
        }
        for i in 0..per_layer {
            b.add_edge_labeled(bl[i], cl[i], "e2");
            b.add_edge_labeled(cl[i], dl[i], "f3");
        }
        for i in 0..closures {
            b.add_edge_labeled(cl[i], al[i], "e3");
            b.add_edge_labeled(dl[i], al[i], "f4");
        }
        let gs = b.freeze();
        let vocab = gs.vocab().clone();

        let mut tb = PatternBuilder::new(vocab.clone());
        let x = tb.node("x", "a");
        let y = tb.node("y", "b");
        let z = tb.node("z", "c");
        tb.edge(x, y, "e1");
        tb.edge(y, z, "e2");
        tb.edge(z, x, "e3");
        let tri = tb.build();
        let mut qb = PatternBuilder::new(vocab.clone());
        let x = qb.node("x", "a");
        let y = qb.node("y", "b");
        let z = qb.node("z", "c");
        let w = qb.node("w", "d");
        qb.edge(x, y, "e1");
        qb.edge(y, z, "e2");
        qb.edge(z, w, "f3");
        qb.edge(w, x, "f4");
        let cyc4 = qb.build();

        let reg = ClassRegistry::new();
        let tri_h = reg.register(&tri);
        let cyc4_h = reg.register(&cyc4);
        let planned_opts = MatchOptions::unrestricted();
        let mut planned_scratch = MatchScratch::default();
        let mut count_planned = |h, q: &Pattern, reg: &ClassRegistry| {
            let (cs, plan) = reg.space_and_plan(h, &gs);
            let mut n = 0usize;
            for_each_match_planned(
                q,
                &gs,
                &planned_opts,
                &cs,
                &plan,
                &mut planned_scratch,
                &mut |_| {
                    n += 1;
                    Flow::Continue
                },
            );
            n
        };
        // Warm the registry caches and scratch high-water marks, and
        // pin down the match counts both engines must agree on.
        let tri_n = count_planned(tri_h, &tri, &reg);
        let cyc4_n = count_planned(cyc4_h, &cyc4, &reg);
        let back_opts = MatchOptions::unrestricted().with_sim_filter(SimFilter::Never);
        let mut back_scratch = MatchScratch::default();
        let sim_opts = MatchOptions::unrestricted().with_sim_filter(SimFilter::Always);
        let mut sim_scratch = MatchScratch::default();
        assert_eq!(
            tri_n,
            count_matches_with(&tri, &gs, &back_opts, &mut back_scratch)
        );
        assert_eq!(
            cyc4_n,
            count_matches_with(&cyc4, &gs, &back_opts, &mut back_scratch)
        );
        assert_eq!(
            tri_n,
            count_matches_with(&tri, &gs, &sim_opts, &mut sim_scratch)
        );
        assert_eq!(
            cyc4_n,
            count_matches_with(&cyc4, &gs, &sim_opts, &mut sim_scratch)
        );

        bench("match/wcoj_triangle(plan)", &mut samples, || {
            count_planned(tri_h, &tri, &reg)
        });
        bench("match/wcoj_4cycle(plan)", &mut samples, || {
            count_planned(cyc4_h, &cyc4, &reg)
        });
        bench("match/wcoj_triangle(backtrack)", &mut samples, || {
            count_matches_with(&tri, &gs, &back_opts, &mut back_scratch)
        });
        bench("match/wcoj_4cycle(backtrack)", &mut samples, || {
            count_matches_with(&cyc4, &gs, &back_opts, &mut back_scratch)
        });
        bench("match/wcoj_triangle(sim percall)", &mut samples, || {
            count_matches_with(&tri, &gs, &sim_opts, &mut sim_scratch)
        });
        bench("match/wcoj_4cycle(sim percall)", &mut samples, || {
            count_matches_with(&cyc4, &gs, &sim_opts, &mut sim_scratch)
        });
    }

    // Factorized counting vs materialized enumeration on a skewed
    // multiplicative workload: two dense bipartite layers (a→b and
    // b→c, 48×48 each) multiply into 48³ ≈ 110k path matches while
    // the d-representation stays at ~2·48² union edges. The
    // factorized count folds that representation bottom-up —
    // width-polynomial — where the materialized count walks every
    // match. Both run from the registry's warm space and plan with
    // caller-owned scratch; the factorized sample's allocs_per_iter
    // must be 0 (also asserted by tests/alloc_probe.rs).
    {
        let n = 48usize;
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let al: Vec<NodeId> = (0..n).map(|_| b.add_node_labeled("a")).collect();
        let bl: Vec<NodeId> = (0..n).map(|_| b.add_node_labeled("b")).collect();
        let cl: Vec<NodeId> = (0..n).map(|_| b.add_node_labeled("c")).collect();
        for &x in &al {
            for &y in &bl {
                b.add_edge_labeled(x, y, "e1");
            }
        }
        for &y in &bl {
            for &z in &cl {
                b.add_edge_labeled(y, z, "e2");
            }
        }
        let gs = b.freeze();
        let mut pb = PatternBuilder::new(gs.vocab().clone());
        let x = pb.node("x", "a");
        let y = pb.node("y", "b");
        let z = pb.node("z", "c");
        pb.edge(x, y, "e1");
        pb.edge(y, z, "e2");
        let path = pb.build();
        let reg = ClassRegistry::new();
        let h = reg.register(&path);
        let opts = MatchOptions::unrestricted();
        let mut fact_scratch = MatchScratch::default();
        let mut mat_scratch = MatchScratch::default();
        let (cs, plan) = reg.space_and_plan(h, &gs);
        let expected = n * n * n;
        assert_eq!(
            count_matches_planned(&path, &gs, &opts, &cs, &plan, &mut fact_scratch),
            expected,
            "the factorized count must be exact here"
        );
        bench("factor/count_skewed(factorized)", &mut samples, || {
            count_matches_planned(&path, &gs, &opts, &cs, &plan, &mut fact_scratch)
        });
        let mut count_materialized = || {
            let mut c = 0usize;
            for_each_match_planned(&path, &gs, &opts, &cs, &plan, &mut mat_scratch, &mut |_| {
                c += 1;
                Flow::Continue
            });
            c
        };
        assert_eq!(count_materialized(), expected);
        bench(
            "factor/count_skewed(materialized)",
            &mut samples,
            &mut count_materialized,
        );
    }

    // The allocation-free hot-path probe: a clean symmetric-pair
    // workload (no violations to record), executed once to warm the
    // match cache and scratch, then measured per warm unit execution —
    // allocs_per_iter must be 0 (also asserted by tests/alloc_probe.rs
    // under BENCH_SMOKE in CI).
    {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        for i in 0..32 {
            let f = b.add_node_labeled("flight");
            let id = b.add_node_labeled("id");
            let to = b.add_node_labeled("city");
            b.add_edge_labeled(f, id, "number");
            b.add_edge_labeled(f, to, "to");
            b.set_attr_named(id, "val", Value::str(&format!("FL{i}")));
            b.set_attr_named(to, "val", Value::str(&format!("City{i}")));
        }
        let g = b.freeze();
        let vocab = g.vocab().clone();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node("x", "flight");
        let x1 = pb.node("x1", "id");
        let x2 = pb.node("x2", "city");
        pb.edge(x, x1, "number");
        pb.edge(x, x2, "to");
        let y = pb.node("y", "flight");
        let y1 = pb.node("y1", "id");
        let y2 = pb.node("y2", "city");
        pb.edge(y, y1, "number");
        pb.edge(y, y2, "to");
        let val = vocab.intern("val");
        let sigma = GfdSet::new(vec![Gfd::new(
            "same-id-same-dest",
            pb.build(),
            Dependency::new(
                vec![Literal::var_eq(x1, val, y1, val)],
                vec![Literal::var_eq(x2, val, y2, val)],
            ),
        )]);
        let plans = plan_rules(&sigma);
        let wl = estimate_workload(&sigma, &g, &WorkloadOptions::default());
        let registry = ClassRegistry::new();
        let mqi = MultiQueryIndex::build(&plans, &registry);
        let mut stats = CacheStats::default();
        let mut scratch = UnitScratch::new();
        let mut out = Vec::new();
        for u in &wl.units {
            execute_unit(
                &g,
                &sigma,
                &plans,
                &wl.slots,
                u,
                Some(&mqi),
                &registry,
                &mut stats,
                &mut scratch,
                &mut out,
            );
        }
        assert!(out.is_empty(), "the probe fleet must be violation-free");
        let mut i = 0usize;
        bench("alloc/unit_exec_steady_state", &mut samples, || {
            let u = &wl.units[i % wl.units.len()];
            i += 1;
            execute_unit(
                &g,
                &sigma,
                &plans,
                &wl.slots,
                u,
                Some(&mqi),
                &registry,
                &mut stats,
                &mut scratch,
                &mut out,
            );
            out.len()
        });

        // Cross-worker registry hit rate: a second worker (fresh
        // scratch and counters) replays the whole workload against the
        // registry worker 1 warmed above. Every probe must come back a
        // hit — the sample times the serving-tier lookup itself, and
        // its allocs_per_iter column doubles as the zero-allocation
        // assertion for the warm cross-worker path.
        let mut w2_stats = CacheStats::default();
        let mut w2_scratch = UnitScratch::new();
        let run_w2 = |stats: &mut CacheStats, scratch: &mut UnitScratch, out: &mut Vec<_>| {
            for u in &wl.units {
                execute_unit(
                    &g,
                    &sigma,
                    &plans,
                    &wl.slots,
                    u,
                    Some(&mqi),
                    &registry,
                    stats,
                    scratch,
                    out,
                );
            }
        };
        run_w2(&mut w2_stats, &mut w2_scratch, &mut out); // size worker 2's scratch
        assert_eq!(w2_stats.misses, 0, "worker 1 already paid every table");
        assert!(w2_stats.hits > 0, "cross-worker hits must be observable");
        bench("cache/registry_hit_rate", &mut samples, || {
            run_w2(&mut w2_stats, &mut w2_scratch, &mut out);
            w2_stats.hits
        });
        println!(
            "# cache: {} cross-worker hits, {} misses ({:.1}% hit rate)",
            w2_stats.hits,
            w2_stats.misses,
            100.0 * w2_stats.hits as f64 / (w2_stats.hits + w2_stats.misses).max(1) as f64
        );

        // Eviction churn: the same workload through a registry whose
        // byte budget holds only a couple of the 12-byte star tables,
        // so nearly every probe misses, enumerates, and evicts a cold
        // neighbor. Times the worst-case serving-tier path (miss +
        // insert + LRU sweep) that a budget-starved deployment pays.
        let tiny = ClassRegistry::with_budget_bytes(32);
        let tiny_mqi = MultiQueryIndex::build(&plans, &tiny);
        let mut tiny_stats = CacheStats::default();
        let mut tiny_scratch = UnitScratch::new();
        let run_tiny = |stats: &mut CacheStats, scratch: &mut UnitScratch, out: &mut Vec<_>| {
            for u in &wl.units {
                execute_unit(
                    &g,
                    &sigma,
                    &plans,
                    &wl.slots,
                    u,
                    Some(&tiny_mqi),
                    &tiny,
                    stats,
                    scratch,
                    out,
                );
            }
        };
        run_tiny(&mut tiny_stats, &mut tiny_scratch, &mut out);
        bench("cache/evict_churn", &mut samples, || {
            run_tiny(&mut tiny_stats, &mut tiny_scratch, &mut out);
            out.len()
        });
        // Eviction counters live in the registry's global stats (they
        // are not attributable to any one probing worker).
        assert!(
            tiny.stats().evicted_cold > 0,
            "the starved budget must force cold evictions"
        );
        assert!(
            tiny.bytes() <= tiny.budget_bytes() + 12,
            "churn must stay within budget (plus one in-flight table)"
        );
        println!(
            "# cache: {} cold evictions under a {}-byte budget ({} deferred)",
            tiny.stats().evicted_cold,
            tiny.budget_bytes(),
            tiny.stats().eviction_deferred_pinned
        );
    }

    // The standing-violation service: steady-state ingest throughput
    // and violation-propagation latency. A spam-rule social graph and
    // pre-recorded flip/flop attr batches (flip marks blogs "spam" →
    // violations appear; flop restores "ok" → they retract), so the
    // service returns to its base state every two epochs and the loop
    // can run indefinitely. Latency is ingest-to-subscriber-delivery —
    // the update is drained from the channel inside the timed window.
    {
        let nb = 64usize;
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let blogs: Vec<NodeId> = (0..nb)
            .map(|_| {
                let blog = b.add_node_labeled("blog");
                b.set_attr_named(blog, "keyword", Value::str("ok"));
                blog
            })
            .collect();
        for (i, &blog) in blogs.iter().enumerate() {
            let acct = b.add_node_labeled("account");
            b.set_attr_named(acct, "is_fake", Value::Bool(i % 4 == 0));
            b.add_edge_labeled(acct, blog, "post");
        }
        let gs = Arc::new(b.freeze());
        let vocab = gs.vocab().clone();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node("x", "account");
        let y = pb.node("y", "blog");
        pb.edge(x, y, "post");
        let keyword = vocab.intern("keyword");
        let is_fake = vocab.intern("is_fake");
        let sigma = GfdSet::new(vec![Gfd::new(
            "spam-poster-is-fake",
            pb.build(),
            Dependency::new(
                vec![Literal::const_eq(y, keyword, "spam")],
                vec![Literal::const_eq(x, is_fake, true)],
            ),
        )]);
        // Chained single-edit deltas writing `keyword` over the blog
        // pool — always valid against any epoch of this node set.
        let record = |base: &Graph, k: usize, spam: bool| {
            let mut cur = base.edit(|_| {});
            let mut batch = Vec::with_capacity(k);
            for j in 0..k {
                let node = blogs[j % nb];
                let (next, d) = cur.edit_with_delta(|eb| {
                    let a = eb.vocab().intern("keyword");
                    eb.set_attr(node, a, Value::str(if spam { "spam" } else { "ok" }));
                });
                cur = next;
                batch.push(d);
            }
            (cur, batch)
        };
        let svc_cfg = || ServiceConfig {
            threads: 2,
            oracle_sample_p: 0.0,
            seed: 1,
            faults: None,
        };

        // Steady-state ingest: one flip + one flop batch of 16 edits
        // per iteration (2 epochs, 32 edits); allocs_per_iter is the
        // whole compaction + patch + repair + diff pipeline's budget.
        let (flip_g, flip16) = record(&gs, 16, true);
        let (_, flop16) = record(&flip_g, 16, false);
        let mut svc = ViolationService::new(sigma.clone(), Arc::clone(&gs), svc_cfg());
        bench("stream/ingest_steady_state(batch16)", &mut samples, || {
            let a = svc.ingest(&flip16).expect("attr flips are always valid");
            let b = svc.ingest(&flop16).expect("attr flips are always valid");
            a + b
        });
        let batch16_ns = samples.last().expect("just pushed").ns_per_iter;
        let batch16_allocs = samples.last().expect("just pushed").allocs_per_iter;
        println!(
            "# stream throughput: {:.0} edits/sec steady-state",
            32.0 * 1e9 / batch16_ns
        );
        samples.push(Sample {
            name: "stream/edits_per_sec(ns_per_edit)",
            ns_per_iter: batch16_ns / 32.0,
            iters: 32,
            allocs_per_iter: batch16_allocs / 32.0,
        });

        // Violation-propagation latency percentiles per batch size:
        // ingest → subscriber holds the epoch's VioUpdate.
        let mut measure = |k: usize, n50: &'static str, n99: &'static str| {
            let (flip_g, flip) = record(&gs, k, true);
            let (_, flop) = record(&flip_g, k, false);
            let mut svc = ViolationService::new(sigma.clone(), Arc::clone(&gs), svc_cfg());
            let rx = svc.subscribe();
            let rounds = if smoke() { 10 } else { 200 };
            let mut lat = Vec::with_capacity(rounds * 2);
            let a0 = allocation_count();
            for _ in 0..rounds {
                for batch in [&flip, &flop] {
                    let t = Instant::now();
                    svc.ingest(batch).expect("attr flips are always valid");
                    let upd = rx.try_recv().expect("update is delivered at commit");
                    black_box(upd);
                    lat.push(t.elapsed().as_secs_f64() * 1e9);
                }
            }
            let allocs = (allocation_count() - a0) as f64 / lat.len() as f64;
            lat.sort_by(f64::total_cmp);
            let pct = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
            for (name, p) in [(n50, 0.50), (n99, 0.99)] {
                let ns = pct(p);
                println!(
                    "{name:<44} {ns:>14.1} ns/iter  {allocs:>10.1} allocs  (x{})",
                    lat.len()
                );
                samples.push(Sample {
                    name,
                    ns_per_iter: ns,
                    iters: lat.len() as u64,
                    allocs_per_iter: allocs,
                });
            }
        };
        measure(
            1,
            "stream/latency_p50(batch1)",
            "stream/latency_p99(batch1)",
        );
        measure(
            16,
            "stream/latency_p50(batch16)",
            "stream/latency_p99(batch16)",
        );
        measure(
            256,
            "stream/latency_p50(batch256)",
            "stream/latency_p99(batch256)",
        );

        // Durable-ingest overhead: the same flip/flop pipeline with a
        // write-ahead log behind it. The fsync-per-commit policy pays
        // stable storage on every epoch; the 16-epoch group commit
        // amortizes the fsync so its per-iter cost is mostly the frame
        // encode + buffered write — the gap between the two samples is
        // the price of the strictest durability contract.
        let wal_dir = TempDir::new("gfd-bench-wal").unwrap();
        for (name, file, policy) in [
            (
                "stream/durable_ingest(fsync)",
                "fsync.wal",
                SyncPolicy::EveryEpoch,
            ),
            (
                "stream/durable_ingest(group16)",
                "group16.wal",
                SyncPolicy::EveryN(16),
            ),
        ] {
            let path = wal_dir.file(file);
            let mut svc = ViolationService::with_durable_log(
                sigma.clone(),
                Arc::clone(&gs),
                svc_cfg(),
                &path,
                policy,
            )
            .unwrap();
            bench(name, &mut samples, || {
                let a = svc.ingest(&flip16).expect("attr flips are always valid");
                let b = svc.ingest(&flop16).expect("attr flips are always valid");
                a + b
            });
        }

        // Recovery replay: reopen a 256-epoch log — snapshot decoded,
        // every delta frame reparsed, checksummed, validated and
        // applied. This times the wal layer itself (the detector
        // rebuild on top is plain `detect_violations`, measured by the
        // detect/* samples).
        {
            let path = wal_dir.file("replay.wal");
            let epochs = 256u64;
            let mut w = wal::WalWriter::create(&path, 0, &gs, SyncPolicy::OnDemand).unwrap();
            let mut cur = gs.edit(|_| {});
            for e in 1..=epochs {
                let (next, batch) = record(&cur, 4, e % 2 == 1);
                let delta = batch
                    .into_iter()
                    .reduce(|a, b| a.merge(b))
                    .expect("batches are non-empty");
                w.append(e, &delta, next.vocab()).unwrap();
                cur = next;
            }
            w.sync().unwrap();
            drop(w);
            let (_, _, report) = wal::recover(&path, SyncPolicy::OnDemand).unwrap();
            assert_eq!(report.recovered_epoch, epochs, "the prebuilt log is clean");
            bench("stream/recovery_replay(256 epochs)", &mut samples, || {
                let (_, _, r) = wal::recover(&path, SyncPolicy::OnDemand).unwrap();
                r.recovered_epoch
            });
        }
    }

    // Emit the perf-trajectory artifact (hand-rolled JSON: the
    // workspace is dependency-free by necessity).
    let mut json = String::from("{\n  \"bench\": \"reasoning_micro\",\n  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}, \"allocs_per_iter\": {:.2}}}{}",
            s.name,
            s.ns_per_iter,
            s.iters,
            s.allocs_per_iter,
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    // Cargo runs benches with CWD = the package dir; anchor the
    // artifact at the workspace root so the trajectory lives in one
    // place across PRs.
    let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_graph.json",
            std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into())
        )
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
