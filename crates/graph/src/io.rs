//! Graph serialization: a self-contained intermediate form and a simple
//! line-oriented text format for fixtures and interchange.
//!
//! Text format (one record per line, `#`-comments allowed):
//!
//! ```text
//! node <id> <label> [attr=value ...]
//! edge <src> <dst> <label>
//! ```
//!
//! Node ids in the text format must be dense and ascending from 0;
//! values are parsed as `i64`, `true`/`false`, or strings otherwise.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::delta::{wire, DeltaError};
use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::value::Value;
use crate::vocab::Vocab;

/// A self-contained, owner-free snapshot of a graph (no interned
/// symbols — everything is resolved), suitable for shipping between
/// vocabularies or hand-rolled (de)serializers.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphData {
    /// All interned names, in symbol order.
    pub symbols: Vec<String>,
    /// Per node: label symbol index and `(attr symbol, value)` pairs.
    pub nodes: Vec<(u32, Vec<(u32, Value)>)>,
    /// Edges as `(src, dst, label symbol)`.
    pub edges: Vec<(u32, u32, u32)>,
}

impl GraphData {
    /// Snapshots `g` (including the parts of its vocabulary it uses).
    pub fn from_graph(g: &Graph) -> Self {
        let symbols: Vec<String> = g.vocab().snapshot().iter().map(|s| s.to_string()).collect();
        let nodes = g
            .nodes()
            .map(|u| {
                let attrs = g.attrs(u).iter().map(|(a, v)| (a.0, v.clone())).collect();
                (g.label(u).0, attrs)
            })
            .collect();
        let edges = g.edges().map(|e| (e.src.0, e.dst.0, e.label.0)).collect();
        GraphData {
            symbols,
            nodes,
            edges,
        }
    }

    /// Reconstructs a frozen graph (with a fresh vocabulary).
    pub fn into_graph(self) -> Graph {
        self.into_graph_in(&Vocab::shared())
            .expect("a fresh vocabulary always reproduces the snapshot's numbering")
    }

    /// Reconstructs a frozen graph sharing an **existing** vocabulary
    /// — so patterns and rules built against that vocabulary match the
    /// rebuilt graph by `Arc` identity, not just by name. Fails if
    /// interning this snapshot's symbols into `vocab` does not
    /// reproduce the snapshot's own numbering (the vocabulary's
    /// history diverged from the snapshot's): symbols in the rebuilt
    /// graph would silently mean different names.
    pub fn into_graph_in(self, vocab: &Arc<Vocab>) -> Result<Graph, DeltaError> {
        let mut syms = Vec::with_capacity(self.symbols.len());
        for (i, s) in self.symbols.iter().enumerate() {
            let sym = vocab.intern(s);
            if sym.0 as usize != i {
                return Err(DeltaError::Corrupt {
                    offset: 0,
                    what: "snapshot symbol numbering disagrees with the supplied vocabulary",
                });
            }
            syms.push(sym);
        }
        let mut b = GraphBuilder::new(Arc::clone(vocab));
        for (label, attrs) in &self.nodes {
            let u = b.add_node(syms[*label as usize]);
            for (a, v) in attrs {
                b.set_attr(u, syms[*a as usize], v.clone());
            }
        }
        for (s, d, l) in &self.edges {
            b.add_edge(NodeId(*s), NodeId(*d), syms[*l as usize]);
        }
        Ok(b.freeze())
    }

    /// Appends the plain-bytes encoding of this snapshot to `out`,
    /// using the same wire primitives as [`GraphDelta::encode_into`] —
    /// this is the base-snapshot record the durable write-ahead log
    /// replays from.
    ///
    /// [`GraphDelta::encode_into`]: crate::delta::GraphDelta::encode_into
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.symbols.len() as u64);
        for s in &self.symbols {
            wire::put_str(out, s);
        }
        wire::put_varint(out, self.nodes.len() as u64);
        for (label, attrs) in &self.nodes {
            wire::put_varint(out, *label as u64);
            wire::put_varint(out, attrs.len() as u64);
            for (a, v) in attrs {
                wire::put_varint(out, *a as u64);
                wire::put_value(out, Some(v));
            }
        }
        wire::put_varint(out, self.edges.len() as u64);
        for (s, d, l) in &self.edges {
            wire::put_varint(out, *s as u64);
            wire::put_varint(out, *d as u64);
            wire::put_varint(out, *l as u64);
        }
    }

    /// Decodes a snapshot from (possibly hostile) bytes. Like
    /// [`GraphDelta::decode`], this never panics: lengths are bounded
    /// by the remaining input, every symbol index must fall inside the
    /// record's own symbol table, and every edge endpoint inside its
    /// node table.
    ///
    /// [`GraphDelta::decode`]: crate::delta::GraphDelta::decode
    pub fn decode(bytes: &[u8]) -> Result<GraphData, DeltaError> {
        let mut r = wire::Reader::new(bytes);
        let n_syms = r.element_count("symbols")?;
        let mut symbols = Vec::with_capacity(n_syms);
        for _ in 0..n_syms {
            symbols.push(r.str()?.to_string());
        }
        let sym_limit = symbols.len() as u32;
        let sym = |r: &mut wire::Reader| -> Result<u32, DeltaError> {
            let s = r.varint_u32("symbol")?;
            if s >= sym_limit {
                return Err(DeltaError::SymOutOfRange {
                    sym: crate::vocab::Sym(s),
                    limit: sym_limit,
                });
            }
            Ok(s)
        };

        let n_nodes = r.element_count("nodes")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let label = sym(&mut r)?;
            let n_attrs = r.element_count("attrs")?;
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                let a = sym(&mut r)?;
                let offset = r.offset();
                let v = r.value()?.ok_or(DeltaError::Corrupt {
                    offset,
                    what: "snapshot attribute has no value",
                })?;
                attrs.push((a, v));
            }
            nodes.push((label, attrs));
        }
        let node_limit = nodes.len() as u32;
        if node_limit as usize != nodes.len() {
            return Err(DeltaError::Corrupt {
                offset: r.offset(),
                what: "node count overflows u32",
            });
        }

        let n_edges = r.element_count("edges")?;
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let offset = r.offset();
            let s = r.varint_u32("edge source")?;
            let d = r.varint_u32("edge destination")?;
            let l = sym(&mut r)?;
            if s >= node_limit || d >= node_limit {
                return Err(DeltaError::Corrupt {
                    offset,
                    what: "edge endpoint out of range",
                });
            }
            edges.push((s, d, l));
        }
        r.finish()?;
        Ok(GraphData {
            symbols,
            nodes,
            edges,
        })
    }
}

/// Writes `g` in the line-oriented text format.
pub fn to_text(g: &Graph) -> String {
    let mut out = String::new();
    let vocab = g.vocab();
    for u in g.nodes() {
        let _ = write!(out, "node {} {}", u.0, vocab.resolve(g.label(u)));
        for (a, v) in g.attrs(u).iter() {
            let _ = write!(out, " {}={}", vocab.resolve(a), v);
        }
        out.push('\n');
    }
    for e in g.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            e.src.0,
            e.dst.0,
            vocab.resolve(e.label)
        );
    }
    out
}

/// Errors from [`from_text`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line didn't have the expected shape.
    Malformed { line: usize, reason: String },
    /// Node ids were not dense/ascending, or an edge referenced an
    /// unknown node.
    BadNodeId { line: usize, id: u32 },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: malformed record: {reason}")
            }
            ParseError::BadNodeId { line, id } => write!(f, "line {line}: bad node id {id}"),
        }
    }
}

impl std::error::Error for ParseError {}

fn parse_value(raw: &str) -> Value {
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(Arc::from(raw)),
    }
}

/// Parses the text format produced by [`to_text`] into a frozen graph.
pub fn from_text(text: &str, vocab: Arc<Vocab>) -> Result<Graph, ParseError> {
    let mut b = GraphBuilder::new(vocab);
    let mut seen: HashMap<u32, NodeId> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("node") => {
                let id: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    ParseError::Malformed {
                        line: lineno + 1,
                        reason: "node needs an id".into(),
                    }
                })?;
                let label = parts.next().ok_or_else(|| ParseError::Malformed {
                    line: lineno + 1,
                    reason: "node needs a label".into(),
                })?;
                if id as usize != b.node_count() {
                    return Err(ParseError::BadNodeId {
                        line: lineno + 1,
                        id,
                    });
                }
                let u = b.add_node_labeled(label);
                seen.insert(id, u);
                for kv in parts {
                    let (k, v) = kv.split_once('=').ok_or_else(|| ParseError::Malformed {
                        line: lineno + 1,
                        reason: format!("attribute `{kv}` is not key=value"),
                    })?;
                    b.set_attr_named(u, k, parse_value(v));
                }
            }
            Some("edge") => {
                let mut next_id = |what: &str| -> Result<NodeId, ParseError> {
                    let id: u32 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        ParseError::Malformed {
                            line: lineno + 1,
                            reason: format!("edge needs a {what}"),
                        }
                    })?;
                    seen.get(&id).copied().ok_or(ParseError::BadNodeId {
                        line: lineno + 1,
                        id,
                    })
                };
                let src = next_id("source")?;
                let dst = next_id("destination")?;
                let label = parts.next().ok_or_else(|| ParseError::Malformed {
                    line: lineno + 1,
                    reason: "edge needs a label".into(),
                })?;
                b.add_edge_labeled(src, dst, label);
            }
            Some(other) => {
                return Err(ParseError::Malformed {
                    line: lineno + 1,
                    reason: format!("unknown record `{other}`"),
                })
            }
            None => unreachable!("empty lines filtered above"),
        }
    }
    Ok(b.freeze())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let f1 = b.add_node_labeled("flight");
        let id1 = b.add_node_labeled("id");
        b.add_edge_labeled(f1, id1, "number");
        b.set_attr_named(id1, "val", Value::str("DL1"));
        b.set_attr_named(f1, "ontime", Value::Bool(true));
        b.set_attr_named(f1, "stops", Value::Int(0));
        b.freeze()
    }

    #[test]
    fn graphdata_round_trip() {
        let g = sample();
        let data = GraphData::from_graph(&g);
        let g2 = data.into_graph();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let val = g2.vocab().lookup("val").unwrap();
        assert_eq!(g2.attr(NodeId(1), val), Some(&Value::str("DL1")));
    }

    #[test]
    fn graphdata_binary_round_trip() {
        let g = sample();
        let data = GraphData::from_graph(&g);
        let mut bytes = Vec::new();
        data.encode_into(&mut bytes);
        let back = GraphData::decode(&bytes).unwrap();
        assert_eq!(back, data);
        // Hostile inputs: every strict prefix is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(GraphData::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn graphdata_decode_rejects_out_of_range_references() {
        let base = GraphData::from_graph(&sample());
        let mut bad_sym = base.clone();
        bad_sym.nodes[0].0 = base.symbols.len() as u32; // label past the table
        let mut bytes = Vec::new();
        bad_sym.encode_into(&mut bytes);
        assert!(matches!(
            GraphData::decode(&bytes),
            Err(DeltaError::SymOutOfRange { .. })
        ));

        let mut bad_edge = base.clone();
        bad_edge.edges[0].1 = base.nodes.len() as u32; // endpoint past nodes
        bytes.clear();
        bad_edge.encode_into(&mut bytes);
        assert!(matches!(
            GraphData::decode(&bytes),
            Err(DeltaError::Corrupt { .. })
        ));
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let text = to_text(&g);
        let g2 = from_text(&text, Vocab::shared()).unwrap();
        assert_eq!(g2.node_count(), 2);
        assert_eq!(g2.edge_count(), 1);
        let ontime = g2.vocab().lookup("ontime").unwrap();
        assert_eq!(g2.attr(NodeId(0), ontime), Some(&Value::Bool(true)));
        let stops = g2.vocab().lookup("stops").unwrap();
        assert_eq!(g2.attr(NodeId(0), stops), Some(&Value::Int(0)));
    }

    #[test]
    fn parse_rejects_bad_ids() {
        let err = from_text("node 5 flight", Vocab::shared()).unwrap_err();
        assert!(matches!(err, ParseError::BadNodeId { id: 5, .. }));
        let err = from_text("node 0 a\nedge 0 7 e", Vocab::shared()).unwrap_err();
        assert!(matches!(err, ParseError::BadNodeId { id: 7, .. }));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(from_text("wobble 1 2", Vocab::shared()).is_err());
        assert!(from_text("node 0", Vocab::shared()).is_err());
        assert!(from_text("node 0 a b", Vocab::shared()).is_err()); // attr without '='
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let g = from_text("# header\n\nnode 0 a\n", Vocab::shared()).unwrap();
        assert_eq!(g.node_count(), 1);
    }
}
