//! Edit deltas: the difference between two snapshots of a graph.
//!
//! Every `thaw`/`edit` session on a frozen [`Graph`](crate::Graph)
//! records the mutations it performs — node additions, edge
//! insertions/deletions, label changes, attribute writes — as a
//! [`GraphDelta`]. Node ids are stable across the thaw→mutate→refreeze
//! round trip, so a delta is directly addressable against both the old
//! and the new snapshot: consumers (incremental dual simulation in
//! `gfd-match`, incremental violation detection in `gfd-core`,
//! workload refresh in `gfd-parallel`) repair their derived state by
//! touching only the recorded neighborhood instead of recomputing —
//! the update-time discipline of Berkholz et al.'s query maintenance
//! under updates.
//!
//! A delta records *successful* mutations only (re-adding an existing
//! edge or removing an absent one is a no-op and leaves no record), so
//! after [`GraphDelta::normalize`]:
//!
//! * every `added_edges` entry is absent from the base snapshot and
//!   present in the result;
//! * every `removed_edges` entry is present in the base and absent
//!   from the result;
//! * label changes carry the base label and the final label, and nodes
//!   added during the session fold their final label into
//!   `added_nodes` instead;
//! * attribute ops keep only the last write per `(node, attribute)`.

use std::fmt;

use crate::graph::{Edge, Graph, NodeId};
use crate::value::Value;
use crate::vocab::Sym;

/// Why a delta was rejected by [`GraphDelta::check_against`].
///
/// A delta that arrives over a wire (the standing-violation service's
/// edit stream) is hostile input: it may reference node ids past the
/// snapshot, claim to add edges that already exist, or remove edges
/// that do not. Applying such a delta would corrupt the CSR patch, so
/// ingest validates first and leaves the epoch untouched on rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// `delta.base_nodes` disagrees with the snapshot's node count.
    BaseMismatch {
        /// The delta's claimed base node count.
        delta_base: usize,
        /// The snapshot's actual node count.
        graph_nodes: usize,
    },
    /// An edge endpoint or attribute/label target past the node range.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Exclusive id limit (base + added nodes).
        limit: usize,
    },
    /// Added node ids must be dense: `base_nodes..base_nodes + k`.
    NonDenseAddedNode {
        /// The id the delta carries.
        node: NodeId,
        /// The id it should carry at its position.
        expected: NodeId,
    },
    /// An `added_edges` entry already present in the base snapshot.
    EdgeAlreadyPresent {
        /// The duplicate edge.
        edge: Edge,
    },
    /// A `removed_edges` entry absent from the base snapshot.
    EdgeAbsent {
        /// The missing edge.
        edge: Edge,
    },
    /// A label change whose `old` label disagrees with the snapshot.
    StaleLabel {
        /// The relabeled node.
        node: NodeId,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BaseMismatch {
                delta_base,
                graph_nodes,
            } => write!(
                f,
                "delta based on {delta_base} nodes, snapshot has {graph_nodes}"
            ),
            DeltaError::NodeOutOfRange { node, limit } => {
                write!(f, "node id {} out of range (limit {limit})", node.index())
            }
            DeltaError::NonDenseAddedNode { node, expected } => write!(
                f,
                "added node id {} not dense (expected {})",
                node.index(),
                expected.index()
            ),
            DeltaError::EdgeAlreadyPresent { edge } => write!(
                f,
                "added edge {}→{} already present",
                edge.src.index(),
                edge.dst.index()
            ),
            DeltaError::EdgeAbsent { edge } => write!(
                f,
                "removed edge {}→{} absent from snapshot",
                edge.src.index(),
                edge.dst.index()
            ),
            DeltaError::StaleLabel { node } => {
                write!(f, "stale label change on node {}", node.index())
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One node relabeling `old → new` (type noise, repair).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelChange {
    /// The relabeled node.
    pub node: NodeId,
    /// Its label in the base snapshot.
    pub old: Sym,
    /// Its label in the edited snapshot.
    pub new: Sym,
}

/// One attribute write: `Some(value)` sets, `None` removes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrOp {
    /// The node whose tuple changed.
    pub node: NodeId,
    /// The attribute name.
    pub attr: Sym,
    /// The new value, or `None` for removal.
    pub value: Option<Value>,
}

/// The recorded difference between a base snapshot and its edited
/// successor. Produced by [`GraphBuilder::take_delta`]
/// (automatically recorded by [`Graph::thaw`]/[`Graph::edit_with_delta`])
/// and consumed by [`Graph::apply_delta`] and the incremental
/// maintenance subsystems.
///
/// [`GraphBuilder::take_delta`]: crate::GraphBuilder::take_delta
/// [`Graph::thaw`]: crate::Graph::thaw
/// [`Graph::edit_with_delta`]: crate::Graph::edit_with_delta
/// [`Graph::apply_delta`]: crate::Graph::apply_delta
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Node count of the base snapshot; added nodes have ids
    /// `base_nodes..base_nodes + added_nodes.len()`.
    pub base_nodes: usize,
    /// Nodes added during the session, with their (final) labels, in
    /// id order.
    pub added_nodes: Vec<(NodeId, Sym)>,
    /// Edges inserted (net of cancellations after [`normalize`]).
    ///
    /// [`normalize`]: GraphDelta::normalize
    pub added_edges: Vec<Edge>,
    /// Edges deleted (net of cancellations after `normalize`).
    pub removed_edges: Vec<Edge>,
    /// Relabelings of *base* nodes (added nodes fold into
    /// `added_nodes`).
    pub label_changes: Vec<LabelChange>,
    /// Attribute writes in application order (one per `(node, attr)`
    /// after `normalize`, last write wins).
    pub attr_ops: Vec<AttrOp>,
}

impl GraphDelta {
    /// An empty delta over a base of `base_nodes` nodes.
    pub fn new(base_nodes: usize) -> Self {
        GraphDelta {
            base_nodes,
            ..Default::default()
        }
    }

    /// True if the session performed no recorded mutation.
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.label_changes.is_empty()
            && self.attr_ops.is_empty()
    }

    /// True if the delta changes the edge set or the node set — the
    /// part CSR adjacency and simulation candidates depend on.
    pub fn touches_topology(&self) -> bool {
        !(self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.label_changes.is_empty())
    }

    /// Every node the delta mentions (edge endpoints, relabeled and
    /// attribute-touched nodes, added nodes), sorted and deduplicated.
    /// This is the "affected neighborhood" seed consumers re-check.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = Vec::new();
        v.extend(self.added_nodes.iter().map(|&(n, _)| n));
        for e in self.added_edges.iter().chain(&self.removed_edges) {
            v.push(e.src);
            v.push(e.dst);
        }
        v.extend(self.label_changes.iter().map(|c| c.node));
        v.extend(self.attr_ops.iter().map(|o| o.node));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Cancels add/remove pairs, coalesces label changes (base label →
    /// final label, dropping identities and folding relabelings of
    /// freshly added nodes into `added_nodes`), and keeps only the last
    /// write per `(node, attribute)`. Edge lists come out sorted by
    /// `(src, label, dst)`.
    ///
    /// Recording only captures successful mutations, so per edge key
    /// the net effect is `-1`, `0` or `+1`; `normalize` reduces the
    /// recorded history to that net effect.
    pub fn normalize(mut self) -> Self {
        // Edges: per (src, dst, label) key the ops alternate
        // (add/remove of an already-present/absent edge is rejected at
        // the builder), so net = adds - removes ∈ {-1, 0, +1}.
        if !self.added_edges.is_empty() || !self.removed_edges.is_empty() {
            let key = |e: &Edge| (e.src, e.label, e.dst);
            let mut net: std::collections::HashMap<(NodeId, Sym, NodeId), i32> =
                std::collections::HashMap::new();
            for e in &self.added_edges {
                *net.entry(key(e)).or_insert(0) += 1;
            }
            for e in &self.removed_edges {
                *net.entry(key(e)).or_insert(0) -= 1;
            }
            self.added_edges.retain(|e| net[&key(e)] > 0);
            self.added_edges.sort_unstable_by_key(key);
            self.added_edges.dedup();
            self.removed_edges.retain(|e| net[&key(e)] < 0);
            self.removed_edges.sort_unstable_by_key(key);
            self.removed_edges.dedup();
        }

        // Label changes: first old, last new per node; relabelings of
        // session-added nodes update the added_nodes record instead.
        if !self.label_changes.is_empty() {
            let mut coalesced: Vec<LabelChange> = Vec::with_capacity(self.label_changes.len());
            for c in self.label_changes.drain(..) {
                if c.node.index() >= self.base_nodes {
                    let slot = c.node.index() - self.base_nodes;
                    self.added_nodes[slot].1 = c.new;
                    continue;
                }
                match coalesced.iter_mut().find(|p| p.node == c.node) {
                    Some(prev) => prev.new = c.new,
                    None => coalesced.push(c),
                }
            }
            coalesced.retain(|c| c.old != c.new);
            coalesced.sort_unstable_by_key(|c| c.node);
            self.label_changes = coalesced;
        }

        // Attributes: last write per (node, attr) wins, kept in first-
        // occurrence order (application order is then irrelevant).
        if !self.attr_ops.is_empty() {
            let mut kept: Vec<AttrOp> = Vec::with_capacity(self.attr_ops.len());
            for op in self.attr_ops.drain(..) {
                match kept
                    .iter_mut()
                    .find(|p| p.node == op.node && p.attr == op.attr)
                {
                    Some(prev) => prev.value = op.value,
                    None => kept.push(op),
                }
            }
            self.attr_ops = kept;
        }
        self
    }

    /// Sequential composition: `self` takes a base snapshot `B₀` to
    /// `B₁`, `later` takes `B₁` to `B₂`; the merged delta takes `B₀`
    /// directly to `B₂`. Opposing operations across the two deltas
    /// cancel (an edge added by `self` and removed by `later` leaves
    /// no trace; an attribute written twice keeps the last value) —
    /// this is the batch-compaction primitive of the edit-stream
    /// engine: a batch of per-edit deltas folds into one normalized
    /// delta, so one CSR patch and one state repair serve the whole
    /// batch, and re-enumerations pinned at nodes touched by several
    /// edits run once.
    ///
    /// `later` must be based on `self`'s result (its `base_nodes`
    /// equals `self.base_nodes + self.added_nodes.len()`) — deltas
    /// recorded by consecutive [`Graph::edit_with_delta`] sessions
    /// satisfy this by construction.
    pub fn merge(mut self, later: GraphDelta) -> GraphDelta {
        assert_eq!(
            later.base_nodes,
            self.base_nodes + self.added_nodes.len(),
            "merge: later delta is not based on this delta's result snapshot"
        );
        self.added_nodes.extend(later.added_nodes);
        self.added_edges.extend(later.added_edges);
        self.removed_edges.extend(later.removed_edges);
        self.label_changes.extend(later.label_changes);
        self.attr_ops.extend(later.attr_ops);
        // Concatenation preserves application order, so `normalize`'s
        // cancellation/coalescing rules compute exactly the net effect
        // of running both sessions.
        self.normalize()
    }

    /// Structural validation of a (possibly hostile) **raw** delta:
    /// the claimed base matches `base_nodes`, added-node ids are
    /// dense, and every mentioned node id is within
    /// `base_nodes + added` range. This is everything [`normalize`] /
    /// [`merge`] assume (their added-node folding indexes by id), so
    /// an ingest path that `check_ids`-validates each delta of a
    /// batch before compacting can never panic on hostile input —
    /// raw deltas may still contain add/remove pairs that cancel,
    /// which is fine here and rejected nowhere.
    ///
    /// [`normalize`]: GraphDelta::normalize
    /// [`merge`]: GraphDelta::merge
    pub fn check_ids(&self, base_nodes: usize) -> Result<(), DeltaError> {
        if self.base_nodes != base_nodes {
            return Err(DeltaError::BaseMismatch {
                delta_base: self.base_nodes,
                graph_nodes: base_nodes,
            });
        }
        for (i, &(node, _)) in self.added_nodes.iter().enumerate() {
            let expected = NodeId((self.base_nodes + i) as u32);
            if node != expected {
                return Err(DeltaError::NonDenseAddedNode { node, expected });
            }
        }
        let limit = self.base_nodes + self.added_nodes.len();
        let in_range = |n: NodeId| n.index() < limit;
        for e in self.added_edges.iter().chain(&self.removed_edges) {
            if !in_range(e.src) || !in_range(e.dst) {
                let node = if in_range(e.src) { e.dst } else { e.src };
                return Err(DeltaError::NodeOutOfRange { node, limit });
            }
        }
        for c in &self.label_changes {
            if !in_range(c.node) {
                return Err(DeltaError::NodeOutOfRange {
                    node: c.node,
                    limit,
                });
            }
        }
        for op in &self.attr_ops {
            if !in_range(op.node) {
                return Err(DeltaError::NodeOutOfRange {
                    node: op.node,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Validates a (possibly hostile) delta against the snapshot it
    /// claims to be based on, without applying anything. `Ok(())`
    /// guarantees [`Graph::apply_delta`] will produce the correct
    /// successor; any violation of the [`normalize`] invariants —
    /// wrong base, out-of-range or non-dense node ids, adding a
    /// present edge, removing an absent one, a stale label change —
    /// is reported as the first [`DeltaError`] found.
    ///
    /// Call on a normalized delta (ingest normalizes first); raw
    /// recorded deltas may legitimately contain add/remove pairs that
    /// cancel — use [`check_ids`](GraphDelta::check_ids) for those.
    ///
    /// [`normalize`]: GraphDelta::normalize
    pub fn check_against(&self, g: &Graph) -> Result<(), DeltaError> {
        self.check_ids(g.node_count())?;
        for e in &self.added_edges {
            let base_endpoints = e.src.index() < self.base_nodes && e.dst.index() < self.base_nodes;
            if base_endpoints && g.has_edge(e.src, e.dst, e.label) {
                return Err(DeltaError::EdgeAlreadyPresent { edge: *e });
            }
        }
        for e in &self.removed_edges {
            // A removed edge existed in the base snapshot, so both
            // endpoints must be base nodes and the edge present.
            if e.src.index() >= self.base_nodes || e.dst.index() >= self.base_nodes {
                let node = if e.src.index() >= self.base_nodes {
                    e.src
                } else {
                    e.dst
                };
                return Err(DeltaError::NodeOutOfRange {
                    node,
                    limit: self.base_nodes,
                });
            }
            if !g.has_edge(e.src, e.dst, e.label) {
                return Err(DeltaError::EdgeAbsent { edge: *e });
            }
        }
        for c in &self.label_changes {
            if c.node.index() >= self.base_nodes {
                return Err(DeltaError::NodeOutOfRange {
                    node: c.node,
                    limit: self.base_nodes,
                });
            }
            if g.label(c.node) != c.old {
                return Err(DeltaError::StaleLabel { node: c.node });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: u32, d: u32, l: u32) -> Edge {
        Edge {
            src: NodeId(s),
            dst: NodeId(d),
            label: Sym(l),
        }
    }

    #[test]
    fn normalize_cancels_edge_flip_flops() {
        let mut d = GraphDelta::new(4);
        // Fresh edge added then removed: cancels.
        d.added_edges.push(e(0, 1, 7));
        d.removed_edges.push(e(0, 1, 7));
        // Base edge removed then re-added: cancels.
        d.removed_edges.push(e(1, 2, 7));
        d.added_edges.push(e(1, 2, 7));
        // Fresh edge added, removed, re-added: survives as one add.
        d.added_edges.push(e(2, 3, 7));
        d.removed_edges.push(e(2, 3, 7));
        d.added_edges.push(e(2, 3, 7));
        let d = d.normalize();
        assert_eq!(d.added_edges, vec![e(2, 3, 7)]);
        assert!(d.removed_edges.is_empty());
        assert!(!d.is_empty());
    }

    #[test]
    fn normalize_coalesces_label_chains() {
        let mut d = GraphDelta::new(2);
        d.added_nodes.push((NodeId(2), Sym(0)));
        // Base node relabeled twice: keeps first old / last new.
        for (old, new) in [(Sym(1), Sym(2)), (Sym(2), Sym(3))] {
            d.label_changes.push(LabelChange {
                node: NodeId(0),
                old,
                new,
            });
        }
        // Back-and-forth on another base node: drops out entirely.
        for (old, new) in [(Sym(5), Sym(6)), (Sym(6), Sym(5))] {
            d.label_changes.push(LabelChange {
                node: NodeId(1),
                old,
                new,
            });
        }
        // Added node relabeled: folds into added_nodes.
        d.label_changes.push(LabelChange {
            node: NodeId(2),
            old: Sym(0),
            new: Sym(9),
        });
        let d = d.normalize();
        assert_eq!(
            d.label_changes,
            vec![LabelChange {
                node: NodeId(0),
                old: Sym(1),
                new: Sym(3)
            }]
        );
        assert_eq!(d.added_nodes, vec![(NodeId(2), Sym(9))]);
    }

    #[test]
    fn normalize_keeps_last_attr_write() {
        let mut d = GraphDelta::new(1);
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(4),
            value: Some(Value::Int(1)),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(4),
            value: None,
        });
        let d = d.normalize();
        assert_eq!(d.attr_ops.len(), 1);
        assert_eq!(d.attr_ops[0].value, None);
    }

    #[test]
    fn touched_nodes_sorted_dedup() {
        let mut d = GraphDelta::new(5);
        d.added_edges.push(e(3, 1, 0));
        d.removed_edges.push(e(1, 4, 0));
        d.attr_ops.push(AttrOp {
            node: NodeId(3),
            attr: Sym(0),
            value: None,
        });
        let touched = d.touched_nodes();
        assert_eq!(touched, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }
}
