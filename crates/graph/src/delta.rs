//! Edit deltas: the difference between two snapshots of a graph.
//!
//! Every `thaw`/`edit` session on a frozen [`Graph`](crate::Graph)
//! records the mutations it performs — node additions, edge
//! insertions/deletions, label changes, attribute writes — as a
//! [`GraphDelta`]. Node ids are stable across the thaw→mutate→refreeze
//! round trip, so a delta is directly addressable against both the old
//! and the new snapshot: consumers (incremental dual simulation in
//! `gfd-match`, incremental violation detection in `gfd-core`,
//! workload refresh in `gfd-parallel`) repair their derived state by
//! touching only the recorded neighborhood instead of recomputing —
//! the update-time discipline of Berkholz et al.'s query maintenance
//! under updates.
//!
//! A delta records *successful* mutations only (re-adding an existing
//! edge or removing an absent one is a no-op and leaves no record), so
//! after [`GraphDelta::normalize`]:
//!
//! * every `added_edges` entry is absent from the base snapshot and
//!   present in the result;
//! * every `removed_edges` entry is present in the base and absent
//!   from the result;
//! * label changes carry the base label and the final label, and nodes
//!   added during the session fold their final label into
//!   `added_nodes` instead;
//! * attribute ops keep only the last write per `(node, attribute)`.

use crate::graph::{Edge, NodeId};
use crate::value::Value;
use crate::vocab::Sym;

/// One node relabeling `old → new` (type noise, repair).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelChange {
    /// The relabeled node.
    pub node: NodeId,
    /// Its label in the base snapshot.
    pub old: Sym,
    /// Its label in the edited snapshot.
    pub new: Sym,
}

/// One attribute write: `Some(value)` sets, `None` removes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrOp {
    /// The node whose tuple changed.
    pub node: NodeId,
    /// The attribute name.
    pub attr: Sym,
    /// The new value, or `None` for removal.
    pub value: Option<Value>,
}

/// The recorded difference between a base snapshot and its edited
/// successor. Produced by [`GraphBuilder::take_delta`]
/// (automatically recorded by [`Graph::thaw`]/[`Graph::edit_with_delta`])
/// and consumed by [`Graph::apply_delta`] and the incremental
/// maintenance subsystems.
///
/// [`GraphBuilder::take_delta`]: crate::GraphBuilder::take_delta
/// [`Graph::thaw`]: crate::Graph::thaw
/// [`Graph::edit_with_delta`]: crate::Graph::edit_with_delta
/// [`Graph::apply_delta`]: crate::Graph::apply_delta
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Node count of the base snapshot; added nodes have ids
    /// `base_nodes..base_nodes + added_nodes.len()`.
    pub base_nodes: usize,
    /// Nodes added during the session, with their (final) labels, in
    /// id order.
    pub added_nodes: Vec<(NodeId, Sym)>,
    /// Edges inserted (net of cancellations after [`normalize`]).
    ///
    /// [`normalize`]: GraphDelta::normalize
    pub added_edges: Vec<Edge>,
    /// Edges deleted (net of cancellations after `normalize`).
    pub removed_edges: Vec<Edge>,
    /// Relabelings of *base* nodes (added nodes fold into
    /// `added_nodes`).
    pub label_changes: Vec<LabelChange>,
    /// Attribute writes in application order (one per `(node, attr)`
    /// after `normalize`, last write wins).
    pub attr_ops: Vec<AttrOp>,
}

impl GraphDelta {
    /// An empty delta over a base of `base_nodes` nodes.
    pub fn new(base_nodes: usize) -> Self {
        GraphDelta {
            base_nodes,
            ..Default::default()
        }
    }

    /// True if the session performed no recorded mutation.
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.label_changes.is_empty()
            && self.attr_ops.is_empty()
    }

    /// True if the delta changes the edge set or the node set — the
    /// part CSR adjacency and simulation candidates depend on.
    pub fn touches_topology(&self) -> bool {
        !(self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.label_changes.is_empty())
    }

    /// Every node the delta mentions (edge endpoints, relabeled and
    /// attribute-touched nodes, added nodes), sorted and deduplicated.
    /// This is the "affected neighborhood" seed consumers re-check.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = Vec::new();
        v.extend(self.added_nodes.iter().map(|&(n, _)| n));
        for e in self.added_edges.iter().chain(&self.removed_edges) {
            v.push(e.src);
            v.push(e.dst);
        }
        v.extend(self.label_changes.iter().map(|c| c.node));
        v.extend(self.attr_ops.iter().map(|o| o.node));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Cancels add/remove pairs, coalesces label changes (base label →
    /// final label, dropping identities and folding relabelings of
    /// freshly added nodes into `added_nodes`), and keeps only the last
    /// write per `(node, attribute)`. Edge lists come out sorted by
    /// `(src, label, dst)`.
    ///
    /// Recording only captures successful mutations, so per edge key
    /// the net effect is `-1`, `0` or `+1`; `normalize` reduces the
    /// recorded history to that net effect.
    pub fn normalize(mut self) -> Self {
        // Edges: per (src, dst, label) key the ops alternate
        // (add/remove of an already-present/absent edge is rejected at
        // the builder), so net = adds - removes ∈ {-1, 0, +1}.
        if !self.added_edges.is_empty() || !self.removed_edges.is_empty() {
            let key = |e: &Edge| (e.src, e.label, e.dst);
            let mut net: std::collections::HashMap<(NodeId, Sym, NodeId), i32> =
                std::collections::HashMap::new();
            for e in &self.added_edges {
                *net.entry(key(e)).or_insert(0) += 1;
            }
            for e in &self.removed_edges {
                *net.entry(key(e)).or_insert(0) -= 1;
            }
            self.added_edges.retain(|e| net[&key(e)] > 0);
            self.added_edges.sort_unstable_by_key(key);
            self.added_edges.dedup();
            self.removed_edges.retain(|e| net[&key(e)] < 0);
            self.removed_edges.sort_unstable_by_key(key);
            self.removed_edges.dedup();
        }

        // Label changes: first old, last new per node; relabelings of
        // session-added nodes update the added_nodes record instead.
        if !self.label_changes.is_empty() {
            let mut coalesced: Vec<LabelChange> = Vec::with_capacity(self.label_changes.len());
            for c in self.label_changes.drain(..) {
                if c.node.index() >= self.base_nodes {
                    let slot = c.node.index() - self.base_nodes;
                    self.added_nodes[slot].1 = c.new;
                    continue;
                }
                match coalesced.iter_mut().find(|p| p.node == c.node) {
                    Some(prev) => prev.new = c.new,
                    None => coalesced.push(c),
                }
            }
            coalesced.retain(|c| c.old != c.new);
            coalesced.sort_unstable_by_key(|c| c.node);
            self.label_changes = coalesced;
        }

        // Attributes: last write per (node, attr) wins, kept in first-
        // occurrence order (application order is then irrelevant).
        if !self.attr_ops.is_empty() {
            let mut kept: Vec<AttrOp> = Vec::with_capacity(self.attr_ops.len());
            for op in self.attr_ops.drain(..) {
                match kept
                    .iter_mut()
                    .find(|p| p.node == op.node && p.attr == op.attr)
                {
                    Some(prev) => prev.value = op.value,
                    None => kept.push(op),
                }
            }
            self.attr_ops = kept;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: u32, d: u32, l: u32) -> Edge {
        Edge {
            src: NodeId(s),
            dst: NodeId(d),
            label: Sym(l),
        }
    }

    #[test]
    fn normalize_cancels_edge_flip_flops() {
        let mut d = GraphDelta::new(4);
        // Fresh edge added then removed: cancels.
        d.added_edges.push(e(0, 1, 7));
        d.removed_edges.push(e(0, 1, 7));
        // Base edge removed then re-added: cancels.
        d.removed_edges.push(e(1, 2, 7));
        d.added_edges.push(e(1, 2, 7));
        // Fresh edge added, removed, re-added: survives as one add.
        d.added_edges.push(e(2, 3, 7));
        d.removed_edges.push(e(2, 3, 7));
        d.added_edges.push(e(2, 3, 7));
        let d = d.normalize();
        assert_eq!(d.added_edges, vec![e(2, 3, 7)]);
        assert!(d.removed_edges.is_empty());
        assert!(!d.is_empty());
    }

    #[test]
    fn normalize_coalesces_label_chains() {
        let mut d = GraphDelta::new(2);
        d.added_nodes.push((NodeId(2), Sym(0)));
        // Base node relabeled twice: keeps first old / last new.
        for (old, new) in [(Sym(1), Sym(2)), (Sym(2), Sym(3))] {
            d.label_changes.push(LabelChange {
                node: NodeId(0),
                old,
                new,
            });
        }
        // Back-and-forth on another base node: drops out entirely.
        for (old, new) in [(Sym(5), Sym(6)), (Sym(6), Sym(5))] {
            d.label_changes.push(LabelChange {
                node: NodeId(1),
                old,
                new,
            });
        }
        // Added node relabeled: folds into added_nodes.
        d.label_changes.push(LabelChange {
            node: NodeId(2),
            old: Sym(0),
            new: Sym(9),
        });
        let d = d.normalize();
        assert_eq!(
            d.label_changes,
            vec![LabelChange {
                node: NodeId(0),
                old: Sym(1),
                new: Sym(3)
            }]
        );
        assert_eq!(d.added_nodes, vec![(NodeId(2), Sym(9))]);
    }

    #[test]
    fn normalize_keeps_last_attr_write() {
        let mut d = GraphDelta::new(1);
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(4),
            value: Some(Value::Int(1)),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(4),
            value: None,
        });
        let d = d.normalize();
        assert_eq!(d.attr_ops.len(), 1);
        assert_eq!(d.attr_ops[0].value, None);
    }

    #[test]
    fn touched_nodes_sorted_dedup() {
        let mut d = GraphDelta::new(5);
        d.added_edges.push(e(3, 1, 0));
        d.removed_edges.push(e(1, 4, 0));
        d.attr_ops.push(AttrOp {
            node: NodeId(3),
            attr: Sym(0),
            value: None,
        });
        let touched = d.touched_nodes();
        assert_eq!(touched, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }
}
