//! Edit deltas: the difference between two snapshots of a graph.
//!
//! Every `thaw`/`edit` session on a frozen [`Graph`](crate::Graph)
//! records the mutations it performs — node additions, edge
//! insertions/deletions, label changes, attribute writes — as a
//! [`GraphDelta`]. Node ids are stable across the thaw→mutate→refreeze
//! round trip, so a delta is directly addressable against both the old
//! and the new snapshot: consumers (incremental dual simulation in
//! `gfd-match`, incremental violation detection in `gfd-core`,
//! workload refresh in `gfd-parallel`) repair their derived state by
//! touching only the recorded neighborhood instead of recomputing —
//! the update-time discipline of Berkholz et al.'s query maintenance
//! under updates.
//!
//! A delta records *successful* mutations only (re-adding an existing
//! edge or removing an absent one is a no-op and leaves no record), so
//! after [`GraphDelta::normalize`]:
//!
//! * every `added_edges` entry is absent from the base snapshot and
//!   present in the result;
//! * every `removed_edges` entry is present in the base and absent
//!   from the result;
//! * label changes carry the base label and the final label, and nodes
//!   added during the session fold their final label into
//!   `added_nodes` instead;
//! * attribute ops keep only the last write per `(node, attribute)`.

use std::fmt;

use crate::graph::{Edge, Graph, NodeId};
use crate::value::Value;
use crate::vocab::Sym;

/// Why a delta was rejected by [`GraphDelta::check_against`].
///
/// A delta that arrives over a wire (the standing-violation service's
/// edit stream) is hostile input: it may reference node ids past the
/// snapshot, claim to add edges that already exist, or remove edges
/// that do not. Applying such a delta would corrupt the CSR patch, so
/// ingest validates first and leaves the epoch untouched on rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// `delta.base_nodes` disagrees with the snapshot's node count.
    BaseMismatch {
        /// The delta's claimed base node count.
        delta_base: usize,
        /// The snapshot's actual node count.
        graph_nodes: usize,
    },
    /// An edge endpoint or attribute/label target past the node range.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Exclusive id limit (base + added nodes).
        limit: usize,
    },
    /// Added node ids must be dense: `base_nodes..base_nodes + k`.
    NonDenseAddedNode {
        /// The id the delta carries.
        node: NodeId,
        /// The id it should carry at its position.
        expected: NodeId,
    },
    /// An `added_edges` entry already present in the base snapshot.
    EdgeAlreadyPresent {
        /// The duplicate edge.
        edge: Edge,
    },
    /// A `removed_edges` entry absent from the base snapshot.
    EdgeAbsent {
        /// The missing edge.
        edge: Edge,
    },
    /// A label change whose `old` label disagrees with the snapshot.
    StaleLabel {
        /// The relabeled node.
        node: NodeId,
    },
    /// Binary decoding ran past the end of the input (a short read or
    /// a torn tail).
    Truncated {
        /// Byte offset where more input was needed.
        offset: usize,
    },
    /// Binary input that cannot be a valid encoding (bad tag byte,
    /// overlong varint, non-UTF-8 string, implausible length).
    Corrupt {
        /// Byte offset of the offending field.
        offset: usize,
        /// What was wrong with it.
        what: &'static str,
    },
    /// A decoded symbol past the vocabulary the record claims to be
    /// encoded against.
    SymOutOfRange {
        /// The offending symbol.
        sym: Sym,
        /// Exclusive symbol limit.
        limit: u32,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BaseMismatch {
                delta_base,
                graph_nodes,
            } => write!(
                f,
                "delta based on {delta_base} nodes, snapshot has {graph_nodes}"
            ),
            DeltaError::NodeOutOfRange { node, limit } => {
                write!(f, "node id {} out of range (limit {limit})", node.index())
            }
            DeltaError::NonDenseAddedNode { node, expected } => write!(
                f,
                "added node id {} not dense (expected {})",
                node.index(),
                expected.index()
            ),
            DeltaError::EdgeAlreadyPresent { edge } => write!(
                f,
                "added edge {}→{} already present",
                edge.src.index(),
                edge.dst.index()
            ),
            DeltaError::EdgeAbsent { edge } => write!(
                f,
                "removed edge {}→{} absent from snapshot",
                edge.src.index(),
                edge.dst.index()
            ),
            DeltaError::StaleLabel { node } => {
                write!(f, "stale label change on node {}", node.index())
            }
            DeltaError::Truncated { offset } => {
                write!(f, "encoding truncated at byte {offset}")
            }
            DeltaError::Corrupt { offset, what } => {
                write!(f, "corrupt encoding at byte {offset}: {what}")
            }
            DeltaError::SymOutOfRange { sym, limit } => {
                write!(f, "symbol {} out of range (limit {limit})", sym.0)
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// One node relabeling `old → new` (type noise, repair).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelChange {
    /// The relabeled node.
    pub node: NodeId,
    /// Its label in the base snapshot.
    pub old: Sym,
    /// Its label in the edited snapshot.
    pub new: Sym,
}

/// One attribute write: `Some(value)` sets, `None` removes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrOp {
    /// The node whose tuple changed.
    pub node: NodeId,
    /// The attribute name.
    pub attr: Sym,
    /// The new value, or `None` for removal.
    pub value: Option<Value>,
}

/// The recorded difference between a base snapshot and its edited
/// successor. Produced by [`GraphBuilder::take_delta`]
/// (automatically recorded by [`Graph::thaw`]/[`Graph::edit_with_delta`])
/// and consumed by [`Graph::apply_delta`] and the incremental
/// maintenance subsystems.
///
/// [`GraphBuilder::take_delta`]: crate::GraphBuilder::take_delta
/// [`Graph::thaw`]: crate::Graph::thaw
/// [`Graph::edit_with_delta`]: crate::Graph::edit_with_delta
/// [`Graph::apply_delta`]: crate::Graph::apply_delta
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Node count of the base snapshot; added nodes have ids
    /// `base_nodes..base_nodes + added_nodes.len()`.
    pub base_nodes: usize,
    /// Nodes added during the session, with their (final) labels, in
    /// id order.
    pub added_nodes: Vec<(NodeId, Sym)>,
    /// Edges inserted (net of cancellations after [`normalize`]).
    ///
    /// [`normalize`]: GraphDelta::normalize
    pub added_edges: Vec<Edge>,
    /// Edges deleted (net of cancellations after `normalize`).
    pub removed_edges: Vec<Edge>,
    /// Relabelings of *base* nodes (added nodes fold into
    /// `added_nodes`).
    pub label_changes: Vec<LabelChange>,
    /// Attribute writes in application order (one per `(node, attr)`
    /// after `normalize`, last write wins).
    pub attr_ops: Vec<AttrOp>,
}

impl GraphDelta {
    /// An empty delta over a base of `base_nodes` nodes.
    pub fn new(base_nodes: usize) -> Self {
        GraphDelta {
            base_nodes,
            ..Default::default()
        }
    }

    /// True if the session performed no recorded mutation.
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.label_changes.is_empty()
            && self.attr_ops.is_empty()
    }

    /// True if the delta changes the edge set or the node set — the
    /// part CSR adjacency and simulation candidates depend on.
    pub fn touches_topology(&self) -> bool {
        !(self.added_nodes.is_empty()
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.label_changes.is_empty())
    }

    /// Every node the delta mentions (edge endpoints, relabeled and
    /// attribute-touched nodes, added nodes), sorted and deduplicated.
    /// This is the "affected neighborhood" seed consumers re-check.
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = Vec::new();
        v.extend(self.added_nodes.iter().map(|&(n, _)| n));
        for e in self.added_edges.iter().chain(&self.removed_edges) {
            v.push(e.src);
            v.push(e.dst);
        }
        v.extend(self.label_changes.iter().map(|c| c.node));
        v.extend(self.attr_ops.iter().map(|o| o.node));
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Cancels add/remove pairs, coalesces label changes (base label →
    /// final label, dropping identities and folding relabelings of
    /// freshly added nodes into `added_nodes`), and keeps only the last
    /// write per `(node, attribute)`. Edge lists come out sorted by
    /// `(src, label, dst)`.
    ///
    /// Recording only captures successful mutations, so per edge key
    /// the net effect is `-1`, `0` or `+1`; `normalize` reduces the
    /// recorded history to that net effect.
    pub fn normalize(mut self) -> Self {
        // Edges: per (src, dst, label) key the ops alternate
        // (add/remove of an already-present/absent edge is rejected at
        // the builder), so net = adds - removes ∈ {-1, 0, +1}.
        if !self.added_edges.is_empty() || !self.removed_edges.is_empty() {
            let key = |e: &Edge| (e.src, e.label, e.dst);
            let mut net: std::collections::HashMap<(NodeId, Sym, NodeId), i32> =
                std::collections::HashMap::new();
            for e in &self.added_edges {
                *net.entry(key(e)).or_insert(0) += 1;
            }
            for e in &self.removed_edges {
                *net.entry(key(e)).or_insert(0) -= 1;
            }
            self.added_edges.retain(|e| net[&key(e)] > 0);
            self.added_edges.sort_unstable_by_key(key);
            self.added_edges.dedup();
            self.removed_edges.retain(|e| net[&key(e)] < 0);
            self.removed_edges.sort_unstable_by_key(key);
            self.removed_edges.dedup();
        }

        // Label changes: first old, last new per node; relabelings of
        // session-added nodes update the added_nodes record instead.
        if !self.label_changes.is_empty() {
            let mut coalesced: Vec<LabelChange> = Vec::with_capacity(self.label_changes.len());
            for c in self.label_changes.drain(..) {
                if c.node.index() >= self.base_nodes {
                    let slot = c.node.index() - self.base_nodes;
                    self.added_nodes[slot].1 = c.new;
                    continue;
                }
                match coalesced.iter_mut().find(|p| p.node == c.node) {
                    Some(prev) => prev.new = c.new,
                    None => coalesced.push(c),
                }
            }
            coalesced.retain(|c| c.old != c.new);
            coalesced.sort_unstable_by_key(|c| c.node);
            self.label_changes = coalesced;
        }

        // Attributes: last write per (node, attr) wins, kept in first-
        // occurrence order (application order is then irrelevant).
        if !self.attr_ops.is_empty() {
            let mut kept: Vec<AttrOp> = Vec::with_capacity(self.attr_ops.len());
            for op in self.attr_ops.drain(..) {
                match kept
                    .iter_mut()
                    .find(|p| p.node == op.node && p.attr == op.attr)
                {
                    Some(prev) => prev.value = op.value,
                    None => kept.push(op),
                }
            }
            self.attr_ops = kept;
        }
        self
    }

    /// Sequential composition: `self` takes a base snapshot `B₀` to
    /// `B₁`, `later` takes `B₁` to `B₂`; the merged delta takes `B₀`
    /// directly to `B₂`. Opposing operations across the two deltas
    /// cancel (an edge added by `self` and removed by `later` leaves
    /// no trace; an attribute written twice keeps the last value) —
    /// this is the batch-compaction primitive of the edit-stream
    /// engine: a batch of per-edit deltas folds into one normalized
    /// delta, so one CSR patch and one state repair serve the whole
    /// batch, and re-enumerations pinned at nodes touched by several
    /// edits run once.
    ///
    /// `later` must be based on `self`'s result (its `base_nodes`
    /// equals `self.base_nodes + self.added_nodes.len()`) — deltas
    /// recorded by consecutive [`Graph::edit_with_delta`] sessions
    /// satisfy this by construction.
    pub fn merge(mut self, later: GraphDelta) -> GraphDelta {
        assert_eq!(
            later.base_nodes,
            self.base_nodes + self.added_nodes.len(),
            "merge: later delta is not based on this delta's result snapshot"
        );
        self.added_nodes.extend(later.added_nodes);
        self.added_edges.extend(later.added_edges);
        self.removed_edges.extend(later.removed_edges);
        self.label_changes.extend(later.label_changes);
        self.attr_ops.extend(later.attr_ops);
        // Concatenation preserves application order, so `normalize`'s
        // cancellation/coalescing rules compute exactly the net effect
        // of running both sessions.
        self.normalize()
    }

    /// Structural validation of a (possibly hostile) **raw** delta:
    /// the claimed base matches `base_nodes`, added-node ids are
    /// dense, and every mentioned node id is within
    /// `base_nodes + added` range. This is everything [`normalize`] /
    /// [`merge`] assume (their added-node folding indexes by id), so
    /// an ingest path that `check_ids`-validates each delta of a
    /// batch before compacting can never panic on hostile input —
    /// raw deltas may still contain add/remove pairs that cancel,
    /// which is fine here and rejected nowhere.
    ///
    /// [`normalize`]: GraphDelta::normalize
    /// [`merge`]: GraphDelta::merge
    pub fn check_ids(&self, base_nodes: usize) -> Result<(), DeltaError> {
        if self.base_nodes != base_nodes {
            return Err(DeltaError::BaseMismatch {
                delta_base: self.base_nodes,
                graph_nodes: base_nodes,
            });
        }
        for (i, &(node, _)) in self.added_nodes.iter().enumerate() {
            let expected = NodeId((self.base_nodes + i) as u32);
            if node != expected {
                return Err(DeltaError::NonDenseAddedNode { node, expected });
            }
        }
        let limit = self.base_nodes + self.added_nodes.len();
        let in_range = |n: NodeId| n.index() < limit;
        for e in self.added_edges.iter().chain(&self.removed_edges) {
            if !in_range(e.src) || !in_range(e.dst) {
                let node = if in_range(e.src) { e.dst } else { e.src };
                return Err(DeltaError::NodeOutOfRange { node, limit });
            }
        }
        for c in &self.label_changes {
            if !in_range(c.node) {
                return Err(DeltaError::NodeOutOfRange {
                    node: c.node,
                    limit,
                });
            }
        }
        for op in &self.attr_ops {
            if !in_range(op.node) {
                return Err(DeltaError::NodeOutOfRange {
                    node: op.node,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Validates a (possibly hostile) delta against the snapshot it
    /// claims to be based on, without applying anything. `Ok(())`
    /// guarantees [`Graph::apply_delta`] will produce the correct
    /// successor; any violation of the [`normalize`] invariants —
    /// wrong base, out-of-range or non-dense node ids, adding a
    /// present edge, removing an absent one, a stale label change —
    /// is reported as the first [`DeltaError`] found.
    ///
    /// Call on a normalized delta (ingest normalizes first); raw
    /// recorded deltas may legitimately contain add/remove pairs that
    /// cancel — use [`check_ids`](GraphDelta::check_ids) for those.
    ///
    /// [`normalize`]: GraphDelta::normalize
    pub fn check_against(&self, g: &Graph) -> Result<(), DeltaError> {
        self.check_ids(g.node_count())?;
        for e in &self.added_edges {
            let base_endpoints = e.src.index() < self.base_nodes && e.dst.index() < self.base_nodes;
            if base_endpoints && g.has_edge(e.src, e.dst, e.label) {
                return Err(DeltaError::EdgeAlreadyPresent { edge: *e });
            }
        }
        for e in &self.removed_edges {
            // A removed edge existed in the base snapshot, so both
            // endpoints must be base nodes and the edge present.
            if e.src.index() >= self.base_nodes || e.dst.index() >= self.base_nodes {
                let node = if e.src.index() >= self.base_nodes {
                    e.src
                } else {
                    e.dst
                };
                return Err(DeltaError::NodeOutOfRange {
                    node,
                    limit: self.base_nodes,
                });
            }
            if !g.has_edge(e.src, e.dst, e.label) {
                return Err(DeltaError::EdgeAbsent { edge: *e });
            }
        }
        for c in &self.label_changes {
            if c.node.index() >= self.base_nodes {
                return Err(DeltaError::NodeOutOfRange {
                    node: c.node,
                    limit: self.base_nodes,
                });
            }
            if g.label(c.node) != c.old {
                return Err(DeltaError::StaleLabel { node: c.node });
            }
        }
        Ok(())
    }

    /// Appends the plain-bytes encoding of this delta to `out` (no
    /// serde: varint-framed fields, values tagged by kind — see the
    /// [`wire`] module). The encoding is self-delimiting; a write-ahead
    /// log frames it with an epoch header and a trailing checksum.
    ///
    /// Added-node ids are **not** written: [`check_ids`] guarantees
    /// they are dense from `base_nodes`, so [`decode`] reconstructs
    /// them — a hostile stream cannot even express a non-dense id.
    ///
    /// [`check_ids`]: GraphDelta::check_ids
    /// [`decode`]: GraphDelta::decode
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.base_nodes as u64);
        wire::put_varint(out, self.added_nodes.len() as u64);
        for &(_, label) in &self.added_nodes {
            wire::put_varint(out, label.0 as u64);
        }
        for edges in [&self.added_edges, &self.removed_edges] {
            wire::put_varint(out, edges.len() as u64);
            for e in edges.iter() {
                wire::put_varint(out, e.src.0 as u64);
                wire::put_varint(out, e.dst.0 as u64);
                wire::put_varint(out, e.label.0 as u64);
            }
        }
        wire::put_varint(out, self.label_changes.len() as u64);
        for c in &self.label_changes {
            wire::put_varint(out, c.node.0 as u64);
            wire::put_varint(out, c.old.0 as u64);
            wire::put_varint(out, c.new.0 as u64);
        }
        wire::put_varint(out, self.attr_ops.len() as u64);
        for op in &self.attr_ops {
            wire::put_varint(out, op.node.0 as u64);
            wire::put_varint(out, op.attr.0 as u64);
            wire::put_value(out, op.value.as_ref());
        }
    }

    /// Decodes a delta from (possibly hostile) bytes. Never panics:
    /// every length is bounds-checked against the remaining input,
    /// every symbol is checked against `sym_limit` (the vocabulary
    /// size the record claims to be encoded against), and the decoded
    /// delta is passed through the [`check_ids`] machinery before it
    /// is returned — so a successfully decoded delta upholds every
    /// structural invariant [`normalize`]/[`merge`] assume. Trailing
    /// bytes after the encoding are rejected.
    ///
    /// [`check_ids`]: GraphDelta::check_ids
    /// [`normalize`]: GraphDelta::normalize
    pub fn decode(bytes: &[u8], sym_limit: u32) -> Result<GraphDelta, DeltaError> {
        let mut r = wire::Reader::new(bytes);
        let delta = GraphDelta::decode_body(&mut r, sym_limit)?;
        r.finish()?;
        Ok(delta)
    }

    /// Encodes the write-ahead log's per-epoch record payload: the
    /// names interned since the previous frame (so replay can rebuild
    /// the vocabulary incrementally) followed by [`encode_into`].
    ///
    /// [`encode_into`]: GraphDelta::encode_into
    pub fn encode_with_symbols(&self, new_symbols: &[std::sync::Arc<str>], out: &mut Vec<u8>) {
        wire::put_varint(out, new_symbols.len() as u64);
        for s in new_symbols {
            wire::put_str(out, s);
        }
        self.encode_into(out);
    }

    /// Decodes a record payload written by [`encode_with_symbols`]:
    /// returns the newly interned names and the delta, whose symbols
    /// were validated against `base_syms + new names`. Same hostility
    /// contract as [`decode`] — errors, never panics.
    ///
    /// [`encode_with_symbols`]: GraphDelta::encode_with_symbols
    /// [`decode`]: GraphDelta::decode
    pub fn decode_with_symbols(
        bytes: &[u8],
        base_syms: u32,
    ) -> Result<(Vec<String>, GraphDelta), DeltaError> {
        let mut r = wire::Reader::new(bytes);
        let n = r.element_count("new symbols")?;
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(r.str()?.to_string());
        }
        let sym_limit = u32::try_from(n)
            .ok()
            .and_then(|n| base_syms.checked_add(n))
            .ok_or(DeltaError::Corrupt {
                offset: r.offset(),
                what: "symbol count overflows u32",
            })?;
        let delta = GraphDelta::decode_body(&mut r, sym_limit)?;
        r.finish()?;
        Ok((names, delta))
    }

    /// The shared decoder body behind [`decode`] and
    /// [`decode_with_symbols`]; the caller owns end-of-input handling.
    ///
    /// [`decode`]: GraphDelta::decode
    /// [`decode_with_symbols`]: GraphDelta::decode_with_symbols
    fn decode_body(r: &mut wire::Reader, sym_limit: u32) -> Result<GraphDelta, DeltaError> {
        let base_nodes = r.varint_usize("base_nodes")?;
        let mut delta = GraphDelta::new(base_nodes);

        let sym = |r: &mut wire::Reader| -> Result<Sym, DeltaError> {
            let s = r.varint_u32("symbol")?;
            if s >= sym_limit {
                return Err(DeltaError::SymOutOfRange {
                    sym: Sym(s),
                    limit: sym_limit,
                });
            }
            Ok(Sym(s))
        };
        let node = |r: &mut wire::Reader| -> Result<NodeId, DeltaError> {
            Ok(NodeId(r.varint_u32("node id")?))
        };

        let added = r.element_count("added_nodes")?;
        for i in 0..added {
            let id = base_nodes
                .checked_add(i)
                .filter(|&v| v <= u32::MAX as usize)
                .ok_or(DeltaError::Corrupt {
                    offset: r.offset(),
                    what: "added-node id overflows u32",
                })?;
            let label = sym(&mut *r)?;
            delta.added_nodes.push((NodeId(id as u32), label));
        }
        for list in [&mut delta.added_edges, &mut delta.removed_edges] {
            let count = r.element_count("edges")?;
            for _ in 0..count {
                let (src, dst) = (node(&mut *r)?, node(&mut *r)?);
                let label = sym(&mut *r)?;
                list.push(Edge { src, dst, label });
            }
        }
        let labels = r.element_count("label_changes")?;
        for _ in 0..labels {
            let n = node(&mut *r)?;
            let (old, new) = (sym(&mut *r)?, sym(&mut *r)?);
            delta.label_changes.push(LabelChange { node: n, old, new });
        }
        let attrs = r.element_count("attr_ops")?;
        for _ in 0..attrs {
            let n = node(&mut *r)?;
            let attr = sym(&mut *r)?;
            let value = r.value()?;
            delta.attr_ops.push(AttrOp {
                node: n,
                attr,
                value,
            });
        }
        // The id machinery the in-memory ingest path runs on wire
        // deltas: dense added-node ids (true by construction here) and
        // every mentioned id inside `base + added`.
        delta.check_ids(base_nodes)?;
        Ok(delta)
    }
}

/// Byte-level primitives shared by the [`GraphDelta`] and
/// [`crate::io::GraphData`] binary codecs: LEB128 varints, tagged
/// [`Value`]s, length-prefixed UTF-8 strings, and a bounds-checked
/// [`Reader`](wire::Reader) whose every error is a [`DeltaError`] —
/// hostile input surfaces as `Err`, never as a panic.
pub(crate) mod wire {
    use super::DeltaError;
    use crate::value::Value;
    use std::sync::Arc;

    /// Value kind tags; `TAG_NONE` encodes an attribute removal.
    const TAG_NONE: u8 = 0;
    const TAG_STR: u8 = 1;
    const TAG_INT: u8 = 2;
    const TAG_BOOL: u8 = 3;

    /// LEB128: 7 value bits per byte, high bit = continuation.
    pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// Length-prefixed UTF-8 bytes.
    pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
        put_varint(out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }

    /// Tagged value; `None` is an attribute removal.
    pub(crate) fn put_value(out: &mut Vec<u8>, v: Option<&Value>) {
        match v {
            None => out.push(TAG_NONE),
            Some(Value::Str(s)) => {
                out.push(TAG_STR);
                put_str(out, s);
            }
            Some(Value::Int(i)) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Some(Value::Bool(b)) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
        }
    }

    /// A bounds-checked cursor over untrusted bytes.
    pub(crate) struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(crate) fn new(bytes: &'a [u8]) -> Self {
            Reader { bytes, pos: 0 }
        }

        /// Current byte offset (for error reporting).
        pub(crate) fn offset(&self) -> usize {
            self.pos
        }

        fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        pub(crate) fn byte(&mut self) -> Result<u8, DeltaError> {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or(DeltaError::Truncated { offset: self.pos })?;
            self.pos += 1;
            Ok(b)
        }

        pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DeltaError> {
            if self.remaining() < n {
                return Err(DeltaError::Truncated {
                    offset: self.bytes.len(),
                });
            }
            let s = &self.bytes[self.pos..self.pos + n];
            self.pos += n;
            Ok(s)
        }

        /// LEB128 u64; overlong encodings (more than 10 bytes, or a
        /// final byte overflowing 64 bits) are corrupt, so every value
        /// has exactly one encoding.
        pub(crate) fn varint(&mut self) -> Result<u64, DeltaError> {
            let start = self.pos;
            let mut v: u64 = 0;
            for shift in (0..64).step_by(7) {
                let byte = self.byte()?;
                let low = (byte & 0x7F) as u64;
                if shift == 63 && low > 1 {
                    return Err(DeltaError::Corrupt {
                        offset: start,
                        what: "varint overflows u64",
                    });
                }
                v |= low << shift;
                if byte & 0x80 == 0 {
                    if byte == 0 && shift > 0 {
                        return Err(DeltaError::Corrupt {
                            offset: start,
                            what: "overlong varint",
                        });
                    }
                    return Ok(v);
                }
            }
            Err(DeltaError::Corrupt {
                offset: start,
                what: "varint longer than 10 bytes",
            })
        }

        /// A varint that must fit `u32` (node ids, symbols).
        pub(crate) fn varint_u32(&mut self, what: &'static str) -> Result<u32, DeltaError> {
            let offset = self.pos;
            u32::try_from(self.varint()?).map_err(|_| DeltaError::Corrupt {
                offset,
                what: wide32(what),
            })
        }

        /// A varint that must fit `usize`.
        pub(crate) fn varint_usize(&mut self, what: &'static str) -> Result<usize, DeltaError> {
            let offset = self.pos;
            usize::try_from(self.varint()?).map_err(|_| DeltaError::Corrupt {
                offset,
                what: wide32(what),
            })
        }

        /// An element count. Every encoded element occupies at least
        /// one byte, so a count beyond the remaining input is corrupt
        /// — this caps attacker-controlled pre-allocation at the size
        /// of the input itself.
        pub(crate) fn element_count(&mut self, what: &'static str) -> Result<usize, DeltaError> {
            let offset = self.pos;
            let n = self.varint_usize(what)?;
            if n > self.remaining() {
                return Err(DeltaError::Corrupt {
                    offset,
                    what: "element count exceeds input size",
                });
            }
            Ok(n)
        }

        /// Length-prefixed UTF-8.
        pub(crate) fn str(&mut self) -> Result<&'a str, DeltaError> {
            let len = self.varint_usize("string length")?;
            if len > self.remaining() {
                return Err(DeltaError::Truncated {
                    offset: self.bytes.len(),
                });
            }
            let offset = self.pos;
            std::str::from_utf8(self.take(len)?).map_err(|_| DeltaError::Corrupt {
                offset,
                what: "string is not UTF-8",
            })
        }

        /// Tagged value; unknown tags and non-0/1 booleans are corrupt.
        pub(crate) fn value(&mut self) -> Result<Option<Value>, DeltaError> {
            let offset = self.pos;
            match self.byte()? {
                TAG_NONE => Ok(None),
                TAG_STR => Ok(Some(Value::Str(Arc::from(self.str()?)))),
                TAG_INT => {
                    let raw = self.take(8)?;
                    Ok(Some(Value::Int(i64::from_le_bytes(
                        raw.try_into().expect("take(8) yields 8 bytes"),
                    ))))
                }
                TAG_BOOL => match self.byte()? {
                    0 => Ok(Some(Value::Bool(false))),
                    1 => Ok(Some(Value::Bool(true))),
                    _ => Err(DeltaError::Corrupt {
                        offset,
                        what: "boolean byte is neither 0 nor 1",
                    }),
                },
                _ => Err(DeltaError::Corrupt {
                    offset,
                    what: "unknown value tag",
                }),
            }
        }

        /// Asserts the input was consumed exactly.
        pub(crate) fn finish(self) -> Result<(), DeltaError> {
            if self.pos != self.bytes.len() {
                return Err(DeltaError::Corrupt {
                    offset: self.pos,
                    what: "trailing bytes after encoding",
                });
            }
            Ok(())
        }
    }

    /// Shared "doesn't fit 32 bits" message (the field name is carried
    /// by the caller's error site; keeping one static string per field
    /// would bloat the reader's signatures for no diagnostic gain).
    fn wide32(_what: &'static str) -> &'static str {
        "value too wide for its field"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: u32, d: u32, l: u32) -> Edge {
        Edge {
            src: NodeId(s),
            dst: NodeId(d),
            label: Sym(l),
        }
    }

    fn rich_delta() -> GraphDelta {
        let mut d = GraphDelta::new(3);
        d.added_nodes.push((NodeId(3), Sym(2)));
        d.added_nodes.push((NodeId(4), Sym(0)));
        d.added_edges.push(e(0, 3, 5));
        d.added_edges.push(e(4, 1, 5));
        d.removed_edges.push(e(1, 2, 6));
        d.label_changes.push(LabelChange {
            node: NodeId(2),
            old: Sym(1),
            new: Sym(3),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(7),
            value: Some(Value::str("spam")),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(3),
            attr: Sym(8),
            value: Some(Value::Int(-42)),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(4),
            attr: Sym(8),
            value: Some(Value::Bool(true)),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(1),
            attr: Sym(7),
            value: None,
        });
        d
    }

    #[test]
    fn codec_round_trip_is_identity() {
        let d = rich_delta();
        let mut bytes = Vec::new();
        d.encode_into(&mut bytes);
        let back = GraphDelta::decode(&bytes, 9).unwrap();
        assert_eq!(back, d);

        let empty = GraphDelta::new(17);
        bytes.clear();
        empty.encode_into(&mut bytes);
        let back = GraphDelta::decode(&bytes, 0).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn codec_rejects_truncation_trailing_bytes_and_small_vocab() {
        let d = rich_delta();
        let mut bytes = Vec::new();
        d.encode_into(&mut bytes);
        // Every strict prefix must fail cleanly (torn-tail shape).
        for cut in 0..bytes.len() {
            assert!(GraphDelta::decode(&bytes[..cut], 9).is_err());
        }
        // Trailing garbage is corrupt, not silently ignored.
        bytes.push(0);
        assert!(matches!(
            GraphDelta::decode(&bytes, 9),
            Err(DeltaError::Corrupt { .. })
        ));
        bytes.pop();
        // A symbol past the claimed vocabulary is rejected even though
        // the bytes are otherwise perfectly formed.
        assert!(matches!(
            GraphDelta::decode(&bytes, 8),
            Err(DeltaError::SymOutOfRange { limit: 8, .. })
        ));
    }

    #[test]
    fn codec_rejects_overlong_varints_and_absurd_counts() {
        // 0x80 0x00 is an overlong encoding of zero.
        assert!(matches!(
            GraphDelta::decode(&[0x80, 0x00], 1),
            Err(DeltaError::Corrupt { .. })
        ));
        // base_nodes = 0, then an added-node count far beyond the
        // remaining bytes: must be rejected before any allocation.
        assert!(matches!(
            GraphDelta::decode(&[0x00, 0xFF, 0xFF, 0xFF, 0x7F], 1),
            Err(DeltaError::Corrupt { .. })
        ));
    }

    #[test]
    fn normalize_cancels_edge_flip_flops() {
        let mut d = GraphDelta::new(4);
        // Fresh edge added then removed: cancels.
        d.added_edges.push(e(0, 1, 7));
        d.removed_edges.push(e(0, 1, 7));
        // Base edge removed then re-added: cancels.
        d.removed_edges.push(e(1, 2, 7));
        d.added_edges.push(e(1, 2, 7));
        // Fresh edge added, removed, re-added: survives as one add.
        d.added_edges.push(e(2, 3, 7));
        d.removed_edges.push(e(2, 3, 7));
        d.added_edges.push(e(2, 3, 7));
        let d = d.normalize();
        assert_eq!(d.added_edges, vec![e(2, 3, 7)]);
        assert!(d.removed_edges.is_empty());
        assert!(!d.is_empty());
    }

    #[test]
    fn normalize_coalesces_label_chains() {
        let mut d = GraphDelta::new(2);
        d.added_nodes.push((NodeId(2), Sym(0)));
        // Base node relabeled twice: keeps first old / last new.
        for (old, new) in [(Sym(1), Sym(2)), (Sym(2), Sym(3))] {
            d.label_changes.push(LabelChange {
                node: NodeId(0),
                old,
                new,
            });
        }
        // Back-and-forth on another base node: drops out entirely.
        for (old, new) in [(Sym(5), Sym(6)), (Sym(6), Sym(5))] {
            d.label_changes.push(LabelChange {
                node: NodeId(1),
                old,
                new,
            });
        }
        // Added node relabeled: folds into added_nodes.
        d.label_changes.push(LabelChange {
            node: NodeId(2),
            old: Sym(0),
            new: Sym(9),
        });
        let d = d.normalize();
        assert_eq!(
            d.label_changes,
            vec![LabelChange {
                node: NodeId(0),
                old: Sym(1),
                new: Sym(3)
            }]
        );
        assert_eq!(d.added_nodes, vec![(NodeId(2), Sym(9))]);
    }

    #[test]
    fn normalize_keeps_last_attr_write() {
        let mut d = GraphDelta::new(1);
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(4),
            value: Some(Value::Int(1)),
        });
        d.attr_ops.push(AttrOp {
            node: NodeId(0),
            attr: Sym(4),
            value: None,
        });
        let d = d.normalize();
        assert_eq!(d.attr_ops.len(), 1);
        assert_eq!(d.attr_ops[0].value, None);
    }

    #[test]
    fn touched_nodes_sorted_dedup() {
        let mut d = GraphDelta::new(5);
        d.added_edges.push(e(3, 1, 0));
        d.removed_edges.push(e(1, 4, 0));
        d.attr_ops.push(AttrOp {
            node: NodeId(3),
            attr: Sym(0),
            value: None,
        });
        let touched = d.touched_nodes();
        assert_eq!(touched, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }
}
