//! # gfd-graph — property-graph substrate for GFDs
//!
//! This crate implements the data model of Section 2 of *Functional
//! Dependencies for Graphs* (Fan, Wu & Xu, SIGMOD 2016): directed graphs
//! `G = (V, E, L, F_A)` with labeled nodes and edges and an attribute
//! tuple `F_A(v)` per node, plus every graph-side facility the GFD
//! algorithms of Sections 5–6 need:
//!
//! * interned labels and attribute names ([`Vocab`], [`Sym`]);
//! * attribute values ([`Value`]) and per-node attribute maps ([`AttrMap`]);
//! * the graph itself, split into a mutable [`GraphBuilder`] and an
//!   immutable CSR snapshot [`Graph`] produced by
//!   [`GraphBuilder::freeze`] — flat offset/adjacency arrays in both
//!   directions with edge runs sorted by `(label, dst)`, and label
//!   extents as contiguous ranges over a node permutation (see
//!   [`graph`] module docs for the layout rationale);
//! * recorded edit deltas ([`GraphDelta`], module [`delta`]): every
//!   thaw/edit session captures its mutations, refreezing patches the
//!   CSR ([`graph::Graph::apply_delta`]) instead of rebuilding, and
//!   the delta feeds the incremental maintenance subsystems in
//!   `gfd-match`/`gfd-core`/`gfd-parallel`;
//! * `k`-hop neighborhoods and induced subgraphs — the data blocks
//!   `G_z̄` of work units (module [`neighborhood`]);
//! * sorted-slice intersection kernels (merge + galloping) used by the
//!   matcher's candidate-pool refinement (module [`intersect`]);
//! * fragmentations `(F_1, …, F_n)` with in-/out-border nodes for the
//!   distributed setting of §6.2 (module [`fragment`]);
//! * statistics used by workload estimation: label frequencies and
//!   equi-depth histograms (module [`stats`]);
//! * a plain-text interchange format and a self-contained snapshot
//!   form ([`GraphData`], module [`io`]); both [`GraphDelta`] and
//!   [`GraphData`] also carry a plain-bytes binary codec
//!   (`encode_into`/`decode`) whose decoder is hardened against
//!   hostile input — it is the record payload of the durable
//!   write-ahead log in `gfd-parallel`.
//!
//! The crate is fully self-contained (no external dependencies);
//! everything the paper's algorithms touch is implemented here from
//! scratch.

pub mod attrs;
pub mod delta;
pub mod fragment;
pub mod graph;
pub mod intersect;
pub mod io;
pub mod neighborhood;
pub mod stats;
pub mod value;
pub mod vocab;

pub use attrs::AttrMap;
pub use delta::{AttrOp, DeltaError, GraphDelta, LabelChange};
pub use fragment::{FragmentId, Fragmentation, PartitionStrategy};
pub use graph::{Adj, Edge, Graph, GraphBuilder, NodeId};
pub use io::GraphData;
pub use neighborhood::NodeSet;
pub use stats::{EquiDepthHistogram, GraphStats};
pub use value::Value;
pub use vocab::{Sym, Vocab};
