//! Per-node attribute tuples `F_A(v) = (A_1 = a_1, …, A_n = a_n)`.
//!
//! Stored as a small sorted vector keyed by interned attribute name —
//! nodes in real graphs carry a handful of attributes, so binary search
//! over a dense vector beats a hash map in both space and time.

use crate::value::Value;
use crate::vocab::Sym;

/// The attribute tuple of one node, sorted by attribute symbol.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttrMap {
    entries: Vec<(Sym, Value)>,
}

impl AttrMap {
    /// Creates an empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the value of attribute `attr`, if the node has it.
    ///
    /// GFD semantics depend on attribute *absence*: a literal `x.A = c`
    /// in the antecedent `X` is unsatisfied (and the GFD holds
    /// trivially) when `h(x)` has no attribute `A` (§3).
    pub fn get(&self, attr: Sym) -> Option<&Value> {
        self.entries
            .binary_search_by_key(&attr, |(a, _)| *a)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// True if the node carries attribute `attr`.
    pub fn contains(&self, attr: Sym) -> bool {
        self.get(attr).is_some()
    }

    /// Sets `attr = value`, replacing any previous value.
    pub fn set(&mut self, attr: Sym, value: Value) {
        match self.entries.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (attr, value)),
        }
    }

    /// Removes `attr`, returning its previous value.
    pub fn remove(&mut self, attr: Sym) -> Option<Value> {
        match self.entries.binary_search_by_key(&attr, |(a, _)| *a) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Number of attributes on the node.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the node has no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(attribute, value)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &Value)> + '_ {
        self.entries.iter().map(|(a, v)| (*a, v))
    }

    /// Approximate serialized size in bytes (communication cost model).
    pub fn wire_size(&self) -> usize {
        self.entries.iter().map(|(_, v)| 4 + v.wire_size()).sum()
    }
}

impl FromIterator<(Sym, Value)> for AttrMap {
    fn from_iter<T: IntoIterator<Item = (Sym, Value)>>(iter: T) -> Self {
        let mut m = AttrMap::new();
        for (a, v) in iter {
            m.set(a, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn set_get_replace() {
        let mut m = AttrMap::new();
        m.set(s(3), Value::Int(1));
        m.set(s(1), Value::str("a"));
        m.set(s(2), Value::Bool(true));
        assert_eq!(m.get(s(1)), Some(&Value::str("a")));
        assert_eq!(m.get(s(3)), Some(&Value::Int(1)));
        m.set(s(3), Value::Int(9));
        assert_eq!(m.get(s(3)), Some(&Value::Int(9)));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn entries_stay_sorted() {
        let mut m = AttrMap::new();
        for i in [5u32, 1, 4, 2, 3] {
            m.set(s(i), Value::Int(i as i64));
        }
        let keys: Vec<u32> = m.iter().map(|(a, _)| a.0).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn missing_attribute_absent() {
        let m = AttrMap::new();
        assert!(!m.contains(s(0)));
        assert_eq!(m.get(s(0)), None);
    }

    #[test]
    fn remove_returns_value() {
        let mut m = AttrMap::new();
        m.set(s(1), Value::Int(7));
        assert_eq!(m.remove(s(1)), Some(Value::Int(7)));
        assert_eq!(m.remove(s(1)), None);
        assert!(m.is_empty());
    }
}
