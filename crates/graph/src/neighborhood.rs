//! `k`-hop neighborhoods and induced subgraphs — the data blocks `G_z̄`.
//!
//! §5.2: a work unit for a GFD `ϕ` with pivot vector
//! `PV(ϕ) = ((z_1, c¹_Q), …)` carries, for each pivot candidate
//! `σ(z_i)`, the subgraph induced by all nodes within `c^i_Q` hops.
//! "Hops" are undirected: by the locality of subgraph isomorphism,
//! every node of a match is within radius hops of the pivot's image
//! along undirected paths.
//!
//! Data blocks are represented as [`NodeSet`]s (sorted node-id sets)
//! instead of copied graphs: the matcher restricts its search to the
//! set, which avoids materializing a subgraph per work unit. An
//! explicit [`induced_subgraph`] is provided for when a standalone
//! graph is needed (tests, shipping blocks between fragments).

use std::collections::HashMap;

use crate::graph::{Graph, GraphBuilder, NodeId};

/// A sorted set of node ids; the node side of a data block `G_z̄`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSet {
    sorted: Vec<NodeId>,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from an arbitrary list (sorts and dedups).
    pub fn from_vec(mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        NodeSet { sorted: nodes }
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.sorted.binary_search(&node).is_ok()
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Iterates in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sorted.iter().copied()
    }

    /// The sorted ids as a slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.sorted
    }

    /// Set union.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut merged = Vec::with_capacity(self.len() + other.len());
        merged.extend_from_slice(&self.sorted);
        merged.extend_from_slice(&other.sorted);
        NodeSet::from_vec(merged)
    }

    /// Number of edges of `g` with both endpoints inside the set.
    pub fn internal_edge_count(&self, g: &Graph) -> usize {
        self.iter()
            .map(|u| {
                g.out_slice(u)
                    .iter()
                    .filter(|a| self.contains(a.node))
                    .count()
            })
            .sum()
    }

    /// `|G_z̄| = nodes + internal edges` — the block-size measure used by
    /// workload estimation (Example 11).
    pub fn block_size(&self, g: &Graph) -> usize {
        self.len() + self.internal_edge_count(g)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        NodeSet::from_vec(iter.into_iter().collect())
    }
}

/// All nodes within `k` undirected hops of any seed (including seeds).
///
/// Dense-bitmap BFS: one `|V|`-byte visited array beats hash-map
/// bookkeeping for the small, frequent blocks workload estimation
/// builds (one per pivot candidate).
pub fn khop_nodes(g: &Graph, seeds: &[NodeId], k: usize) -> NodeSet {
    let mut visited = vec![false; g.node_count()];
    khop_nodes_scratch(g, seeds, k, &mut visited)
}

/// Scratch-reusing variant of [`khop_nodes`] for callers that build
/// many blocks: `visited` must be all-`false` and is restored to
/// all-`false` on return (only the entries the BFS touched are reset,
/// so reuse costs `O(|block|)`, not `O(|V|)`).
pub fn khop_nodes_scratch(g: &Graph, seeds: &[NodeId], k: usize, visited: &mut [bool]) -> NodeSet {
    debug_assert!(visited.len() >= g.node_count());
    debug_assert!(visited.iter().all(|&b| !b), "scratch must start clear");
    let mut reached: Vec<NodeId> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if !std::mem::replace(&mut visited[s.index()], true) {
            reached.push(s);
        }
    }
    // `reached[lo..]` is the current frontier; appending extends the
    // next one in place.
    let mut lo = 0;
    for _ in 0..k {
        let hi = reached.len();
        if lo == hi {
            break;
        }
        for i in lo..hi {
            let u = reached[i];
            for v in g.neighbors(u) {
                if !std::mem::replace(&mut visited[v.index()], true) {
                    reached.push(v);
                }
            }
        }
        lo = hi;
    }
    for &u in &reached {
        visited[u.index()] = false;
    }
    NodeSet::from_vec(reached)
}

/// The `c`-neighbor data block of a single pivot candidate.
pub fn data_block(g: &Graph, pivot: NodeId, radius: usize) -> NodeSet {
    khop_nodes(g, &[pivot], radius)
}

/// Materializes the subgraph of `g` induced by `nodes`.
///
/// Returns the new graph and the mapping from original node ids to ids
/// in the new graph. Labels/attributes are preserved; the new graph
/// shares `g`'s vocabulary.
pub fn induced_subgraph(g: &Graph, nodes: &NodeSet) -> (Graph, HashMap<NodeId, NodeId>) {
    let mut sub = GraphBuilder::new(g.vocab().clone());
    let mut map = HashMap::with_capacity(nodes.len());
    for u in nodes.iter() {
        let nu = sub.add_node(g.label(u));
        for (a, v) in g.attrs(u).iter() {
            sub.set_attr(nu, a, v.clone());
        }
        map.insert(u, nu);
    }
    for u in nodes.iter() {
        for a in g.out_slice(u) {
            if let Some(&nv) = map.get(&a.node) {
                sub.add_edge(map[&u], nv, a.label);
            }
        }
    }
    (sub.freeze(), map)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A directed path a -> b -> c -> d plus an edge e -> c.
    fn path_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::with_fresh_vocab();
        let ns: Vec<NodeId> = (0..5)
            .map(|i| b.add_node_labeled(&format!("l{i}")))
            .collect();
        b.add_edge_labeled(ns[0], ns[1], "e");
        b.add_edge_labeled(ns[1], ns[2], "e");
        b.add_edge_labeled(ns[2], ns[3], "e");
        b.add_edge_labeled(ns[4], ns[2], "e");
        (b.freeze(), ns)
    }

    #[test]
    fn zero_hop_is_seed_only() {
        let (g, ns) = path_graph();
        let set = khop_nodes(&g, &[ns[1]], 0);
        assert_eq!(set.as_slice(), &[ns[1]]);
    }

    #[test]
    fn one_hop_is_undirected() {
        let (g, ns) = path_graph();
        let set = khop_nodes(&g, &[ns[2]], 1);
        // In-neighbors b and e, out-neighbor d, plus c itself.
        assert_eq!(set.len(), 4);
        assert!(set.contains(ns[1]) && set.contains(ns[3]) && set.contains(ns[4]));
        assert!(!set.contains(ns[0]));
    }

    #[test]
    fn khop_is_monotone_in_k() {
        let (g, ns) = path_graph();
        let mut prev = 0;
        for k in 0..4 {
            let set = khop_nodes(&g, &[ns[0]], k);
            assert!(set.len() >= prev);
            prev = set.len();
        }
        assert_eq!(khop_nodes(&g, &[ns[0]], 4).len(), 5);
    }

    #[test]
    fn block_size_counts_nodes_and_internal_edges() {
        let (g, ns) = path_graph();
        let set = khop_nodes(&g, &[ns[2]], 1); // {b, c, d, e}
                                               // Internal edges: b->c, c->d, e->c.
        assert_eq!(set.internal_edge_count(&g), 3);
        assert_eq!(set.block_size(&g), 7);
    }

    #[test]
    fn induced_subgraph_preserves_structure() {
        let (g, ns) = path_graph();
        let set = khop_nodes(&g, &[ns[2]], 1);
        let (sub, map) = induced_subgraph(&g, &set);
        assert_eq!(sub.node_count(), 4);
        assert_eq!(sub.edge_count(), 3);
        let e = g.vocab().lookup("e").unwrap();
        assert!(sub.has_edge(map[&ns[1]], map[&ns[2]], e));
        assert!(sub.has_edge(map[&ns[4]], map[&ns[2]], e));
        assert_eq!(sub.label(map[&ns[2]]), g.label(ns[2]));
    }

    #[test]
    fn nodeset_union_and_membership() {
        let a = NodeSet::from_vec(vec![NodeId(1), NodeId(3)]);
        let b = NodeSet::from_vec(vec![NodeId(2), NodeId(3)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(NodeId(1)) && u.contains(NodeId(2)) && u.contains(NodeId(3)));
        assert!(!u.contains(NodeId(0)));
    }
}
