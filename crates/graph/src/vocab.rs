//! Symbol interning for node labels, edge labels and attribute names.
//!
//! Graphs and patterns agree on label identity by sharing one [`Vocab`]
//! (typically behind an [`std::sync::Arc`]). Interning makes label
//! comparison during subgraph-isomorphism search a `u32` compare, which
//! is the hot operation of GFD validation.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// An interned symbol: a node label, edge label or attribute name.
///
/// `Sym` values are only meaningful relative to the [`Vocab`] that
/// produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

impl Sym {
    /// Index into the owning vocabulary's symbol table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

#[derive(Default)]
struct VocabInner {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, Sym>,
}

/// An append-only, thread-safe symbol table.
///
/// ```
/// use gfd_graph::Vocab;
/// let vocab = Vocab::new();
/// let flight = vocab.intern("flight");
/// assert_eq!(vocab.intern("flight"), flight);
/// assert_eq!(vocab.resolve(flight).as_ref(), "flight");
/// ```
#[derive(Default)]
pub struct Vocab {
    inner: RwLock<VocabInner>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vocabulary behind an `Arc`, the usual way one is
    /// shared between a [`crate::Graph`] and the patterns matched on it.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Interns `name`, returning its symbol. Idempotent.
    pub fn intern(&self, name: &str) -> Sym {
        if let Some(&sym) = self
            .inner
            .read()
            .expect("vocab lock poisoned: a holder panicked")
            .index
            .get(name)
        {
            return sym;
        }
        let mut inner = self
            .inner
            .write()
            .expect("vocab lock poisoned: a holder panicked");
        if let Some(&sym) = inner.index.get(name) {
            return sym; // raced with another writer
        }
        let sym = Sym(inner.names.len() as u32);
        let name: Arc<str> = Arc::from(name);
        inner.names.push(name.clone());
        inner.index.insert(name, sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.inner
            .read()
            .expect("vocab lock poisoned: a holder panicked")
            .index
            .get(name)
            .copied()
    }

    /// Returns the string for `sym`.
    ///
    /// # Panics
    /// Panics if `sym` was produced by a different vocabulary and is out
    /// of range here.
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        self.inner
            .read()
            .expect("vocab lock poisoned: a holder panicked")
            .names[sym.index()]
        .clone()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("vocab lock poisoned: a holder panicked")
            .names
            .len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All interned names in symbol order (for serialization).
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner
            .read()
            .expect("vocab lock poisoned: a holder panicked")
            .names
            .clone()
    }
}

impl fmt::Debug for Vocab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vocab").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let v = Vocab::new();
        let a = v.intern("account");
        let b = v.intern("blog");
        assert_ne!(a, b);
        assert_eq!(v.intern("account"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let v = Vocab::new();
        for name in ["flight", "city", "country", "capital"] {
            let s = v.intern(name);
            assert_eq!(v.resolve(s).as_ref(), name);
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let v = Vocab::new();
        assert_eq!(v.lookup("missing"), None);
        assert_eq!(v.len(), 0);
        let s = v.intern("present");
        assert_eq!(v.lookup("present"), Some(s));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let v = Arc::new(Vocab::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let v = v.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| v.intern(&format!("l{}", i % 10)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(v.len(), 10);
    }
}
