//! Sorted-slice intersection kernels for candidate-pool refinement.
//!
//! The matcher's candidate pools are intersections of sorted node
//! lists: label extents, per-label CSR runs (sorted by `(label, dst)`,
//! so a single-label subrange is sorted by node), simulation candidate
//! sets and data blocks. Intersecting them wants two regimes:
//!
//! * **merge** — one linear two-pointer pass when the inputs have
//!   comparable sizes;
//! * **galloping** — when one side is at least [`GALLOP_RATIO`]×
//!   smaller, binary-search each element of the small side in the big
//!   one (`O(small · log big)` beats the linear pass).
//!
//! The helpers are generic over the element type via a key extractor,
//! so both `&[NodeId]` lists and `&[Adj]` CSR runs intersect without
//! materializing intermediate id vectors, and they work *in place* on
//! a caller-owned accumulator so refinement chains allocate nothing.

use crate::graph::NodeId;

/// Size ratio at which intersection switches from a linear merge to
/// galloping binary search on the larger side.
pub const GALLOP_RATIO: usize = 32;

/// Appends the keys of `src` to `out` (no clearing, no sorting — the
/// caller picks a `src` whose keys are already ascending).
#[inline]
pub fn extend_keys<T>(out: &mut Vec<NodeId>, src: &[T], key: impl Fn(&T) -> NodeId) {
    out.extend(src.iter().map(key));
}

/// Debug-build check of the kernels' precondition: keys strictly
/// ascending, hence duplicate-free. The trap this guards against is
/// real in this codebase: a *multi-label* CSR out-run is sorted by
/// `(label, dst)` and may repeat a dst across labels — such a run
/// passed as `other` silently drops or keeps the wrong survivors in
/// the galloping paths (binary search over non-sorted keys). Callers
/// must pass single-label subranges (`neighbors_labeled`) or
/// pre-deduplicated id lists; wildcard runs are sorted/deduped before
/// they reach a kernel (see `ComponentSearch::fill_candidates`).
#[inline]
fn debug_assert_ascending<T>(side: &str, items: &[T], key: &impl Fn(&T) -> NodeId) {
    if cfg!(debug_assertions) {
        for w in items.windows(2) {
            debug_assert!(
                key(&w[0]) < key(&w[1]),
                "intersect_in_place: `{side}` keys must be strictly ascending \
                 (got {:?} before {:?} — a multi-label CSR run?)",
                key(&w[0]),
                key(&w[1]),
            );
        }
    }
}

/// Intersects the sorted accumulator with a second sorted list in
/// place: `acc` keeps exactly the ids that also occur as keys of
/// `other`. Both inputs must be ascending and duplicate-free (checked
/// by a debug assertion; see the module docs for why multi-label CSR
/// runs violate this); the result then is too. Chooses merge vs
/// galloping by size ratio.
pub fn intersect_in_place<T>(acc: &mut Vec<NodeId>, other: &[T], key: impl Fn(&T) -> NodeId) {
    debug_assert_ascending("acc", acc, &|&x: &NodeId| x);
    debug_assert_ascending("other", other, &key);
    if acc.is_empty() || other.is_empty() {
        acc.clear();
        return;
    }
    if other.len() / GALLOP_RATIO >= acc.len() {
        // acc is tiny: gallop into `other`.
        acc.retain(|&x| other.binary_search_by(|t| key(t).cmp(&x)).is_ok());
        return;
    }
    if acc.len() / GALLOP_RATIO >= other.len() {
        // `other` is tiny: gallop into acc, writing survivors forward.
        let mut w = 0;
        for t in other {
            let x = key(t);
            if acc.binary_search(&x).is_ok() {
                acc[w] = x;
                w += 1;
            }
        }
        acc.truncate(w);
        return;
    }
    // Comparable sizes: linear two-pointer merge, in place.
    let mut w = 0;
    let mut i = 0;
    let mut j = 0;
    while i < acc.len() && j < other.len() {
        let a = acc[i];
        let b = key(&other[j]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc[w] = a;
                w += 1;
                i += 1;
                j += 1;
            }
        }
    }
    acc.truncate(w);
}

/// K-way intersection of sorted, duplicate-free runs into a
/// caller-owned accumulator (leapfrog-style smallest-first seeding).
///
/// `acc` is cleared and seeded from the *smallest* run, then the
/// remaining runs are folded in smallest-first via
/// [`intersect_in_place`] — each pairwise step picks merge vs gallop
/// on its own, so a tiny seed gallops through every huge run and the
/// intermediate result can only shrink. Reorders `runs` (ascending by
/// length); an empty run (or an accumulator emptied mid-fold) exits
/// early with `acc` empty. With zero runs `acc` stays cleared: the
/// caller decides what an unconstrained variable means.
pub fn intersect_k(acc: &mut Vec<NodeId>, runs: &mut [&[NodeId]]) {
    acc.clear();
    if runs.is_empty() {
        return;
    }
    runs.sort_unstable_by_key(|r| r.len());
    if runs[0].is_empty() {
        return;
    }
    acc.extend_from_slice(runs[0]);
    for run in &runs[1..] {
        intersect_in_place(acc, run, |&x| x);
        if acc.is_empty() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn merge_path_intersects() {
        let mut acc = ids(&[1, 3, 5, 7, 9]);
        let other = ids(&[2, 3, 4, 7, 10]);
        intersect_in_place(&mut acc, &other, |&x| x);
        assert_eq!(acc, ids(&[3, 7]));
    }

    #[test]
    fn empty_sides_clear() {
        let mut acc = ids(&[1, 2]);
        intersect_in_place(&mut acc, &[], |&x: &NodeId| x);
        assert!(acc.is_empty());
        let mut acc: Vec<NodeId> = Vec::new();
        intersect_in_place(&mut acc, &ids(&[1]), |&x| x);
        assert!(acc.is_empty());
    }

    #[test]
    fn gallop_small_acc() {
        // other is ≥ 32× larger than acc → acc-side galloping.
        let other: Vec<NodeId> = (0..1000).map(|i| NodeId(2 * i)).collect();
        let mut acc = ids(&[4, 5, 500, 1998]);
        intersect_in_place(&mut acc, &other, |&x| x);
        assert_eq!(acc, ids(&[4, 500, 1998]));
    }

    #[test]
    fn gallop_small_other() {
        let mut acc: Vec<NodeId> = (0..1000).map(|i| NodeId(2 * i)).collect();
        let other = ids(&[3, 6, 7, 1998]);
        intersect_in_place(&mut acc, &other, |&x| x);
        assert_eq!(acc, ids(&[6, 1998]));
    }

    #[test]
    fn agrees_with_naive_across_regimes() {
        // Cross-check all three code paths against a hash-set oracle.
        for (na, nb, step) in [
            (10usize, 10usize, 3u32),
            (4, 400, 7),
            (400, 4, 5),
            (64, 64, 2),
        ] {
            let a: Vec<NodeId> = (0..na as u32).map(|i| NodeId(i * step)).collect();
            let b: Vec<NodeId> = (0..nb as u32).map(|i| NodeId(i * 3)).collect();
            let expect: Vec<NodeId> = a
                .iter()
                .copied()
                .filter(|x| b.binary_search(x).is_ok())
                .collect();
            let mut acc = a.clone();
            intersect_in_place(&mut acc, &b, |&x| x);
            assert_eq!(acc, expect, "sizes {na}/{nb} step {step}");
        }
    }

    /// Regression guard for the undocumented precondition: a
    /// duplicate-key `Adj` run — exactly what a multi-label CSR
    /// out-run looks like when one dst repeats under two labels — must
    /// trip the debug assertion instead of silently mis-intersecting.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_key_adj_run_is_rejected() {
        use crate::graph::Adj;
        use crate::vocab::Sym;
        // dst 4 repeats under labels 1 and 2: sorted by (label, dst),
        // but its node keys are NOT ascending (4, 6, 4).
        let run: Vec<Adj> = [(1u32, 4u32), (1, 6), (2, 4)]
            .iter()
            .map(|&(l, n)| Adj {
                label: Sym(l),
                node: NodeId(n),
            })
            .collect();
        let mut acc = ids(&[4, 5, 6]);
        intersect_in_place(&mut acc, &run, |a| a.node);
    }

    /// Adversarial skew at the merge/gallop crossover: sizes exactly
    /// at, one below, and one above the `GALLOP_RATIO` boundary on
    /// both sides must all agree with the set-semantics oracle.
    #[test]
    fn crossover_boundary_is_exact() {
        for small in [1usize, 2, 3, 7] {
            for big in [
                small * GALLOP_RATIO - 1,
                small * GALLOP_RATIO,
                small * GALLOP_RATIO + 1,
            ] {
                let a: Vec<NodeId> = (0..small as u32).map(|i| NodeId(i * 5)).collect();
                let b: Vec<NodeId> = (0..big as u32).map(|i| NodeId(i * 2)).collect();
                let expect: Vec<NodeId> = a
                    .iter()
                    .copied()
                    .filter(|x| b.binary_search(x).is_ok())
                    .collect();
                // Small accumulator vs big other…
                let mut acc = a.clone();
                intersect_in_place(&mut acc, &b, |&x| x);
                assert_eq!(acc, expect, "acc {small} / other {big}");
                // …and the mirrored orientation.
                let mut acc = b.clone();
                intersect_in_place(&mut acc, &a, |&x| x);
                assert_eq!(acc, expect, "acc {big} / other {small}");
            }
        }
    }

    /// Tiny-vs-huge skew: a 1-element side against a run thousands of
    /// times larger, hitting both hit and miss outcomes.
    #[test]
    fn tiny_vs_huge_runs() {
        let huge: Vec<NodeId> = (0..100_000u32).map(|i| NodeId(3 * i)).collect();
        for (probe, hit) in [(299_997u32, true), (299_998, false)] {
            let mut acc = vec![NodeId(probe)];
            intersect_in_place(&mut acc, &huge, |&x| x);
            assert_eq!(!acc.is_empty(), hit, "probe {probe}");
            let mut acc = huge.clone();
            intersect_in_place(&mut acc, &[NodeId(probe)], |&x| x);
            assert_eq!(!acc.is_empty(), hit, "mirrored probe {probe}");
        }
    }

    /// Heavy-overlap skew: a small side fully contained in the huge
    /// side survives intact in either orientation (every lookup hits —
    /// the worst case for galloping's branch predictor).
    #[test]
    fn heavy_overlap_small_side_survives() {
        let huge: Vec<NodeId> = (0..50_000u32).map(NodeId).collect();
        let small: Vec<NodeId> = (0..100u32).map(|i| NodeId(i * 499)).collect();
        let mut acc = small.clone();
        intersect_in_place(&mut acc, &huge, |&x| x);
        assert_eq!(acc, small);
        let mut acc = huge.clone();
        intersect_in_place(&mut acc, &small, |&x| x);
        assert_eq!(acc, small);
    }

    #[test]
    fn intersect_k_agrees_with_chained_pairwise() {
        let a: Vec<NodeId> = (0..600u32).map(|i| NodeId(2 * i)).collect();
        let b: Vec<NodeId> = (0..400u32).map(|i| NodeId(3 * i)).collect();
        let c: Vec<NodeId> = (0..5000u32).map(NodeId).collect();
        let d = ids(&[0, 6, 12, 600, 1198]);
        let expect: Vec<NodeId> = d
            .iter()
            .copied()
            .filter(|x| {
                a.binary_search(x).is_ok()
                    && b.binary_search(x).is_ok()
                    && c.binary_search(x).is_ok()
            })
            .collect();
        let mut acc = Vec::new();
        let mut runs: [&[NodeId]; 4] = [&a, &b, &c, &d];
        intersect_k(&mut acc, &mut runs);
        assert_eq!(acc, expect);
        // Smallest-first seeding: the slice is reordered ascending.
        assert!(runs.windows(2).all(|w| w[0].len() <= w[1].len()));
    }

    #[test]
    fn intersect_k_empty_run_exits_early() {
        let a = ids(&[1, 2, 3]);
        let empty: &[NodeId] = &[];
        let mut acc = ids(&[9, 9, 9]);
        intersect_k(&mut acc, &mut [&a, empty, &a]);
        assert!(acc.is_empty());
        // Zero runs also just clears.
        let mut acc = ids(&[7]);
        intersect_k(&mut acc, &mut []);
        assert!(acc.is_empty());
    }

    #[test]
    fn intersect_k_single_run_copies() {
        let a = ids(&[2, 4, 8]);
        let mut acc = ids(&[1]);
        intersect_k(&mut acc, &mut [&a]);
        assert_eq!(acc, a);
    }

    #[test]
    fn intersect_k_disjoint_runs_empty() {
        let a = ids(&[1, 3, 5]);
        let b = ids(&[2, 4, 6]);
        let c = ids(&[1, 2, 3, 4, 5, 6]);
        let mut acc = Vec::new();
        intersect_k(&mut acc, &mut [&c, &a, &b]);
        assert!(acc.is_empty());
    }

    #[test]
    fn keyed_extraction_works() {
        use crate::graph::Adj;
        use crate::vocab::Sym;
        let run: Vec<Adj> = [2u32, 4, 6]
            .iter()
            .map(|&n| Adj {
                label: Sym(1),
                node: NodeId(n),
            })
            .collect();
        let mut acc = ids(&[1, 2, 3, 4]);
        intersect_in_place(&mut acc, &run, |a| a.node);
        assert_eq!(acc, ids(&[2, 4]));
        let mut out = Vec::new();
        extend_keys(&mut out, &run, |a| a.node);
        assert_eq!(out, ids(&[2, 4, 6]));
    }
}
