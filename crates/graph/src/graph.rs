//! The property graph `G = (V, E, L, F_A)` of §2.
//!
//! * nodes carry an interned label and an [`AttrMap`];
//! * edges are directed, labeled, and unique per `(src, dst, label)`
//!   triple (parallel edges with distinct labels are allowed, as in
//!   property graphs and RDF);
//! * adjacency is kept both ways and sorted, so the matcher's hot
//!   operation `has_edge(u, v, label)` is a binary search;
//! * a label index maps each node label to its extent — the candidate
//!   set `C(µ(z))` of workload estimation (§6.1).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::attrs::AttrMap;
use crate::value::Value;
use crate::vocab::{Sym, Vocab};

/// Identifier of a node in a [`Graph`] (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed labeled edge `(src, dst, label)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Interned edge label.
    pub label: Sym,
}

/// A directed property graph with labeled nodes/edges and node attributes.
///
/// ```
/// use gfd_graph::{Graph, Value, Vocab};
/// let vocab = Vocab::shared();
/// let mut g = Graph::new(vocab.clone());
/// let flight = g.add_node_labeled("flight");
/// let id = g.add_node_labeled("id");
/// g.add_edge_labeled(flight, id, "number");
/// g.set_attr_named(id, "val", Value::str("DL1"));
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
pub struct Graph {
    vocab: Arc<Vocab>,
    labels: Vec<Sym>,
    attrs: Vec<AttrMap>,
    /// Outgoing adjacency per node, sorted by `(dst, label)`.
    out: Vec<Vec<(NodeId, Sym)>>,
    /// Incoming adjacency per node, sorted by `(src, label)`.
    inn: Vec<Vec<(NodeId, Sym)>>,
    label_index: HashMap<Sym, Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an empty graph over the given vocabulary.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        Graph {
            vocab,
            labels: Vec::new(),
            attrs: Vec::new(),
            out: Vec::new(),
            inn: Vec::new(),
            label_index: HashMap::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with a fresh private vocabulary.
    pub fn with_fresh_vocab() -> Self {
        Self::new(Vocab::shared())
    }

    /// The shared vocabulary of this graph.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    // ------------------------------------------------------------------
    // construction

    /// Adds a node with the given (already interned) label.
    pub fn add_node(&mut self, label: Sym) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.attrs.push(AttrMap::new());
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        self.label_index.entry(label).or_default().push(id);
        id
    }

    /// Adds a node, interning `label` first.
    pub fn add_node_labeled(&mut self, label: &str) -> NodeId {
        let sym = self.vocab.intern(label);
        self.add_node(sym)
    }

    /// Adds the edge `(src, dst, label)`. Returns `false` (and leaves the
    /// graph unchanged) if the identical edge already exists.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        let out = &mut self.out[src.index()];
        match out.binary_search(&(dst, label)) {
            Ok(_) => false,
            Err(pos) => {
                out.insert(pos, (dst, label));
                let inn = &mut self.inn[dst.index()];
                let ipos = inn.binary_search(&(src, label)).unwrap_err();
                inn.insert(ipos, (src, label));
                self.edge_count += 1;
                true
            }
        }
    }

    /// Adds an edge, interning `label` first.
    pub fn add_edge_labeled(&mut self, src: NodeId, dst: NodeId, label: &str) -> bool {
        let sym = self.vocab.intern(label);
        self.add_edge(src, dst, sym)
    }

    /// Sets attribute `attr = value` on `node`.
    pub fn set_attr(&mut self, node: NodeId, attr: Sym, value: Value) {
        self.attrs[node.index()].set(attr, value);
    }

    /// Sets an attribute, interning its name first.
    pub fn set_attr_named(&mut self, node: NodeId, attr: &str, value: Value) {
        let sym = self.vocab.intern(attr);
        self.set_attr(node, sym, value);
    }

    /// Removes attribute `attr` from `node`, returning the old value.
    pub fn remove_attr(&mut self, node: NodeId, attr: Sym) -> Option<Value> {
        self.attrs[node.index()].remove(attr)
    }

    /// Relabels `node` (updating the label index) and returns the old
    /// label. Used by noise injection ("type inconsistency") and graph
    /// repair experiments.
    pub fn set_label(&mut self, node: NodeId, label: Sym) -> Sym {
        let old = self.labels[node.index()];
        if old == label {
            return old;
        }
        if let Some(extent) = self.label_index.get_mut(&old) {
            extent.retain(|&n| n != node);
        }
        self.labels[node.index()] = label;
        let extent = self.label_index.entry(label).or_default();
        let pos = extent.partition_point(|&n| n < node);
        extent.insert(pos, node);
        old
    }

    // ------------------------------------------------------------------
    // inspection

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `|G| = |V| + |E|` — the size measure the paper uses for data
    /// blocks (Example 11 counts "22 nodes and edges in total").
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> Sym {
        self.labels[node.index()]
    }

    /// The attribute tuple `F_A(node)`.
    pub fn attrs(&self, node: NodeId) -> &AttrMap {
        &self.attrs[node.index()]
    }

    /// The value of `node.attr`, if present.
    pub fn attr(&self, node: NodeId, attr: Sym) -> Option<&Value> {
        self.attrs[node.index()].get(attr)
    }

    /// Outgoing `(dst, label)` pairs of `node`, sorted.
    pub fn out(&self, node: NodeId) -> &[(NodeId, Sym)] {
        &self.out[node.index()]
    }

    /// Incoming `(src, label)` pairs of `node`, sorted.
    pub fn inn(&self, node: NodeId) -> &[(NodeId, Sym)] {
        &self.inn[node.index()]
    }

    /// Total degree (in + out) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len() + self.inn[node.index()].len()
    }

    /// True if the edge `(src, dst, label)` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        self.out[src.index()].binary_search(&(dst, label)).is_ok()
    }

    /// True if any edge `src → dst` exists, regardless of label.
    pub fn has_edge_any(&self, src: NodeId, dst: NodeId) -> bool {
        let out = &self.out[src.index()];
        let start = out.partition_point(|&(d, _)| d < dst);
        out.get(start).is_some_and(|&(d, _)| d == dst)
    }

    /// All edges `src → dst` (any label).
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = Sym> + '_ {
        let out = &self.out[src.index()];
        let start = out.partition_point(|&(d, _)| d < dst);
        out[start..]
            .iter()
            .take_while(move |&&(d, _)| d == dst)
            .map(|&(_, l)| l)
    }

    /// Nodes carrying `label` — the candidate extent `C(µ(z))`.
    pub fn nodes_with_label(&self, label: Sym) -> &[NodeId] {
        self.label_index
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All labels that occur on nodes, with their extents.
    pub fn label_extents(&self) -> impl Iterator<Item = (Sym, &[NodeId])> + '_ {
        self.label_index.iter().map(|(l, ns)| (*l, ns.as_slice()))
    }

    /// Undirected neighbors of `node` (out then in), with edge labels.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, Sym)> + '_ {
        self.out(node).iter().chain(self.inn(node).iter()).copied()
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out.iter().enumerate().flat_map(|(src, adj)| {
            adj.iter().map(move |&(dst, label)| Edge {
                src: NodeId(src as u32),
                dst,
                label,
            })
        })
    }

    /// Approximate serialized size of a node (label + attributes + its
    /// incident edge slots), used by the communication cost model.
    pub fn node_wire_size(&self, node: NodeId) -> usize {
        8 + self.attrs[node.index()].wire_size() + 12 * self.out[node.index()].len()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g3() -> (Graph, [NodeId; 3]) {
        // Fig. 1's G3: a country with one capital (plus a stray city).
        let mut g = Graph::with_fresh_vocab();
        let country = g.add_node_labeled("country");
        let canberra = g.add_node_labeled("city");
        let melbourne = g.add_node_labeled("city");
        g.add_edge_labeled(country, canberra, "capital");
        g.set_attr_named(country, "val", Value::str("Australia"));
        g.set_attr_named(canberra, "val", Value::str("Canberra"));
        g.set_attr_named(melbourne, "val", Value::str("Melbourne"));
        (g, [country, canberra, melbourne])
    }

    #[test]
    fn basic_construction() {
        let (g, [country, canberra, _]) = g3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.size(), 4);
        let capital = g.vocab().lookup("capital").unwrap();
        assert!(g.has_edge(country, canberra, capital));
        assert!(!g.has_edge(canberra, country, capital));
        assert!(g.has_edge_any(country, canberra));
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut g = Graph::with_fresh_vocab();
        let a = g.add_node_labeled("a");
        let b = g.add_node_labeled("b");
        assert!(g.add_edge_labeled(a, b, "e"));
        assert!(!g.add_edge_labeled(a, b, "e"));
        assert!(g.add_edge_labeled(a, b, "f")); // parallel edge, new label
        assert_eq!(g.edge_count(), 2);
        let labels: Vec<_> = g.edges_between(a, b).collect();
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn label_index_tracks_extents() {
        let (g, [country, canberra, melbourne]) = g3();
        let city = g.vocab().lookup("city").unwrap();
        assert_eq!(g.nodes_with_label(city), &[canberra, melbourne]);
        let cn = g.vocab().lookup("country").unwrap();
        assert_eq!(g.nodes_with_label(cn), &[country]);
        let missing = g.vocab().intern("starship");
        assert!(g.nodes_with_label(missing).is_empty());
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let mut g = Graph::with_fresh_vocab();
        let nodes: Vec<NodeId> = (0..5)
            .map(|i| g.add_node_labeled(&format!("l{i}")))
            .collect();
        g.add_edge_labeled(nodes[0], nodes[3], "e");
        g.add_edge_labeled(nodes[0], nodes[1], "e");
        g.add_edge_labeled(nodes[0], nodes[2], "e");
        let dsts: Vec<u32> = g.out(nodes[0]).iter().map(|(d, _)| d.0).collect();
        assert_eq!(dsts, vec![1, 2, 3]);
        for &(src, _) in g.inn(nodes[1]) {
            assert!(g.out(src).iter().any(|&(d, _)| d == nodes[1]));
        }
    }

    #[test]
    fn attributes_read_back() {
        let (g, [country, ..]) = g3();
        let val = g.vocab().lookup("val").unwrap();
        assert_eq!(g.attr(country, val), Some(&Value::str("Australia")));
        let bogus = g.vocab().intern("bogus");
        assert_eq!(g.attr(country, bogus), None);
    }

    #[test]
    fn edges_iterator_complete() {
        let (g, _) = g3();
        let all: Vec<Edge> = g.edges().collect();
        assert_eq!(all.len(), g.edge_count());
    }
}
