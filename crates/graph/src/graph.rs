//! The property graph `G = (V, E, L, F_A)` of §2, split into a mutable
//! [`GraphBuilder`] and an immutable CSR snapshot [`Graph`].
//!
//! ## Why two types
//!
//! GFD validation is read-dominated: the matcher calls
//! `has_edge(u, v, label)` and scans per-label neighbor lists millions
//! of times per run, while mutation only happens during loading, data
//! generation and noise injection. Storing adjacency as
//! `Vec<Vec<(NodeId, Sym)>>` with a `HashMap` label index (the old
//! layout) is cache-hostile for the hot path and forces every consumer
//! that wants a stable view to clone. The split makes the common case
//! cheap:
//!
//! * [`GraphBuilder`] — append/update API (`add_node`, `add_edge`,
//!   `set_attr`, `set_label`, …). Per-node adjacency is kept sorted by
//!   `(label, dst)` so duplicate-edge rejection stays a binary search.
//! * [`Graph`] — produced by [`GraphBuilder::freeze`]: flat
//!   offset/adjacency arrays (CSR) for both directions, each node's
//!   edge run sorted by `(label, dst)`, plus label extents stored as
//!   contiguous ranges over a node permutation. `has_edge` is a binary
//!   search over one contiguous slice; per-label neighbor lists
//!   ([`Graph::neighbors_labeled`]) and label extents
//!   ([`Graph::extent`]) are zero-allocation subslices.
//!
//! A frozen snapshot is immutable, `Send + Sync`, and shared across
//! workers behind an `Arc` — no per-worker copies. Repair/noise
//! workflows go back through [`Graph::thaw`] (or the [`Graph::edit`]
//! convenience) and re-freeze; node ids are stable across the round
//! trip.
//!
//! Edge semantics are unchanged from §2: edges are directed, labeled,
//! and unique per `(src, dst, label)` triple (parallel edges with
//! distinct labels are allowed, as in property graphs and RDF).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::attrs::AttrMap;
use crate::delta::{AttrOp, GraphDelta, LabelChange};
use crate::value::Value;
use crate::vocab::{Sym, Vocab};

/// Identifier of a node in a [`Graph`] (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed labeled edge `(src, dst, label)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Interned edge label.
    pub label: Sym,
}

/// One adjacency entry: the edge label and the neighbor it leads to.
///
/// The derived ordering is `(label, node)` — the sort key of every
/// CSR edge run, which is what makes `has_edge` a binary search and
/// per-label neighbor lists contiguous.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Adj {
    /// The edge label.
    pub label: Sym,
    /// The neighbor (`dst` in out-adjacency, `src` in in-adjacency).
    pub node: NodeId,
}

impl fmt::Debug for Adj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-[{:?}]-{:?}", self.label, self.node)
    }
}

// ---------------------------------------------------------------------
// GraphBuilder

/// The mutable construction side of a property graph.
///
/// ```
/// use gfd_graph::{GraphBuilder, Value, Vocab};
/// let vocab = Vocab::shared();
/// let mut b = GraphBuilder::new(vocab.clone());
/// let flight = b.add_node_labeled("flight");
/// let id = b.add_node_labeled("id");
/// b.add_edge_labeled(flight, id, "number");
/// b.set_attr_named(id, "val", Value::str("DL1"));
/// let g = b.freeze();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone)]
pub struct GraphBuilder {
    vocab: Arc<Vocab>,
    labels: Vec<Sym>,
    attrs: Vec<AttrMap>,
    /// Outgoing adjacency per node, sorted by `(label, dst)`.
    out: Vec<Vec<Adj>>,
    label_index: HashMap<Sym, Vec<NodeId>>,
    edge_count: usize,
    /// When present, every successful mutation is appended here (see
    /// [`GraphDelta`]); enabled by [`Graph::thaw`] so edit sessions
    /// come with their delta for free.
    rec: Option<GraphDelta>,
}

impl GraphBuilder {
    /// Creates an empty builder over the given vocabulary.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        GraphBuilder {
            vocab,
            labels: Vec::new(),
            attrs: Vec::new(),
            out: Vec::new(),
            label_index: HashMap::new(),
            edge_count: 0,
            rec: None,
        }
    }

    /// Creates an empty builder with a fresh private vocabulary.
    pub fn with_fresh_vocab() -> Self {
        Self::new(Vocab::shared())
    }

    /// The shared vocabulary of this graph.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Starts delta recording (no-op if already recording). Builders
    /// produced by [`Graph::thaw`] record automatically.
    pub fn record_deltas(&mut self) {
        if self.rec.is_none() {
            self.rec = Some(GraphDelta::new(self.labels.len()));
        }
    }

    /// Takes the recorded delta (raw, in mutation order — callers
    /// usually want [`GraphDelta::normalize`]), leaving recording
    /// active with a fresh base at the current node count. Returns
    /// `None` if recording was never enabled.
    pub fn take_delta(&mut self) -> Option<GraphDelta> {
        let next = GraphDelta::new(self.labels.len());
        self.rec.replace(next)
    }

    /// Adds a node with the given (already interned) label.
    pub fn add_node(&mut self, label: Sym) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.attrs.push(AttrMap::new());
        self.out.push(Vec::new());
        self.label_index.entry(label).or_default().push(id);
        if let Some(rec) = &mut self.rec {
            rec.added_nodes.push((id, label));
        }
        id
    }

    /// Adds a node, interning `label` first.
    pub fn add_node_labeled(&mut self, label: &str) -> NodeId {
        let sym = self.vocab.intern(label);
        self.add_node(sym)
    }

    /// Adds the edge `(src, dst, label)`. Returns `false` (and leaves
    /// the graph unchanged) if the identical edge already exists.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a node of this builder — here,
    /// at the insertion site, rather than deep inside [`freeze`].
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        assert!(
            src.index() < self.labels.len(),
            "add_edge: src {src:?} is not a node (node_count = {})",
            self.labels.len()
        );
        assert!(
            dst.index() < self.labels.len(),
            "add_edge: dst {dst:?} is not a node (node_count = {})",
            self.labels.len()
        );
        let entry = Adj { label, node: dst };
        let out = &mut self.out[src.index()];
        match out.binary_search(&entry) {
            Ok(_) => false,
            Err(pos) => {
                out.insert(pos, entry);
                self.edge_count += 1;
                if let Some(rec) = &mut self.rec {
                    rec.added_edges.push(Edge { src, dst, label });
                }
                true
            }
        }
    }

    /// Adds an edge, interning `label` first.
    pub fn add_edge_labeled(&mut self, src: NodeId, dst: NodeId, label: &str) -> bool {
        let sym = self.vocab.intern(label);
        self.add_edge(src, dst, sym)
    }

    /// Removes the edge `(src, dst, label)`. Returns `false` (and
    /// leaves the graph unchanged) if no such edge exists — including
    /// when `src` or `dst` is not a node of this builder.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        if src.index() >= self.labels.len() || dst.index() >= self.labels.len() {
            return false;
        }
        let entry = Adj { label, node: dst };
        let out = &mut self.out[src.index()];
        match out.binary_search(&entry) {
            Ok(pos) => {
                out.remove(pos);
                self.edge_count -= 1;
                if let Some(rec) = &mut self.rec {
                    rec.removed_edges.push(Edge { src, dst, label });
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Removes an edge by label name (`false` if the label was never
    /// interned, i.e. no such edge can exist).
    pub fn remove_edge_labeled(&mut self, src: NodeId, dst: NodeId, label: &str) -> bool {
        match self.vocab.lookup(label) {
            Some(sym) => self.remove_edge(src, dst, sym),
            None => false,
        }
    }

    /// Sets attribute `attr = value` on `node`.
    pub fn set_attr(&mut self, node: NodeId, attr: Sym, value: Value) {
        if let Some(rec) = &mut self.rec {
            rec.attr_ops.push(AttrOp {
                node,
                attr,
                value: Some(value.clone()),
            });
        }
        self.attrs[node.index()].set(attr, value);
    }

    /// Sets an attribute, interning its name first.
    pub fn set_attr_named(&mut self, node: NodeId, attr: &str, value: Value) {
        let sym = self.vocab.intern(attr);
        self.set_attr(node, sym, value);
    }

    /// Removes attribute `attr` from `node`, returning the old value.
    pub fn remove_attr(&mut self, node: NodeId, attr: Sym) -> Option<Value> {
        let old = self.attrs[node.index()].remove(attr);
        if old.is_some() {
            if let Some(rec) = &mut self.rec {
                rec.attr_ops.push(AttrOp {
                    node,
                    attr,
                    value: None,
                });
            }
        }
        old
    }

    /// Relabels `node` (updating the label index) and returns the old
    /// label. Used by noise injection ("type inconsistency") and graph
    /// repair experiments.
    pub fn set_label(&mut self, node: NodeId, label: Sym) -> Sym {
        let old = self.labels[node.index()];
        if old == label {
            return old;
        }
        if let Some(extent) = self.label_index.get_mut(&old) {
            extent.retain(|&n| n != node);
        }
        self.labels[node.index()] = label;
        let extent = self.label_index.entry(label).or_default();
        let pos = extent.partition_point(|&n| n < node);
        extent.insert(pos, node);
        if let Some(rec) = &mut self.rec {
            rec.label_changes.push(LabelChange {
                node,
                old,
                new: label,
            });
        }
        old
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> Sym {
        self.labels[node.index()]
    }

    /// The attribute tuple `F_A(node)`.
    pub fn attrs(&self, node: NodeId) -> &AttrMap {
        &self.attrs[node.index()]
    }

    /// The value of `node.attr`, if present.
    pub fn attr(&self, node: NodeId, attr: Sym) -> Option<&Value> {
        self.attrs[node.index()].get(attr)
    }

    /// Nodes currently carrying `label` (ascending ids).
    pub fn nodes_with_label(&self, label: Sym) -> &[NodeId] {
        self.label_index
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Flattens the builder into an immutable CSR snapshot. Node ids
    /// are preserved verbatim.
    pub fn freeze(self) -> Graph {
        let n = self.labels.len();
        let m = self.edge_count;

        // Out-CSR: the builder keeps each run sorted by (label, dst).
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_adj = Vec::with_capacity(m);
        out_offsets.push(0u32);
        for run in &self.out {
            out_adj.extend_from_slice(run);
            out_offsets.push(out_adj.len() as u32);
        }

        // In-CSR: counting sort by destination, then order each run.
        let mut in_degree = vec![0u32; n];
        for run in &self.out {
            for a in run {
                in_degree[a.node.index()] += 1;
            }
        }
        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0u32);
        for d in &in_degree {
            in_offsets.push(in_offsets.last().unwrap() + d);
        }
        let mut in_adj = vec![
            Adj {
                label: Sym(0),
                node: NodeId(0)
            };
            m
        ];
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        for (src, run) in self.out.iter().enumerate() {
            for a in run {
                let slot = &mut cursor[a.node.index()];
                in_adj[*slot as usize] = Adj {
                    label: a.label,
                    node: NodeId(src as u32),
                };
                *slot += 1;
            }
        }
        for u in 0..n {
            in_adj[in_offsets[u] as usize..in_offsets[u + 1] as usize].sort_unstable();
        }

        // Label extents: a node permutation sorted by (label, id) with
        // one contiguous range per label.
        let mut extent_perm: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        extent_perm.sort_unstable_by_key(|&u| (self.labels[u.index()], u));
        let mut extent_ranges: Vec<(Sym, u32, u32)> = Vec::new();
        for (i, &u) in extent_perm.iter().enumerate() {
            let label = self.labels[u.index()];
            match extent_ranges.last_mut() {
                Some((l, _, hi)) if *l == label => *hi = (i + 1) as u32,
                _ => extent_ranges.push((label, i as u32, (i + 1) as u32)),
            }
        }

        Graph {
            vocab: self.vocab,
            labels: self.labels,
            attrs: self.attrs,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            extent_perm,
            extent_ranges,
            edge_count: m,
        }
    }
}

impl fmt::Debug for GraphBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphBuilder")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Graph (frozen CSR snapshot)

/// An immutable CSR snapshot of a property graph.
///
/// Produced by [`GraphBuilder::freeze`]; see the module docs for the
/// layout. All read methods are allocation-free; the snapshot is
/// `Send + Sync` and meant to be shared across workers via `Arc`.
pub struct Graph {
    vocab: Arc<Vocab>,
    labels: Vec<Sym>,
    attrs: Vec<AttrMap>,
    /// `out_adj[out_offsets[u]..out_offsets[u+1]]` is `u`'s out-run,
    /// sorted by `(label, dst)`.
    out_offsets: Vec<u32>,
    out_adj: Vec<Adj>,
    /// Same layout for incoming edges (`node` is the source).
    in_offsets: Vec<u32>,
    in_adj: Vec<Adj>,
    /// All nodes sorted by `(label, id)`; extents are subranges.
    extent_perm: Vec<NodeId>,
    /// Per label: `(label, lo, hi)` into `extent_perm`, sorted by label.
    extent_ranges: Vec<(Sym, u32, u32)>,
    edge_count: usize,
}

impl Graph {
    /// The shared vocabulary of this graph.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `|G| = |V| + |E|` — the size measure the paper uses for data
    /// blocks (Example 11 counts "22 nodes and edges in total").
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> Sym {
        self.labels[node.index()]
    }

    /// The attribute tuple `F_A(node)`.
    pub fn attrs(&self, node: NodeId) -> &AttrMap {
        &self.attrs[node.index()]
    }

    /// The value of `node.attr`, if present.
    pub fn attr(&self, node: NodeId, attr: Sym) -> Option<&Value> {
        self.attrs[node.index()].get(attr)
    }

    /// The outgoing edge run of `node`, sorted by `(label, dst)`.
    #[inline]
    pub fn out_slice(&self, node: NodeId) -> &[Adj] {
        let i = node.index();
        &self.out_adj[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// The incoming edge run of `node`, sorted by `(label, src)`.
    #[inline]
    pub fn in_slice(&self, node: NodeId) -> &[Adj] {
        let i = node.index();
        &self.in_adj[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Total degree (in + out) of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// The contiguous `label`-subrange of a sorted edge run.
    #[inline]
    fn labeled_range(run: &[Adj], label: Sym) -> &[Adj] {
        let lo = run.partition_point(|a| a.label < label);
        let hi = lo + run[lo..].partition_point(|a| a.label == label);
        &run[lo..hi]
    }

    /// Out-neighbors of `node` along `label`-edges, as a zero-alloc
    /// subslice of the CSR run (every entry has `.label == label`).
    #[inline]
    pub fn neighbors_labeled(&self, node: NodeId, label: Sym) -> &[Adj] {
        Self::labeled_range(self.out_slice(node), label)
    }

    /// In-neighbors of `node` along `label`-edges (zero-alloc).
    #[inline]
    pub fn in_neighbors_labeled(&self, node: NodeId, label: Sym) -> &[Adj] {
        Self::labeled_range(self.in_slice(node), label)
    }

    /// `src`'s out-run, or the empty slice when `src` is not a node —
    /// for entry points that accept externally supplied ids.
    #[inline]
    fn out_run_or_empty(&self, src: NodeId) -> &[Adj] {
        if src.index() >= self.labels.len() {
            return &[];
        }
        self.out_slice(src)
    }

    /// True if the edge `(src, dst, label)` exists — one binary search
    /// over `src`'s contiguous out-run. Out-of-range ids (which can
    /// arrive from user input: parsed patterns, stale pins) are simply
    /// not edge endpoints, so the answer is `false` rather than a
    /// panic.
    #[inline]
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        self.out_run_or_empty(src)
            .binary_search(&Adj { label, node: dst })
            .is_ok()
    }

    /// True if any edge `src → dst` exists, regardless of label.
    ///
    /// The run is sorted by `(label, dst)`, so a single binary search
    /// can't answer this; instead we skip-scan label segments, binary
    /// searching `dst` within each — `O(L · log deg)` for `L` distinct
    /// labels at `src`, with a plain scan for short runs.
    pub fn has_edge_any(&self, src: NodeId, dst: NodeId) -> bool {
        let run = self.out_run_or_empty(src);
        if run.len() <= 16 {
            return run.iter().any(|a| a.node == dst);
        }
        let mut i = 0;
        while i < run.len() {
            let label = run[i].label;
            let seg = i + run[i..].partition_point(|a| a.label == label);
            if run[i..seg].binary_search(&Adj { label, node: dst }).is_ok() {
                return true;
            }
            i = seg;
        }
        false
    }

    /// All edge labels `src → dst` (empty for out-of-range ids).
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = Sym> + '_ {
        self.out_run_or_empty(src)
            .iter()
            .filter(move |a| a.node == dst)
            .map(|a| a.label)
    }

    /// Nodes carrying `label` — the candidate extent `C(µ(z))`, as a
    /// zero-alloc subslice of the label permutation (ascending ids).
    pub fn extent(&self, label: Sym) -> &[NodeId] {
        match self
            .extent_ranges
            .binary_search_by_key(&label, |&(l, _, _)| l)
        {
            Ok(i) => {
                let (_, lo, hi) = self.extent_ranges[i];
                &self.extent_perm[lo as usize..hi as usize]
            }
            Err(_) => &[],
        }
    }

    /// All labels that occur on nodes, with their extents (ascending
    /// label order).
    pub fn label_extents(&self) -> impl Iterator<Item = (Sym, &[NodeId])> + '_ {
        self.extent_ranges
            .iter()
            .map(|&(l, lo, hi)| (l, &self.extent_perm[lo as usize..hi as usize]))
    }

    /// Undirected neighbors of `node` (out then in; duplicates possible
    /// when edges run both ways).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_slice(node)
            .iter()
            .chain(self.in_slice(node).iter())
            .map(|a| a.node)
    }

    /// Iterates over all edges (by source node, then `(label, dst)`).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |src| {
            self.out_slice(src).iter().map(move |a| Edge {
                src,
                dst: a.node,
                label: a.label,
            })
        })
    }

    /// Approximate serialized size of a node (label + attributes + its
    /// incident edge slots), used by the communication cost model.
    pub fn node_wire_size(&self, node: NodeId) -> usize {
        8 + self.attrs[node.index()].wire_size() + 12 * self.out_degree(node)
    }

    /// Reconstructs a [`GraphBuilder`] with identical contents and node
    /// ids, for repair/noise workflows that need to mutate a snapshot.
    /// The builder records its mutations as a [`GraphDelta`]
    /// ([`GraphBuilder::take_delta`]), so the eventual refreeze can be
    /// a delta patch ([`Graph::apply_delta`]) instead of a full
    /// [`GraphBuilder::freeze`].
    pub fn thaw(&self) -> GraphBuilder {
        let mut label_index: HashMap<Sym, Vec<NodeId>> = HashMap::new();
        for (label, extent) in self.label_extents() {
            label_index.insert(label, extent.to_vec());
        }
        GraphBuilder {
            vocab: self.vocab.clone(),
            labels: self.labels.clone(),
            attrs: self.attrs.clone(),
            out: self.nodes().map(|u| self.out_slice(u).to_vec()).collect(),
            label_index,
            edge_count: self.edge_count,
            rec: Some(GraphDelta::new(self.node_count())),
        }
    }

    /// Thaw–mutate–refreeze in one step: returns a new snapshot with
    /// `edits` applied. The refreeze is a delta patch over this
    /// snapshot (see [`Graph::apply_delta`]), not a full rebuild.
    pub fn edit(&self, edits: impl FnOnce(&mut GraphBuilder)) -> Graph {
        self.edit_with_delta(edits).0
    }

    /// Like [`Graph::edit`], but also returns the normalized
    /// [`GraphDelta`] describing exactly what changed — the input the
    /// incremental maintenance subsystems (candidate-space repair,
    /// incremental detection, workload refresh) consume.
    pub fn edit_with_delta(&self, edits: impl FnOnce(&mut GraphBuilder)) -> (Graph, GraphDelta) {
        let mut b = self.thaw();
        edits(&mut b);
        let delta = b
            .take_delta()
            .expect("thawed builders record deltas")
            .normalize();
        (self.apply_delta(&delta), delta)
    }

    /// Builds the successor snapshot by patching this one with a
    /// *normalized* delta — a handful of merge passes over the flat
    /// CSR arrays instead of `freeze`'s per-node runs, counting sort
    /// and extent re-sort. Unchanged sections (adjacency when the
    /// delta has no edge ops, extents when it has no label ops) are
    /// plain memcpys of this snapshot's arrays.
    ///
    /// The delta must be consistent with this snapshot: based at its
    /// node count, added edges absent, removed edges present (the
    /// invariants [`GraphDelta::normalize`] documents). Deltas
    /// recorded by [`Graph::thaw`]/[`Graph::edit_with_delta`] satisfy
    /// this by construction.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Graph {
        let old_n = self.node_count();
        assert_eq!(
            delta.base_nodes, old_n,
            "apply_delta: delta based on a different snapshot"
        );
        let new_n = old_n + delta.added_nodes.len();

        let mut labels = self.labels.clone();
        labels.reserve(delta.added_nodes.len());
        for &(id, label) in &delta.added_nodes {
            debug_assert_eq!(id.index(), labels.len(), "added node ids are dense");
            labels.push(label);
        }
        for c in &delta.label_changes {
            debug_assert_eq!(labels[c.node.index()], c.old, "stale label change");
            labels[c.node.index()] = c.new;
        }

        let mut attrs = self.attrs.clone();
        attrs.resize(new_n, AttrMap::new());
        for op in &delta.attr_ops {
            match &op.value {
                Some(v) => attrs[op.node.index()].set(op.attr, v.clone()),
                None => {
                    attrs[op.node.index()].remove(op.attr);
                }
            }
        }

        let (out_offsets, out_adj, in_offsets, in_adj) =
            if delta.added_edges.is_empty() && delta.removed_edges.is_empty() {
                let mut out_offsets = self.out_offsets.clone();
                let mut in_offsets = self.in_offsets.clone();
                out_offsets.resize(new_n + 1, *out_offsets.last().unwrap());
                in_offsets.resize(new_n + 1, *in_offsets.last().unwrap());
                (
                    out_offsets,
                    self.out_adj.clone(),
                    in_offsets,
                    self.in_adj.clone(),
                )
            } else {
                let key_out = |e: &Edge| {
                    (
                        e.src,
                        Adj {
                            label: e.label,
                            node: e.dst,
                        },
                    )
                };
                let key_in = |e: &Edge| {
                    (
                        e.dst,
                        Adj {
                            label: e.label,
                            node: e.src,
                        },
                    )
                };
                let (oo, oa) = patch_csr(
                    new_n,
                    &self.out_offsets,
                    &self.out_adj,
                    delta.added_edges.iter().map(key_out).collect(),
                    delta.removed_edges.iter().map(key_out).collect(),
                );
                let (io, ia) = patch_csr(
                    new_n,
                    &self.in_offsets,
                    &self.in_adj,
                    delta.added_edges.iter().map(key_in).collect(),
                    delta.removed_edges.iter().map(key_in).collect(),
                );
                (oo, oa, io, ia)
            };

        let (extent_perm, extent_ranges) =
            if delta.added_nodes.is_empty() && delta.label_changes.is_empty() {
                (self.extent_perm.clone(), self.extent_ranges.clone())
            } else {
                let mut perm: Vec<NodeId> = (0..new_n as u32).map(NodeId).collect();
                perm.sort_unstable_by_key(|&u| (labels[u.index()], u));
                let mut ranges: Vec<(Sym, u32, u32)> = Vec::new();
                for (i, &u) in perm.iter().enumerate() {
                    let label = labels[u.index()];
                    match ranges.last_mut() {
                        Some((l, _, hi)) if *l == label => *hi = (i + 1) as u32,
                        _ => ranges.push((label, i as u32, (i + 1) as u32)),
                    }
                }
                (perm, ranges)
            };

        Graph {
            vocab: self.vocab.clone(),
            labels,
            attrs,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            extent_perm,
            extent_ranges,
            edge_count: self.edge_count + delta.added_edges.len() - delta.removed_edges.len(),
        }
    }
}

/// One merge pass producing a patched CSR: per node, the old run with
/// `removes` dropped and `adds` spliced in at their sort position.
/// Runs of nodes beyond the old snapshot start empty. `O(V + E + d)`
/// after sorting the `d` patch entries.
fn patch_csr(
    new_n: usize,
    old_offsets: &[u32],
    old_adj: &[Adj],
    mut adds: Vec<(NodeId, Adj)>,
    mut removes: Vec<(NodeId, Adj)>,
) -> (Vec<u32>, Vec<Adj>) {
    adds.sort_unstable();
    removes.sort_unstable();
    let old_n = old_offsets.len() - 1;
    let mut offsets = Vec::with_capacity(new_n + 1);
    let mut adj = Vec::with_capacity(old_adj.len() + adds.len() - removes.len());
    offsets.push(0u32);
    let (mut ap, mut rp) = (0usize, 0usize);
    for u in 0..new_n {
        let node = NodeId(u as u32);
        let run: &[Adj] = if u < old_n {
            &old_adj[old_offsets[u] as usize..old_offsets[u + 1] as usize]
        } else {
            &[]
        };
        let a_lo = ap;
        while ap < adds.len() && adds[ap].0 == node {
            ap += 1;
        }
        let a_run = &adds[a_lo..ap];
        let r_lo = rp;
        while rp < removes.len() && removes[rp].0 == node {
            rp += 1;
        }
        let r_run = &removes[r_lo..rp];

        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < run.len() || j < a_run.len() {
            if j < a_run.len() && (i >= run.len() || a_run[j].1 < run[i]) {
                adj.push(a_run[j].1);
                j += 1;
            } else {
                let e = run[i];
                i += 1;
                if k < r_run.len() && r_run[k].1 == e {
                    k += 1;
                    continue;
                }
                adj.push(e);
            }
        }
        debug_assert_eq!(k, r_run.len(), "removed edge missing from {node:?}'s run");
        offsets.push(adj.len() as u32);
    }
    debug_assert_eq!(ap, adds.len(), "added edge with out-of-range endpoint");
    (offsets, adj)
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g3() -> (Graph, [NodeId; 3]) {
        // Fig. 1's G3: a country with one capital (plus a stray city).
        let mut b = GraphBuilder::with_fresh_vocab();
        let country = b.add_node_labeled("country");
        let canberra = b.add_node_labeled("city");
        let melbourne = b.add_node_labeled("city");
        b.add_edge_labeled(country, canberra, "capital");
        b.set_attr_named(country, "val", Value::str("Australia"));
        b.set_attr_named(canberra, "val", Value::str("Canberra"));
        b.set_attr_named(melbourne, "val", Value::str("Melbourne"));
        (b.freeze(), [country, canberra, melbourne])
    }

    #[test]
    fn basic_construction() {
        let (g, [country, canberra, _]) = g3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.size(), 4);
        let capital = g.vocab().lookup("capital").unwrap();
        assert!(g.has_edge(country, canberra, capital));
        assert!(!g.has_edge(canberra, country, capital));
        assert!(g.has_edge_any(country, canberra));
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("a");
        let c = b.add_node_labeled("b");
        assert!(b.add_edge_labeled(a, c, "e"));
        assert!(!b.add_edge_labeled(a, c, "e"));
        assert!(b.add_edge_labeled(a, c, "f")); // parallel edge, new label
        let g = b.freeze();
        assert_eq!(g.edge_count(), 2);
        let labels: Vec<_> = g.edges_between(a, c).collect();
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn extents_track_labels() {
        let (g, [country, canberra, melbourne]) = g3();
        let city = g.vocab().lookup("city").unwrap();
        assert_eq!(g.extent(city), &[canberra, melbourne]);
        let cn = g.vocab().lookup("country").unwrap();
        assert_eq!(g.extent(cn), &[country]);
        let missing = g.vocab().intern("starship");
        assert!(g.extent(missing).is_empty());
        let total: usize = g.label_extents().map(|(_, e)| e.len()).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn runs_sorted_by_label_then_dst() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let nodes: Vec<NodeId> = (0..5)
            .map(|i| b.add_node_labeled(&format!("l{i}")))
            .collect();
        b.add_edge_labeled(nodes[0], nodes[3], "e");
        b.add_edge_labeled(nodes[0], nodes[1], "f");
        b.add_edge_labeled(nodes[0], nodes[2], "e");
        let g = b.freeze();
        let run = g.out_slice(nodes[0]);
        assert!(
            run.windows(2).all(|w| w[0] < w[1]),
            "sorted by (label, dst)"
        );
        let e = g.vocab().lookup("e").unwrap();
        let e_dsts: Vec<u32> = g
            .neighbors_labeled(nodes[0], e)
            .iter()
            .map(|a| a.node.0)
            .collect();
        assert_eq!(e_dsts, vec![2, 3]);
        for a in g.in_slice(nodes[1]) {
            assert!(g.out_slice(a.node).iter().any(|o| o.node == nodes[1]));
        }
    }

    #[test]
    fn in_adjacency_mirrors_out() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let ns: Vec<NodeId> = (0..4).map(|_| b.add_node_labeled("v")).collect();
        b.add_edge_labeled(ns[0], ns[2], "e");
        b.add_edge_labeled(ns[1], ns[2], "e");
        b.add_edge_labeled(ns[3], ns[2], "f");
        let g = b.freeze();
        assert_eq!(g.in_degree(ns[2]), 3);
        let e = g.vocab().lookup("e").unwrap();
        let srcs: Vec<NodeId> = g
            .in_neighbors_labeled(ns[2], e)
            .iter()
            .map(|a| a.node)
            .collect();
        assert_eq!(srcs, vec![ns[0], ns[1]]);
    }

    #[test]
    fn attributes_read_back() {
        let (g, [country, ..]) = g3();
        let val = g.vocab().lookup("val").unwrap();
        assert_eq!(g.attr(country, val), Some(&Value::str("Australia")));
        let bogus = g.vocab().intern("bogus");
        assert_eq!(g.attr(country, bogus), None);
    }

    #[test]
    fn edges_iterator_complete() {
        let (g, _) = g3();
        let all: Vec<Edge> = g.edges().collect();
        assert_eq!(all.len(), g.edge_count());
    }

    #[test]
    fn thaw_freeze_round_trip_preserves_everything() {
        let (g, [country, canberra, _]) = g3();
        let g2 = g.thaw().freeze();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let capital = g.vocab().lookup("capital").unwrap();
        assert!(g2.has_edge(country, canberra, capital));
        for u in g.nodes() {
            assert_eq!(g.label(u), g2.label(u));
            assert_eq!(g.attrs(u), g2.attrs(u));
            assert_eq!(g.out_slice(u), g2.out_slice(u));
            assert_eq!(g.in_slice(u), g2.in_slice(u));
        }
    }

    #[test]
    fn edit_applies_mutations() {
        let (g, [_, canberra, melbourne]) = g3();
        let val = g.vocab().lookup("val").unwrap();
        let g2 = g.edit(|b| {
            b.set_attr(melbourne, val, Value::str("Canberra"));
            b.remove_attr(canberra, val);
        });
        assert_eq!(g2.attr(melbourne, val), Some(&Value::str("Canberra")));
        assert_eq!(g2.attr(canberra, val), None);
        // The original snapshot is untouched.
        assert_eq!(g.attr(melbourne, val), Some(&Value::str("Melbourne")));
    }

    #[test]
    fn remove_edge_round_trip() {
        let (g, [country, canberra, _]) = g3();
        let capital = g.vocab().lookup("capital").unwrap();
        let mut b = g.thaw();
        assert!(b.remove_edge(country, canberra, capital));
        assert!(!b.remove_edge(country, canberra, capital), "already gone");
        assert!(
            !b.remove_edge(NodeId(99), canberra, capital),
            "out-of-range src is not an edge endpoint"
        );
        assert_eq!(b.edge_count(), 0);
        let g2 = b.freeze();
        assert!(!g2.has_edge(country, canberra, capital));
        assert_eq!(g2.edge_count(), 0);
    }

    #[test]
    fn out_of_range_reads_are_graceful() {
        let (g, [country, ..]) = g3();
        let capital = g.vocab().lookup("capital").unwrap();
        let ghost = NodeId(1000);
        assert!(!g.has_edge(ghost, country, capital));
        assert!(!g.has_edge_any(ghost, country));
        assert_eq!(g.edges_between(ghost, country).count(), 0);
        // In-range src against an absent dst id stays false, too.
        assert!(!g.has_edge(country, ghost, capital));
    }

    #[test]
    fn edit_with_delta_records_and_patches() {
        let (g, [country, canberra, melbourne]) = g3();
        let val = g.vocab().lookup("val").unwrap();
        let capital = g.vocab().lookup("capital").unwrap();
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge(country, canberra, capital);
            b.add_edge(country, melbourne, capital);
            let sydney = b.add_node_labeled("city");
            b.add_edge(country, sydney, capital);
            b.set_attr(sydney, val, Value::str("Sydney"));
            b.remove_attr(canberra, val);
        });
        assert_eq!(delta.base_nodes, 3);
        assert_eq!(delta.added_nodes.len(), 1);
        assert_eq!(delta.added_edges.len(), 2);
        assert_eq!(delta.removed_edges.len(), 1);
        assert_eq!(delta.attr_ops.len(), 2);
        let sydney = delta.added_nodes[0].0;
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.edge_count(), 2);
        assert!(!g2.has_edge(country, canberra, capital));
        assert!(g2.has_edge(country, melbourne, capital));
        assert!(g2.has_edge(country, sydney, capital));
        assert_eq!(g2.attr(sydney, val), Some(&Value::str("Sydney")));
        assert_eq!(g2.attr(canberra, val), None);
        let city = g.vocab().lookup("city").unwrap();
        assert_eq!(g2.extent(city), &[canberra, melbourne, sydney]);
        // The original snapshot is untouched.
        assert!(g.has_edge(country, canberra, capital));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn apply_delta_equals_freeze() {
        // The patch path and the full rebuild must agree observably.
        let (g, [country, canberra, melbourne]) = g3();
        let capital = g.vocab().lookup("capital").unwrap();
        let mut b = g.thaw();
        b.remove_edge(country, canberra, capital);
        b.add_edge(country, melbourne, capital);
        let extra = b.add_node_labeled("province");
        b.add_edge_labeled(extra, country, "part_of");
        let delta = b.take_delta().unwrap().normalize();
        let patched = g.apply_delta(&delta);
        let frozen = b.freeze();
        assert_eq!(patched.node_count(), frozen.node_count());
        assert_eq!(patched.edge_count(), frozen.edge_count());
        for u in frozen.nodes() {
            assert_eq!(patched.label(u), frozen.label(u));
            assert_eq!(patched.attrs(u), frozen.attrs(u));
            assert_eq!(patched.out_slice(u), frozen.out_slice(u));
            assert_eq!(patched.in_slice(u), frozen.in_slice(u));
        }
    }

    #[test]
    #[should_panic(expected = "dst n99 is not a node")]
    fn add_edge_rejects_unknown_dst() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("a");
        b.add_edge_labeled(a, NodeId(99), "e");
    }

    #[test]
    fn has_edge_any_skip_scan_on_long_runs() {
        // A hub with > 16 out-edges exercises the label-segment
        // skip-scan rather than the short-run linear path.
        let mut b = GraphBuilder::with_fresh_vocab();
        let hub = b.add_node_labeled("hub");
        let spokes: Vec<NodeId> = (0..24).map(|_| b.add_node_labeled("v")).collect();
        for (i, &s) in spokes.iter().enumerate() {
            b.add_edge_labeled(hub, s, &format!("e{}", i % 5));
        }
        let g = b.freeze();
        assert!(g.out_degree(hub) > 16);
        for &s in &spokes {
            assert!(g.has_edge_any(hub, s));
        }
        assert!(!g.has_edge_any(hub, hub));
        assert!(!g.has_edge_any(spokes[0], hub));
    }

    #[test]
    fn set_label_updates_extents_through_freeze() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("x");
        let _ = b.add_node_labeled("x");
        let y = b.vocab().intern("y");
        b.set_label(a, y);
        let g = b.freeze();
        let x = g.vocab().lookup("x").unwrap();
        assert_eq!(g.extent(x).len(), 1);
        assert_eq!(g.extent(y), &[a]);
    }
}
