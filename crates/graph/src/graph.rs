//! The property graph `G = (V, E, L, F_A)` of §2, split into a mutable
//! [`GraphBuilder`] and an immutable CSR snapshot [`Graph`].
//!
//! ## Why two types
//!
//! GFD validation is read-dominated: the matcher calls
//! `has_edge(u, v, label)` and scans per-label neighbor lists millions
//! of times per run, while mutation only happens during loading, data
//! generation and noise injection. Storing adjacency as
//! `Vec<Vec<(NodeId, Sym)>>` with a `HashMap` label index (the old
//! layout) is cache-hostile for the hot path and forces every consumer
//! that wants a stable view to clone. The split makes the common case
//! cheap:
//!
//! * [`GraphBuilder`] — append/update API (`add_node`, `add_edge`,
//!   `set_attr`, `set_label`, …). Per-node adjacency is kept sorted by
//!   `(label, dst)` so duplicate-edge rejection stays a binary search.
//! * [`Graph`] — produced by [`GraphBuilder::freeze`]: flat
//!   offset/adjacency arrays (CSR) for both directions, each node's
//!   edge run sorted by `(label, dst)`, plus label extents stored as
//!   contiguous ranges over a node permutation. `has_edge` is a binary
//!   search over one contiguous slice; per-label neighbor lists
//!   ([`Graph::neighbors_labeled`]) and label extents
//!   ([`Graph::extent`]) are zero-allocation subslices.
//!
//! A frozen snapshot is immutable, `Send + Sync`, and shared across
//! workers behind an `Arc` — no per-worker copies. Repair/noise
//! workflows go back through [`Graph::thaw`] (or the [`Graph::edit`]
//! convenience) and re-freeze; node ids are stable across the round
//! trip.
//!
//! Edge semantics are unchanged from §2: edges are directed, labeled,
//! and unique per `(src, dst, label)` triple (parallel edges with
//! distinct labels are allowed, as in property graphs and RDF).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::attrs::AttrMap;
use crate::value::Value;
use crate::vocab::{Sym, Vocab};

/// Identifier of a node in a [`Graph`] (dense, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed labeled edge `(src, dst, label)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Interned edge label.
    pub label: Sym,
}

/// One adjacency entry: the edge label and the neighbor it leads to.
///
/// The derived ordering is `(label, node)` — the sort key of every
/// CSR edge run, which is what makes `has_edge` a binary search and
/// per-label neighbor lists contiguous.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Adj {
    /// The edge label.
    pub label: Sym,
    /// The neighbor (`dst` in out-adjacency, `src` in in-adjacency).
    pub node: NodeId,
}

impl fmt::Debug for Adj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-[{:?}]-{:?}", self.label, self.node)
    }
}

// ---------------------------------------------------------------------
// GraphBuilder

/// The mutable construction side of a property graph.
///
/// ```
/// use gfd_graph::{GraphBuilder, Value, Vocab};
/// let vocab = Vocab::shared();
/// let mut b = GraphBuilder::new(vocab.clone());
/// let flight = b.add_node_labeled("flight");
/// let id = b.add_node_labeled("id");
/// b.add_edge_labeled(flight, id, "number");
/// b.set_attr_named(id, "val", Value::str("DL1"));
/// let g = b.freeze();
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone)]
pub struct GraphBuilder {
    vocab: Arc<Vocab>,
    labels: Vec<Sym>,
    attrs: Vec<AttrMap>,
    /// Outgoing adjacency per node, sorted by `(label, dst)`.
    out: Vec<Vec<Adj>>,
    label_index: HashMap<Sym, Vec<NodeId>>,
    edge_count: usize,
}

impl GraphBuilder {
    /// Creates an empty builder over the given vocabulary.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        GraphBuilder {
            vocab,
            labels: Vec::new(),
            attrs: Vec::new(),
            out: Vec::new(),
            label_index: HashMap::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty builder with a fresh private vocabulary.
    pub fn with_fresh_vocab() -> Self {
        Self::new(Vocab::shared())
    }

    /// The shared vocabulary of this graph.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Adds a node with the given (already interned) label.
    pub fn add_node(&mut self, label: Sym) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label);
        self.attrs.push(AttrMap::new());
        self.out.push(Vec::new());
        self.label_index.entry(label).or_default().push(id);
        id
    }

    /// Adds a node, interning `label` first.
    pub fn add_node_labeled(&mut self, label: &str) -> NodeId {
        let sym = self.vocab.intern(label);
        self.add_node(sym)
    }

    /// Adds the edge `(src, dst, label)`. Returns `false` (and leaves
    /// the graph unchanged) if the identical edge already exists.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a node of this builder — here,
    /// at the insertion site, rather than deep inside [`freeze`].
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        assert!(
            dst.index() < self.labels.len(),
            "add_edge: dst {dst:?} is not a node (node_count = {})",
            self.labels.len()
        );
        let entry = Adj { label, node: dst };
        let out = &mut self.out[src.index()];
        match out.binary_search(&entry) {
            Ok(_) => false,
            Err(pos) => {
                out.insert(pos, entry);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Adds an edge, interning `label` first.
    pub fn add_edge_labeled(&mut self, src: NodeId, dst: NodeId, label: &str) -> bool {
        let sym = self.vocab.intern(label);
        self.add_edge(src, dst, sym)
    }

    /// Sets attribute `attr = value` on `node`.
    pub fn set_attr(&mut self, node: NodeId, attr: Sym, value: Value) {
        self.attrs[node.index()].set(attr, value);
    }

    /// Sets an attribute, interning its name first.
    pub fn set_attr_named(&mut self, node: NodeId, attr: &str, value: Value) {
        let sym = self.vocab.intern(attr);
        self.set_attr(node, sym, value);
    }

    /// Removes attribute `attr` from `node`, returning the old value.
    pub fn remove_attr(&mut self, node: NodeId, attr: Sym) -> Option<Value> {
        self.attrs[node.index()].remove(attr)
    }

    /// Relabels `node` (updating the label index) and returns the old
    /// label. Used by noise injection ("type inconsistency") and graph
    /// repair experiments.
    pub fn set_label(&mut self, node: NodeId, label: Sym) -> Sym {
        let old = self.labels[node.index()];
        if old == label {
            return old;
        }
        if let Some(extent) = self.label_index.get_mut(&old) {
            extent.retain(|&n| n != node);
        }
        self.labels[node.index()] = label;
        let extent = self.label_index.entry(label).or_default();
        let pos = extent.partition_point(|&n| n < node);
        extent.insert(pos, node);
        old
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> Sym {
        self.labels[node.index()]
    }

    /// The attribute tuple `F_A(node)`.
    pub fn attrs(&self, node: NodeId) -> &AttrMap {
        &self.attrs[node.index()]
    }

    /// The value of `node.attr`, if present.
    pub fn attr(&self, node: NodeId, attr: Sym) -> Option<&Value> {
        self.attrs[node.index()].get(attr)
    }

    /// Nodes currently carrying `label` (ascending ids).
    pub fn nodes_with_label(&self, label: Sym) -> &[NodeId] {
        self.label_index
            .get(&label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Flattens the builder into an immutable CSR snapshot. Node ids
    /// are preserved verbatim.
    pub fn freeze(self) -> Graph {
        let n = self.labels.len();
        let m = self.edge_count;

        // Out-CSR: the builder keeps each run sorted by (label, dst).
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_adj = Vec::with_capacity(m);
        out_offsets.push(0u32);
        for run in &self.out {
            out_adj.extend_from_slice(run);
            out_offsets.push(out_adj.len() as u32);
        }

        // In-CSR: counting sort by destination, then order each run.
        let mut in_degree = vec![0u32; n];
        for run in &self.out {
            for a in run {
                in_degree[a.node.index()] += 1;
            }
        }
        let mut in_offsets = Vec::with_capacity(n + 1);
        in_offsets.push(0u32);
        for d in &in_degree {
            in_offsets.push(in_offsets.last().unwrap() + d);
        }
        let mut in_adj = vec![
            Adj {
                label: Sym(0),
                node: NodeId(0)
            };
            m
        ];
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        for (src, run) in self.out.iter().enumerate() {
            for a in run {
                let slot = &mut cursor[a.node.index()];
                in_adj[*slot as usize] = Adj {
                    label: a.label,
                    node: NodeId(src as u32),
                };
                *slot += 1;
            }
        }
        for u in 0..n {
            in_adj[in_offsets[u] as usize..in_offsets[u + 1] as usize].sort_unstable();
        }

        // Label extents: a node permutation sorted by (label, id) with
        // one contiguous range per label.
        let mut extent_perm: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        extent_perm.sort_unstable_by_key(|&u| (self.labels[u.index()], u));
        let mut extent_ranges: Vec<(Sym, u32, u32)> = Vec::new();
        for (i, &u) in extent_perm.iter().enumerate() {
            let label = self.labels[u.index()];
            match extent_ranges.last_mut() {
                Some((l, _, hi)) if *l == label => *hi = (i + 1) as u32,
                _ => extent_ranges.push((label, i as u32, (i + 1) as u32)),
            }
        }

        Graph {
            vocab: self.vocab,
            labels: self.labels,
            attrs: self.attrs,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            extent_perm,
            extent_ranges,
            edge_count: m,
        }
    }
}

impl fmt::Debug for GraphBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphBuilder")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Graph (frozen CSR snapshot)

/// An immutable CSR snapshot of a property graph.
///
/// Produced by [`GraphBuilder::freeze`]; see the module docs for the
/// layout. All read methods are allocation-free; the snapshot is
/// `Send + Sync` and meant to be shared across workers via `Arc`.
pub struct Graph {
    vocab: Arc<Vocab>,
    labels: Vec<Sym>,
    attrs: Vec<AttrMap>,
    /// `out_adj[out_offsets[u]..out_offsets[u+1]]` is `u`'s out-run,
    /// sorted by `(label, dst)`.
    out_offsets: Vec<u32>,
    out_adj: Vec<Adj>,
    /// Same layout for incoming edges (`node` is the source).
    in_offsets: Vec<u32>,
    in_adj: Vec<Adj>,
    /// All nodes sorted by `(label, id)`; extents are subranges.
    extent_perm: Vec<NodeId>,
    /// Per label: `(label, lo, hi)` into `extent_perm`, sorted by label.
    extent_ranges: Vec<(Sym, u32, u32)>,
    edge_count: usize,
}

impl Graph {
    /// The shared vocabulary of this graph.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Number of nodes `|V|`.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// `|G| = |V| + |E|` — the size measure the paper uses for data
    /// blocks (Example 11 counts "22 nodes and edges in total").
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.labels.len() as u32).map(NodeId)
    }

    /// The label of `node`.
    pub fn label(&self, node: NodeId) -> Sym {
        self.labels[node.index()]
    }

    /// The attribute tuple `F_A(node)`.
    pub fn attrs(&self, node: NodeId) -> &AttrMap {
        &self.attrs[node.index()]
    }

    /// The value of `node.attr`, if present.
    pub fn attr(&self, node: NodeId, attr: Sym) -> Option<&Value> {
        self.attrs[node.index()].get(attr)
    }

    /// The outgoing edge run of `node`, sorted by `(label, dst)`.
    #[inline]
    pub fn out_slice(&self, node: NodeId) -> &[Adj] {
        let i = node.index();
        &self.out_adj[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// The incoming edge run of `node`, sorted by `(label, src)`.
    #[inline]
    pub fn in_slice(&self, node: NodeId) -> &[Adj] {
        let i = node.index();
        &self.in_adj[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Total degree (in + out) of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// The contiguous `label`-subrange of a sorted edge run.
    #[inline]
    fn labeled_range(run: &[Adj], label: Sym) -> &[Adj] {
        let lo = run.partition_point(|a| a.label < label);
        let hi = lo + run[lo..].partition_point(|a| a.label == label);
        &run[lo..hi]
    }

    /// Out-neighbors of `node` along `label`-edges, as a zero-alloc
    /// subslice of the CSR run (every entry has `.label == label`).
    #[inline]
    pub fn neighbors_labeled(&self, node: NodeId, label: Sym) -> &[Adj] {
        Self::labeled_range(self.out_slice(node), label)
    }

    /// In-neighbors of `node` along `label`-edges (zero-alloc).
    #[inline]
    pub fn in_neighbors_labeled(&self, node: NodeId, label: Sym) -> &[Adj] {
        Self::labeled_range(self.in_slice(node), label)
    }

    /// True if the edge `(src, dst, label)` exists — one binary search
    /// over `src`'s contiguous out-run.
    #[inline]
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Sym) -> bool {
        self.out_slice(src)
            .binary_search(&Adj { label, node: dst })
            .is_ok()
    }

    /// True if any edge `src → dst` exists, regardless of label.
    ///
    /// The run is sorted by `(label, dst)`, so a single binary search
    /// can't answer this; instead we skip-scan label segments, binary
    /// searching `dst` within each — `O(L · log deg)` for `L` distinct
    /// labels at `src`, with a plain scan for short runs.
    pub fn has_edge_any(&self, src: NodeId, dst: NodeId) -> bool {
        let run = self.out_slice(src);
        if run.len() <= 16 {
            return run.iter().any(|a| a.node == dst);
        }
        let mut i = 0;
        while i < run.len() {
            let label = run[i].label;
            let seg = i + run[i..].partition_point(|a| a.label == label);
            if run[i..seg].binary_search(&Adj { label, node: dst }).is_ok() {
                return true;
            }
            i = seg;
        }
        false
    }

    /// All edge labels `src → dst`.
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = Sym> + '_ {
        self.out_slice(src)
            .iter()
            .filter(move |a| a.node == dst)
            .map(|a| a.label)
    }

    /// Nodes carrying `label` — the candidate extent `C(µ(z))`, as a
    /// zero-alloc subslice of the label permutation (ascending ids).
    pub fn extent(&self, label: Sym) -> &[NodeId] {
        match self
            .extent_ranges
            .binary_search_by_key(&label, |&(l, _, _)| l)
        {
            Ok(i) => {
                let (_, lo, hi) = self.extent_ranges[i];
                &self.extent_perm[lo as usize..hi as usize]
            }
            Err(_) => &[],
        }
    }

    /// All labels that occur on nodes, with their extents (ascending
    /// label order).
    pub fn label_extents(&self) -> impl Iterator<Item = (Sym, &[NodeId])> + '_ {
        self.extent_ranges
            .iter()
            .map(|&(l, lo, hi)| (l, &self.extent_perm[lo as usize..hi as usize]))
    }

    /// Undirected neighbors of `node` (out then in; duplicates possible
    /// when edges run both ways).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_slice(node)
            .iter()
            .chain(self.in_slice(node).iter())
            .map(|a| a.node)
    }

    /// Iterates over all edges (by source node, then `(label, dst)`).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.nodes().flat_map(move |src| {
            self.out_slice(src).iter().map(move |a| Edge {
                src,
                dst: a.node,
                label: a.label,
            })
        })
    }

    /// Approximate serialized size of a node (label + attributes + its
    /// incident edge slots), used by the communication cost model.
    pub fn node_wire_size(&self, node: NodeId) -> usize {
        8 + self.attrs[node.index()].wire_size() + 12 * self.out_degree(node)
    }

    /// Reconstructs a [`GraphBuilder`] with identical contents and node
    /// ids, for repair/noise workflows that need to mutate a snapshot.
    pub fn thaw(&self) -> GraphBuilder {
        let mut label_index: HashMap<Sym, Vec<NodeId>> = HashMap::new();
        for (label, extent) in self.label_extents() {
            label_index.insert(label, extent.to_vec());
        }
        GraphBuilder {
            vocab: self.vocab.clone(),
            labels: self.labels.clone(),
            attrs: self.attrs.clone(),
            out: self.nodes().map(|u| self.out_slice(u).to_vec()).collect(),
            label_index,
            edge_count: self.edge_count,
        }
    }

    /// Thaw–mutate–refreeze in one step: returns a new snapshot with
    /// `edits` applied.
    pub fn edit(&self, edits: impl FnOnce(&mut GraphBuilder)) -> Graph {
        let mut b = self.thaw();
        edits(&mut b);
        b.freeze()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g3() -> (Graph, [NodeId; 3]) {
        // Fig. 1's G3: a country with one capital (plus a stray city).
        let mut b = GraphBuilder::with_fresh_vocab();
        let country = b.add_node_labeled("country");
        let canberra = b.add_node_labeled("city");
        let melbourne = b.add_node_labeled("city");
        b.add_edge_labeled(country, canberra, "capital");
        b.set_attr_named(country, "val", Value::str("Australia"));
        b.set_attr_named(canberra, "val", Value::str("Canberra"));
        b.set_attr_named(melbourne, "val", Value::str("Melbourne"));
        (b.freeze(), [country, canberra, melbourne])
    }

    #[test]
    fn basic_construction() {
        let (g, [country, canberra, _]) = g3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.size(), 4);
        let capital = g.vocab().lookup("capital").unwrap();
        assert!(g.has_edge(country, canberra, capital));
        assert!(!g.has_edge(canberra, country, capital));
        assert!(g.has_edge_any(country, canberra));
    }

    #[test]
    fn duplicate_edges_rejected() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("a");
        let c = b.add_node_labeled("b");
        assert!(b.add_edge_labeled(a, c, "e"));
        assert!(!b.add_edge_labeled(a, c, "e"));
        assert!(b.add_edge_labeled(a, c, "f")); // parallel edge, new label
        let g = b.freeze();
        assert_eq!(g.edge_count(), 2);
        let labels: Vec<_> = g.edges_between(a, c).collect();
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn extents_track_labels() {
        let (g, [country, canberra, melbourne]) = g3();
        let city = g.vocab().lookup("city").unwrap();
        assert_eq!(g.extent(city), &[canberra, melbourne]);
        let cn = g.vocab().lookup("country").unwrap();
        assert_eq!(g.extent(cn), &[country]);
        let missing = g.vocab().intern("starship");
        assert!(g.extent(missing).is_empty());
        let total: usize = g.label_extents().map(|(_, e)| e.len()).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn runs_sorted_by_label_then_dst() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let nodes: Vec<NodeId> = (0..5)
            .map(|i| b.add_node_labeled(&format!("l{i}")))
            .collect();
        b.add_edge_labeled(nodes[0], nodes[3], "e");
        b.add_edge_labeled(nodes[0], nodes[1], "f");
        b.add_edge_labeled(nodes[0], nodes[2], "e");
        let g = b.freeze();
        let run = g.out_slice(nodes[0]);
        assert!(
            run.windows(2).all(|w| w[0] < w[1]),
            "sorted by (label, dst)"
        );
        let e = g.vocab().lookup("e").unwrap();
        let e_dsts: Vec<u32> = g
            .neighbors_labeled(nodes[0], e)
            .iter()
            .map(|a| a.node.0)
            .collect();
        assert_eq!(e_dsts, vec![2, 3]);
        for a in g.in_slice(nodes[1]) {
            assert!(g.out_slice(a.node).iter().any(|o| o.node == nodes[1]));
        }
    }

    #[test]
    fn in_adjacency_mirrors_out() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let ns: Vec<NodeId> = (0..4).map(|_| b.add_node_labeled("v")).collect();
        b.add_edge_labeled(ns[0], ns[2], "e");
        b.add_edge_labeled(ns[1], ns[2], "e");
        b.add_edge_labeled(ns[3], ns[2], "f");
        let g = b.freeze();
        assert_eq!(g.in_degree(ns[2]), 3);
        let e = g.vocab().lookup("e").unwrap();
        let srcs: Vec<NodeId> = g
            .in_neighbors_labeled(ns[2], e)
            .iter()
            .map(|a| a.node)
            .collect();
        assert_eq!(srcs, vec![ns[0], ns[1]]);
    }

    #[test]
    fn attributes_read_back() {
        let (g, [country, ..]) = g3();
        let val = g.vocab().lookup("val").unwrap();
        assert_eq!(g.attr(country, val), Some(&Value::str("Australia")));
        let bogus = g.vocab().intern("bogus");
        assert_eq!(g.attr(country, bogus), None);
    }

    #[test]
    fn edges_iterator_complete() {
        let (g, _) = g3();
        let all: Vec<Edge> = g.edges().collect();
        assert_eq!(all.len(), g.edge_count());
    }

    #[test]
    fn thaw_freeze_round_trip_preserves_everything() {
        let (g, [country, canberra, _]) = g3();
        let g2 = g.thaw().freeze();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        let capital = g.vocab().lookup("capital").unwrap();
        assert!(g2.has_edge(country, canberra, capital));
        for u in g.nodes() {
            assert_eq!(g.label(u), g2.label(u));
            assert_eq!(g.attrs(u), g2.attrs(u));
            assert_eq!(g.out_slice(u), g2.out_slice(u));
            assert_eq!(g.in_slice(u), g2.in_slice(u));
        }
    }

    #[test]
    fn edit_applies_mutations() {
        let (g, [_, canberra, melbourne]) = g3();
        let val = g.vocab().lookup("val").unwrap();
        let g2 = g.edit(|b| {
            b.set_attr(melbourne, val, Value::str("Canberra"));
            b.remove_attr(canberra, val);
        });
        assert_eq!(g2.attr(melbourne, val), Some(&Value::str("Canberra")));
        assert_eq!(g2.attr(canberra, val), None);
        // The original snapshot is untouched.
        assert_eq!(g.attr(melbourne, val), Some(&Value::str("Melbourne")));
    }

    #[test]
    #[should_panic(expected = "dst n99 is not a node")]
    fn add_edge_rejects_unknown_dst() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("a");
        b.add_edge_labeled(a, NodeId(99), "e");
    }

    #[test]
    fn has_edge_any_skip_scan_on_long_runs() {
        // A hub with > 16 out-edges exercises the label-segment
        // skip-scan rather than the short-run linear path.
        let mut b = GraphBuilder::with_fresh_vocab();
        let hub = b.add_node_labeled("hub");
        let spokes: Vec<NodeId> = (0..24).map(|_| b.add_node_labeled("v")).collect();
        for (i, &s) in spokes.iter().enumerate() {
            b.add_edge_labeled(hub, s, &format!("e{}", i % 5));
        }
        let g = b.freeze();
        assert!(g.out_degree(hub) > 16);
        for &s in &spokes {
            assert!(g.has_edge_any(hub, s));
        }
        assert!(!g.has_edge_any(hub, hub));
        assert!(!g.has_edge_any(spokes[0], hub));
    }

    #[test]
    fn set_label_updates_extents_through_freeze() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a = b.add_node_labeled("x");
        let _ = b.add_node_labeled("x");
        let y = b.vocab().intern("y");
        b.set_label(a, y);
        let g = b.freeze();
        let x = g.vocab().lookup("x").unwrap();
        assert_eq!(g.extent(x).len(), 1);
        assert_eq!(g.extent(y), &[a]);
    }
}
