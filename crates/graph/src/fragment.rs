//! Graph fragmentation for the distributed setting of §6.2.
//!
//! A fragmentation `(F_1, …, F_n)` of `G` assigns every node to exactly
//! one fragment (edges belong to the fragment of their source). Each
//! fragment tracks its border:
//!
//! * **in-nodes** `F_i.I` — nodes of `F_i` that have an incoming edge
//!   from another fragment;
//! * **out-nodes** `F_i.O` — nodes in *other* fragments reachable by an
//!   edge leaving `F_i`.
//!
//! The `disVal` algorithm uses border nodes to mark "missing data" in
//! partial work units and to estimate communication costs.

use std::fmt;

use crate::graph::{Graph, NodeId};

/// Identifier of a fragment (processor site `S_i`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FragmentId(pub u16);

impl FragmentId {
    /// The fragment id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// How nodes are distributed over fragments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Node id modulo `n` — maximal edge cut, worst case for
    /// communication; useful as an adversarial baseline.
    Hash,
    /// Contiguous id ranges — what bulk loaders typically produce.
    Contiguous,
    /// Greedy BFS clustering filling one fragment at a time — a cheap
    /// locality-preserving stand-in for a min-cut partitioner.
    BfsClustered,
}

/// Per-fragment node lists and border sets.
#[derive(Clone, Debug, Default)]
pub struct FragmentInfo {
    /// Nodes owned by this fragment (sorted).
    pub nodes: Vec<NodeId>,
    /// `F_i.I`: owned nodes with an incoming cross-fragment edge (sorted).
    pub in_border: Vec<NodeId>,
    /// `F_i.O`: foreign nodes reachable by an edge from this fragment (sorted).
    pub out_border: Vec<NodeId>,
    /// Number of edges whose source is owned by this fragment.
    pub edge_count: usize,
}

impl FragmentInfo {
    /// `|F_i|` as nodes + owned edges.
    pub fn size(&self) -> usize {
        self.nodes.len() + self.edge_count
    }
}

/// A complete fragmentation of a graph.
pub struct Fragmentation {
    owner: Vec<FragmentId>,
    fragments: Vec<FragmentInfo>,
}

impl Fragmentation {
    /// Partitions `g` into `n` fragments with the given strategy.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn partition(g: &Graph, n: usize, strategy: PartitionStrategy) -> Self {
        assert!(n > 0, "cannot partition into zero fragments");
        let owner = match strategy {
            PartitionStrategy::Hash => g
                .nodes()
                .map(|u| FragmentId((u.0 as usize % n) as u16))
                .collect(),
            PartitionStrategy::Contiguous => {
                let per = g.node_count().div_ceil(n).max(1);
                g.nodes()
                    .map(|u| FragmentId(((u.index() / per).min(n - 1)) as u16))
                    .collect()
            }
            PartitionStrategy::BfsClustered => bfs_clustered(g, n),
        };
        Self::from_owner(g, n, owner)
    }

    /// Builds a fragmentation from an explicit node → fragment map.
    pub fn from_owner(g: &Graph, n: usize, owner: Vec<FragmentId>) -> Self {
        assert_eq!(owner.len(), g.node_count());
        let mut fragments = vec![FragmentInfo::default(); n];
        for u in g.nodes() {
            let f = owner[u.index()];
            fragments[f.index()].nodes.push(u);
        }
        for u in g.nodes() {
            let fu = owner[u.index()];
            for a in g.out_slice(u) {
                let v = a.node;
                fragments[fu.index()].edge_count += 1;
                let fv = owner[v.index()];
                if fu != fv {
                    fragments[fu.index()].out_border.push(v);
                    fragments[fv.index()].in_border.push(v);
                }
            }
        }
        for info in &mut fragments {
            info.in_border.sort_unstable();
            info.in_border.dedup();
            info.out_border.sort_unstable();
            info.out_border.dedup();
        }
        Fragmentation { owner, fragments }
    }

    /// Number of fragments `n`.
    pub fn n(&self) -> usize {
        self.fragments.len()
    }

    /// The fragment owning `node`.
    pub fn owner(&self, node: NodeId) -> FragmentId {
        self.owner[node.index()]
    }

    /// Per-fragment info.
    pub fn fragment(&self, f: FragmentId) -> &FragmentInfo {
        &self.fragments[f.index()]
    }

    /// Iterates over all fragments.
    pub fn fragments(&self) -> impl Iterator<Item = (FragmentId, &FragmentInfo)> + '_ {
        self.fragments
            .iter()
            .enumerate()
            .map(|(i, info)| (FragmentId(i as u16), info))
    }

    /// True if `node` is owned by `f`.
    pub fn is_local(&self, f: FragmentId, node: NodeId) -> bool {
        self.owner(node) == f
    }

    /// Number of cross-fragment edges (the edge cut).
    pub fn edge_cut(&self, g: &Graph) -> usize {
        g.edges()
            .filter(|e| self.owner(e.src) != self.owner(e.dst))
            .count()
    }
}

/// Greedy BFS clustering: repeatedly grow a fragment from an unassigned
/// seed until it reaches `|V|/n` nodes, then move to the next fragment.
fn bfs_clustered(g: &Graph, n: usize) -> Vec<FragmentId> {
    let capacity = g.node_count().div_ceil(n).max(1);
    let mut owner = vec![FragmentId(u16::MAX); g.node_count()];
    let mut current = 0usize;
    let mut filled = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for seed in g.nodes() {
        if owner[seed.index()].0 != u16::MAX {
            continue;
        }
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            if owner[u.index()].0 != u16::MAX {
                continue;
            }
            owner[u.index()] = FragmentId(current as u16);
            filled += 1;
            if filled >= capacity && current + 1 < n {
                current += 1;
                filled = 0;
                queue.clear();
                break;
            }
            for v in g.neighbors(u) {
                if owner[v.index()].0 == u16::MAX {
                    queue.push_back(v);
                }
            }
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut b = crate::graph::GraphBuilder::with_fresh_vocab();
        let ns: Vec<NodeId> = (0..n).map(|_| b.add_node_labeled("v")).collect();
        for i in 0..n {
            b.add_edge_labeled(ns[i], ns[(i + 1) % n], "e");
        }
        b.freeze()
    }

    #[test]
    fn every_node_owned_exactly_once() {
        let g = ring(20);
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Contiguous,
            PartitionStrategy::BfsClustered,
        ] {
            let frag = Fragmentation::partition(&g, 4, strategy);
            let total: usize = frag.fragments().map(|(_, f)| f.nodes.len()).sum();
            assert_eq!(total, 20, "{strategy:?}");
            for u in g.nodes() {
                let f = frag.owner(u);
                assert!(frag.fragment(f).nodes.contains(&u));
            }
        }
    }

    #[test]
    fn edges_covered_by_fragments() {
        let g = ring(12);
        let frag = Fragmentation::partition(&g, 3, PartitionStrategy::Contiguous);
        let total_edges: usize = frag.fragments().map(|(_, f)| f.edge_count).sum();
        assert_eq!(total_edges, g.edge_count());
    }

    #[test]
    fn border_nodes_match_edge_cut() {
        let g = ring(12);
        let frag = Fragmentation::partition(&g, 3, PartitionStrategy::Contiguous);
        // A 12-ring cut into 3 contiguous arcs has 3 cut edges.
        assert_eq!(frag.edge_cut(&g), 3);
        for (fid, info) in frag.fragments() {
            for &b in &info.in_border {
                assert!(frag.is_local(fid, b), "in-border nodes are local");
            }
            for &b in &info.out_border {
                assert!(!frag.is_local(fid, b), "out-border nodes are foreign");
            }
        }
    }

    #[test]
    fn bfs_clustering_cuts_less_than_hash() {
        let g = ring(64);
        let hash = Fragmentation::partition(&g, 4, PartitionStrategy::Hash);
        let bfs = Fragmentation::partition(&g, 4, PartitionStrategy::BfsClustered);
        assert!(bfs.edge_cut(&g) < hash.edge_cut(&g));
    }

    #[test]
    fn fragment_sizes_roughly_balanced() {
        let g = ring(100);
        let frag = Fragmentation::partition(&g, 4, PartitionStrategy::BfsClustered);
        for (_, info) in frag.fragments() {
            assert!(info.nodes.len() >= 20 && info.nodes.len() <= 30);
        }
    }
}
