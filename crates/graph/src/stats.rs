//! Graph statistics backing workload estimation (§6.1).
//!
//! `bPar` needs, per pivot variable `z`: (a) the frequency distribution
//! of candidates `C(µ(z))` (nodes sharing `µ(z)`'s label) — served by
//! [`GraphStats::label_frequency`]; and (b) an *m-balanced partition* of
//! the candidates into value ranges so candidate enumeration can be
//! spread over processors — served by [`EquiDepthHistogram`], the
//! "precomputed equi-depth histogram" the paper cites.

use std::collections::HashMap;

use crate::graph::{Graph, NodeId};
use crate::vocab::Sym;

/// Precomputed summary statistics of a graph.
#[derive(Clone, Debug, Default)]
pub struct GraphStats {
    label_freq: HashMap<Sym, usize>,
    max_degree: usize,
    avg_degree: f64,
}

impl GraphStats {
    /// Scans `g` once and records label frequencies and degree stats.
    pub fn compute(g: &Graph) -> Self {
        let mut label_freq = HashMap::new();
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        for u in g.nodes() {
            *label_freq.entry(g.label(u)).or_insert(0) += 1;
            let d = g.degree(u);
            max_degree = max_degree.max(d);
            total_degree += d;
        }
        let avg_degree = if g.node_count() == 0 {
            0.0
        } else {
            total_degree as f64 / g.node_count() as f64
        };
        GraphStats {
            label_freq,
            max_degree,
            avg_degree,
        }
    }

    /// Number of nodes labeled `label` — `|C(µ(z))|`.
    pub fn label_frequency(&self, label: Sym) -> usize {
        self.label_freq.get(&label).copied().unwrap_or(0)
    }

    /// Largest total degree in the graph.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Mean total degree.
    pub fn avg_degree(&self) -> f64 {
        self.avg_degree
    }

    /// Skew ratio as defined for Fig. 8: average size of the 10% smallest
    /// `d`-hop neighborhoods over the 10% largest (smaller ⇒ more skewed).
    pub fn skew_ratio(g: &Graph, d: usize, sample: usize) -> f64 {
        let n = g.node_count();
        if n == 0 {
            return 1.0;
        }
        let step = (n / sample.max(1)).max(1);
        let mut sizes: Vec<usize> = (0..n)
            .step_by(step)
            .map(|i| crate::neighborhood::khop_nodes(g, &[NodeId(i as u32)], d).len())
            .collect();
        sizes.sort_unstable();
        let decile = (sizes.len() / 10).max(1);
        let small: usize = sizes[..decile].iter().sum();
        let large: usize = sizes[sizes.len() - decile..].iter().sum();
        if large == 0 {
            1.0
        } else {
            small as f64 / large as f64
        }
    }
}

/// An equi-depth histogram over `u64` keys: `m` buckets holding
/// (approximately) the same number of samples each.
///
/// Used to derive the *m-balanced partition* `R_{µ(z)} = {r_1, …, r_m}`
/// of candidate value ranges in workload estimation.
#[derive(Clone, Debug)]
pub struct EquiDepthHistogram {
    /// Inclusive `(lo, hi)` bounds per bucket, ascending and disjoint.
    buckets: Vec<(u64, u64)>,
}

impl EquiDepthHistogram {
    /// Builds a histogram with (at most) `m` equal-count buckets.
    ///
    /// Fewer than `m` buckets are returned when there are fewer than `m`
    /// distinct keys. Panics if `m == 0`.
    pub fn build(mut keys: Vec<u64>, m: usize) -> Self {
        assert!(m > 0, "histogram needs at least one bucket");
        keys.sort_unstable();
        let mut buckets = Vec::with_capacity(m);
        if keys.is_empty() {
            return EquiDepthHistogram { buckets };
        }
        let per = keys.len().div_ceil(m);
        let mut i = 0usize;
        while i < keys.len() {
            let mut j = (i + per).min(keys.len());
            // Extend the bucket so equal keys never straddle a boundary.
            while j < keys.len() && keys[j] == keys[j - 1] {
                j += 1;
            }
            buckets.push((keys[i], keys[j - 1]));
            i = j;
        }
        EquiDepthHistogram { buckets }
    }

    /// The bucket ranges, ascending.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.buckets
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The bucket index containing `key`, if any.
    pub fn bucket_of(&self, key: u64) -> Option<usize> {
        self.buckets
            .iter()
            .position(|&(lo, hi)| key >= lo && key <= hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn label_frequencies() {
        let mut b = GraphBuilder::with_fresh_vocab();
        for _ in 0..3 {
            b.add_node_labeled("flight");
        }
        b.add_node_labeled("city");
        let g = b.freeze();
        let stats = GraphStats::compute(&g);
        let flight = g.vocab().lookup("flight").unwrap();
        let city = g.vocab().lookup("city").unwrap();
        assert_eq!(stats.label_frequency(flight), 3);
        assert_eq!(stats.label_frequency(city), 1);
        assert_eq!(stats.label_frequency(g.vocab().intern("nope")), 0);
    }

    #[test]
    fn equi_depth_buckets_balanced() {
        let keys: Vec<u64> = (0..100).collect();
        let h = EquiDepthHistogram::build(keys, 4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.ranges()[0], (0, 24));
        assert_eq!(h.ranges()[3], (75, 99));
    }

    #[test]
    fn equi_depth_handles_duplicates() {
        let keys = vec![5u64; 50];
        let h = EquiDepthHistogram::build(keys, 4);
        assert_eq!(h.len(), 1);
        assert_eq!(h.ranges()[0], (5, 5));
    }

    #[test]
    fn equi_depth_bucket_lookup() {
        let h = EquiDepthHistogram::build((0..30).collect(), 3);
        assert_eq!(h.bucket_of(0), Some(0));
        assert_eq!(h.bucket_of(29), Some(2));
        assert_eq!(h.bucket_of(999), None);
    }

    #[test]
    fn empty_histogram() {
        let h = EquiDepthHistogram::build(Vec::new(), 3);
        assert!(h.is_empty());
        assert_eq!(h.bucket_of(1), None);
    }

    #[test]
    fn degree_stats() {
        let mut bld = GraphBuilder::with_fresh_vocab();
        let a = bld.add_node_labeled("a");
        let b = bld.add_node_labeled("b");
        let c = bld.add_node_labeled("c");
        bld.add_edge_labeled(a, b, "e");
        bld.add_edge_labeled(a, c, "e");
        let g = bld.freeze();
        let stats = GraphStats::compute(&g);
        assert_eq!(stats.max_degree(), 2);
        assert!((stats.avg_degree() - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn skew_ratio_of_uniform_graph_near_one() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let ns: Vec<_> = (0..40).map(|_| b.add_node_labeled("v")).collect();
        for i in 0..40 {
            b.add_edge_labeled(ns[i], ns[(i + 1) % 40], "e");
        }
        let g = b.freeze();
        let ratio = GraphStats::skew_ratio(&g, 2, 40);
        assert!(
            ratio > 0.9,
            "uniform ring should have ratio ≈ 1, got {ratio}"
        );
    }
}
