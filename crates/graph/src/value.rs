//! Attribute values.
//!
//! The paper's graphs carry constants on node attributes (`F_A(v)`;
//! §2). Knowledge-graph constants are strings, ids and numbers, so
//! [`Value`] covers strings, integers and booleans. Equality between
//! values of different kinds is `false` (never an error), matching the
//! paper's treatment of literals as equality atoms over constants.

use std::fmt;
use std::sync::Arc;

/// A constant attribute value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A string constant (shared; values in knowledge graphs repeat a lot).
    Str(Arc<str>),
    /// A 64-bit integer constant.
    Int(i64),
    /// A boolean constant (`is_fake = true` in Example 1).
    Bool(bool),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Returns the string content if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used by the communication
    /// cost model of the cluster runtime (§6.2's `cs * |M|`).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Str(s) => s.len() + 1,
            Value::Int(_) => 8,
            Value::Bool(_) => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_kind_equality_is_false() {
        assert_ne!(Value::str("1"), Value::Int(1));
        assert_ne!(Value::Bool(true), Value::str("true"));
    }

    #[test]
    fn display_round_trip_for_strings() {
        let v = Value::str("Edi");
        assert_eq!(v.to_string(), "Edi");
        assert_eq!(v.as_str(), Some("Edi"));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn wire_size_is_positive() {
        for v in [Value::str("x"), Value::Int(0), Value::Bool(false)] {
            assert!(v.wire_size() > 0);
        }
    }
}
