//! Property tests for delta batch compaction and ingest validation —
//! the [`GraphDelta::merge`] / [`GraphDelta::check_against`] layer the
//! standing-violation service's `EditLog` is built on.
//!
//! The central oracle: a random 50-step edit script, recorded as one
//! delta per step, applied two ways — step by step (the raw sequence)
//! versus folded into a single compacted delta with `merge` and
//! applied once. Both must produce identical snapshots, even when the
//! script is deliberately biased toward opposing operations (add then
//! remove the same edge, set then unset the same attribute) so the
//! cancellation rules are exercised, not just the happy path.

use gfd_graph::{DeltaError, Edge, Graph, GraphBuilder, GraphDelta, NodeId, Value};
use gfd_util::{prop::check, prop_assert, Rng};

/// A small random base graph over a fixed label/attr vocabulary.
fn base_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(3..10);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % 3)))
        .collect();
    for _ in 0..rng.gen_range(0..2 * n) {
        let s = ids[rng.gen_range(0..n)];
        let d = ids[rng.gen_range(0..n)];
        b.add_edge_labeled(s, d, &format!("e{}", rng.gen_range(0..2)));
    }
    b.freeze()
}

/// One random edit step on the current snapshot, biased toward
/// *toggling* a small pool of edge/attr slots so consecutive steps
/// frequently oppose each other (the compaction-relevant shape).
fn random_step(rng: &mut Rng, g: &Graph) -> (Graph, GraphDelta) {
    let n = g.node_count();
    // A deliberately tiny coordinate pool: repeated steps hit the same
    // (src, dst, label) and (node, attr) slots, producing add/remove
    // and set/unset chains for merge to cancel.
    let s = NodeId(rng.gen_range(0..n.min(4)) as u32);
    let d = NodeId(rng.gen_range(0..n.min(4)) as u32);
    let kind = rng.gen_range(0..7);
    g.edit_with_delta(|b| match kind {
        0 => {
            b.add_edge_labeled(s, d, "e0");
        }
        1 => {
            b.remove_edge_labeled(s, d, "e0");
        }
        2 => {
            let a = b.vocab().intern("val");
            b.set_attr(s, a, Value::Int(rng.gen_range(0..3) as i64));
        }
        3 => {
            let a = b.vocab().intern("val");
            b.remove_attr(s, a);
        }
        4 => {
            let l = b.vocab().intern(&format!("l{}", rng.gen_range(0..3)));
            b.set_label(s, l);
        }
        5 => {
            let v = b.add_node_labeled("l1");
            b.add_edge_labeled(v, d, "e1");
        }
        _ => {
            // Toggle within one session: add + remove (or the reverse)
            // of the same edge, so even *single* deltas carry opposing
            // pairs for normalize to cancel before merge sees them.
            if b.add_edge_labeled(s, d, "e1") {
                b.remove_edge_labeled(s, d, "e1");
            } else {
                b.remove_edge_labeled(s, d, "e1");
                b.add_edge_labeled(s, d, "e1");
            }
        }
    })
}

/// Structural equality over every observable (labels, attrs, CSR runs).
fn graphs_equal(a: &Graph, b: &Graph) -> Result<(), String> {
    if a.node_count() != b.node_count() {
        return Err(format!(
            "node counts {} vs {}",
            a.node_count(),
            b.node_count()
        ));
    }
    if a.edge_count() != b.edge_count() {
        return Err(format!(
            "edge counts {} vs {}",
            a.edge_count(),
            b.edge_count()
        ));
    }
    for u in a.nodes() {
        if a.label(u) != b.label(u) {
            return Err(format!("label of {u:?}"));
        }
        if a.attrs(u) != b.attrs(u) {
            return Err(format!("attrs of {u:?}"));
        }
        if a.out_slice(u) != b.out_slice(u) {
            return Err(format!("out run of {u:?}"));
        }
        if a.in_slice(u) != b.in_slice(u) {
            return Err(format!("in run of {u:?}"));
        }
    }
    Ok(())
}

fn cases(full: u64) -> u64 {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        (full / 5).max(2)
    } else {
        full
    }
}

#[test]
fn compacted_batch_equals_raw_sequence() {
    check(
        "merge-compacted batch ≡ raw step sequence",
        cases(60),
        |rng| {
            let base = base_graph(rng);
            // Snapshots are Arc-shared, not Clone; a no-op edit forks
            // an identical successor to walk the raw sequence on.
            let mut raw = base.edit(|_| {});
            let mut compacted: Option<GraphDelta> = None;
            for _ in 0..50 {
                let (next, delta) = random_step(rng, &raw);
                raw = next;
                compacted = Some(match compacted.take() {
                    None => delta,
                    Some(prev) => prev.merge(delta),
                });
            }
            let compacted = compacted.expect("50 steps recorded");
            // The compacted delta must validate against the base and
            // reproduce the raw sequence's final snapshot in ONE patch.
            if let Err(e) = compacted.check_against(&base) {
                return Err(format!("compacted delta rejected: {e}"));
            }
            let folded = base.apply_delta(&compacted);
            graphs_equal(&folded, &raw)
        },
    );
}

#[test]
fn merge_is_associative_over_splits() {
    // Folding a batch left-to-right must not depend on where the batch
    // is split: merge(merge(a, b), c) ≡ merge(a, merge(b, c)).
    check("merge associativity", cases(40), |rng| {
        let base = base_graph(rng);
        let mut g = base.edit(|_| {});
        let mut deltas = Vec::new();
        for _ in 0..12 {
            let (next, d) = random_step(rng, &g);
            g = next;
            deltas.push(d);
        }
        let split = rng.gen_range(1..deltas.len());
        let fold = |ds: &[GraphDelta]| {
            ds.iter()
                .cloned()
                .reduce(|a, b| a.merge(b))
                .expect("non-empty")
        };
        let left = fold(&deltas[..split]).merge(fold(&deltas[split..]));
        let all = fold(&deltas);
        if left != all {
            return Err(format!("split at {split} diverges: {left:?} vs {all:?}"));
        }
        graphs_equal(&base.apply_delta(&all), &g)
    });
}

#[test]
fn check_against_rejects_malformed_deltas() {
    check("check_against catches corruption", cases(60), |rng| {
        let base = base_graph(rng);
        let limit = base.node_count() as u32;
        let sym_e0 = base.vocab().lookup("e0");

        // A recorded (well-formed) delta always passes.
        let (_, good) = random_step(rng, &base);
        if let Err(e) = good.check_against(&base) {
            return Err(format!("recorded delta rejected: {e}"));
        }

        // Out-of-range edge endpoint (the malformed-batch injection
        // shape): must be rejected, never applied.
        let mut bad = GraphDelta::new(base.node_count());
        bad.added_edges.push(Edge {
            src: NodeId(limit + rng.gen_range(1..1000) as u32),
            dst: NodeId(0),
            label: sym_e0.unwrap_or(gfd_graph::Sym(0)),
        });
        prop_assert!(
            matches!(
                bad.check_against(&base),
                Err(DeltaError::NodeOutOfRange { .. })
            ),
            "out-of-range add accepted"
        );

        // Wrong base snapshot.
        let stale = GraphDelta::new(base.node_count() + 1);
        prop_assert!(
            matches!(
                stale.check_against(&base),
                Err(DeltaError::BaseMismatch { .. })
            ),
            "base mismatch accepted"
        );

        // Removing an absent edge: pick a (src, dst, label) triple not
        // in the snapshot.
        if let Some(l) = sym_e0 {
            let mut rem = GraphDelta::new(base.node_count());
            let mut found = None;
            'outer: for s in 0..limit {
                for d in 0..limit {
                    if !base.has_edge(NodeId(s), NodeId(d), l) {
                        found = Some(Edge {
                            src: NodeId(s),
                            dst: NodeId(d),
                            label: l,
                        });
                        break 'outer;
                    }
                }
            }
            if let Some(e) = found {
                rem.removed_edges.push(e);
                prop_assert!(
                    matches!(rem.check_against(&base), Err(DeltaError::EdgeAbsent { .. })),
                    "absent-edge removal accepted"
                );
            }
        }

        // Out-of-range attribute write.
        let mut attr = GraphDelta::new(base.node_count());
        attr.attr_ops.push(gfd_graph::AttrOp {
            node: NodeId(limit + 7),
            attr: gfd_graph::Sym(0),
            value: Some(Value::Int(1)),
        });
        prop_assert!(
            matches!(
                attr.check_against(&base),
                Err(DeltaError::NodeOutOfRange { .. })
            ),
            "out-of-range attr accepted"
        );
        Ok(())
    });
}
