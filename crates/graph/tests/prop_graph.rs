//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use gfd_graph::{
    neighborhood::{induced_subgraph, khop_nodes},
    EquiDepthHistogram, Fragmentation, Graph, NodeId, PartitionStrategy,
};
use proptest::prelude::*;

/// Strategy: a random graph with up to `n` nodes over `l` labels and a
/// random edge list.
fn arb_graph(n: usize, l: usize) -> impl Strategy<Value = Graph> {
    let nodes = 1..=n;
    nodes.prop_flat_map(move |count| {
        let edges = proptest::collection::vec((0..count, 0..count, 0..l), 0..count * 3);
        (Just(count), edges).prop_map(move |(count, edges)| {
            let mut g = Graph::with_fresh_vocab();
            let ids: Vec<NodeId> = (0..count)
                .map(|i| g.add_node_labeled(&format!("l{}", i % l)))
                .collect();
            for (s, d, e) in edges {
                g.add_edge_labeled(ids[s], ids[d], &format!("e{e}"));
            }
            g
        })
    })
}

proptest! {
    /// Out- and in-adjacency describe the same edge set.
    #[test]
    fn adjacency_is_symmetric(g in arb_graph(24, 4)) {
        let from_out: HashSet<(u32, u32, u32)> = g
            .edges()
            .map(|e| (e.src.0, e.dst.0, e.label.0))
            .collect();
        let mut from_in = HashSet::new();
        for v in g.nodes() {
            for &(u, l) in g.inn(v) {
                from_in.insert((u.0, v.0, l.0));
            }
        }
        prop_assert_eq!(from_out.len(), g.edge_count());
        prop_assert_eq!(from_out, from_in);
    }

    /// k-hop neighborhoods grow monotonically with k and always contain
    /// their seed.
    #[test]
    fn khop_monotone(g in arb_graph(20, 3), k in 0usize..4) {
        for u in g.nodes() {
            let small = khop_nodes(&g, &[u], k);
            let large = khop_nodes(&g, &[u], k + 1);
            prop_assert!(small.contains(u));
            for x in small.iter() {
                prop_assert!(large.contains(x));
            }
        }
    }

    /// Every fragmentation covers all nodes exactly once and all edges.
    #[test]
    fn fragmentation_covers(g in arb_graph(30, 3), n in 1usize..6) {
        for strategy in [PartitionStrategy::Hash, PartitionStrategy::Contiguous, PartitionStrategy::BfsClustered] {
            let frag = Fragmentation::partition(&g, n, strategy);
            let total_nodes: usize = frag.fragments().map(|(_, f)| f.nodes.len()).sum();
            let total_edges: usize = frag.fragments().map(|(_, f)| f.edge_count).sum();
            prop_assert_eq!(total_nodes, g.node_count());
            prop_assert_eq!(total_edges, g.edge_count());
        }
    }

    /// Induced subgraphs keep exactly the internal edges.
    #[test]
    fn induced_subgraph_edge_count(g in arb_graph(16, 3), k in 0usize..3) {
        if g.node_count() == 0 { return Ok(()); }
        let seed = NodeId(0);
        let set = khop_nodes(&g, &[seed], k);
        let (sub, _) = induced_subgraph(&g, &set);
        prop_assert_eq!(sub.node_count(), set.len());
        prop_assert_eq!(sub.edge_count(), set.internal_edge_count(&g));
    }

    /// Equi-depth buckets cover every key and are ascending/disjoint.
    #[test]
    fn equi_depth_covers(keys in proptest::collection::vec(0u64..1000, 1..200), m in 1usize..10) {
        let h = EquiDepthHistogram::build(keys.clone(), m);
        for k in &keys {
            prop_assert!(h.bucket_of(*k).is_some());
        }
        let ranges = h.ranges();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 < w[1].0, "buckets must be disjoint and ascending");
        }
    }

    /// Text round trip preserves node/edge counts and labels.
    #[test]
    fn text_round_trip(g in arb_graph(12, 3)) {
        let text = gfd_graph::io::to_text(&g);
        let g2 = gfd_graph::io::from_text(&text, gfd_graph::Vocab::shared()).unwrap();
        prop_assert_eq!(g2.node_count(), g.node_count());
        prop_assert_eq!(g2.edge_count(), g.edge_count());
        for u in g.nodes() {
            let l1 = g.vocab().resolve(g.label(u));
            let l2 = g2.vocab().resolve(g2.label(u));
            prop_assert_eq!(l1.as_ref(), l2.as_ref());
        }
    }
}
