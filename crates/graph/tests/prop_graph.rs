//! Property-based tests for the graph substrate.
//!
//! The centerpiece is the CSR-equivalence suite: a frozen [`Graph`] is
//! compared against a *naive oracle* — plain hash-map adjacency built
//! from the same random edge list — for every observable: `has_edge`,
//! out/in neighbor sets, per-label neighbor ranges, label extents, and
//! edge iteration. (The offline toolchain has no `proptest`; the
//! in-repo harness `gfd_util::prop` runs each property over a seed
//! range and reports the failing seed.)

use std::collections::{BTreeMap, BTreeSet};

use gfd_graph::{
    neighborhood::{induced_subgraph, khop_nodes},
    EquiDepthHistogram, Fragmentation, Graph, GraphBuilder, NodeId, PartitionStrategy, Sym,
};
use gfd_util::{prop::check, prop_assert, Rng};

/// A random graph with up to `max_nodes` nodes over `labels` node
/// labels and `elabels` edge labels, together with the raw (possibly
/// duplicated) edge list it was built from.
fn random_graph(
    rng: &mut Rng,
    max_nodes: usize,
    labels: usize,
    elabels: usize,
) -> (Graph, Vec<(u32, u32, String)>) {
    let n = rng.gen_range(1..max_nodes + 1);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % labels)))
        .collect();
    let m = rng.gen_range(0..3 * n + 1);
    let mut raw = Vec::with_capacity(m);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let e = format!("e{}", rng.gen_range(0..elabels));
        b.add_edge_labeled(ids[s], ids[d], &e);
        raw.push((s as u32, d as u32, e));
    }
    (b.freeze(), raw)
}

/// The naive adjacency-map oracle the CSR snapshot must agree with.
struct Oracle {
    /// Deduplicated edge set `(src, dst, label)`.
    edges: BTreeSet<(u32, u32, Sym)>,
    /// Label → sorted node extent.
    extents: BTreeMap<Sym, Vec<NodeId>>,
}

impl Oracle {
    fn build(g: &Graph, raw: &[(u32, u32, String)]) -> Self {
        let edges = raw
            .iter()
            .map(|(s, d, e)| (*s, *d, g.vocab().lookup(e).unwrap()))
            .collect();
        let mut extents: BTreeMap<Sym, Vec<NodeId>> = BTreeMap::new();
        for u in g.nodes() {
            extents.entry(g.label(u)).or_default().push(u);
        }
        Oracle { edges, extents }
    }

    fn out_set(&self, u: u32) -> BTreeSet<(Sym, u32)> {
        self.edges
            .iter()
            .filter(|(s, _, _)| *s == u)
            .map(|(_, d, l)| (*l, *d))
            .collect()
    }

    fn in_set(&self, u: u32) -> BTreeSet<(Sym, u32)> {
        self.edges
            .iter()
            .filter(|(_, d, _)| *d == u)
            .map(|(s, _, l)| (*l, *s))
            .collect()
    }
}

#[test]
fn csr_has_edge_equals_oracle() {
    check("has_edge ≡ oracle membership", 120, |rng| {
        let (g, raw) = random_graph(rng, 24, 4, 3);
        let oracle = Oracle::build(&g, &raw);
        let all_labels: Vec<Sym> = (0..3).map(|e| g.vocab().intern(&format!("e{e}"))).collect();
        for s in g.nodes() {
            for d in g.nodes() {
                for &l in &all_labels {
                    let expected = oracle.edges.contains(&(s.0, d.0, l));
                    prop_assert!(
                        g.has_edge(s, d, l) == expected,
                        "has_edge({s:?},{d:?},{l:?}) disagrees with oracle"
                    );
                    prop_assert!(
                        g.neighbors_labeled(s, l).iter().any(|a| a.node == d) == expected,
                        "neighbors_labeled disagrees with oracle at ({s:?},{d:?},{l:?})"
                    );
                }
                let expected_any = all_labels
                    .iter()
                    .any(|&l| oracle.edges.contains(&(s.0, d.0, l)));
                prop_assert!(
                    g.has_edge_any(s, d) == expected_any,
                    "has_edge_any disagrees"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn csr_neighbor_sets_equal_oracle() {
    check("out/in slices ≡ oracle adjacency", 120, |rng| {
        let (g, raw) = random_graph(rng, 24, 4, 3);
        let oracle = Oracle::build(&g, &raw);
        for u in g.nodes() {
            let got_out: BTreeSet<(Sym, u32)> =
                g.out_slice(u).iter().map(|a| (a.label, a.node.0)).collect();
            prop_assert!(got_out == oracle.out_set(u.0), "out set of {u:?} disagrees");
            prop_assert!(
                g.out_slice(u).len() == oracle.out_set(u.0).len(),
                "out run of {u:?} contains duplicates"
            );
            let got_in: BTreeSet<(Sym, u32)> =
                g.in_slice(u).iter().map(|a| (a.label, a.node.0)).collect();
            prop_assert!(got_in == oracle.in_set(u.0), "in set of {u:?} disagrees");
            prop_assert!(
                g.out_slice(u).windows(2).all(|w| w[0] < w[1]),
                "out run of {u:?} not strictly sorted by (label, dst)"
            );
            prop_assert!(
                g.in_slice(u).windows(2).all(|w| w[0] < w[1]),
                "in run of {u:?} not strictly sorted by (label, src)"
            );
            prop_assert!(
                g.degree(u) == g.out_degree(u) + g.in_degree(u),
                "degree arithmetic"
            );
        }
        Ok(())
    });
}

#[test]
fn csr_extents_equal_oracle() {
    check("label extents ≡ oracle label map", 120, |rng| {
        let (g, raw) = random_graph(rng, 24, 4, 3);
        let oracle = Oracle::build(&g, &raw);
        for (label, nodes) in &oracle.extents {
            prop_assert!(
                g.extent(*label) == nodes.as_slice(),
                "extent of {label:?} disagrees"
            );
        }
        let listed: BTreeMap<Sym, Vec<NodeId>> =
            g.label_extents().map(|(l, e)| (l, e.to_vec())).collect();
        prop_assert!(listed == oracle.extents, "label_extents() disagrees");
        let fresh = g.vocab().intern("__never_used");
        prop_assert!(g.extent(fresh).is_empty(), "unknown label must be empty");
        Ok(())
    });
}

#[test]
fn csr_edge_iteration_equals_oracle() {
    check("edges() ≡ oracle edge set", 120, |rng| {
        let (g, raw) = random_graph(rng, 24, 4, 3);
        let oracle = Oracle::build(&g, &raw);
        let got: BTreeSet<(u32, u32, Sym)> =
            g.edges().map(|e| (e.src.0, e.dst.0, e.label)).collect();
        let listed: Vec<_> = g.edges().collect();
        prop_assert!(got == oracle.edges, "edge sets disagree");
        prop_assert!(
            listed.len() == oracle.edges.len(),
            "edges() yields duplicates"
        );
        prop_assert!(
            g.edge_count() == oracle.edges.len(),
            "edge_count disagrees with dedup'd input"
        );
        Ok(())
    });
}

#[test]
fn thaw_freeze_round_trip_is_identity() {
    check("thaw ∘ freeze preserves all observables", 80, |rng| {
        let (g, _) = random_graph(rng, 20, 3, 3);
        let g2 = g.thaw().freeze();
        prop_assert!(g2.node_count() == g.node_count());
        prop_assert!(g2.edge_count() == g.edge_count());
        for u in g.nodes() {
            prop_assert!(g.label(u) == g2.label(u), "label of {u:?} changed");
            prop_assert!(
                g.out_slice(u) == g2.out_slice(u),
                "out run of {u:?} changed"
            );
            prop_assert!(g.in_slice(u) == g2.in_slice(u), "in run of {u:?} changed");
            prop_assert!(g.attrs(u) == g2.attrs(u), "attrs of {u:?} changed");
        }
        Ok(())
    });
}

/// Applies one random mutation to a thawed builder. Returns a
/// description for failure messages.
fn random_mutation(rng: &mut Rng, b: &mut GraphBuilder) -> String {
    let n = b.node_count();
    let pick = |rng: &mut Rng, n: usize| NodeId(rng.gen_range(0..n) as u32);
    match rng.gen_range(0..6) {
        0 => {
            let l = format!("l{}", rng.gen_range(0..4));
            let id = b.add_node_labeled(&l);
            format!("add_node {id:?} {l}")
        }
        1 => {
            let (s, d) = (pick(rng, n), pick(rng, n));
            let e = format!("e{}", rng.gen_range(0..3));
            let ok = b.add_edge_labeled(s, d, &e);
            format!("add_edge {s:?}->{d:?} {e} ({ok})")
        }
        2 => {
            let (s, d) = (pick(rng, n), pick(rng, n));
            let e = format!("e{}", rng.gen_range(0..3));
            let ok = b.remove_edge_labeled(s, d, &e);
            format!("remove_edge {s:?}->{d:?} {e} ({ok})")
        }
        3 => {
            let u = pick(rng, n);
            let l = b.vocab().intern(&format!("l{}", rng.gen_range(0..4)));
            b.set_label(u, l);
            format!("set_label {u:?}")
        }
        4 => {
            let u = pick(rng, n);
            let a = b.vocab().intern(&format!("a{}", rng.gen_range(0..2)));
            let v = gfd_graph::Value::Int(rng.gen_range(0..5) as i64);
            b.set_attr(u, a, v);
            format!("set_attr {u:?}")
        }
        _ => {
            let u = pick(rng, n);
            let a = b.vocab().intern(&format!("a{}", rng.gen_range(0..2)));
            let had = b.remove_attr(u, a).is_some();
            format!("remove_attr {u:?} ({had})")
        }
    }
}

/// Structural equality of two snapshots over every observable.
fn graphs_equal(a: &Graph, b: &Graph) -> Result<(), String> {
    if a.node_count() != b.node_count() {
        return Err(format!(
            "node counts {} vs {}",
            a.node_count(),
            b.node_count()
        ));
    }
    if a.edge_count() != b.edge_count() {
        return Err(format!(
            "edge counts {} vs {}",
            a.edge_count(),
            b.edge_count()
        ));
    }
    for u in a.nodes() {
        if a.label(u) != b.label(u) {
            return Err(format!("label of {u:?}"));
        }
        if a.attrs(u) != b.attrs(u) {
            return Err(format!("attrs of {u:?}"));
        }
        if a.out_slice(u) != b.out_slice(u) {
            return Err(format!("out run of {u:?}"));
        }
        if a.in_slice(u) != b.in_slice(u) {
            return Err(format!("in run of {u:?}"));
        }
    }
    let ea: Vec<_> = a.label_extents().map(|(l, e)| (l, e.to_vec())).collect();
    let eb: Vec<_> = b.label_extents().map(|(l, e)| (l, e.to_vec())).collect();
    if ea != eb {
        return Err("label extents".into());
    }
    Ok(())
}

#[test]
fn edit_delta_round_trip_equals_freeze() {
    // thaw → mutate → refreeze, both ways: the delta-patched snapshot
    // (what `edit` does now) must equal the full `freeze` rebuild, and
    // node ids, attrs, and (src,dst,label) dedup must survive.
    check("apply_delta ∘ record ≡ freeze", 120, |rng| {
        let (g, _) = random_graph(rng, 16, 4, 3);
        let mut b = g.thaw();
        let mut script = Vec::new();
        for _ in 0..rng.gen_range(1..20) {
            script.push(random_mutation(rng, &mut b));
        }
        let delta = b.take_delta().expect("thaw records").normalize();
        let patched = g.apply_delta(&delta);
        let frozen = b.freeze();
        if let Err(msg) = graphs_equal(&patched, &frozen) {
            return Err(format!("{msg}; script: {script:?}"));
        }
        // Dedup survives the round trip: re-adding any existing edge
        // must be rejected by a fresh thaw of the patched snapshot.
        let mut b2 = patched.thaw();
        for e in patched.edges().collect::<Vec<_>>() {
            prop_assert!(
                !b2.add_edge(e.src, e.dst, e.label),
                "duplicate edge {e:?} accepted after round trip"
            );
        }
        Ok(())
    });
}

#[test]
fn empty_delta_patch_is_identity() {
    check("apply_delta(∅) ≡ id", 40, |rng| {
        let (g, _) = random_graph(rng, 16, 3, 3);
        let (g2, delta) = g.edit_with_delta(|_| {});
        prop_assert!(delta.is_empty(), "empty session recorded {delta:?}");
        graphs_equal(&g, &g2)
    });
}

#[test]
fn khop_monotone() {
    check(
        "k-hop neighborhoods grow with k and contain seeds",
        60,
        |rng| {
            let (g, _) = random_graph(rng, 20, 3, 3);
            let k = rng.gen_range(0..4);
            for u in g.nodes() {
                let small = khop_nodes(&g, &[u], k);
                let large = khop_nodes(&g, &[u], k + 1);
                prop_assert!(small.contains(u), "seed {u:?} missing at k={k}");
                for x in small.iter() {
                    prop_assert!(large.contains(x), "k-hop not monotone at {x:?}");
                }
            }
            Ok(())
        },
    );
}

#[test]
fn fragmentation_covers() {
    check("fragmentations cover all nodes and edges", 60, |rng| {
        let (g, _) = random_graph(rng, 30, 3, 3);
        let n = rng.gen_range(1..6);
        for strategy in [
            PartitionStrategy::Hash,
            PartitionStrategy::Contiguous,
            PartitionStrategy::BfsClustered,
        ] {
            let frag = Fragmentation::partition(&g, n, strategy);
            let total_nodes: usize = frag.fragments().map(|(_, f)| f.nodes.len()).sum();
            let total_edges: usize = frag.fragments().map(|(_, f)| f.edge_count).sum();
            prop_assert!(total_nodes == g.node_count(), "{strategy:?} loses nodes");
            prop_assert!(total_edges == g.edge_count(), "{strategy:?} loses edges");
        }
        Ok(())
    });
}

#[test]
fn induced_subgraph_edge_count() {
    check(
        "induced subgraphs keep exactly the internal edges",
        60,
        |rng| {
            let (g, _) = random_graph(rng, 16, 3, 3);
            let k = rng.gen_range(0..3);
            let set = khop_nodes(&g, &[NodeId(0)], k);
            let (sub, _) = induced_subgraph(&g, &set);
            prop_assert!(sub.node_count() == set.len());
            prop_assert!(sub.edge_count() == set.internal_edge_count(&g));
            Ok(())
        },
    );
}

#[test]
fn equi_depth_covers() {
    check(
        "equi-depth buckets cover keys, ascending and disjoint",
        80,
        |rng| {
            let len = rng.gen_range(1..200);
            let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000) as u64).collect();
            let m = rng.gen_range(1..10);
            let h = EquiDepthHistogram::build(keys.clone(), m);
            for k in &keys {
                prop_assert!(h.bucket_of(*k).is_some(), "key {k} not covered");
            }
            for w in h.ranges().windows(2) {
                prop_assert!(w[0].1 < w[1].0, "buckets must be disjoint and ascending");
            }
            Ok(())
        },
    );
}

#[test]
fn text_round_trip() {
    check("text round trip preserves counts and labels", 60, |rng| {
        let (g, _) = random_graph(rng, 12, 3, 3);
        let text = gfd_graph::io::to_text(&g);
        let g2 = gfd_graph::io::from_text(&text, gfd_graph::Vocab::shared()).unwrap();
        prop_assert!(g2.node_count() == g.node_count());
        prop_assert!(g2.edge_count() == g.edge_count());
        for u in g.nodes() {
            let l1 = g.vocab().resolve(g.label(u));
            let l2 = g2.vocab().resolve(g2.label(u));
            prop_assert!(l1.as_ref() == l2.as_ref(), "label of {u:?} changed");
        }
        Ok(())
    });
}
