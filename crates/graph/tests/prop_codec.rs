//! Property tests for the binary delta/snapshot codec — the plain-bytes
//! layer the durable write-ahead log (`gfd_parallel::wal`) frames on
//! disk.
//!
//! Two obligations, tested from both sides:
//!
//! * **round trip** — `encode → decode` is the identity over deltas
//!   recorded from random edit scripts (including merge-compacted
//!   batches) and over `GraphData` snapshots of random graphs;
//! * **hostility** — decoding arbitrary mutations of valid byte
//!   streams (bit flips, truncations, splices of random garbage)
//!   never panics: it returns a `DeltaError`, or an `Ok` delta that
//!   still satisfies the `check_ids` structural invariants.

use gfd_graph::{DeltaError, Graph, GraphBuilder, GraphData, GraphDelta, NodeId, Value};
use gfd_util::{prop::check, prop_assert, Rng};

/// A small random base graph over a fixed label/attr vocabulary.
fn base_graph(rng: &mut Rng) -> Graph {
    let n = rng.gen_range(3..10);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % 3)))
        .collect();
    for _ in 0..rng.gen_range(0..2 * n) {
        let s = ids[rng.gen_range(0..n)];
        let d = ids[rng.gen_range(0..n)];
        b.add_edge_labeled(s, d, &format!("e{}", rng.gen_range(0..2)));
    }
    for _ in 0..rng.gen_range(0..n) {
        let u = ids[rng.gen_range(0..n)];
        let v = match rng.gen_range(0..3) {
            0 => Value::Int(rng.gen_range(0..100) as i64 - 50),
            1 => Value::Bool(rng.gen_range(0..2) == 0),
            _ => Value::str(&format!("s{}", rng.gen_range(0..5))),
        };
        b.set_attr_named(u, "val", v);
    }
    b.freeze()
}

/// One random edit step on the current snapshot (same coordinate-pool
/// shape as `prop_delta.rs`, so recorded deltas carry every field).
fn random_step(rng: &mut Rng, g: &Graph) -> (Graph, GraphDelta) {
    let n = g.node_count();
    let s = NodeId(rng.gen_range(0..n.min(4)) as u32);
    let d = NodeId(rng.gen_range(0..n.min(4)) as u32);
    let kind = rng.gen_range(0..6);
    g.edit_with_delta(|b| match kind {
        0 => {
            b.add_edge_labeled(s, d, "e0");
        }
        1 => {
            b.remove_edge_labeled(s, d, "e0");
        }
        2 => {
            let a = b.vocab().intern("val");
            b.set_attr(s, a, Value::Int(rng.gen_range(0..3) as i64));
        }
        3 => {
            let a = b.vocab().intern("val");
            b.remove_attr(s, a);
        }
        4 => {
            let l = b.vocab().intern(&format!("l{}", rng.gen_range(0..3)));
            b.set_label(s, l);
        }
        _ => {
            let v = b.add_node_labeled("l1");
            b.add_edge_labeled(v, d, "e1");
        }
    })
}

fn cases(full: u64) -> u64 {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        (full / 5).max(2)
    } else {
        full
    }
}

#[test]
fn delta_codec_round_trip_over_edit_scripts() {
    check("delta encode → decode ≡ identity", cases(80), |rng| {
        let base = base_graph(rng);
        let mut g = base.edit(|_| {});
        let mut compacted: Option<GraphDelta> = None;
        for _ in 0..rng.gen_range(1..20) {
            let (next, delta) = random_step(rng, &g);
            g = next;

            // Per-step deltas round-trip…
            let sym_limit = g.vocab().len() as u32;
            let mut bytes = Vec::new();
            delta.encode_into(&mut bytes);
            match GraphDelta::decode(&bytes, sym_limit) {
                Ok(back) if back == delta => {}
                Ok(back) => return Err(format!("step decode diverged: {back:?} vs {delta:?}")),
                Err(e) => return Err(format!("step decode failed: {e}")),
            }

            compacted = Some(match compacted.take() {
                None => delta,
                Some(prev) => prev.merge(delta),
            });
        }

        // …and so does the merge-compacted batch (the shape the WAL
        // actually persists: one compacted delta per epoch).
        let compacted = compacted.expect("at least one step");
        let sym_limit = g.vocab().len() as u32;
        let mut bytes = Vec::new();
        compacted.encode_into(&mut bytes);
        let back = GraphDelta::decode(&bytes, sym_limit)
            .map_err(|e| format!("compacted decode failed: {e}"))?;
        prop_assert!(back == compacted, "compacted decode diverged");

        // The decoded delta is ingest-grade: it validates against the
        // base exactly when the original does.
        prop_assert!(
            back.check_against(&base).is_ok() == compacted.check_against(&base).is_ok(),
            "decoded delta validates differently"
        );
        Ok(())
    });
}

#[test]
fn snapshot_codec_round_trip() {
    check(
        "GraphData encode → decode ≡ identity",
        cases(60),
        |rng| {
            let mut g = base_graph(rng);
            // A few edits so the snapshot isn't always freeze-fresh.
            for _ in 0..rng.gen_range(0..5) {
                g = random_step(rng, &g).0;
            }
            let data = GraphData::from_graph(&g);
            let mut bytes = Vec::new();
            data.encode_into(&mut bytes);
            let back = GraphData::decode(&bytes).map_err(|e| format!("decode failed: {e}"))?;
            prop_assert!(back == data, "snapshot decode diverged");

            // Rebuilding the graph from the decoded snapshot preserves the
            // observable structure (the recovery floor the WAL replays on).
            let g2 = back.into_graph();
            prop_assert!(g2.node_count() == g.node_count(), "node counts differ");
            prop_assert!(g2.edge_count() == g.edge_count(), "edge counts differ");
            Ok(())
        },
    );
}

/// Mutate `bytes` in one of the crash-fault shapes: truncate (torn
/// tail / short read), flip bits (media rot), or splice garbage.
fn mutate(rng: &mut Rng, bytes: &mut Vec<u8>) {
    match rng.gen_range(0..4) {
        0 => {
            let keep = rng.gen_range(0..bytes.len().max(1));
            bytes.truncate(keep);
        }
        1 => {
            for _ in 0..rng.gen_range(1..4) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8);
            }
        }
        2 => {
            let at = rng.gen_range(0..bytes.len() + 1);
            let garbage: Vec<u8> = (0..rng.gen_range(1..9))
                .map(|_| rng.gen_range(0..256) as u8)
                .collect();
            bytes.splice(at..at, garbage);
        }
        _ => {
            // Pure garbage: no valid structure at all.
            let len = rng.gen_range(0..64);
            *bytes = (0..len).map(|_| rng.gen_range(0..256) as u8).collect();
        }
    }
}

#[test]
fn decode_never_panics_on_mutated_streams() {
    check(
        "hostile delta bytes: Err or invariant-clean Ok",
        cases(150),
        |rng| {
            let base = base_graph(rng);
            let mut g = base.edit(|_| {});
            let mut delta = GraphDelta::new(base.node_count());
            for _ in 0..rng.gen_range(1..8) {
                let (next, d) = random_step(rng, &g);
                g = next;
                delta = delta.merge(d);
            }
            let sym_limit = g.vocab().len() as u32;
            let mut bytes = Vec::new();
            delta.encode_into(&mut bytes);
            mutate(rng, &mut bytes);

            // The contract under hostile bytes: no panic (the harness
            // would abort), and any Ok is structurally sound — its ids
            // re-validate under the same machinery ingest uses.
            if let Ok(d) = GraphDelta::decode(&bytes, sym_limit) {
                prop_assert!(
                    d.check_ids(d.base_nodes).is_ok(),
                    "decode accepted a structurally invalid delta"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn snapshot_decode_never_panics_on_mutated_streams() {
    check(
        "hostile snapshot bytes: Err or well-formed Ok",
        cases(100),
        |rng| {
            let data = GraphData::from_graph(&base_graph(rng));
            let mut bytes = Vec::new();
            data.encode_into(&mut bytes);
            mutate(rng, &mut bytes);
            if let Ok(d) = GraphData::decode(&bytes) {
                // Every reference decoded in-range, so rebuilding cannot
                // index out of bounds.
                let syms = d.symbols.len() as u32;
                let nodes = d.nodes.len() as u32;
                for (label, attrs) in &d.nodes {
                    prop_assert!(*label < syms, "label out of range survived decode");
                    prop_assert!(
                        attrs.iter().all(|(a, _)| *a < syms),
                        "attr sym out of range survived decode"
                    );
                }
                prop_assert!(
                    d.edges
                        .iter()
                        .all(|(s, t, l)| *s < nodes && *t < nodes && *l < syms),
                    "edge reference out of range survived decode"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn every_prefix_of_an_encoding_is_rejected() {
    check("strict prefixes never decode", cases(40), |rng| {
        let base = base_graph(rng);
        let (g, delta) = random_step(rng, &base);
        let sym_limit = g.vocab().len() as u32;
        let mut bytes = Vec::new();
        delta.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            match GraphDelta::decode(&bytes[..cut], sym_limit) {
                Err(DeltaError::Truncated { .. }) | Err(DeltaError::Corrupt { .. }) => {}
                Err(e) => return Err(format!("prefix {cut}: unexpected error {e}")),
                Ok(_) => return Err(format!("prefix {cut} decoded successfully")),
            }
        }
        Ok(())
    });
}
