//! The transport oracle: for random patterns and random variable
//! relabelings, a [`ClassRegistry`]-transported space must be
//! *identical* — candidate sets and per-edge candidate adjacency — to
//! a from-scratch `dual_simulation` of the member pattern, including
//! after random 50-step edit scripts repaired through the class
//! representative's `IncrementalSpace`.

use gfd_graph::{Graph, GraphBuilder, NodeId};
use gfd_match::simulation::dual_simulation;
use gfd_match::{CandidateSpace, ClassRegistry, SpaceHandle};
use gfd_pattern::{PatLabel, Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, Rng};

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 2;
const SCRIPT_STEPS: usize = 50;

fn case_budget(full: u64) -> u64 {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        (full / 8).max(2)
    } else {
        full
    }
}

fn random_graph(rng: &mut Rng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(2..max_nodes + 1);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % NODE_LABELS)))
        .collect();
    let m = rng.gen_range(0..3 * n + 1);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let e = format!("e{}", rng.gen_range(0..EDGE_LABELS));
        b.add_edge_labeled(ids[s], ids[d], &e);
    }
    b.freeze()
}

fn random_pattern(rng: &mut Rng, g: &Graph) -> Pattern {
    let k = rng.gen_range(1..5);
    let mut b = PatternBuilder::new(g.vocab().clone());
    let vars: Vec<VarId> = (0..k)
        .map(|i| {
            let name = format!("v{i}");
            if rng.gen_range(0..10) < 3 {
                b.wildcard_node(&name)
            } else {
                b.node(&name, &format!("l{}", rng.gen_range(0..NODE_LABELS)))
            }
        })
        .collect();
    for _ in 0..rng.gen_range(0..5) {
        let s = vars[rng.gen_range(0..k)];
        let d = vars[rng.gen_range(0..k)];
        if rng.gen_range(0..10) < 2 {
            b.wildcard_edge(s, d);
        } else {
            b.edge(s, d, &format!("e{}", rng.gen_range(0..EDGE_LABELS)));
        }
    }
    b.build()
}

/// Rebuilds `q` with its variables declared in a random order under
/// fresh names — an exact-label isomorphic twin the registry must map
/// into `q`'s class.
fn relabel(rng: &mut Rng, q: &Pattern, tag: usize) -> Pattern {
    let n = q.node_count();
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    let vocab = q.vocab().clone();
    let mut b = PatternBuilder::new(vocab.clone());
    let mut new_of_old = vec![VarId(u32::MAX); n];
    for (p, &old) in perm.iter().enumerate() {
        let v = VarId(old as u32);
        let name = format!("m{tag}_{p}");
        new_of_old[old] = match q.label(v) {
            PatLabel::Sym(s) => b.node(&name, &vocab.resolve(s)),
            PatLabel::Wildcard => b.wildcard_node(&name),
        };
    }
    for e in q.edges() {
        let (s, d) = (new_of_old[e.src.index()], new_of_old[e.dst.index()]);
        match e.label {
            PatLabel::Sym(l) => {
                b.edge(s, d, &vocab.resolve(l));
            }
            PatLabel::Wildcard => {
                b.wildcard_edge(s, d);
            }
        }
    }
    b.build()
}

fn spaces_equal(got: &CandidateSpace, want: &CandidateSpace, what: &str) -> Result<(), String> {
    if got.sets != want.sets {
        return Err(format!(
            "{what}: sets diverged: {:?} vs {:?}",
            got.sets, want.sets
        ));
    }
    for ei in 0..got.forward.len() {
        if got.forward[ei].offsets != want.forward[ei].offsets
            || got.forward[ei].targets != want.forward[ei].targets
        {
            return Err(format!("{what}: forward adjacency of edge {ei} diverged"));
        }
        if got.reverse[ei].offsets != want.reverse[ei].offsets
            || got.reverse[ei].targets != want.reverse[ei].targets
        {
            return Err(format!("{what}: reverse adjacency of edge {ei} diverged"));
        }
    }
    Ok(())
}

/// One edit step, mirroring `prop_incremental.rs`: a batch of 1–3
/// random mutations recorded through `edit_with_delta`.
fn random_edit(rng: &mut Rng, g: &Graph) -> (Graph, gfd_graph::GraphDelta) {
    let ops = rng.gen_range(1..4);
    let mut plan: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(ops);
    for _ in 0..ops {
        plan.push((
            rng.gen_range(0..5),
            rng.gen_range(0..usize::MAX),
            rng.gen_range(0..usize::MAX),
            rng.gen_range(0..usize::MAX),
        ));
    }
    g.edit_with_delta(move |b| {
        for (kind, r1, r2, r3) in plan {
            let n = b.node_count();
            match kind {
                0 => {
                    let s = NodeId((r1 % n) as u32);
                    let d = NodeId((r2 % n) as u32);
                    b.add_edge_labeled(s, d, &format!("e{}", r3 % EDGE_LABELS));
                }
                1 => {
                    let s = NodeId((r1 % n) as u32);
                    let d = NodeId((r2 % n) as u32);
                    b.remove_edge_labeled(s, d, &format!("e{}", r3 % EDGE_LABELS));
                }
                2 => {
                    let u = b.add_node_labeled(&format!("l{}", r1 % NODE_LABELS));
                    if r2 % 2 == 0 {
                        let d = NodeId((r3 % n) as u32);
                        b.add_edge_labeled(u, d, &format!("e{}", r3 % EDGE_LABELS));
                    }
                }
                3 => {
                    let u = NodeId((r1 % n) as u32);
                    let l = b.vocab().intern(&format!("l{}", r2 % NODE_LABELS));
                    b.set_label(u, l);
                }
                _ => {
                    // Rewire in one delta: deletion + replacing insertion.
                    let s = NodeId((r1 % n) as u32);
                    let d = NodeId((r2 % n) as u32);
                    let d2 = NodeId(((r2 + 1) % n) as u32);
                    let e = format!("e{}", r3 % EDGE_LABELS);
                    b.remove_edge_labeled(s, d, &e);
                    b.add_edge_labeled(s, d2, &e);
                }
            }
        }
    })
}

#[test]
fn transported_spaces_equal_scratch_simulation() {
    check(
        "ClassRegistry transport ≡ dual_simulation",
        case_budget(40),
        |rng| {
            let g = random_graph(rng, 12);
            let base = random_pattern(rng, &g);
            let members: Vec<Pattern> = std::iter::once(base.clone())
                .chain((0..rng.gen_range(1..4)).map(|t| relabel(rng, &base, t)))
                .collect();
            let reg = ClassRegistry::new();
            let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
            for (m, (q, &h)) in members.iter().zip(&handles).enumerate() {
                let want = dual_simulation(q, &g, None);
                let got = reg.space(h, &g);
                spaces_equal(&got, &want, &format!("member {m}"))
                    .map_err(|e| format!("{e}; base {base:?}; member {q:?}"))?;
            }
            if reg.simulations() != 1 {
                return Err(format!(
                    "{} simulations for one class of {} members",
                    reg.simulations(),
                    members.len()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn repaired_representative_retransports_over_edit_scripts() {
    check(
        "ClassRegistry repair+transport ≡ dual_simulation over 50-step scripts",
        case_budget(16),
        |rng| {
            let mut g = random_graph(rng, 10);
            let base = random_pattern(rng, &g);
            let members: Vec<Pattern> = std::iter::once(base.clone())
                .chain((0..2).map(|t| relabel(rng, &base, t)))
                .collect();
            let reg = ClassRegistry::new();
            let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
            for &h in &handles {
                reg.space(h, &g);
            }
            for step in 0..SCRIPT_STEPS {
                let (g2, delta) = random_edit(rng, &g);
                reg.apply(&g2, &delta);
                for (m, (q, &h)) in members.iter().zip(&handles).enumerate() {
                    let want = dual_simulation(q, &g2, None);
                    let got = reg.space(h, &g2);
                    spaces_equal(&got, &want, &format!("step {step}, member {m}"))
                        .map_err(|e| format!("{e}; delta {delta:?}; member {q:?}"))?;
                }
                g = g2;
            }
            if reg.simulations() != 1 {
                return Err(format!(
                    "repairs re-simulated: {} fixpoints",
                    reg.simulations()
                ));
            }
            Ok(())
        },
    );
}
