//! Property-based tests for the decomposition planner and the
//! worst-case-optimal plan executor.
//!
//! The oracle is the same brute-force matcher that guards
//! `prop_match.rs`: every injective assignment over a random graph,
//! checked edge by edge. Against it we drive random **cyclic**
//! patterns (a random spanning tree plus closing edges) through
//! [`execute_plan`] — plain, pinned, transported onto
//! permuted-declaration twins via the [`ClassRegistry`], and across
//! random edit scripts with incrementally repaired spaces.

use gfd_graph::{Graph, GraphBuilder, NodeId};
use gfd_match::types::Flow;
use gfd_match::{dual_simulation, execute_plan, ClassRegistry, PlanScratch, QueryPlan};
use gfd_pattern::{PatLabel, Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, prop_assert, Rng};

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 2;

/// A random graph over the fixed small label vocabulary, dense enough
/// for cycles to close.
fn random_graph(rng: &mut Rng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(3..max_nodes + 1);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % NODE_LABELS)))
        .collect();
    let m = rng.gen_range(n..4 * n + 1);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let e = format!("e{}", rng.gen_range(0..EDGE_LABELS));
        b.add_edge_labeled(ids[s], ids[d], &e);
    }
    b.freeze()
}

/// A structural pattern description, buildable under any variable
/// declaration order — the twin generator for witness transport.
struct PatternSpec {
    /// `None` = wildcard node, `Some(l)` = label `l{l}`.
    labels: Vec<Option<usize>>,
    edges: Vec<(usize, usize, usize)>,
}

/// A random connected pattern with at least one closing edge: a
/// random spanning tree over `3..=6` variables plus `1..=2` extra
/// edges between distinct variables.
fn random_cyclic_spec(rng: &mut Rng) -> PatternSpec {
    let k = rng.gen_range(3..7);
    let labels = (0..k)
        .map(|_| {
            if rng.gen_bool(0.2) {
                None
            } else {
                Some(rng.gen_range(0..NODE_LABELS))
            }
        })
        .collect();
    let mut edges = Vec::new();
    for i in 1..k {
        let p = rng.gen_range(0..i);
        let l = rng.gen_range(0..EDGE_LABELS);
        if rng.gen_bool(0.5) {
            edges.push((p, i, l));
        } else {
            edges.push((i, p, l));
        }
    }
    for _ in 0..rng.gen_range(1..3) {
        let s = rng.gen_range(0..k);
        let d = rng.gen_range(0..k);
        if s != d {
            edges.push((s, d, rng.gen_range(0..EDGE_LABELS)));
        }
    }
    PatternSpec { labels, edges }
}

/// Builds the spec with its variables declared in `order` (a
/// permutation of `0..k`); specs built under different orders are
/// isomorphic twins.
fn build_pattern(spec: &PatternSpec, order: &[usize], g: &Graph) -> Pattern {
    let mut b = PatternBuilder::new(g.vocab().clone());
    let mut vars = vec![VarId(0); spec.labels.len()];
    for &i in order {
        vars[i] = match spec.labels[i] {
            Some(l) => b.node(&format!("v{i}"), &format!("l{l}")),
            None => b.wildcard_node(&format!("v{i}")),
        };
    }
    for &(s, d, l) in &spec.edges {
        b.edge(vars[s], vars[d], &format!("e{l}"));
    }
    b.build()
}

/// A random permutation of `0..k`.
fn random_order(rng: &mut Rng, k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..k).collect();
    for i in (1..k).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    order
}

fn oracle_edge_ok(g: &Graph, u: NodeId, v: NodeId, label: PatLabel) -> bool {
    match label {
        PatLabel::Sym(s) => g.has_edge(u, v, s),
        PatLabel::Wildcard => g.has_edge_any(u, v),
    }
}

/// Brute force: every injective assignment, filtered by labels and
/// pattern edges. Returns sorted match vectors.
fn oracle_matches(q: &Pattern, g: &Graph) -> Vec<Vec<NodeId>> {
    let k = q.node_count();
    let mut out = Vec::new();
    let mut assign = vec![NodeId(u32::MAX); k];
    fn rec(
        q: &Pattern,
        g: &Graph,
        depth: usize,
        assign: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if depth == q.node_count() {
            for e in q.edges() {
                if !oracle_edge_ok(g, assign[e.src.index()], assign[e.dst.index()], e.label) {
                    return;
                }
            }
            out.push(assign.clone());
            return;
        }
        let v = VarId(depth as u32);
        for u in g.nodes() {
            if !q.label(v).admits(g.label(u)) || assign[..depth].contains(&u) {
                continue;
            }
            assign[depth] = u;
            rec(q, g, depth + 1, assign, out);
            assign[depth] = NodeId(u32::MAX);
        }
    }
    rec(q, g, 0, &mut assign, &mut out);
    out.sort();
    out
}

/// Runs the plan executor to completion and returns sorted matches.
fn plan_matches(
    q: &Pattern,
    g: &Graph,
    cs: &gfd_match::CandidateSpace,
    plan: &QueryPlan,
    pins: &[(VarId, NodeId)],
    scratch: &mut PlanScratch,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    execute_plan(q, g, cs, plan, None, pins, u64::MAX, scratch, &mut |m| {
        out.push(m.to_vec());
        Flow::Continue
    });
    out.sort();
    out
}

#[test]
fn plan_executor_equals_brute_force_on_cyclic_patterns() {
    let mut scratch = PlanScratch::default();
    check("plan ≡ brute force (cyclic)", 150, |rng| {
        let g = random_graph(rng, 9);
        let spec = random_cyclic_spec(rng);
        let order: Vec<usize> = (0..spec.labels.len()).collect();
        let q = build_pattern(&spec, &order, &g);
        let expected = oracle_matches(&q, &g);
        let cs = dual_simulation(&q, &g, None);
        let plan = QueryPlan::new(&q);
        let got = plan_matches(&q, &g, &cs, &plan, &[], &mut scratch);
        prop_assert!(
            got == expected,
            "plan (width {}): {} matches vs oracle {} for {q:?}",
            plan.width(),
            got.len(),
            expected.len()
        );
        Ok(())
    });
}

#[test]
fn pinned_plan_execution_equals_filtered_oracle() {
    let mut scratch = PlanScratch::default();
    check("pinned plan ≡ filtered oracle", 120, |rng| {
        let g = random_graph(rng, 8);
        let spec = random_cyclic_spec(rng);
        let order: Vec<usize> = (0..spec.labels.len()).collect();
        let q = build_pattern(&spec, &order, &g);
        let pin_var = VarId(rng.gen_range(0..q.node_count()) as u32);
        let pin_node = NodeId(rng.gen_range(0..g.node_count()) as u32);
        let expected: Vec<Vec<NodeId>> = oracle_matches(&q, &g)
            .into_iter()
            .filter(|m| m[pin_var.index()] == pin_node)
            .collect();
        let cs = dual_simulation(&q, &g, None);
        let plan = QueryPlan::new(&q);
        let got = plan_matches(&q, &g, &cs, &plan, &[(pin_var, pin_node)], &mut scratch);
        prop_assert!(
            got == expected,
            "pinned plan: {} vs oracle {} for {q:?}",
            got.len(),
            expected.len()
        );
        Ok(())
    });
}

/// Transported plans on permuted-declaration twins, across a random
/// edit script: the registry repairs the class's space incrementally
/// and transports one cached plan per class; after every edit, each
/// member's plan execution must still equal brute force on the
/// *current* graph.
#[test]
fn transported_plans_survive_edit_scripts() {
    let mut scratch = PlanScratch::default();
    check("registry plans ≡ oracle under edits", 60, |rng| {
        let mut g = random_graph(rng, 8);
        let spec = random_cyclic_spec(rng);
        let k = spec.labels.len();
        let identity: Vec<usize> = (0..k).collect();
        let members = [
            build_pattern(&spec, &identity, &g),
            build_pattern(&spec, &random_order(rng, k), &g),
            build_pattern(&spec, &random_order(rng, k), &g),
        ];
        let reg = ClassRegistry::new();
        let handles: Vec<_> = members.iter().map(|q| reg.register(q)).collect();
        prop_assert!(
            reg.class_count() == 1,
            "twins of one spec must share a class"
        );
        for step in 0..3 {
            for (q, &h) in members.iter().zip(&handles) {
                let expected = oracle_matches(q, &g);
                let (cs, plan) = reg.space_and_plan(h, &g);
                let got = plan_matches(q, &g, &cs, &plan, &[], &mut scratch);
                prop_assert!(
                    got == expected,
                    "step {step}: {} vs oracle {} for {q:?}",
                    got.len(),
                    expected.len()
                );
            }
            // One random edit: add or remove a labeled edge.
            let n = g.node_count();
            let s = NodeId(rng.gen_range(0..n) as u32);
            let d = NodeId(rng.gen_range(0..n) as u32);
            let lbl = format!("e{}", rng.gen_range(0..EDGE_LABELS));
            let remove = rng.gen_bool(0.4);
            let (g2, delta) = g.edit_with_delta(|b| {
                if remove {
                    b.remove_edge_labeled(s, d, &lbl);
                } else {
                    b.add_edge_labeled(s, d, &lbl);
                }
            });
            reg.apply(&g2, &delta);
            g = g2;
        }
        prop_assert!(reg.plans_built() == 1, "one decomposition per class");
        Ok(())
    });
}
