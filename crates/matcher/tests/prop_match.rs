//! Property-based tests for the filter-and-refine matcher.
//!
//! Two oracles guard the engine:
//!
//! * a **brute-force matcher** — every injective variable assignment
//!   over a random graph, checked edge by edge — must produce exactly
//!   the match set of [`find_matches`], with simulation filtering
//!   forced on, forced off, and on auto;
//! * a **naive fixpoint dual simulation** — the dense
//!   `rounds × vars × nodes` re-scan the worklist algorithm replaced —
//!   must compute exactly the same relation.
//!
//! (The offline toolchain has no `proptest`; the in-repo harness
//! `gfd_util::prop` runs each property over a seed range and reports
//! the failing seed.)

use gfd_graph::{Graph, GraphBuilder, NodeId};
use gfd_match::simulation::dual_simulation;
use gfd_match::{find_matches, MatchOptions, SimFilter};
use gfd_pattern::{PatLabel, Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, prop_assert, Rng};

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 2;

/// A random graph over a fixed small label vocabulary.
fn random_graph(rng: &mut Rng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(1..max_nodes + 1);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % NODE_LABELS)))
        .collect();
    let m = rng.gen_range(0..3 * n + 1);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let e = format!("e{}", rng.gen_range(0..EDGE_LABELS));
        b.add_edge_labeled(ids[s], ids[d], &e);
    }
    b.freeze()
}

/// A random (possibly disconnected, possibly wildcard) pattern over
/// the graph's vocabulary.
fn random_pattern(rng: &mut Rng, g: &Graph) -> Pattern {
    let k = rng.gen_range(1..5);
    let mut b = PatternBuilder::new(g.vocab().clone());
    let vars: Vec<VarId> = (0..k)
        .map(|i| {
            let name = format!("v{i}");
            if rng.gen_range(0..10) < 3 {
                b.wildcard_node(&name)
            } else {
                b.node(&name, &format!("l{}", rng.gen_range(0..NODE_LABELS)))
            }
        })
        .collect();
    let edges = rng.gen_range(0..5);
    for _ in 0..edges {
        let s = vars[rng.gen_range(0..k)];
        let d = vars[rng.gen_range(0..k)];
        if rng.gen_range(0..10) < 2 {
            b.wildcard_edge(s, d);
        } else {
            b.edge(s, d, &format!("e{}", rng.gen_range(0..EDGE_LABELS)));
        }
    }
    b.build()
}

/// Does `g` admit the pattern edge `(src → dst, label)` between the
/// two image nodes?
fn oracle_edge_ok(g: &Graph, u: NodeId, v: NodeId, label: PatLabel) -> bool {
    match label {
        PatLabel::Sym(s) => g.has_edge(u, v, s),
        PatLabel::Wildcard => g.has_edge_any(u, v),
    }
}

/// Brute force: every injective assignment, filtered by labels and
/// pattern edges. Returns sorted match vectors.
fn oracle_matches(q: &Pattern, g: &Graph) -> Vec<Vec<NodeId>> {
    let k = q.node_count();
    let mut out = Vec::new();
    let mut assign = vec![NodeId(u32::MAX); k];
    fn rec(
        q: &Pattern,
        g: &Graph,
        depth: usize,
        assign: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if depth == q.node_count() {
            for e in q.edges() {
                if !oracle_edge_ok(g, assign[e.src.index()], assign[e.dst.index()], e.label) {
                    return;
                }
            }
            out.push(assign.clone());
            return;
        }
        let v = VarId(depth as u32);
        for u in g.nodes() {
            if !q.label(v).admits(g.label(u)) || assign[..depth].contains(&u) {
                continue;
            }
            assign[depth] = u;
            rec(q, g, depth + 1, assign, out);
            assign[depth] = NodeId(u32::MAX);
        }
    }
    rec(q, g, 0, &mut assign, &mut out);
    out.sort();
    out
}

/// The dense fixpoint algorithm the worklist version replaced, kept
/// here as the simulation oracle.
fn oracle_dual_simulation(q: &Pattern, g: &Graph) -> Vec<Vec<NodeId>> {
    let nvars = q.node_count();
    let mut member: Vec<Vec<bool>> = vec![vec![false; g.node_count()]; nvars];
    for v in q.vars() {
        for u in g.nodes() {
            if q.label(v).admits(g.label(u)) {
                member[v.index()][u.index()] = true;
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for v in q.vars() {
            for ui in 0..g.node_count() {
                if !member[v.index()][ui] {
                    continue;
                }
                let u = NodeId(ui as u32);
                let ok = q.out(v).iter().all(|&(t, l)| match l {
                    PatLabel::Sym(s) => g
                        .neighbors_labeled(u, s)
                        .iter()
                        .any(|a| member[t.index()][a.node.index()]),
                    PatLabel::Wildcard => g
                        .out_slice(u)
                        .iter()
                        .any(|a| member[t.index()][a.node.index()]),
                }) && q.inn(v).iter().all(|&(s, l)| match l {
                    PatLabel::Sym(sym) => g
                        .in_neighbors_labeled(u, sym)
                        .iter()
                        .any(|a| member[s.index()][a.node.index()]),
                    PatLabel::Wildcard => g
                        .in_slice(u)
                        .iter()
                        .any(|a| member[s.index()][a.node.index()]),
                });
                if !ok {
                    member[v.index()][ui] = false;
                    changed = true;
                }
            }
        }
    }
    member
        .into_iter()
        .map(|bits| {
            bits.iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| NodeId(i as u32))
                .collect()
        })
        .collect()
}

fn engine_matches(q: &Pattern, g: &Graph, sim: SimFilter) -> Vec<Vec<NodeId>> {
    let opts = MatchOptions::unrestricted().with_sim_filter(sim);
    let mut ms: Vec<Vec<NodeId>> = find_matches(q, g, &opts).into_iter().map(|m| m.0).collect();
    ms.sort();
    ms
}

#[test]
fn matcher_equals_brute_force_oracle() {
    check("filter-and-refine ≡ brute force", 150, |rng| {
        let g = random_graph(rng, 10);
        let q = random_pattern(rng, &g);
        let expected = oracle_matches(&q, &g);
        for sim in [SimFilter::Never, SimFilter::Always, SimFilter::Auto] {
            let got = engine_matches(&q, &g, sim);
            prop_assert!(
                got == expected,
                "{sim:?}: got {} matches, oracle {} for {q:?}",
                got.len(),
                expected.len()
            );
        }
        Ok(())
    });
}

#[test]
fn worklist_simulation_equals_fixpoint_oracle() {
    check("worklist sim ≡ dense fixpoint", 200, |rng| {
        let g = random_graph(rng, 12);
        let q = random_pattern(rng, &g);
        let cs = dual_simulation(&q, &g, None);
        let expected = oracle_dual_simulation(&q, &g);
        for v in q.vars() {
            prop_assert!(
                cs.of(v) == expected[v.index()].as_slice(),
                "sim({v:?}) mismatch for {q:?}: {:?} vs {:?}",
                cs.of(v),
                expected[v.index()]
            );
        }
        Ok(())
    });
}

#[test]
fn simulation_contains_every_match() {
    check("sim ⊇ matches", 120, |rng| {
        let g = random_graph(rng, 10);
        let q = random_pattern(rng, &g);
        let cs = dual_simulation(&q, &g, None);
        for m in engine_matches(&q, &g, SimFilter::Never) {
            for v in q.vars() {
                prop_assert!(
                    cs.of(v).binary_search(&m[v.index()]).is_ok(),
                    "match image {:?} of {v:?} missing from simulation",
                    m[v.index()]
                );
            }
        }
        Ok(())
    });
}

#[test]
fn restricted_and_pinned_enumeration_agree_with_oracle() {
    check("restriction/pin ≡ filtered oracle", 100, |rng| {
        let g = random_graph(rng, 10);
        let q = random_pattern(rng, &g);
        // A random restriction of about half the nodes.
        let scope: Vec<NodeId> = g.nodes().filter(|_| rng.gen_range(0..2) == 0).collect();
        let scope = gfd_graph::NodeSet::from_vec(scope);
        let pin_var = VarId(rng.gen_range(0..q.node_count()) as u32);
        let pin_node = NodeId(rng.gen_range(0..g.node_count()) as u32);
        let expected: Vec<Vec<NodeId>> = oracle_matches(&q, &g)
            .into_iter()
            .filter(|m| m.iter().all(|&u| scope.contains(u)))
            .filter(|m| m[pin_var.index()] == pin_node)
            .collect();
        for sim in [SimFilter::Never, SimFilter::Always] {
            let opts = MatchOptions::within(scope.clone())
                .pin(pin_var, pin_node)
                .with_sim_filter(sim);
            let mut got: Vec<Vec<NodeId>> = find_matches(&q, &g, &opts)
                .into_iter()
                .map(|m| m.0)
                .collect();
            got.sort();
            prop_assert!(
                got == expected,
                "{sim:?}: {} vs oracle {} for {q:?}",
                got.len(),
                expected.len()
            );
        }
        Ok(())
    });
}
