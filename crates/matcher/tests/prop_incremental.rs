//! The incremental-vs-scratch oracle: an [`IncrementalSpace`]
//! repaired across a random 50-step edit script must be *identical* —
//! candidate sets and per-edge candidate adjacency — to a from-scratch
//! `dual_simulation` of the edited snapshot at every step.
//!
//! Edit steps cover every delta kind the storage layer records: edge
//! insertion/deletion, node addition, relabeling, and attribute writes
//! (which must be invisible to simulation). CI runs this under
//! `BENCH_SMOKE=1` with a reduced case budget as a fast PR gate; the
//! full budget runs in the regular test job.

use gfd_graph::{Graph, GraphBuilder, NodeId, NodeSet};
use gfd_match::simulation::dual_simulation;
use gfd_match::IncrementalSpace;
use gfd_pattern::{Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, prop_assert, Rng};

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 2;
const SCRIPT_STEPS: usize = 50;

fn case_budget(full: u64) -> u64 {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        (full / 8).max(2)
    } else {
        full
    }
}

fn random_graph(rng: &mut Rng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(2..max_nodes + 1);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % NODE_LABELS)))
        .collect();
    let m = rng.gen_range(0..3 * n + 1);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let e = format!("e{}", rng.gen_range(0..EDGE_LABELS));
        b.add_edge_labeled(ids[s], ids[d], &e);
    }
    b.freeze()
}

fn random_pattern(rng: &mut Rng, g: &Graph) -> Pattern {
    let k = rng.gen_range(1..5);
    let mut b = PatternBuilder::new(g.vocab().clone());
    let vars: Vec<VarId> = (0..k)
        .map(|i| {
            let name = format!("v{i}");
            if rng.gen_range(0..10) < 3 {
                b.wildcard_node(&name)
            } else {
                b.node(&name, &format!("l{}", rng.gen_range(0..NODE_LABELS)))
            }
        })
        .collect();
    for _ in 0..rng.gen_range(0..5) {
        let s = vars[rng.gen_range(0..k)];
        let d = vars[rng.gen_range(0..k)];
        if rng.gen_range(0..10) < 2 {
            b.wildcard_edge(s, d);
        } else {
            b.edge(s, d, &format!("e{}", rng.gen_range(0..EDGE_LABELS)));
        }
    }
    b.build()
}

/// One edit step: a batch of 1–3 random mutations applied through
/// `edit_with_delta`, so the recorded delta is exactly what production
/// callers (noise injection, repair loops) hand the repairer.
fn random_edit(rng: &mut Rng, g: &Graph) -> (Graph, gfd_graph::GraphDelta) {
    let ops = rng.gen_range(1..4);
    // Pre-draw the random choices so the closure stays `FnOnce`-clean.
    let mut plan: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(ops);
    for _ in 0..ops {
        plan.push((
            rng.gen_range(0..6),
            rng.gen_range(0..usize::MAX),
            rng.gen_range(0..usize::MAX),
            rng.gen_range(0..usize::MAX),
        ));
    }
    g.edit_with_delta(move |b| {
        for (kind, r1, r2, r3) in plan {
            let n = b.node_count();
            match kind {
                0 => {
                    // Insert an edge (may be a duplicate no-op).
                    let s = NodeId((r1 % n) as u32);
                    let d = NodeId((r2 % n) as u32);
                    b.add_edge_labeled(s, d, &format!("e{}", r3 % EDGE_LABELS));
                }
                1 => {
                    // Rewire: remove an edge and insert a replacement
                    // sharing an endpoint, in ONE delta — the shape
                    // where a deletion-zeroed support counter must be
                    // restored by the accompanying insertion.
                    let s = NodeId((r1 % n) as u32);
                    let d = NodeId((r2 % n) as u32);
                    let d2 = NodeId(((r2 + 1) % n) as u32);
                    let e = format!("e{}", r3 % EDGE_LABELS);
                    b.remove_edge_labeled(s, d, &e);
                    b.add_edge_labeled(s, d2, &e);
                }
                2 => {
                    // Delete an edge (no-op when absent).
                    let s = NodeId((r1 % n) as u32);
                    let d = NodeId((r2 % n) as u32);
                    b.remove_edge_labeled(s, d, &format!("e{}", r3 % EDGE_LABELS));
                }
                3 => {
                    let u = b.add_node_labeled(&format!("l{}", r1 % NODE_LABELS));
                    // Sometimes wire the new node in immediately.
                    if r2 % 2 == 0 {
                        let d = NodeId((r3 % n) as u32);
                        b.add_edge_labeled(u, d, &format!("e{}", r3 % EDGE_LABELS));
                    }
                }
                4 => {
                    let u = NodeId((r1 % n) as u32);
                    let l = b.vocab().intern(&format!("l{}", r2 % NODE_LABELS));
                    b.set_label(u, l);
                }
                _ => {
                    // Attribute churn: must not perturb the relation.
                    let u = NodeId((r1 % n) as u32);
                    let a = b.vocab().intern("val");
                    if r2 % 3 == 0 {
                        b.remove_attr(u, a);
                    } else {
                        b.set_attr(u, a, gfd_graph::Value::Int((r3 % 100) as i64));
                    }
                }
            }
        }
    })
}

fn spaces_equal(
    inc: &IncrementalSpace,
    scratch: &gfd_match::CandidateSpace,
    step: usize,
) -> Result<(), String> {
    if inc.space().sets != scratch.sets {
        return Err(format!(
            "sets diverged at step {step}: {:?} vs {:?}",
            inc.space().sets,
            scratch.sets
        ));
    }
    for ei in 0..inc.pattern().edge_count() {
        let (f1, f2) = (&inc.space().forward[ei], &scratch.forward[ei]);
        if f1.offsets != f2.offsets || f1.targets != f2.targets {
            return Err(format!("forward adjacency of edge {ei} diverged at {step}"));
        }
        let (r1, r2) = (&inc.space().reverse[ei], &scratch.reverse[ei]);
        if r1.offsets != r2.offsets || r1.targets != r2.targets {
            return Err(format!("reverse adjacency of edge {ei} diverged at {step}"));
        }
    }
    Ok(())
}

#[test]
fn incremental_repair_equals_scratch_over_edit_scripts() {
    check(
        "IncrementalSpace ≡ dual_simulation over 50-step scripts",
        case_budget(40),
        |rng| {
            let mut g = random_graph(rng, 12);
            let q = random_pattern(rng, &g);
            let mut inc = IncrementalSpace::new(&q, &g, None);
            for step in 0..SCRIPT_STEPS {
                let (g2, delta) = random_edit(rng, &g);
                let report = inc.apply(&g2, &delta);
                let scratch = dual_simulation(&q, &g2, None);
                spaces_equal(&inc, &scratch, step)
                    .map_err(|m| format!("{m}; delta {delta:?}; pattern {q:?}"))?;
                // The report must describe exactly the set difference.
                for &(v, u) in &report.added {
                    prop_assert!(
                        scratch.sets[v.index()].binary_search(&u).is_ok(),
                        "reported add ({v:?},{u:?}) not in scratch result"
                    );
                }
                for &(v, u) in &report.removed {
                    prop_assert!(
                        scratch.sets[v.index()].binary_search(&u).is_err(),
                        "reported removal ({v:?},{u:?}) still in scratch result"
                    );
                }
                g = g2;
            }
            Ok(())
        },
    );
}

#[test]
fn scoped_incremental_repair_equals_scratch() {
    check(
        "scoped IncrementalSpace ≡ scoped dual_simulation",
        case_budget(24),
        |rng| {
            let mut g = random_graph(rng, 12);
            let q = random_pattern(rng, &g);
            // A fixed scope of about half the initial nodes; nodes
            // added later fall outside it, as block-local consumers
            // expect.
            let scope = NodeSet::from_vec(
                g.nodes()
                    .filter(|_| rng.gen_range(0..2) == 0)
                    .collect::<Vec<_>>(),
            );
            let mut inc = IncrementalSpace::new(&q, &g, Some(&scope));
            for step in 0..SCRIPT_STEPS / 2 {
                let (g2, delta) = random_edit(rng, &g);
                inc.apply(&g2, &delta);
                let scratch = dual_simulation(&q, &g2, Some(&scope));
                spaces_equal(&inc, &scratch, step)
                    .map_err(|m| format!("scoped: {m}; delta {delta:?}; pattern {q:?}"))?;
                g = g2;
            }
            Ok(())
        },
    );
}
