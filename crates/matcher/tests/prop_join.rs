//! Oracle property tests for the streamed flat-table join: on random
//! multi-component patterns with random witnesses and pins,
//! [`join_tables`] over permuted [`MatchTable`] views must produce
//! exactly what the nested-`Vec<Vec<NodeId>>` join (the pre-flat-table
//! algorithm, reimplemented below as the oracle) produces — including
//! the both-orientations path that symmetric-pair units take.

use std::sync::Arc;

use gfd_graph::{Graph, GraphBuilder, NodeId, Vocab};
use gfd_match::component::ComponentSearch;
use gfd_match::join::{join_tables, ComponentTable, JoinScratch};
use gfd_match::table::MatchTable;
use gfd_match::types::Flow;
use gfd_pattern::{Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, Rng};

/// `BENCH_SMOKE=1` shrinks the seed budget (CI fail-fast gate).
fn cases(full: u64) -> u64 {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        (full / 8).max(4)
    } else {
        full
    }
}

/// The pre-flat-table nested join, kept verbatim as the oracle:
/// smallest match list first, disjointness via a `used` stack.
fn oracle_join(
    components: &[(Vec<VarId>, Vec<Vec<NodeId>>)],
    total_vars: usize,
) -> Vec<Vec<NodeId>> {
    fn rec(
        components: &[(Vec<VarId>, Vec<Vec<NodeId>>)],
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<NodeId>,
        used: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if depth == order.len() {
            out.push(assignment.clone());
            return;
        }
        let (vars, matches) = &components[order[depth]];
        'next: for m in matches {
            for &node in m {
                if used.contains(&node) {
                    continue 'next;
                }
            }
            for (j, &node) in m.iter().enumerate() {
                assignment[vars[j].index()] = node;
                used.push(node);
            }
            rec(components, order, depth + 1, assignment, used, out);
            for &var in vars {
                assignment[var.index()] = NodeId(u32::MAX);
            }
            used.truncate(used.len() - m.len());
        }
    }
    if components.iter().any(|(_, m)| m.is_empty()) {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by_key(|&i| components[i].1.len());
    let mut assignment = vec![NodeId(u32::MAX); total_vars];
    let mut used = Vec::new();
    let mut out = Vec::new();
    rec(components, &order, 0, &mut assignment, &mut used, &mut out);
    out
}

/// A random small graph over labels {A, B} and edge labels {e, f}.
fn random_graph(rng: &mut Rng, vocab: &Arc<Vocab>) -> Graph {
    let mut b = GraphBuilder::new(vocab.clone());
    let n = rng.gen_range(3..9);
    let nodes: Vec<NodeId> = (0..n)
        .map(|_| b.add_node_labeled(if rng.gen_bool(0.5) { "A" } else { "B" }))
        .collect();
    let edges = rng.gen_range(2..(2 * n));
    for _ in 0..edges {
        let s = nodes[rng.gen_range(0..n)];
        let t = nodes[rng.gen_range(0..n)];
        b.add_edge_labeled(s, t, if rng.gen_bool(0.5) { "e" } else { "f" });
    }
    b.freeze()
}

/// A random connected chain pattern of 1–3 variables.
fn random_component(rng: &mut Rng, vocab: &Arc<Vocab>) -> Pattern {
    let mut b = PatternBuilder::new(vocab.clone());
    let k = rng.gen_range(1..4);
    let vars: Vec<VarId> = (0..k)
        .map(|i| b.node(&format!("v{i}"), if rng.gen_bool(0.5) { "A" } else { "B" }))
        .collect();
    for w in vars.windows(2) {
        let label = if rng.gen_bool(0.5) { "e" } else { "f" };
        if rng.gen_bool(0.5) {
            b.edge(w[0], w[1], label);
        } else {
            b.edge(w[1], w[0], label);
        }
    }
    b.build()
}

/// Enumerates one component's matches (optionally pinned), returning
/// the nested-`Vec` oracle form AND a flat table stored under a random
/// column permutation (the "witness"), with the perm that views it back
/// in logical order.
fn enumerate_both(
    rng: &mut Rng,
    q: &Pattern,
    g: &Graph,
    pin: Option<(VarId, NodeId)>,
) -> (Vec<Vec<NodeId>>, MatchTable, Vec<u32>) {
    let mut search = ComponentSearch::new(q, g);
    if let Some((v, n)) = pin {
        search = search.pin(v, n);
    }
    let logical = search.collect_all();
    let arity = q.node_count();
    // Random witness: logical column j is stored at physical perm[j].
    let mut perm: Vec<u32> = (0..arity as u32).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..i + 1));
    }
    let mut table = MatchTable::with_capacity(arity, logical.len());
    let mut phys = vec![NodeId(u32::MAX); arity];
    for row in &logical {
        for (j, &node) in row.iter().enumerate() {
            phys[perm[j] as usize] = node;
        }
        table.push_row(&phys);
    }
    (logical, table, perm)
}

fn sorted(mut v: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    v.sort();
    v
}

fn flat_join(inputs: &[ComponentTable], total: usize) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut scratch = JoinScratch::new();
    join_tables(inputs, total, &mut scratch, &mut |a| {
        out.push(a.to_vec());
        Flow::Continue
    });
    out
}

#[test]
fn flat_table_join_equals_nested_join() {
    let vocab = Vocab::shared();
    check(
        "join_tables ≡ nested-Vec oracle on random patterns",
        cases(120),
        |rng| {
            let g = random_graph(rng, &vocab);
            let ncomp = rng.gen_range(2..4);
            let comps: Vec<Pattern> = (0..ncomp).map(|_| random_component(rng, &vocab)).collect();
            let total: usize = comps.iter().map(Pattern::node_count).sum();
            // Random assignment of original variable ids to components.
            let mut orig: Vec<u32> = (0..total as u32).collect();
            for i in (1..orig.len()).rev() {
                orig.swap(i, rng.gen_range(0..i + 1));
            }
            let mut offset = 0usize;
            let mut nested: Vec<(Vec<VarId>, Vec<Vec<NodeId>>)> = Vec::new();
            let mut tables: Vec<(MatchTable, Vec<u32>)> = Vec::new();
            for q in &comps {
                let vars: Vec<VarId> = orig[offset..offset + q.node_count()]
                    .iter()
                    .map(|&v| VarId(v))
                    .collect();
                offset += q.node_count();
                // Random pin on roughly half the components.
                let pin = rng.gen_bool(0.5).then(|| {
                    (
                        VarId(rng.gen_range(0..q.node_count()) as u32),
                        NodeId(rng.gen_range(0..g.node_count()) as u32),
                    )
                });
                let (logical, table, perm) = enumerate_both(rng, q, &g, pin);
                nested.push((vars, logical));
                tables.push((table, perm));
            }
            let inputs: Vec<ComponentTable> = nested
                .iter()
                .zip(&tables)
                .map(|((vars, _), (table, perm))| ComponentTable {
                    vars,
                    table,
                    perm: Some(perm),
                })
                .collect();
            let got = sorted(flat_join(&inputs, total));
            let want = sorted(oracle_join(&nested, total));
            if got != want {
                return Err(format!(
                    "flat {} rows vs oracle {} rows",
                    got.len(),
                    want.len()
                ));
            }
            Ok(())
        },
    );
}

/// The symmetric-pair path: two isomorphic components whose pivot pins
/// are checked in **both orientations** (Example 10's dedup). The
/// union over orientations of the flat join must equal the oracle's.
#[test]
fn both_orientations_flat_equals_nested() {
    let vocab = Vocab::shared();
    check(
        "symmetric-pair both-orientations ≡ oracle",
        cases(80),
        |rng| {
            let g = random_graph(rng, &vocab);
            let q = random_component(rng, &vocab);
            let k = q.node_count();
            let total = 2 * k;
            let pivot = VarId(rng.gen_range(0..k) as u32);
            let a = NodeId(rng.gen_range(0..g.node_count()) as u32);
            let b = NodeId(rng.gen_range(0..g.node_count()) as u32);
            let vars0: Vec<VarId> = (0..k as u32).map(VarId).collect();
            let vars1: Vec<VarId> = (k as u32..2 * k as u32).map(VarId).collect();

            let mut flat_union: Vec<Vec<NodeId>> = Vec::new();
            let mut oracle_union: Vec<Vec<NodeId>> = Vec::new();
            for (pa, pb) in [(a, b), (b, a)] {
                let (l0, t0, p0) = enumerate_both(rng, &q, &g, Some((pivot, pa)));
                let (l1, t1, p1) = enumerate_both(rng, &q, &g, Some((pivot, pb)));
                let inputs = [
                    ComponentTable {
                        vars: &vars0,
                        table: &t0,
                        perm: Some(&p0),
                    },
                    ComponentTable {
                        vars: &vars1,
                        table: &t1,
                        perm: Some(&p1),
                    },
                ];
                flat_union.extend(flat_join(&inputs, total));
                oracle_union.extend(oracle_join(
                    &[(vars0.clone(), l0), (vars1.clone(), l1)],
                    total,
                ));
            }
            let got = sorted(flat_union);
            let want = sorted(oracle_union);
            if got != want {
                return Err(format!(
                    "flat {} rows vs oracle {} rows (pins {a:?}/{b:?})",
                    got.len(),
                    want.len()
                ));
            }
            Ok(())
        },
    );
}
