//! Property-based tests for the factorized match representation
//! ([`gfd_match::factorize`]).
//!
//! The oracle is the brute-force matcher from `prop_plan.rs`: every
//! injective assignment over a random graph, checked edge by edge.
//! Against it we drive random **cyclic** patterns through the
//! factorization — counting, marginals, pins, lazy expansion,
//! witness-transported class facts via the [`ClassRegistry`], and
//! random 50-step edit scripts with per-epoch invalidation.
//!
//! Two layers of guarantee are pinned separately:
//! - the **represented set is a superset of the match set** always
//!   (`raw_count() ≥ oracle`, `Σ marginal = raw_count`), and
//! - when the exactness precondition held (`count()` is `Some`), the
//!   count equals the oracle exactly.
//!
//! Expansion re-applies global injectivity per binding, so it must
//! equal the oracle — and [`ComponentSearch`]'s `collect_into` rows —
//! *unconditionally*, exact or not.

use gfd_graph::{Graph, GraphBuilder, NodeId};
use gfd_match::types::Flow;
use gfd_match::{
    dual_simulation, ClassRegistry, ComponentSearch, FactorScratch, MatchTable, QueryPlan,
};
use gfd_pattern::{PatLabel, Pattern, PatternBuilder, VarId};
use gfd_util::{prop::check, prop_assert, Rng};

/// `BENCH_SMOKE=1` shrinks the seed budget (CI fail-fast gate).
fn cases(full: u64) -> u64 {
    if std::env::var_os("BENCH_SMOKE").is_some() {
        (full / 8).max(4)
    } else {
        full
    }
}

const NODE_LABELS: usize = 3;
const EDGE_LABELS: usize = 2;

/// A random graph over the fixed small label vocabulary, dense enough
/// for cycles to close.
fn random_graph(rng: &mut Rng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(3..max_nodes + 1);
    let mut b = GraphBuilder::with_fresh_vocab();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| b.add_node_labeled(&format!("l{}", i % NODE_LABELS)))
        .collect();
    let m = rng.gen_range(n..4 * n + 1);
    for _ in 0..m {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        let e = format!("e{}", rng.gen_range(0..EDGE_LABELS));
        b.add_edge_labeled(ids[s], ids[d], &e);
    }
    b.freeze()
}

/// A structural pattern description, buildable under any variable
/// declaration order — the twin generator for witness transport.
struct PatternSpec {
    /// `None` = wildcard node, `Some(l)` = label `l{l}`.
    labels: Vec<Option<usize>>,
    edges: Vec<(usize, usize, usize)>,
}

/// A random connected pattern with at least one closing edge: a
/// random spanning tree over `3..=6` variables plus `1..=2` extra
/// edges between distinct variables.
fn random_cyclic_spec(rng: &mut Rng) -> PatternSpec {
    let k = rng.gen_range(3..7);
    let labels = (0..k)
        .map(|_| {
            if rng.gen_bool(0.2) {
                None
            } else {
                Some(rng.gen_range(0..NODE_LABELS))
            }
        })
        .collect();
    let mut edges = Vec::new();
    for i in 1..k {
        let p = rng.gen_range(0..i);
        let l = rng.gen_range(0..EDGE_LABELS);
        if rng.gen_bool(0.5) {
            edges.push((p, i, l));
        } else {
            edges.push((i, p, l));
        }
    }
    for _ in 0..rng.gen_range(1..3) {
        let s = rng.gen_range(0..k);
        let d = rng.gen_range(0..k);
        if s != d {
            edges.push((s, d, rng.gen_range(0..EDGE_LABELS)));
        }
    }
    PatternSpec { labels, edges }
}

/// Builds the spec with its variables declared in `order` (a
/// permutation of `0..k`); specs built under different orders are
/// isomorphic twins.
fn build_pattern(spec: &PatternSpec, order: &[usize], g: &Graph) -> Pattern {
    let mut b = PatternBuilder::new(g.vocab().clone());
    let mut vars = vec![VarId(0); spec.labels.len()];
    for &i in order {
        vars[i] = match spec.labels[i] {
            Some(l) => b.node(&format!("v{i}"), &format!("l{l}")),
            None => b.wildcard_node(&format!("v{i}")),
        };
    }
    for &(s, d, l) in &spec.edges {
        b.edge(vars[s], vars[d], &format!("e{l}"));
    }
    b.build()
}

/// A random permutation of `0..k`.
fn random_order(rng: &mut Rng, k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..k).collect();
    for i in (1..k).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    order
}

fn oracle_edge_ok(g: &Graph, u: NodeId, v: NodeId, label: PatLabel) -> bool {
    match label {
        PatLabel::Sym(s) => g.has_edge(u, v, s),
        PatLabel::Wildcard => g.has_edge_any(u, v),
    }
}

/// Brute force: every injective assignment, filtered by labels and
/// pattern edges. Returns sorted match vectors.
fn oracle_matches(q: &Pattern, g: &Graph) -> Vec<Vec<NodeId>> {
    let k = q.node_count();
    let mut out = Vec::new();
    let mut assign = vec![NodeId(u32::MAX); k];
    fn rec(
        q: &Pattern,
        g: &Graph,
        depth: usize,
        assign: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if depth == q.node_count() {
            for e in q.edges() {
                if !oracle_edge_ok(g, assign[e.src.index()], assign[e.dst.index()], e.label) {
                    return;
                }
            }
            out.push(assign.clone());
            return;
        }
        let v = VarId(depth as u32);
        for u in g.nodes() {
            if !q.label(v).admits(g.label(u)) || assign[..depth].contains(&u) {
                continue;
            }
            assign[depth] = u;
            rec(q, g, depth + 1, assign, out);
            assign[depth] = NodeId(u32::MAX);
        }
    }
    rec(q, g, 0, &mut assign, &mut out);
    out.sort();
    out
}

/// Builds the unrestricted factorization of `q` into `scratch`;
/// `None` when the plan shape is declined (caller skips the case).
fn build_fact<'a>(
    q: &Pattern,
    g: &Graph,
    scratch: &'a mut FactorScratch,
    pins: &[(VarId, NodeId)],
) -> Option<&'a gfd_match::Factorization> {
    let cs = dual_simulation(q, g, None);
    let plan = QueryPlan::new(q);
    scratch
        .build(q, g, &cs, &plan, None, pins)
        .then(|| scratch.fact())
}

/// Sorted rows of the factorization's lazy expansion.
fn expanded(fact: &gfd_match::Factorization) -> Vec<Vec<NodeId>> {
    let mut rows = Vec::new();
    fact.for_each_expanded(&mut |m| {
        rows.push(m.to_vec());
        Flow::Continue
    });
    rows.sort();
    rows
}

/// Counting: exact counts match the oracle; the represented set is a
/// superset of the match set whether or not exactness held.
#[test]
fn factorized_count_equals_brute_force_on_cyclic_patterns() {
    let mut scratch = FactorScratch::new();
    let mut exact_seen = 0u32;
    check(
        "factorized count ≡ brute force (cyclic)",
        cases(150),
        |rng| {
            let g = random_graph(rng, 9);
            let spec = random_cyclic_spec(rng);
            let order: Vec<usize> = (0..spec.labels.len()).collect();
            let q = build_pattern(&spec, &order, &g);
            let Some(fact) = build_fact(&q, &g, &mut scratch, &[]) else {
                return Ok(()); // declined plan shape: fallback path, not ours
            };
            let expected = oracle_matches(&q, &g).len() as u64;
            prop_assert!(
                fact.raw_count() >= expected,
                "represented set must be a superset: raw {} < oracle {expected} for {q:?}",
                fact.raw_count()
            );
            if let Some(c) = fact.count() {
                exact_seen += 1;
                prop_assert!(
                    c == expected,
                    "exact count {c} vs oracle {expected} for {q:?}"
                );
            }
            Ok(())
        },
    );
    assert!(exact_seen > 30, "exact path starved: {exact_seen} cases");
}

/// Marginals: `Σ_v marginal(x, v) = raw_count` for every variable
/// (the FAQ identity the validators lean on), and with exactness each
/// marginal equals the oracle's per-binding match count.
#[test]
fn marginals_fold_to_the_count_and_match_the_oracle() {
    let mut scratch = FactorScratch::new();
    check(
        "Σ marginal = count; exact marginal ≡ oracle",
        cases(120),
        |rng| {
            let g = random_graph(rng, 8);
            let spec = random_cyclic_spec(rng);
            let order: Vec<usize> = (0..spec.labels.len()).collect();
            let q = build_pattern(&spec, &order, &g);
            if build_fact(&q, &g, &mut scratch, &[]).is_none() {
                return Ok(());
            }
            let mut fact = scratch.fact().clone();
            fact.compute_marginals();
            if fact.overflowed() {
                return Ok(()); // saturated folds void the identity by design
            }
            let oracle = oracle_matches(&q, &g);
            for x in 0..q.node_count() {
                let var = VarId(x as u32);
                let total: u64 = g.nodes().map(|v| fact.marginal(var, v).unwrap()).sum();
                prop_assert!(
                    total == fact.raw_count(),
                    "Σ marginal({x}) = {total} vs raw {} for {q:?}",
                    fact.raw_count()
                );
                if fact.is_exact() {
                    for v in g.nodes() {
                        let pinned = oracle.iter().filter(|m| m[x] == v).count() as u64;
                        prop_assert!(
                            fact.marginal(var, v) == Some(pinned),
                            "marginal({x}, {v:?}) = {:?} vs oracle {pinned} for {q:?}",
                            fact.marginal(var, v)
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// Pins: a pinned factorization counts exactly the pinned oracle
/// matches (when exact) and never undercounts.
#[test]
fn pinned_factorized_count_equals_filtered_oracle() {
    let mut scratch = FactorScratch::new();
    check(
        "pinned factorized count ≡ filtered oracle",
        cases(120),
        |rng| {
            let g = random_graph(rng, 8);
            let spec = random_cyclic_spec(rng);
            let order: Vec<usize> = (0..spec.labels.len()).collect();
            let q = build_pattern(&spec, &order, &g);
            let pin_var = VarId(rng.gen_range(0..q.node_count()) as u32);
            let pin_node = NodeId(rng.gen_range(0..g.node_count()) as u32);
            let Some(fact) = build_fact(&q, &g, &mut scratch, &[(pin_var, pin_node)]) else {
                return Ok(());
            };
            let expected = oracle_matches(&q, &g)
                .into_iter()
                .filter(|m| m[pin_var.index()] == pin_node)
                .count() as u64;
            prop_assert!(
                fact.raw_count() >= expected,
                "pinned raw {} < oracle {expected} for {q:?}",
                fact.raw_count()
            );
            if let Some(c) = fact.count() {
                prop_assert!(
                    c == expected,
                    "pinned exact count {c} vs oracle {expected} for {q:?}"
                );
            }
            Ok(())
        },
    );
}

/// Lazy expansion re-applies global injectivity, so it equals the
/// oracle — and the backtracking matcher's `collect_into` rows —
/// unconditionally, exactness or not.
#[test]
fn lazy_expansion_equals_oracle_and_collect_into_rows() {
    let mut scratch = FactorScratch::new();
    check("expansion ≡ oracle ≡ collect_into", cases(120), |rng| {
        let g = random_graph(rng, 8);
        let spec = random_cyclic_spec(rng);
        let order: Vec<usize> = (0..spec.labels.len()).collect();
        let q = build_pattern(&spec, &order, &g);
        let Some(fact) = build_fact(&q, &g, &mut scratch, &[]) else {
            return Ok(());
        };
        let rows = expanded(fact);
        let expected = oracle_matches(&q, &g);
        prop_assert!(
            rows == expected,
            "expansion: {} rows vs oracle {} for {q:?}",
            rows.len(),
            expected.len()
        );
        let mut table = MatchTable::new(q.node_count());
        ComponentSearch::new(&q, &g).collect_into(&mut table);
        let mut search_rows: Vec<Vec<NodeId>> =
            (0..table.len()).map(|i| table.row(i).to_vec()).collect();
        search_rows.sort();
        prop_assert!(
            rows == search_rows,
            "expansion {} vs collect_into {} rows for {q:?}",
            rows.len(),
            search_rows.len()
        );
        Ok(())
    });
}

/// Witness-transported class facts across 50-step edit scripts: the
/// registry factorizes once per class per epoch, relabels the fact for
/// permuted-declaration twins, and invalidates it on every delta.
/// After every edit the transported facts must still bound (and, when
/// exact, equal) brute force on the *current* graph, and the marginal
/// fold identity must hold; expansion is re-checked on a sample of
/// epochs.
#[test]
fn transported_factorizations_survive_edit_scripts() {
    check(
        "registry factorizations ≡ oracle under edits",
        cases(6),
        |rng| {
            let mut g = random_graph(rng, 7);
            let spec = random_cyclic_spec(rng);
            let k = spec.labels.len();
            let identity: Vec<usize> = (0..k).collect();
            let members = [
                build_pattern(&spec, &identity, &g),
                build_pattern(&spec, &random_order(rng, k), &g),
                build_pattern(&spec, &random_order(rng, k), &g),
            ];
            let reg = ClassRegistry::new();
            let handles: Vec<_> = members.iter().map(|q| reg.register(q)).collect();
            prop_assert!(
                reg.class_count() == 1,
                "twins of one spec must share a class"
            );
            for step in 0..50 {
                let deep_check = step % 10 == 0;
                let oracle_counts: Vec<Option<Vec<Vec<NodeId>>>> = members
                    .iter()
                    .map(|q| deep_check.then(|| oracle_matches(q, &g)))
                    .collect();
                for ((q, &h), oracle) in members.iter().zip(&handles).zip(&oracle_counts) {
                    let Some(fact) = reg.factorization(h, &g) else {
                        continue; // declined shape: decline must be stable, checked below
                    };
                    prop_assert!(fact.has_marginals(), "registry facts must ship marginals");
                    if !fact.overflowed() {
                        let total: u64 =
                            g.nodes().map(|v| fact.marginal(VarId(0), v).unwrap()).sum();
                        prop_assert!(
                            total == fact.raw_count(),
                            "step {step}: Σ marginal {total} vs raw {}",
                            fact.raw_count()
                        );
                    }
                    if let Some(oracle) = oracle {
                        prop_assert!(
                            fact.raw_count() >= oracle.len() as u64,
                            "step {step}: raw {} < oracle {} for {q:?}",
                            fact.raw_count(),
                            oracle.len()
                        );
                        if let Some(c) = fact.count() {
                            prop_assert!(
                                c == oracle.len() as u64,
                                "step {step}: exact {c} vs oracle {} for {q:?}",
                                oracle.len()
                            );
                        }
                        let rows = expanded(&fact);
                        prop_assert!(
                            rows == *oracle,
                            "step {step}: expansion {} vs oracle {} for {q:?}",
                            rows.len(),
                            oracle.len()
                        );
                    }
                }
                // One random edit: add or remove a labeled edge.
                let n = g.node_count();
                let s = NodeId(rng.gen_range(0..n) as u32);
                let d = NodeId(rng.gen_range(0..n) as u32);
                let lbl = format!("e{}", rng.gen_range(0..EDGE_LABELS));
                let remove = rng.gen_bool(0.4);
                let (g2, delta) = g.edit_with_delta(|b| {
                    if remove {
                        b.remove_edge_labeled(s, d, &lbl);
                    } else {
                        b.add_edge_labeled(s, d, &lbl);
                    }
                });
                reg.apply(&g2, &delta);
                g = g2;
            }
            prop_assert!(
                reg.plans_built() == 1,
                "plans survive deltas: one decomposition per class"
            );
            Ok(())
        },
    );
}
