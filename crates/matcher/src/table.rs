//! Flat match tables: the allocation-free representation of a
//! component's match set.
//!
//! A [`MatchTable`] stores every match of one pattern component in a
//! single `Vec<NodeId>` arena with stride = component arity — one heap
//! allocation (amortized) for the *whole* enumeration instead of one
//! `Vec` per match. Consumers iterate rows as `&[NodeId]` slices; the
//! detection hot path (`execute_unit` in `gfd-parallel`) caches tables
//! behind `Arc` and joins them without ever copying a row.
//!
//! # The column-permutation view contract
//!
//! A [`TableView`] is a table plus an optional **column permutation**:
//! logical column `j` of the view reads physical column `perm[j]` of
//! the table. This is how a cached enumeration is reused across
//! isomorphic components: the table is stored once in *representative*
//! variable order, and a twin component with witness `map` (comp var
//! `j` ↦ rep var `map[j]`) views it through `perm[j] = map[j]` — an
//! `O(arity)` header rewrite instead of an `O(rows · arity)`
//! re-materialization.
//!
//! The contract every producer and consumer relies on:
//!
//! * `perm` is a **bijection** on `0..arity` — a view permutes
//!   columns, it never projects or duplicates them. Consequently the
//!   *set of nodes* in a physical row equals the set in the logical
//!   row, so row-level checks that are order-insensitive (injectivity
//!   / disjointness in the join) may scan the physical row directly
//!   and skip the indirection;
//! * `perm: None` means the identity view: logical = physical, the
//!   common case for a component that *is* its class representative;
//! * views are cheap to clone (`Arc` bumps, no allocation) and never
//!   outlive their table's data — the `Arc` keeps evicted cache
//!   entries alive while a join still streams over them.

use std::sync::Arc;

use gfd_graph::NodeId;

/// A flat table of matches: `rows × arity` node ids in one arena.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchTable {
    arity: usize,
    rows: usize,
    data: Vec<NodeId>,
}

impl MatchTable {
    /// An empty table for matches of `arity` variables.
    pub fn new(arity: usize) -> Self {
        MatchTable {
            arity,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// An empty table with room for `rows` matches.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        MatchTable {
            arity,
            rows: 0,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Stride of the table: images per match.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of matches stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no match has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends one match (must have exactly `arity` images).
    #[inline]
    pub fn push_row(&mut self, row: &[NodeId]) {
        debug_assert_eq!(row.len(), self.arity, "row width must equal the stride");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// The `i`-th match, in physical column order.
    #[inline]
    pub fn row(&self, i: usize) -> &[NodeId] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates all matches as physical rows.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Appends one match given as an iterator of images (must yield
    /// exactly `arity` nodes) — lets producers whose row lives
    /// scattered in an assignment array push without staging a
    /// contiguous buffer.
    #[inline]
    pub fn push_row_from(&mut self, row: impl IntoIterator<Item = NodeId>) {
        let before = self.data.len();
        self.data.extend(row);
        debug_assert_eq!(
            self.data.len() - before,
            self.arity,
            "row width must equal the stride"
        );
        self.rows += 1;
    }

    /// Drops all rows, keeping the arena's capacity.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.data.clear();
    }

    /// Drops all rows *and* adopts a new stride, keeping the arena's
    /// capacity — for scratch tables reused across patterns of
    /// different arity.
    pub fn reset(&mut self, arity: usize) {
        self.arity = arity;
        self.rows = 0;
        self.data.clear();
    }

    /// Bytes of match data held (the cache-eviction size key).
    #[inline]
    pub fn data_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<NodeId>()
    }
}

/// A shared [`MatchTable`] read through a column permutation; see the
/// module docs for the view contract.
#[derive(Clone, Debug)]
pub struct TableView {
    table: Arc<MatchTable>,
    /// `perm[j]` = physical column of logical column `j`; `None` is
    /// the identity.
    perm: Option<Arc<[u32]>>,
}

impl TableView {
    /// The identity view of a table.
    pub fn identity(table: Arc<MatchTable>) -> Self {
        TableView { table, perm: None }
    }

    /// A permuted view: logical column `j` reads physical column
    /// `perm[j]`. `perm` must be a bijection on `0..arity`.
    pub fn permuted(table: Arc<MatchTable>, perm: Arc<[u32]>) -> Self {
        debug_assert_eq!(perm.len(), table.arity());
        debug_assert!(
            {
                let mut seen = vec![false; perm.len()];
                perm.iter().all(|&p| {
                    let fresh = !seen[p as usize];
                    seen[p as usize] = true;
                    fresh
                })
            },
            "perm must be a bijection on 0..arity"
        );
        TableView {
            table,
            perm: Some(perm),
        }
    }

    /// The underlying shared table.
    #[inline]
    pub fn table(&self) -> &Arc<MatchTable> {
        &self.table
    }

    /// The permutation, `None` for the identity view.
    #[inline]
    pub fn perm(&self) -> Option<&[u32]> {
        self.perm.as_deref()
    }

    /// Images per match.
    #[inline]
    pub fn arity(&self) -> usize {
        self.table.arity()
    }

    /// Number of matches.
    #[inline]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if the view holds no match.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The image of logical column `col` in match `row`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> NodeId {
        let r = self.table.row(row);
        match &self.perm {
            Some(p) => r[p[col] as usize],
            None => r[col],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut t = MatchTable::new(2);
        assert!(t.is_empty());
        t.push_row(&[NodeId(3), NodeId(7)]);
        t.push_row(&[NodeId(1), NodeId(2)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0), &[NodeId(3), NodeId(7)]);
        assert_eq!(t.row(1), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.data_bytes(), 4 * std::mem::size_of::<NodeId>());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn identity_and_permuted_views() {
        let mut t = MatchTable::new(3);
        t.push_row(&[NodeId(10), NodeId(20), NodeId(30)]);
        let t = Arc::new(t);
        let id = TableView::identity(t.clone());
        assert_eq!(id.get(0, 0), NodeId(10));
        assert_eq!(id.get(0, 2), NodeId(30));
        // Logical (a, b, c) reads physical (c, a, b).
        let v = TableView::permuted(t, Arc::from([2u32, 0, 1].as_slice()));
        assert_eq!(v.get(0, 0), NodeId(30));
        assert_eq!(v.get(0, 1), NodeId(10));
        assert_eq!(v.get(0, 2), NodeId(20));
    }

    #[test]
    #[should_panic(expected = "bijection")]
    #[cfg(debug_assertions)]
    fn non_bijective_perm_rejected() {
        let mut t = MatchTable::new(2);
        t.push_row(&[NodeId(0), NodeId(1)]);
        let _ = TableView::permuted(Arc::new(t), Arc::from([0u32, 0].as_slice()));
    }
}
