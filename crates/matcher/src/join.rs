//! Joining per-component matches of a disconnected pattern.
//!
//! A match of `Q` with components `(Q_1, …, Q_k)` is a choice of one
//! match per component whose images are pairwise node-disjoint (the
//! paper's `h` is a bijection onto the match's subgraph, hence
//! injective over all of `x̄`). The join enumerates the disjoint
//! combinations in a streaming fashion, smallest component match-list
//! first so dead ends are pruned early.
//!
//! Component match sets arrive as flat [`MatchTable`]s read through
//! optional column permutations (the [`crate::table`] view contract):
//! the join streams directly over table rows — no per-match `Vec`s are
//! ever materialized, and a cached table reused across isomorphic
//! components is joined in place through its permutation. All
//! backtracking state lives in a caller-owned [`JoinScratch`], so a
//! warm caller joins with zero heap allocation.
//!
//! Inputs may also *share* variables — the decomposition planner joins
//! the bags of one component's tree decomposition through the same
//! entry point. A column whose variable is already assigned must agree
//! with the assignment (an equi-join on the bag overlap) instead of
//! tripping the disjointness check; only newly placed variables
//! consume fresh nodes. Shared-variable inputs are probed through a
//! sorted row index over their key columns (built per join call,
//! reused across calls through the scratch), so the equi-join runs in
//! output-proportional time instead of scanning every row per outer
//! match; inputs without shared variables keep the plain scan.

use std::cmp::Ordering;

use gfd_graph::NodeId;
use gfd_pattern::VarId;

use crate::table::MatchTable;
use crate::types::Flow;

/// The join's view of its inputs: `count` components, each a flat
/// table of matches plus the original pattern variable of every
/// logical column. Implemented by slices of [`ComponentTable`] and by
/// the unit executor's zero-allocation adapter in `gfd-parallel`.
pub trait JoinInputs {
    /// Number of components.
    fn count(&self) -> usize;
    /// `vars(i)[j]` is the original variable of component `i`'s
    /// logical column `j`.
    fn vars(&self, i: usize) -> &[VarId];
    /// Component `i`'s match table (physical column order).
    fn table(&self, i: usize) -> &MatchTable;
    /// Component `i`'s column permutation (logical `j` reads physical
    /// `perm[j]`); `None` = identity. Must be a bijection — see the
    /// [`crate::table`] contract.
    fn perm(&self, _i: usize) -> Option<&[u32]> {
        None
    }
}

/// One component's join input borrowing a table directly — the
/// convenient concrete form for callers that own their tables.
#[derive(Clone, Copy)]
pub struct ComponentTable<'a> {
    /// Original pattern variable of each logical column.
    pub vars: &'a [VarId],
    /// The match table.
    pub table: &'a MatchTable,
    /// Optional column permutation (see [`crate::table`]).
    pub perm: Option<&'a [u32]>,
}

impl JoinInputs for [ComponentTable<'_>] {
    fn count(&self) -> usize {
        self.len()
    }
    fn vars(&self, i: usize) -> &[VarId] {
        self[i].vars
    }
    fn table(&self, i: usize) -> &MatchTable {
        self[i].table
    }
    fn perm(&self, i: usize) -> Option<&[u32]> {
        self[i].perm
    }
}

/// Reusable backtracking state for [`join_tables`]: component order,
/// the assignment under construction, and the disjointness set. A
/// caller that keeps one scratch across joins performs no steady-state
/// allocation.
#[derive(Debug, Default)]
pub struct JoinScratch {
    order: Vec<usize>,
    assignment: Vec<NodeId>,
    used: Vec<NodeId>,
    /// The variable placed at each `used` slot — lets the unwind reset
    /// exactly the variables this depth placed, leaving shared
    /// variables assigned by earlier inputs untouched.
    used_vars: Vec<VarId>,
    /// Per-depth equi-join index (empty key = plain scan).
    keyed: Vec<KeyedIndex>,
    /// Which variables some earlier-ordered input binds — the key
    /// columns of each later input.
    seen: Vec<bool>,
}

/// A sorted row index over one input's key columns (the logical
/// columns whose variables an earlier-ordered input binds). Rows with
/// equal keys are contiguous, so a probe is one binary search plus a
/// scan of exactly the matching group.
#[derive(Debug, Default)]
struct KeyedIndex {
    /// Logical key columns.
    cols: Vec<u32>,
    /// Row ids, sorted lexicographically by key-column values (ties by
    /// row id, preserving insertion order within a group).
    rows: Vec<u32>,
}

/// Lexicographic comparison of row `r`'s key-column values against the
/// values `assignment` fixes for those columns' variables (all bound:
/// key columns are shared with earlier inputs by construction).
fn cmp_key_to_assignment(
    table: &MatchTable,
    perm: Option<&[u32]>,
    vars: &[VarId],
    cols: &[u32],
    r: u32,
    assignment: &[NodeId],
) -> Ordering {
    let row = table.row(r as usize);
    for &j in cols {
        let phys = perm.map_or(j as usize, |p| p[j as usize] as usize);
        match row[phys].cmp(&assignment[vars[j as usize].index()]) {
            Ordering::Equal => {}
            o => return o,
        }
    }
    Ordering::Equal
}

impl JoinScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Streams every compatible combination of input matches as a full
/// assignment (indexed by original variable id, length `total_vars`).
/// Inputs with disjoint variable sets combine node-disjointly (the
/// disconnected-pattern join); inputs sharing variables must agree on
/// them (the decomposition planner's bag join). Stops early if `f`
/// returns [`Flow::Break`]; returns `true` if the enumeration ran to
/// completion.
pub fn join_tables<I: JoinInputs + ?Sized>(
    inputs: &I,
    total_vars: usize,
    scratch: &mut JoinScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    let k = inputs.count();
    for i in 0..k {
        if inputs.table(i).is_empty() {
            return true; // no matches at all — trivially complete
        }
    }
    let JoinScratch {
        order,
        assignment,
        used,
        used_vars,
        keyed,
        seen,
    } = scratch;
    // Order components by ascending match count for early pruning.
    order.clear();
    order.extend(0..k);
    order.sort_unstable_by_key(|&i| inputs.table(i).len());

    // Index every input whose variables overlap an earlier one: probe
    // by binary search instead of rescanning the table per outer row.
    if keyed.len() < k {
        keyed.resize_with(k, KeyedIndex::default);
    }
    seen.clear();
    seen.resize(total_vars, false);
    for (d, &ci) in order.iter().enumerate() {
        let ki = &mut keyed[d];
        ki.cols.clear();
        ki.rows.clear();
        let vars = inputs.vars(ci);
        for (j, &v) in vars.iter().enumerate() {
            if seen[v.index()] {
                ki.cols.push(j as u32);
            }
        }
        if !ki.cols.is_empty() {
            let table = inputs.table(ci);
            let perm = inputs.perm(ci);
            ki.rows.extend(0..table.len() as u32);
            ki.rows.sort_unstable_by(|&a, &b| {
                let (ra, rb) = (table.row(a as usize), table.row(b as usize));
                for &j in &ki.cols {
                    let phys = perm.map_or(j as usize, |p| p[j as usize] as usize);
                    match ra[phys].cmp(&rb[phys]) {
                        Ordering::Equal => {}
                        o => return o,
                    }
                }
                a.cmp(&b)
            });
        }
        for &v in vars {
            seen[v.index()] = true;
        }
    }

    assignment.clear();
    assignment.resize(total_vars, NodeId(u32::MAX));
    used.clear();
    used_vars.clear();
    rec(inputs, order, keyed, 0, assignment, used, used_vars, f)
}

/// Resets the variables placed since `from`, restoring the state this
/// depth found on entry.
fn unwind(
    assignment: &mut [NodeId],
    used: &mut Vec<NodeId>,
    used_vars: &mut Vec<VarId>,
    from: usize,
) {
    for &v in &used_vars[from..] {
        assignment[v.index()] = NodeId(u32::MAX);
    }
    used.truncate(from);
    used_vars.truncate(from);
}

#[allow(clippy::too_many_arguments)]
fn rec<I: JoinInputs + ?Sized>(
    inputs: &I,
    order: &[usize],
    keyed: &[KeyedIndex],
    depth: usize,
    assignment: &mut Vec<NodeId>,
    used: &mut Vec<NodeId>,
    used_vars: &mut Vec<VarId>,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    if depth == order.len() {
        return f(assignment) == Flow::Continue;
    }
    let ci = order[depth];
    let table = inputs.table(ci);
    let vars = inputs.vars(ci);
    let perm = inputs.perm(ci);
    let ki = &keyed[depth];
    // Equi-join probe: only the contiguous group of rows agreeing with
    // the assignment on every key column; no key = the full table.
    let (group, full) = if ki.cols.is_empty() {
        (&[][..], table.len())
    } else {
        let lo = ki.rows.partition_point(|&r| {
            cmp_key_to_assignment(table, perm, vars, &ki.cols, r, assignment) == Ordering::Less
        });
        let len = ki.rows[lo..].partition_point(|&r| {
            cmp_key_to_assignment(table, perm, vars, &ki.cols, r, assignment) == Ordering::Equal
        });
        (&ki.rows[lo..lo + len], 0)
    };
    'next_match: for r in (0..full).chain(group.iter().map(|&r| r as usize)) {
        let row = table.row(r);
        let placed0 = used.len();
        for (j, &var) in vars.iter().enumerate() {
            let phys = match perm {
                None => j,
                Some(p) => p[j] as usize,
            };
            let node = row[phys];
            let slot = assignment[var.index()];
            if slot != NodeId(u32::MAX) {
                // Shared variable: the row must agree with the value an
                // earlier input placed.
                if slot != node {
                    unwind(assignment, used, used_vars, placed0);
                    continue 'next_match;
                }
            } else if used.contains(&node) {
                // Fresh variable: matches are injective, so the node
                // must not repeat.
                unwind(assignment, used, used_vars, placed0);
                continue 'next_match;
            } else {
                assignment[var.index()] = node;
                used.push(node);
                used_vars.push(var);
            }
        }
        let go_on = rec(
            inputs,
            order,
            keyed,
            depth + 1,
            assignment,
            used,
            used_vars,
            f,
        );
        unwind(assignment, used, used_vars, placed0);
        if !go_on {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(arity: usize, rows: &[&[NodeId]]) -> MatchTable {
        let mut t = MatchTable::new(arity);
        for r in rows {
            t.push_row(r);
        }
        t
    }

    fn collect(components: &[ComponentTable], total: usize) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut scratch = JoinScratch::new();
        join_tables(components, total, &mut scratch, &mut |a| {
            out.push(a.to_vec());
            Flow::Continue
        });
        out
    }

    #[test]
    fn two_singleton_components_disjoint_pairs() {
        // Component A: var 0 over {n0, n1}; component B: var 1 over {n0, n1}.
        let ta = table(1, &[&[NodeId(0)], &[NodeId(1)]]);
        let tb = table(1, &[&[NodeId(0)], &[NodeId(1)]]);
        let comps = [
            ComponentTable {
                vars: &[VarId(0)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1)],
                table: &tb,
                perm: None,
            },
        ];
        let out = collect(&comps, 2);
        // 2×2 minus the 2 overlapping combinations.
        assert_eq!(out.len(), 2);
        for a in &out {
            assert_ne!(a[0], a[1]);
        }
    }

    #[test]
    fn empty_component_short_circuits() {
        let ta = table(1, &[&[NodeId(0)]]);
        let tb = table(1, &[]);
        let comps = [
            ComponentTable {
                vars: &[VarId(0)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1)],
                table: &tb,
                perm: None,
            },
        ];
        assert!(collect(&comps, 2).is_empty());
    }

    #[test]
    fn break_stops_enumeration() {
        let t = table(1, &[&[NodeId(0)], &[NodeId(1)], &[NodeId(2)]]);
        let comps = [ComponentTable {
            vars: &[VarId(0)],
            table: &t,
            perm: None,
        }];
        let mut n = 0;
        let mut scratch = JoinScratch::new();
        let complete = join_tables(comps.as_slice(), 1, &mut scratch, &mut |_| {
            n += 1;
            Flow::Break
        });
        assert!(!complete);
        assert_eq!(n, 1);
    }

    #[test]
    fn assignment_indexed_by_original_vars() {
        // Component over original vars (2, 0); another over (1,).
        let ta = table(2, &[&[NodeId(10), NodeId(11)]]);
        let tb = table(1, &[&[NodeId(12)]]);
        let comps = [
            ComponentTable {
                vars: &[VarId(2), VarId(0)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1)],
                table: &tb,
                perm: None,
            },
        ];
        let out = collect(&comps, 3);
        assert_eq!(out, vec![vec![NodeId(11), NodeId(12), NodeId(10)]]);
    }

    #[test]
    fn permuted_view_joins_like_materialized_rows() {
        // Physical rows in representative order (rep0, rep1); the twin
        // component's logical columns read (rep1, rep0).
        let t = table(2, &[&[NodeId(1), NodeId(2)], &[NodeId(3), NodeId(4)]]);
        let perm = [1u32, 0];
        let comps = [ComponentTable {
            vars: &[VarId(0), VarId(1)],
            table: &t,
            perm: Some(&perm),
        }];
        let out = collect(&comps, 2);
        assert_eq!(
            out,
            vec![vec![NodeId(2), NodeId(1)], vec![NodeId(4), NodeId(3)],]
        );
    }

    #[test]
    fn shared_variables_equi_join() {
        // Two "bags" of one decomposed component sharing var 1: rows
        // combine only when they agree on the overlap.
        let ta = table(
            2,
            &[
                &[NodeId(0), NodeId(1)],
                &[NodeId(0), NodeId(2)],
                &[NodeId(3), NodeId(2)],
            ],
        );
        let tb = table(2, &[&[NodeId(1), NodeId(9)], &[NodeId(2), NodeId(8)]]);
        let comps = [
            ComponentTable {
                vars: &[VarId(0), VarId(1)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1), VarId(2)],
                table: &tb,
                perm: None,
            },
        ];
        let mut out = collect(&comps, 3);
        out.sort();
        assert_eq!(
            out,
            vec![
                vec![NodeId(0), NodeId(1), NodeId(9)],
                vec![NodeId(0), NodeId(2), NodeId(8)],
                vec![NodeId(3), NodeId(2), NodeId(8)],
            ]
        );
    }

    #[test]
    fn shared_join_still_enforces_injectivity_on_fresh_vars() {
        // Bags agree on var 1 = n5, but bag B's fresh var 2 reuses bag
        // A's node n0 — rejected (matches are injective).
        let ta = table(2, &[&[NodeId(0), NodeId(5)]]);
        let tb = table(2, &[&[NodeId(5), NodeId(0)], &[NodeId(5), NodeId(7)]]);
        let comps = [
            ComponentTable {
                vars: &[VarId(0), VarId(1)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1), VarId(2)],
                table: &tb,
                perm: None,
            },
        ];
        let out = collect(&comps, 3);
        assert_eq!(out, vec![vec![NodeId(0), NodeId(5), NodeId(7)]]);
    }

    #[test]
    fn shared_join_through_permutation() {
        // Bag B reads its logical columns (var1, var2) through the
        // permutation [1, 0] of physical rows stored as (var2, var1).
        let ta = table(2, &[&[NodeId(0), NodeId(5)]]);
        let tb = table(2, &[&[NodeId(7), NodeId(5)], &[NodeId(7), NodeId(6)]]);
        let perm = [1u32, 0];
        let comps = [
            ComponentTable {
                vars: &[VarId(0), VarId(1)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1), VarId(2)],
                table: &tb,
                perm: Some(&perm),
            },
        ];
        let out = collect(&comps, 3);
        assert_eq!(out, vec![vec![NodeId(0), NodeId(5), NodeId(7)]]);
    }

    #[test]
    fn scratch_is_reusable_across_joins() {
        let t = table(1, &[&[NodeId(0)], &[NodeId(1)]]);
        let comps = [ComponentTable {
            vars: &[VarId(0)],
            table: &t,
            perm: None,
        }];
        let mut scratch = JoinScratch::new();
        for _ in 0..3 {
            let mut n = 0;
            join_tables(comps.as_slice(), 1, &mut scratch, &mut |_| {
                n += 1;
                Flow::Continue
            });
            assert_eq!(n, 2);
        }
    }
}
