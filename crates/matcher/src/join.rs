//! Joining per-component matches of a disconnected pattern.
//!
//! A match of `Q` with components `(Q_1, …, Q_k)` is a choice of one
//! match per component whose images are pairwise node-disjoint (the
//! paper's `h` is a bijection onto the match's subgraph, hence
//! injective over all of `x̄`). The join enumerates the disjoint
//! combinations in a streaming fashion, smallest component match-list
//! first so dead ends are pruned early.

use gfd_graph::NodeId;
use gfd_pattern::VarId;

use crate::types::Flow;

/// Per-component enumeration input: the matches of component `i`
/// (component-local variable order) and the original pattern variable
/// of each local variable.
pub struct ComponentMatches {
    /// `vars[j]` is the original variable of local variable `j`.
    pub vars: Vec<VarId>,
    /// Each entry is one match, indexed by local variable.
    pub matches: Vec<Vec<NodeId>>,
}

/// Streams every disjoint combination of component matches as a full
/// assignment (indexed by original variable id, length `total_vars`).
/// Stops early if `f` returns [`Flow::Break`]; returns `true` if the
/// enumeration ran to completion.
pub fn join_components(
    components: &[ComponentMatches],
    total_vars: usize,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    if components.iter().any(|c| c.matches.is_empty()) {
        return true; // no matches at all — trivially complete
    }
    // Order components by ascending match count for early pruning.
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by_key(|&i| components[i].matches.len());

    let mut assignment = vec![NodeId(u32::MAX); total_vars];
    let mut used: Vec<NodeId> = Vec::new();
    rec(components, &order, 0, &mut assignment, &mut used, f)
}

fn rec(
    components: &[ComponentMatches],
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<NodeId>,
    used: &mut Vec<NodeId>,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    if depth == order.len() {
        return f(assignment) == Flow::Continue;
    }
    let comp = &components[order[depth]];
    'next_match: for m in &comp.matches {
        // Disjointness against all previously placed components.
        for &node in m {
            if used.contains(&node) {
                continue 'next_match;
            }
        }
        for (j, &node) in m.iter().enumerate() {
            assignment[comp.vars[j].index()] = node;
            used.push(node);
        }
        let go_on = rec(components, order, depth + 1, assignment, used, f);
        for &var in &comp.vars {
            assignment[var.index()] = NodeId(u32::MAX);
        }
        used.truncate(used.len() - m.len());
        if !go_on {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(components: &[ComponentMatches], total: usize) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        join_components(components, total, &mut |a| {
            out.push(a.to_vec());
            Flow::Continue
        });
        out
    }

    #[test]
    fn two_singleton_components_disjoint_pairs() {
        // Component A: var 0 over {n0, n1}; component B: var 1 over {n0, n1}.
        let comps = vec![
            ComponentMatches {
                vars: vec![VarId(0)],
                matches: vec![vec![NodeId(0)], vec![NodeId(1)]],
            },
            ComponentMatches {
                vars: vec![VarId(1)],
                matches: vec![vec![NodeId(0)], vec![NodeId(1)]],
            },
        ];
        let out = collect(&comps, 2);
        // 2×2 minus the 2 overlapping combinations.
        assert_eq!(out.len(), 2);
        for a in &out {
            assert_ne!(a[0], a[1]);
        }
    }

    #[test]
    fn empty_component_short_circuits() {
        let comps = vec![
            ComponentMatches {
                vars: vec![VarId(0)],
                matches: vec![vec![NodeId(0)]],
            },
            ComponentMatches {
                vars: vec![VarId(1)],
                matches: vec![],
            },
        ];
        assert!(collect(&comps, 2).is_empty());
    }

    #[test]
    fn break_stops_enumeration() {
        let comps = vec![ComponentMatches {
            vars: vec![VarId(0)],
            matches: vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(2)]],
        }];
        let mut n = 0;
        let complete = join_components(&comps, 1, &mut |_| {
            n += 1;
            Flow::Break
        });
        assert!(!complete);
        assert_eq!(n, 1);
    }

    #[test]
    fn assignment_indexed_by_original_vars() {
        // Component over original vars (2, 0); another over (1,).
        let comps = vec![
            ComponentMatches {
                vars: vec![VarId(2), VarId(0)],
                matches: vec![vec![NodeId(10), NodeId(11)]],
            },
            ComponentMatches {
                vars: vec![VarId(1)],
                matches: vec![vec![NodeId(12)]],
            },
        ];
        let out = collect(&comps, 3);
        assert_eq!(out, vec![vec![NodeId(11), NodeId(12), NodeId(10)]]);
    }
}
