//! Joining per-component matches of a disconnected pattern.
//!
//! A match of `Q` with components `(Q_1, …, Q_k)` is a choice of one
//! match per component whose images are pairwise node-disjoint (the
//! paper's `h` is a bijection onto the match's subgraph, hence
//! injective over all of `x̄`). The join enumerates the disjoint
//! combinations in a streaming fashion, smallest component match-list
//! first so dead ends are pruned early.
//!
//! Component match sets arrive as flat [`MatchTable`]s read through
//! optional column permutations (the [`crate::table`] view contract):
//! the join streams directly over table rows — no per-match `Vec`s are
//! ever materialized, and a cached table reused across isomorphic
//! components is joined in place through its permutation. All
//! backtracking state lives in a caller-owned [`JoinScratch`], so a
//! warm caller joins with zero heap allocation.

use gfd_graph::NodeId;
use gfd_pattern::VarId;

use crate::table::MatchTable;
use crate::types::Flow;

/// The join's view of its inputs: `count` components, each a flat
/// table of matches plus the original pattern variable of every
/// logical column. Implemented by slices of [`ComponentTable`] and by
/// the unit executor's zero-allocation adapter in `gfd-parallel`.
pub trait JoinInputs {
    /// Number of components.
    fn count(&self) -> usize;
    /// `vars(i)[j]` is the original variable of component `i`'s
    /// logical column `j`.
    fn vars(&self, i: usize) -> &[VarId];
    /// Component `i`'s match table (physical column order).
    fn table(&self, i: usize) -> &MatchTable;
    /// Component `i`'s column permutation (logical `j` reads physical
    /// `perm[j]`); `None` = identity. Must be a bijection — see the
    /// [`crate::table`] contract.
    fn perm(&self, _i: usize) -> Option<&[u32]> {
        None
    }
}

/// One component's join input borrowing a table directly — the
/// convenient concrete form for callers that own their tables.
#[derive(Clone, Copy)]
pub struct ComponentTable<'a> {
    /// Original pattern variable of each logical column.
    pub vars: &'a [VarId],
    /// The match table.
    pub table: &'a MatchTable,
    /// Optional column permutation (see [`crate::table`]).
    pub perm: Option<&'a [u32]>,
}

impl JoinInputs for [ComponentTable<'_>] {
    fn count(&self) -> usize {
        self.len()
    }
    fn vars(&self, i: usize) -> &[VarId] {
        self[i].vars
    }
    fn table(&self, i: usize) -> &MatchTable {
        self[i].table
    }
    fn perm(&self, i: usize) -> Option<&[u32]> {
        self[i].perm
    }
}

/// Reusable backtracking state for [`join_tables`]: component order,
/// the assignment under construction, and the disjointness set. A
/// caller that keeps one scratch across joins performs no steady-state
/// allocation.
#[derive(Debug, Default)]
pub struct JoinScratch {
    order: Vec<usize>,
    assignment: Vec<NodeId>,
    used: Vec<NodeId>,
}

impl JoinScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Streams every disjoint combination of component matches as a full
/// assignment (indexed by original variable id, length `total_vars`).
/// Stops early if `f` returns [`Flow::Break`]; returns `true` if the
/// enumeration ran to completion.
pub fn join_tables<I: JoinInputs + ?Sized>(
    inputs: &I,
    total_vars: usize,
    scratch: &mut JoinScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    let k = inputs.count();
    for i in 0..k {
        if inputs.table(i).is_empty() {
            return true; // no matches at all — trivially complete
        }
    }
    let JoinScratch {
        order,
        assignment,
        used,
    } = scratch;
    // Order components by ascending match count for early pruning.
    order.clear();
    order.extend(0..k);
    order.sort_unstable_by_key(|&i| inputs.table(i).len());

    assignment.clear();
    assignment.resize(total_vars, NodeId(u32::MAX));
    used.clear();
    rec(inputs, order, 0, assignment, used, f)
}

fn rec<I: JoinInputs + ?Sized>(
    inputs: &I,
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<NodeId>,
    used: &mut Vec<NodeId>,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    if depth == order.len() {
        return f(assignment) == Flow::Continue;
    }
    let ci = order[depth];
    let table = inputs.table(ci);
    let vars = inputs.vars(ci);
    let perm = inputs.perm(ci);
    'next_match: for r in 0..table.len() {
        let row = table.row(r);
        // Disjointness against all previously placed components. The
        // permutation is a bijection, so the physical row holds the
        // same node set as the logical one — scan it directly.
        for &node in row {
            if used.contains(&node) {
                continue 'next_match;
            }
        }
        match perm {
            None => {
                for (j, &node) in row.iter().enumerate() {
                    assignment[vars[j].index()] = node;
                }
            }
            Some(p) => {
                for (j, &phys) in p.iter().enumerate() {
                    assignment[vars[j].index()] = row[phys as usize];
                }
            }
        }
        used.extend_from_slice(row);
        let go_on = rec(inputs, order, depth + 1, assignment, used, f);
        for &var in vars {
            assignment[var.index()] = NodeId(u32::MAX);
        }
        used.truncate(used.len() - row.len());
        if !go_on {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(arity: usize, rows: &[&[NodeId]]) -> MatchTable {
        let mut t = MatchTable::new(arity);
        for r in rows {
            t.push_row(r);
        }
        t
    }

    fn collect(components: &[ComponentTable], total: usize) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut scratch = JoinScratch::new();
        join_tables(components, total, &mut scratch, &mut |a| {
            out.push(a.to_vec());
            Flow::Continue
        });
        out
    }

    #[test]
    fn two_singleton_components_disjoint_pairs() {
        // Component A: var 0 over {n0, n1}; component B: var 1 over {n0, n1}.
        let ta = table(1, &[&[NodeId(0)], &[NodeId(1)]]);
        let tb = table(1, &[&[NodeId(0)], &[NodeId(1)]]);
        let comps = [
            ComponentTable {
                vars: &[VarId(0)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1)],
                table: &tb,
                perm: None,
            },
        ];
        let out = collect(&comps, 2);
        // 2×2 minus the 2 overlapping combinations.
        assert_eq!(out.len(), 2);
        for a in &out {
            assert_ne!(a[0], a[1]);
        }
    }

    #[test]
    fn empty_component_short_circuits() {
        let ta = table(1, &[&[NodeId(0)]]);
        let tb = table(1, &[]);
        let comps = [
            ComponentTable {
                vars: &[VarId(0)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1)],
                table: &tb,
                perm: None,
            },
        ];
        assert!(collect(&comps, 2).is_empty());
    }

    #[test]
    fn break_stops_enumeration() {
        let t = table(1, &[&[NodeId(0)], &[NodeId(1)], &[NodeId(2)]]);
        let comps = [ComponentTable {
            vars: &[VarId(0)],
            table: &t,
            perm: None,
        }];
        let mut n = 0;
        let mut scratch = JoinScratch::new();
        let complete = join_tables(comps.as_slice(), 1, &mut scratch, &mut |_| {
            n += 1;
            Flow::Break
        });
        assert!(!complete);
        assert_eq!(n, 1);
    }

    #[test]
    fn assignment_indexed_by_original_vars() {
        // Component over original vars (2, 0); another over (1,).
        let ta = table(2, &[&[NodeId(10), NodeId(11)]]);
        let tb = table(1, &[&[NodeId(12)]]);
        let comps = [
            ComponentTable {
                vars: &[VarId(2), VarId(0)],
                table: &ta,
                perm: None,
            },
            ComponentTable {
                vars: &[VarId(1)],
                table: &tb,
                perm: None,
            },
        ];
        let out = collect(&comps, 3);
        assert_eq!(out, vec![vec![NodeId(11), NodeId(12), NodeId(10)]]);
    }

    #[test]
    fn permuted_view_joins_like_materialized_rows() {
        // Physical rows in representative order (rep0, rep1); the twin
        // component's logical columns read (rep1, rep0).
        let t = table(2, &[&[NodeId(1), NodeId(2)], &[NodeId(3), NodeId(4)]]);
        let perm = [1u32, 0];
        let comps = [ComponentTable {
            vars: &[VarId(0), VarId(1)],
            table: &t,
            perm: Some(&perm),
        }];
        let out = collect(&comps, 2);
        assert_eq!(
            out,
            vec![vec![NodeId(2), NodeId(1)], vec![NodeId(4), NodeId(3)],]
        );
    }

    #[test]
    fn scratch_is_reusable_across_joins() {
        let t = table(1, &[&[NodeId(0)], &[NodeId(1)]]);
        let comps = [ComponentTable {
            vars: &[VarId(0)],
            table: &t,
            perm: None,
        }];
        let mut scratch = JoinScratch::new();
        for _ in 0..3 {
            let mut n = 0;
            join_tables(comps.as_slice(), 1, &mut scratch, &mut |_| {
                n += 1;
                Flow::Continue
            });
            assert_eq!(n, 2);
        }
    }
}
