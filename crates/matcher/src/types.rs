//! Match representation and search options.

use gfd_graph::{NodeId, NodeSet};
use gfd_pattern::VarId;

/// A match `h(x̄)`: one data node per pattern variable, indexed by
/// variable id.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Match(pub Vec<NodeId>);

impl Match {
    /// The image `h(x)` of a variable.
    #[inline]
    pub fn get(&self, var: VarId) -> NodeId {
        self.0[var.index()]
    }

    /// The images in variable order (the vector `h(x̄)` of the paper).
    pub fn nodes(&self) -> &[NodeId] {
        &self.0
    }
}

/// A cap on search effort, so that adversarial inputs cannot hang the
/// sequential validator (the paper's `detVio` is exponential; Exp-1
/// reports it failing to terminate).
#[derive(Clone, Copy, Debug)]
pub struct SearchBudget {
    /// Stop after this many matches have been emitted.
    pub max_matches: Option<usize>,
    /// Stop after this many backtracking steps.
    pub max_steps: Option<u64>,
}

impl SearchBudget {
    /// No limits.
    pub const UNLIMITED: SearchBudget = SearchBudget {
        max_matches: None,
        max_steps: None,
    };

    /// Limit on emitted matches only.
    pub fn matches(n: usize) -> Self {
        SearchBudget {
            max_matches: Some(n),
            max_steps: None,
        }
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::UNLIMITED
    }
}

/// When to run the dual-simulation *filter* stage before the exact
/// backtracking *refine* stage of an enumeration.
///
/// Simulation costs one pass over the pattern's label extents and
/// their adjacency, and pays off when the search would otherwise scan
/// large candidate pools; [`SimFilter::Auto`] applies a cheap size
/// heuristic per component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimFilter {
    /// Simulate when the component's smallest seed pool is large
    /// enough for filtering to pay for itself.
    #[default]
    Auto,
    /// Always simulate (useful for tests and adversarial patterns).
    Always,
    /// Never simulate (raw backtracking, the pre-filter behavior).
    Never,
}

/// Options steering a match enumeration.
#[derive(Clone, Debug, Default)]
pub struct MatchOptions {
    /// If set, `h` may only use nodes inside this set (data-block /
    /// fragment-local search).
    pub restriction: Option<NodeSet>,
    /// Pre-pinned assignments `h(var) = node` (pivot anchoring).
    pub pins: Vec<(VarId, NodeId)>,
    /// Effort cap.
    pub budget: SearchBudget,
    /// Simulation filtering policy.
    pub sim: SimFilter,
}

impl MatchOptions {
    /// Unrestricted, unpinned, unlimited enumeration.
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Search restricted to a data block.
    pub fn within(set: NodeSet) -> Self {
        MatchOptions {
            restriction: Some(set),
            ..Self::default()
        }
    }

    /// Adds a pin `h(var) = node`.
    pub fn pin(mut self, var: VarId, node: NodeId) -> Self {
        self.pins.push((var, node));
        self
    }

    /// Sets the budget.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the simulation-filter policy.
    pub fn with_sim_filter(mut self, sim: SimFilter) -> Self {
        self.sim = sim;
        self
    }
}

/// Flow control for streaming enumeration callbacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep enumerating.
    Continue,
    /// Stop the whole search.
    Break,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_accessors() {
        let m = Match(vec![NodeId(5), NodeId(2)]);
        assert_eq!(m.get(VarId(0)), NodeId(5));
        assert_eq!(m.get(VarId(1)), NodeId(2));
        assert_eq!(m.nodes().len(), 2);
    }

    #[test]
    fn options_builders() {
        let opts = MatchOptions::unrestricted()
            .pin(VarId(0), NodeId(3))
            .with_budget(SearchBudget::matches(10));
        assert_eq!(opts.pins, vec![(VarId(0), NodeId(3))]);
        assert_eq!(opts.budget.max_matches, Some(10));
        assert!(opts.restriction.is_none());
    }
}
