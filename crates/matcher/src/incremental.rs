//! Incremental maintenance of a [`CandidateSpace`] under graph edits.
//!
//! `Graph::thaw`/`edit` used to invalidate every simulation result:
//! each edit recomputed dual simulation from scratch even when it
//! touched one edge. The worklist fixpoint's per-edge support counters
//! (see [`crate::simulation::SimCore`]) are exactly the bookkeeping an
//! incremental algorithm needs, so [`IncrementalSpace`] keeps them
//! alive across edits and *repairs* the relation against a recorded
//! [`GraphDelta`] instead:
//!
//! * **deletions** drive the existing worklist — each removed graph
//!   edge decrements the support counters of its (pattern-edge,
//!   endpoint) pairs, and a counter hitting zero cascades through
//!   [`SimCore::drain`] in `O(affected)`, exactly like a from-scratch
//!   removal;
//! * **insertions** (and relabelings/new nodes) can only *grow* the
//!   relation — dual simulation is monotone in the edge set. Every
//!   pair that can newly enter the relation is product-reachable from
//!   a delta site, so the repair re-admits an optimistic *frontier*
//!   (a BFS over seed-admissible non-members starting at the touched
//!   label extents), recomputes support only for the frontier, and
//!   lets the same worklist prune the over-approximation back to the
//!   maximal fixpoint.
//!
//! The repaired relation is *identical* to `dual_simulation` on the
//! edited graph (the oracle property test in
//! `crates/matcher/tests/prop_incremental.rs` replays random 50-step
//! edit scripts against the from-scratch result), but the work done is
//! proportional to the affected neighborhood — the update-time
//! discipline of Berkholz et al.'s FO-query maintenance under updates,
//! made addressable here by CSR label extents and the counters.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use gfd_graph::{Graph, GraphDelta, NodeId, NodeSet};
use gfd_pattern::{Pattern, VarId};

use crate::simulation::{
    admitted_in, admitted_out, edge_adjacency, harvest_space, simulate_core, CandidateSpace,
    Direction, SimCore,
};

/// What one [`IncrementalSpace::apply`] changed in the relation.
#[derive(Clone, Debug, Default)]
pub struct RepairReport {
    /// Pairs `(var, node)` that entered the relation.
    pub added: Vec<(VarId, NodeId)>,
    /// Pairs `(var, node)` that left the relation.
    pub removed: Vec<(VarId, NodeId)>,
    /// True when some per-pattern-edge candidate adjacency was rebuilt
    /// — its runs may differ even when no pair entered or left the
    /// relation (e.g. a new graph edge between two surviving
    /// candidates). Consumers that mirror the *full* space (the
    /// transported caches of `gfd_match::ClassRegistry`) must refresh
    /// on this; consumers that only read candidate sets (pivot
    /// feasibility) can key off [`is_unchanged`](Self::is_unchanged).
    pub adjacency_changed: bool,
}

impl RepairReport {
    /// True if the repair left every candidate set unchanged.
    pub fn is_unchanged(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// A [`CandidateSpace`] that stays valid across graph edits: the
/// worklist state survives between calls, and [`apply`] repairs it
/// against a [`GraphDelta`] in time proportional to the affected
/// neighborhood.
///
/// ```
/// use gfd_graph::GraphBuilder;
/// use gfd_match::{dual_simulation, IncrementalSpace};
/// use gfd_pattern::PatternBuilder;
///
/// let mut b = GraphBuilder::with_fresh_vocab();
/// let a = b.add_node_labeled("a");
/// let c = b.add_node_labeled("b");
/// b.add_edge_labeled(a, c, "e");
/// let g = b.freeze();
/// let mut p = PatternBuilder::new(g.vocab().clone());
/// let x = p.node("x", "a");
/// let y = p.node("y", "b");
/// p.edge(x, y, "e");
/// let q = p.build();
///
/// let mut inc = IncrementalSpace::new(&q, &g, None);
/// let (g2, delta) = g.edit_with_delta(|b| {
///     b.remove_edge_labeled(a, c, "e");
/// });
/// inc.apply(&g2, &delta);
/// assert_eq!(inc.space().sets, dual_simulation(&q, &g2, None).sets);
/// ```
///
/// [`apply`]: IncrementalSpace::apply
pub struct IncrementalSpace {
    q: Pattern,
    scope: Option<NodeSet>,
    core: SimCore,
    /// The space behind an `Arc`, so registry consumers can hold the
    /// current snapshot across later repairs: a repair goes through
    /// [`Arc::make_mut`], which repairs in place when nobody else
    /// holds the `Arc` and copies-on-write when someone does — a held
    /// snapshot never mutates under its reader.
    space: Arc<CandidateSpace>,
}

/// Admits `(v, u)` into the tentative frontier if it is a
/// seed-admissible non-member not yet enqueued.
#[allow(clippy::too_many_arguments)]
fn consider(
    q: &Pattern,
    g: &Graph,
    scope: Option<&NodeSet>,
    member: &[Vec<bool>],
    tent: &mut HashSet<(u32, u32)>,
    tqueue: &mut VecDeque<(VarId, NodeId)>,
    v: VarId,
    u: NodeId,
) {
    if member[v.index()][u.index()]
        || !q.label(v).admits(g.label(u))
        || scope.is_some_and(|r| !r.contains(u))
    {
        return;
    }
    if tent.insert((v.0, u.0)) {
        tqueue.push_back((v, u));
    }
}

impl IncrementalSpace {
    /// Runs the from-scratch fixpoint once, retaining the worklist
    /// state for later repairs. `scope` (block-/fragment-local
    /// simulation) is fixed for the lifetime of the space.
    pub fn new(q: &Pattern, g: &Graph, scope: Option<&NodeSet>) -> Self {
        let (core, sets) = simulate_core(q, g, scope);
        let space = harvest_space(q, g, &core, sets);
        IncrementalSpace {
            q: q.clone(),
            scope: scope.cloned(),
            core,
            space: Arc::new(space),
        }
    }

    /// The pattern this space simulates.
    pub fn pattern(&self) -> &Pattern {
        &self.q
    }

    /// The current (repaired) candidate space.
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// The current space as a shared handle: the returned `Arc` stays
    /// valid (and immutable) across later repairs — a repair that
    /// finds the `Arc` shared copies-on-write instead of mutating the
    /// held snapshot.
    pub fn space_arc(&self) -> Arc<CandidateSpace> {
        Arc::clone(&self.space)
    }

    /// The shared space handle by reference, for refcount probes (the
    /// registry's pin-aware eviction).
    pub(crate) fn space_arc_ref(&self) -> &Arc<CandidateSpace> {
        &self.space
    }

    /// True if `u` currently simulates `v`.
    pub fn contains(&self, v: VarId, u: NodeId) -> bool {
        self.space.sets[v.index()].binary_search(&u).is_ok()
    }

    /// Repairs the relation against `delta`, where `g` is the edited
    /// snapshot and `delta` the recorded difference from the snapshot
    /// this space was last synchronized with. Normalizes the delta
    /// first; callers that already hold a normalized delta (anything
    /// produced by
    /// [`Graph::edit_with_delta`](gfd_graph::Graph::edit_with_delta)
    /// or [`GraphDelta::normalize`]) should use
    /// [`apply_normalized`](IncrementalSpace::apply_normalized) and
    /// skip the re-normalization clone. Returns which pairs
    /// entered/left the relation.
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) -> RepairReport {
        self.apply_normalized(g, &delta.clone().normalize())
    }

    /// [`apply`](IncrementalSpace::apply) for a delta that is already
    /// in normalized form — the counter arithmetic relies on the
    /// normalization invariants (net edge ops, coalesced label
    /// changes), so passing a raw mutation log here corrupts the
    /// relation.
    pub fn apply_normalized(&mut self, g: &Graph, d: &GraphDelta) -> RepairReport {
        let Self {
            ref q,
            ref scope,
            ref mut core,
            space: ref mut space_arc,
        } = *self;
        // In-place repair when nobody shares the space; copy-on-write
        // when a consumer still holds the pre-repair snapshot.
        let space = Arc::make_mut(space_arc);
        let scope = scope.as_ref();
        let nnodes = g.node_count();
        let nvars = q.node_count();

        // Phase 0 — make room for nodes added at the end of the id
        // space (ids are stable across refreeze).
        for row in &mut core.member {
            row.resize(nnodes, false);
        }
        for row in core.fwd.iter_mut().chain(core.bwd.iter_mut()) {
            row.resize(nnodes, 0);
        }

        // Phase 1 — optimistic re-admission frontier: every pair that
        // can newly enter the (monotone-growing) relation is product-
        // reachable from an insertion site, so BFS from those sites
        // over seed-admissible non-members.
        let mut tent: HashSet<(u32, u32)> = HashSet::new();
        let mut tqueue: VecDeque<(VarId, NodeId)> = VecDeque::new();
        let mut forced: Vec<(VarId, NodeId)> = Vec::new();
        for &(u, _) in &d.added_nodes {
            for v in q.vars() {
                consider(q, g, scope, &core.member, &mut tent, &mut tqueue, v, u);
            }
        }
        for c in &d.label_changes {
            for v in q.vars() {
                if core.member[v.index()][c.node.index()] {
                    if !q.label(v).admits(c.new) {
                        // The relabeled node no longer seeds v.
                        forced.push((v, c.node));
                    }
                } else {
                    consider(q, g, scope, &core.member, &mut tent, &mut tqueue, v, c.node);
                }
            }
        }
        for e in &d.added_edges {
            for pe in q.edges() {
                if pe.label.admits(e.label) {
                    consider(
                        q,
                        g,
                        scope,
                        &core.member,
                        &mut tent,
                        &mut tqueue,
                        pe.src,
                        e.src,
                    );
                    consider(
                        q,
                        g,
                        scope,
                        &core.member,
                        &mut tent,
                        &mut tqueue,
                        pe.dst,
                        e.dst,
                    );
                }
            }
        }
        let mut tentative: Vec<(VarId, NodeId)> = Vec::new();
        while let Some((v, u)) = tqueue.pop_front() {
            tentative.push((v, u));
            for pe in q.edges() {
                if pe.dst == v {
                    for a in admitted_in(g, u, pe.label) {
                        consider(
                            q,
                            g,
                            scope,
                            &core.member,
                            &mut tent,
                            &mut tqueue,
                            pe.src,
                            a.node,
                        );
                    }
                }
                if pe.src == v {
                    for a in admitted_out(g, u, pe.label) {
                        consider(
                            q,
                            g,
                            scope,
                            &core.member,
                            &mut tent,
                            &mut tqueue,
                            pe.dst,
                            a.node,
                        );
                    }
                }
            }
        }

        // Phase 2 — deletions: decrement support of the (still
        // pre-commit) members on both sides of each removed edge.
        // Removals are only *collected* here; flags flip after every
        // counter is settled, so later drain decrements stay exact.
        let mut pending: Vec<(VarId, NodeId)> = Vec::new();
        for e in &d.removed_edges {
            for (ei, pe) in q.edges().iter().enumerate() {
                if pe.label.admits(e.label)
                    && core.member[pe.src.index()][e.src.index()]
                    && core.member[pe.dst.index()][e.dst.index()]
                {
                    let c = &mut core.fwd[ei][e.src.index()];
                    debug_assert!(*c > 0, "deleted edge was not counted (fwd)");
                    *c -= 1;
                    if *c == 0 {
                        pending.push((pe.src, e.src));
                    }
                    let c = &mut core.bwd[ei][e.dst.index()];
                    debug_assert!(*c > 0, "deleted edge was not counted (bwd)");
                    *c -= 1;
                    if *c == 0 {
                        pending.push((pe.dst, e.dst));
                    }
                }
            }
        }

        // Phase 3 — commit the frontier, then restore the counter
        // invariant for the enlarged membership: frontier pairs get
        // fresh counts over the edited graph; surviving old members
        // adjacent to the frontier (or to an inserted edge) gain the
        // new support units.
        for &(v, u) in &tentative {
            core.member[v.index()][u.index()] = true;
        }
        for &(v, u) in &tentative {
            for (ei, pe) in q.edges().iter().enumerate() {
                if pe.src == v {
                    core.fwd[ei][u.index()] = admitted_out(g, u, pe.label)
                        .iter()
                        .filter(|a| core.member[pe.dst.index()][a.node.index()])
                        .count() as u32;
                }
                if pe.dst == v {
                    core.bwd[ei][u.index()] = admitted_in(g, u, pe.label)
                        .iter()
                        .filter(|a| core.member[pe.src.index()][a.node.index()])
                        .count() as u32;
                }
            }
        }
        let is_tent = |v: VarId, u: NodeId| tent.contains(&(v.0, u.0));
        for e in &d.added_edges {
            for (ei, pe) in q.edges().iter().enumerate() {
                if pe.label.admits(e.label)
                    && core.member[pe.src.index()][e.src.index()]
                    && !is_tent(pe.src, e.src)
                    && core.member[pe.dst.index()][e.dst.index()]
                    && !is_tent(pe.dst, e.dst)
                {
                    core.fwd[ei][e.src.index()] += 1;
                    core.bwd[ei][e.dst.index()] += 1;
                }
            }
        }
        for &(v, u) in &tentative {
            for (ei, pe) in q.edges().iter().enumerate() {
                if pe.dst == v {
                    for a in admitted_in(g, u, pe.label) {
                        let t = a.node;
                        if core.member[pe.src.index()][t.index()] && !is_tent(pe.src, t) {
                            core.fwd[ei][t.index()] += 1;
                        }
                    }
                }
                if pe.src == v {
                    for a in admitted_out(g, u, pe.label) {
                        let w = a.node;
                        if core.member[pe.dst.index()][w.index()] && !is_tent(pe.dst, w) {
                            core.bwd[ei][w.index()] += 1;
                        }
                    }
                }
            }
        }

        // Phase 4 — schedule every removal (flags flip here, after all
        // counters are consistent) and drain the worklist to fixpoint.
        for (v, u) in forced {
            core.remove(v, u);
        }
        // Pending pairs zeroed by a deletion may have been *restored*
        // by a same-delta insertion in phase 3 (the rewire shape:
        // remove a node's only support edge, add a replacement), so
        // they — like the frontier — are removed only if some incident
        // edge still has no support against the settled counters.
        for (v, u) in pending.into_iter().chain(tentative.iter().copied()) {
            for (ei, pe) in q.edges().iter().enumerate() {
                if (pe.src == v && core.fwd[ei][u.index()] == 0)
                    || (pe.dst == v && core.bwd[ei][u.index()] == 0)
                {
                    core.remove(v, u);
                    break;
                }
            }
        }
        let mut removed_pairs = Vec::new();
        core.drain(q, g, Some(&mut removed_pairs));

        // Phase 5 — repair the sorted candidate sets and rebuild the
        // per-edge candidate adjacency of affected pattern edges only.
        let mut added_by_var: Vec<Vec<NodeId>> = vec![Vec::new(); nvars];
        let mut report = RepairReport::default();
        for &(v, u) in &tentative {
            if core.member[v.index()][u.index()] {
                added_by_var[v.index()].push(u);
                report.added.push((v, u));
            }
        }
        let mut dirty = vec![false; nvars];
        for &(v, u) in &removed_pairs {
            dirty[v.index()] = true;
            if !is_tent(v, u) {
                // Frontier pairs that failed the fixpoint were never
                // visible; only old members count as removed.
                report.removed.push((v, u));
            }
        }
        for (v, adds) in added_by_var.iter_mut().enumerate() {
            if !adds.is_empty() {
                dirty[v] = true;
                adds.sort_unstable();
            }
        }
        for v in 0..nvars {
            if !dirty[v] {
                continue;
            }
            let old = &space.sets[v];
            let adds = &added_by_var[v];
            let mut merged = Vec::with_capacity(old.len() + adds.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < old.len() || j < adds.len() {
                let take_add = j < adds.len() && (i >= old.len() || adds[j] < old[i]);
                if take_add {
                    merged.push(adds[j]);
                    j += 1;
                } else {
                    let u = old[i];
                    i += 1;
                    if core.member[v][u.index()] {
                        merged.push(u);
                    }
                }
            }
            space.sets[v] = merged;
        }
        for (ei, pe) in q.edges().iter().enumerate() {
            let affected = dirty[pe.src.index()]
                || dirty[pe.dst.index()]
                || d.added_edges.iter().chain(&d.removed_edges).any(|e| {
                    pe.label.admits(e.label)
                        && core.member[pe.src.index()][e.src.index()]
                        && core.member[pe.dst.index()][e.dst.index()]
                });
            if !affected {
                continue;
            }
            report.adjacency_changed = true;
            space.forward[ei] = edge_adjacency(
                g,
                &space.sets[pe.src.index()],
                &core.member[pe.dst.index()],
                pe.label,
                Direction::Out,
            );
            space.reverse[ei] = edge_adjacency(
                g,
                &space.sets[pe.dst.index()],
                &core.member[pe.src.index()],
                pe.label,
                Direction::In,
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::dual_simulation;
    use gfd_graph::GraphBuilder;
    use gfd_pattern::PatternBuilder;

    fn chain() -> (Graph, [NodeId; 6]) {
        // a1 -> b1 -> c1 ; a2 -> b2 (no c); orphan c2
        let mut b = GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        let c2 = b.add_node_labeled("c");
        b.add_edge_labeled(a1, b1, "e");
        b.add_edge_labeled(b1, c1, "e");
        b.add_edge_labeled(a2, b2, "e");
        (b.freeze(), [a1, b1, c1, a2, b2, c2])
    }

    fn chain_pattern(g: &Graph) -> Pattern {
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        let z = b.node("z", "c");
        b.edge(x, y, "e");
        b.edge(y, z, "e");
        b.build()
    }

    fn assert_matches_scratch(inc: &IncrementalSpace, g: &Graph) {
        let scratch = dual_simulation(inc.pattern(), g, None);
        assert_eq!(inc.space().sets, scratch.sets, "candidate sets diverged");
        for ei in 0..inc.pattern().edge_count() {
            assert_eq!(
                inc.space().forward[ei].offsets,
                scratch.forward[ei].offsets,
                "forward offsets of edge {ei}"
            );
            assert_eq!(
                inc.space().forward[ei].targets,
                scratch.forward[ei].targets,
                "forward targets of edge {ei}"
            );
            assert_eq!(
                inc.space().reverse[ei].offsets,
                scratch.reverse[ei].offsets,
                "reverse offsets of edge {ei}"
            );
            assert_eq!(
                inc.space().reverse[ei].targets,
                scratch.reverse[ei].targets,
                "reverse targets of edge {ei}"
            );
        }
    }

    #[test]
    fn deletion_cascades_removals() {
        let (g, [a1, b1, c1, ..]) = chain();
        let q = chain_pattern(&g);
        let mut inc = IncrementalSpace::new(&q, &g, None);
        assert_eq!(inc.space().sets, vec![vec![a1], vec![b1], vec![c1]]);
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(b1, c1, "e");
        });
        let report = inc.apply(&g2, &delta);
        // Killing the b1→c1 edge empties the whole relation.
        assert_eq!(report.removed.len(), 3);
        assert!(report.added.is_empty());
        assert!(inc.space().is_empty_anywhere());
        assert_matches_scratch(&inc, &g2);
    }

    #[test]
    fn insertion_readmits_candidates() {
        let (g, [_, _, _, a2, b2, c2]) = chain();
        let q = chain_pattern(&g);
        let mut inc = IncrementalSpace::new(&q, &g, None);
        // Completing the a2 chain re-admits a2, b2 and the orphan c2.
        let (g2, delta) = g.edit_with_delta(|b| {
            b.add_edge_labeled(b2, c2, "e");
        });
        let report = inc.apply(&g2, &delta);
        assert!(report.removed.is_empty());
        assert!(report.added.contains(&(VarId(0), a2)));
        assert!(report.added.contains(&(VarId(1), b2)));
        assert!(report.added.contains(&(VarId(2), c2)));
        assert_matches_scratch(&inc, &g2);
    }

    #[test]
    fn relabel_and_new_nodes_repair() {
        let (g, [_, b1, _, _, _, c2]) = chain();
        let q = chain_pattern(&g);
        let mut inc = IncrementalSpace::new(&q, &g, None);
        let (g2, delta) = g.edit_with_delta(|b| {
            // c1 stops being a c: the original chain dies…
            let c_label = b.vocab().intern("x");
            b.set_label(NodeId(2), c_label);
            // …but a fresh chain appears: a1 -> b1 -> c2 via new edge.
            b.add_edge_labeled(b1, c2, "e");
        });
        let report = inc.apply(&g2, &delta);
        assert!(!report.is_unchanged());
        assert_matches_scratch(&inc, &g2);
    }

    /// Regression (found by an external API drive): one delta that
    /// removes a node's only support edge AND inserts a replacement.
    /// The deletion zeroes the support counter — but the insertion
    /// restores it, so the node must survive the repair.
    #[test]
    fn rewire_within_one_delta_keeps_support() {
        let (g, [a1, b1, _, _, _, c2]) = chain();
        let q = chain_pattern(&g);
        let mut inc = IncrementalSpace::new(&q, &g, None);
        let (g2, delta) = g.edit_with_delta(|b| {
            // b1 loses its c-support edge but gains one to c2, and a1's
            // edge to b1 is rewired through a fresh b node to c2 too.
            b.remove_edge_labeled(b1, NodeId(2), "e");
            b.add_edge_labeled(b1, c2, "e");
            let b3 = b.add_node_labeled("b");
            b.add_edge_labeled(a1, b3, "e");
            b.add_edge_labeled(b3, c2, "e");
        });
        let report = inc.apply(&g2, &delta);
        assert!(inc.contains(VarId(0), a1), "a1 must keep its support");
        assert!(inc.contains(VarId(1), b1), "b1 was rewired, not orphaned");
        assert!(report.added.contains(&(VarId(2), c2)));
        assert_matches_scratch(&inc, &g2);
    }

    #[test]
    fn noop_delta_reports_unchanged() {
        let (g, _) = chain();
        let q = chain_pattern(&g);
        let mut inc = IncrementalSpace::new(&q, &g, None);
        let (g2, delta) = g.edit_with_delta(|_| {});
        let report = inc.apply(&g2, &delta);
        assert!(report.is_unchanged());
        assert_matches_scratch(&inc, &g2);
    }

    #[test]
    fn scoped_space_ignores_outside_growth() {
        let (g, [a1, b1, c1, _, b2, c2]) = chain();
        let q = chain_pattern(&g);
        let scope = NodeSet::from_vec(vec![a1, b1, c1]);
        let mut inc = IncrementalSpace::new(&q, &g, Some(&scope));
        let (g2, delta) = g.edit_with_delta(|b| {
            b.add_edge_labeled(b2, c2, "e");
        });
        let report = inc.apply(&g2, &delta);
        assert!(
            report.is_unchanged(),
            "growth outside the scope is invisible"
        );
        let scratch = dual_simulation(&q, &g2, Some(&scope));
        assert_eq!(inc.space().sets, scratch.sets);
    }
}
