//! Backtracking search for matches of one *connected* pattern
//! component in a data graph.
//!
//! The search is candidate-driven: after the first variable, every
//! variable is expanded from the adjacency of already-matched pattern
//! neighbors, so the search never scans the whole graph once it is
//! anchored — this is what makes pivoted work-unit processing local
//! (§5.2: matches are enumerated "by only accessing `G_z̄`").
//!
//! Refinement happens in two layers:
//!
//! * **pools are intersections** — a variable's candidate pool is the
//!   sorted-slice intersection of the CSR runs of *all* assigned
//!   pattern neighbors (merge or galloping via
//!   [`gfd_graph::intersect`]), not just the single smallest list;
//! * **pools are simulation-pruned** — when a [`CandidateSpace`] from
//!   [`crate::simulation::dual_simulation`] is attached, pools draw
//!   from its per-edge candidate adjacency, so every candidate already
//!   survives dual simulation (filter-and-refine).
//!
//! All pools are written into per-depth scratch buffers owned by the
//! search and reused across the whole enumeration — steady-state
//! candidate generation performs no heap allocation.

use gfd_graph::intersect::intersect_in_place;
use gfd_graph::{Adj, Graph, NodeId, NodeSet};
use gfd_pattern::{distinct_neighbors, PatLabel, Pattern, VarId};

use crate::simulation::CandidateSpace;
use crate::table::MatchTable;
use crate::types::Flow;

/// True if `g` has an edge `u → v` admitted by the pattern label.
#[inline]
pub(crate) fn edge_ok(g: &Graph, u: NodeId, v: NodeId, label: PatLabel) -> bool {
    match label {
        PatLabel::Sym(s) => g.has_edge(u, v, s),
        PatLabel::Wildcard => g.has_edge_any(u, v),
    }
}

/// Connectivity-aware static variable order: pinned variables first,
/// then always the unvisited variable with the most visited neighbors
/// (ties: smallest candidate count, then higher degree, then lower
/// id). `cand_counts` comes from the simulation when available; pass
/// `usize::MAX` entries to fall back to pure degree ordering.
///
/// The order is **fully deterministic**: every tie chain ends in the
/// stable secondary key `Reverse(v.0)` (variable ids are unique), so
/// two calls over the same inputs — across processes, thread
/// schedules, or repeated detection passes — always produce the same
/// order. Plan caches and regression baselines rely on this.
#[cfg(test)]
pub(crate) fn search_order(q: &Pattern, pinned: &[VarId], cand_counts: &[usize]) -> Vec<VarId> {
    let mut visited = Vec::new();
    let mut order = Vec::new();
    search_order_into(q, pinned, cand_counts, &mut visited, &mut order);
    order
}

/// [`search_order`] writing into caller-owned buffers (`visited` and
/// `order` are cleared first) — the allocation-free form the search
/// hot path uses via [`SearchScratch`].
pub(crate) fn search_order_into(
    q: &Pattern,
    pinned: &[VarId],
    cand_counts: &[usize],
    visited: &mut Vec<bool>,
    order: &mut Vec<VarId>,
) {
    let n = q.node_count();
    visited.clear();
    visited.resize(n, false);
    order.clear();
    for &p in pinned {
        if !visited[p.index()] {
            visited[p.index()] = true;
            order.push(p);
        }
    }
    while order.len() < n {
        let next = q
            .vars()
            .filter(|v| !visited[v.index()])
            .max_by_key(|&v| {
                let connected = q.neighbors(v).filter(|u| visited[u.index()]).count();
                (
                    connected,
                    std::cmp::Reverse(cand_counts[v.index()]),
                    q.degree(v),
                    std::cmp::Reverse(v.0),
                )
            })
            .expect("unvisited variable exists");
        visited[next.index()] = true;
        order.push(next);
    }
}

/// A sorted, duplicate-free candidate source to intersect.
#[derive(Clone, Copy)]
enum Source<'a> {
    /// A plain id list (simulation set, candidate-adjacency run,
    /// restriction slice).
    Ids(&'a [NodeId]),
    /// A single-label CSR run (sorted by node within the label).
    Run(&'a [Adj]),
}

impl Source<'_> {
    #[inline]
    fn len(&self) -> usize {
        match self {
            Source::Ids(s) => s.len(),
            Source::Run(r) => r.len(),
        }
    }
}

/// Sources are gathered into a stack batch of this size before
/// intersecting — no variable of a mined rule has anywhere near 16
/// constraining edges, and the fold below flushes correctly if one
/// does. Keeping the batch on the stack (instead of a heap `Vec`)
/// is what makes a warm counting loop genuinely allocation-free.
const MAX_SOURCES: usize = 16;

#[inline]
fn seed_pool(pool: &mut Vec<NodeId>, s: Source) {
    match s {
        Source::Ids(ids) => pool.extend_from_slice(ids),
        Source::Run(run) => pool.extend(run.iter().map(|a| a.node)),
    }
}

#[inline]
fn refine_pool(pool: &mut Vec<NodeId>, s: Source) {
    match s {
        Source::Ids(ids) => intersect_in_place(pool, ids, |&x| x),
        Source::Run(run) => intersect_in_place(pool, run, |a| a.node),
    }
}

/// Appends a source to the stack batch, flushing (intersecting into
/// the pool) when the batch is full.
#[inline]
fn push_source<'a>(
    pool: &mut Vec<NodeId>,
    srcs: &mut [Source<'a>; MAX_SOURCES],
    n: &mut usize,
    seeded: &mut bool,
    s: Source<'a>,
) {
    if *n == MAX_SOURCES {
        fold_sources(pool, &mut srcs[..], *seeded);
        *seeded = true;
        *n = 0;
    }
    srcs[*n] = s;
    *n += 1;
}

/// Intersects one batch of sources into the pool, ascending by size:
/// the first batch seeds from its smallest source, later batches (only
/// under pathological fan-in) refine pairwise.
fn fold_sources(pool: &mut Vec<NodeId>, srcs: &mut [Source], seeded: bool) {
    srcs.sort_unstable_by_key(Source::len);
    let rest = if seeded {
        &srcs[..]
    } else {
        seed_pool(pool, srcs[0]);
        &srcs[1..]
    };
    for &s in rest {
        if pool.is_empty() {
            return;
        }
        refine_pool(pool, s);
    }
}

/// Caller-owned reusable buffers for [`ComponentSearch`]: per-depth
/// candidate pools, the assignment array, and all ordering state.
/// Detection loops run one search per rule per block; threading one
/// `SearchScratch` through them (via
/// [`ComponentSearch::with_scratch`], recovered by
/// [`ComponentSearch::into_scratch`]) makes repeated searches
/// allocation-free in steady state. A fresh default is always valid —
/// buffers are cleared and resized per search.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// One pool buffer per search depth.
    pools: Vec<Vec<NodeId>>,
    assigned: Vec<NodeId>,
    counts: Vec<usize>,
    order: Vec<VarId>,
    visited: Vec<bool>,
    pinned: Vec<VarId>,
    /// Per-variable lower bounds on a viable image's out-/in-degree:
    /// the number of *distinct* out-/in-neighbor variables. Distinct
    /// neighbor variables map to distinct nodes (injectivity), so each
    /// needs its own graph edge — but several pattern edges to the
    /// *same* neighbor (e.g. a labeled and a wildcard edge) can share
    /// one graph edge, so counting edges would over-prune.
    min_out: Vec<usize>,
    min_in: Vec<usize>,
}

/// Single-component matcher.
pub struct ComponentSearch<'a> {
    q: &'a Pattern,
    g: &'a Graph,
    restriction: Option<&'a NodeSet>,
    cand: Option<&'a CandidateSpace>,
    pins: Vec<(VarId, NodeId)>,
    max_steps: u64,
    steps: u64,
    /// Reusable buffers, possibly adopted from a previous search.
    scratch: SearchScratch,
}

/// Why an enumeration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The search space was exhausted: the enumeration is complete.
    Exhausted,
    /// The callback asked to stop.
    CallbackBreak,
    /// The step budget ran out: results may be incomplete.
    BudgetExhausted,
}

impl<'a> ComponentSearch<'a> {
    /// Creates a search for `q` (which must be connected) in `g`.
    pub fn new(q: &'a Pattern, g: &'a Graph) -> Self {
        ComponentSearch {
            q,
            g,
            restriction: None,
            cand: None,
            pins: Vec::new(),
            max_steps: u64::MAX,
            steps: 0,
            scratch: SearchScratch::default(),
        }
    }

    /// Adopts reusable buffers from a previous search (of any pattern
    /// — everything is cleared and resized per enumeration).
    pub fn with_scratch(mut self, scratch: SearchScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Recovers the scratch buffers (and their capacity) for the next
    /// search.
    pub fn into_scratch(self) -> SearchScratch {
        self.scratch
    }

    /// Restricts images to a node set (a data block).
    pub fn restrict(mut self, set: &'a NodeSet) -> Self {
        self.restriction = Some(set);
        self
    }

    /// Attaches a precomputed simulation candidate space: pools then
    /// draw from its pruned per-edge adjacency, and any pin outside its
    /// sets short-circuits to an empty enumeration.
    pub fn candidate_space(mut self, cs: &'a CandidateSpace) -> Self {
        self.cand = Some(cs);
        self
    }

    /// Pins `h(var) = node`.
    pub fn pin(mut self, var: VarId, node: NodeId) -> Self {
        self.pins.push((var, node));
        self
    }

    /// Caps backtracking steps.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    #[inline]
    fn allowed(&self, node: NodeId) -> bool {
        self.restriction.is_none_or(|r| r.contains(node))
    }

    /// Is `gv` a viable image for `sv`, given partial `assigned`?
    fn compatible(&self, assigned: &[NodeId], sv: VarId, gv: NodeId) -> bool {
        if !self.q.label(sv).admits(self.g.label(gv)) || !self.allowed(gv) {
            return false;
        }
        if self.scratch.min_out[sv.index()] > self.g.out_degree(gv)
            || self.scratch.min_in[sv.index()] > self.g.in_degree(gv)
        {
            return false;
        }
        // Injectivity within the component.
        if assigned.contains(&gv) {
            return false;
        }
        for &(t, l) in self.q.out(sv) {
            if t == sv {
                if !edge_ok(self.g, gv, gv, l) {
                    return false;
                }
                continue;
            }
            let ta = assigned[t.index()];
            if ta.0 != u32::MAX && !edge_ok(self.g, gv, ta, l) {
                return false;
            }
        }
        for &(s, l) in self.q.inn(sv) {
            if s == sv {
                continue;
            }
            let sa = assigned[s.index()];
            if sa.0 != u32::MAX && !edge_ok(self.g, sa, gv, l) {
                return false;
            }
        }
        true
    }

    /// Fills `pool` with the candidate pool for `sv`: the intersection
    /// of every assigned pattern neighbor's sorted adjacency (plus the
    /// simulation set when attached), falling back to label extent /
    /// restriction / all nodes at a component start. `pool` comes out
    /// sorted and duplicate-free.
    fn fill_candidates(&self, assigned: &[NodeId], sv: VarId, pool: &mut Vec<NodeId>) {
        pool.clear();
        let g = self.g;
        // Source descriptors live in a stack batch: a warm enumeration
        // loop must not allocate.
        let mut srcs: [Source<'a>; MAX_SOURCES] = [Source::Ids(&[]); MAX_SOURCES];
        let mut n = 0usize;
        let mut seeded = false;

        if let Some(cs) = self.cand {
            // Pools come from the simulation's per-edge candidate
            // adjacency: every entry already survives dual simulation.
            for (ei, e) in self.q.edges().iter().enumerate() {
                if e.src == sv && e.dst != sv {
                    let ta = assigned[e.dst.index()];
                    if ta.0 != u32::MAX {
                        match cs.sets[e.dst.index()].binary_search(&ta) {
                            Ok(i) => push_source(
                                pool,
                                &mut srcs,
                                &mut n,
                                &mut seeded,
                                Source::Ids(cs.reverse[ei].run(i)),
                            ),
                            Err(_) => {
                                // Assigned image outside the simulation
                                // set: nothing can extend it.
                                pool.clear();
                                return;
                            }
                        }
                    }
                }
                if e.dst == sv && e.src != sv {
                    let sa = assigned[e.src.index()];
                    if sa.0 != u32::MAX {
                        match cs.sets[e.src.index()].binary_search(&sa) {
                            Ok(i) => push_source(
                                pool,
                                &mut srcs,
                                &mut n,
                                &mut seeded,
                                Source::Ids(cs.forward[ei].run(i)),
                            ),
                            Err(_) => {
                                pool.clear();
                                return;
                            }
                        }
                    }
                }
            }
            if n == 0 && !seeded {
                // Component start: the simulation set, narrowed by the
                // restriction when one is present.
                push_source(pool, &mut srcs, &mut n, &mut seeded, Source::Ids(cs.of(sv)));
                if let Some(r) = self.restriction {
                    push_source(
                        pool,
                        &mut srcs,
                        &mut n,
                        &mut seeded,
                        Source::Ids(r.as_slice()),
                    );
                }
            }
        } else {
            // No simulation attached: intersect the labeled CSR runs of
            // all assigned neighbors. Wildcard-edge runs span labels
            // (unsorted by node), so they only serve as a last-resort
            // pool; `compatible` enforces those edges regardless.
            let mut wildcard: Option<&[Adj]> = None;
            let consider_wildcard = |run: &'a [Adj], cur: &mut Option<&'a [Adj]>| {
                if cur.is_none_or(|c| run.len() < c.len()) {
                    *cur = Some(run);
                }
            };
            for &(t, l) in self.q.out(sv) {
                let ta = assigned[t.index()];
                if t != sv && ta.0 != u32::MAX {
                    match l {
                        PatLabel::Sym(el) => push_source(
                            pool,
                            &mut srcs,
                            &mut n,
                            &mut seeded,
                            Source::Run(g.in_neighbors_labeled(ta, el)),
                        ),
                        PatLabel::Wildcard => consider_wildcard(g.in_slice(ta), &mut wildcard),
                    }
                }
            }
            for &(s, l) in self.q.inn(sv) {
                let sa = assigned[s.index()];
                if s != sv && sa.0 != u32::MAX {
                    match l {
                        PatLabel::Sym(el) => push_source(
                            pool,
                            &mut srcs,
                            &mut n,
                            &mut seeded,
                            Source::Run(g.neighbors_labeled(sa, el)),
                        ),
                        PatLabel::Wildcard => consider_wildcard(g.out_slice(sa), &mut wildcard),
                    }
                }
            }
            if n == 0 && !seeded {
                if let Some(run) = wildcard {
                    pool.extend(run.iter().map(|a| a.node));
                    pool.sort_unstable();
                    pool.dedup();
                    return;
                }
                // Component start: label extent / restriction / all.
                match self.q.label(sv) {
                    PatLabel::Sym(s) => {
                        let extent = g.extent(s);
                        match self.restriction {
                            Some(r) if r.len() < extent.len() => {
                                pool.extend(r.iter().filter(|&u| g.label(u) == s));
                            }
                            _ => pool.extend_from_slice(extent),
                        }
                    }
                    PatLabel::Wildcard => match self.restriction {
                        Some(r) => pool.extend(r.iter()),
                        None => pool.extend(g.nodes()),
                    },
                }
                return;
            }
        }

        // Intersect ascending by size: seed from the smallest source,
        // then refine in place (merge or gallop per size ratio).
        if n > 0 {
            fold_sources(pool, &mut srcs[..n], seeded);
        }
    }

    fn run(
        &mut self,
        order: &[VarId],
        depth: usize,
        assigned: &mut Vec<NodeId>,
        f: &mut dyn FnMut(&[NodeId]) -> Flow,
    ) -> Result<(), StopReason> {
        if depth == order.len() {
            return match f(assigned) {
                Flow::Continue => Ok(()),
                Flow::Break => Err(StopReason::CallbackBreak),
            };
        }
        let sv = order[depth];
        if assigned[sv.index()].0 != u32::MAX {
            // Pinned: validate in place (pin target must also satisfy
            // injectivity against other pins, checked by caller).
            let gv = assigned[sv.index()];
            let saved = std::mem::replace(&mut assigned[sv.index()], NodeId(u32::MAX));
            let ok = self.compatible(assigned, sv, gv);
            assigned[sv.index()] = saved;
            if ok {
                return self.run(order, depth + 1, assigned, f);
            }
            return Ok(());
        }
        let mut pool = std::mem::take(&mut self.scratch.pools[depth]);
        self.fill_candidates(assigned, sv, &mut pool);
        let mut result = Ok(());
        for &gv in &pool {
            self.steps += 1;
            if self.steps > self.max_steps {
                result = Err(StopReason::BudgetExhausted);
                break;
            }
            if !self.compatible(assigned, sv, gv) {
                continue;
            }
            assigned[sv.index()] = gv;
            let r = self.run(order, depth + 1, assigned, f);
            assigned[sv.index()] = NodeId(u32::MAX);
            if r.is_err() {
                result = r;
                break;
            }
        }
        // Hand the buffer (and its capacity) back for the next visit
        // of this depth.
        self.scratch.pools[depth] = pool;
        result
    }

    /// Enumerates matches, invoking `f` per match (images indexed by
    /// this component's variable ids). Returns how the search ended.
    pub fn for_each(&mut self, f: &mut dyn FnMut(&[NodeId]) -> Flow) -> StopReason {
        let n = self.q.node_count();
        // Reject pin pairs that collide (injectivity between pins).
        for (i, &(v1, n1)) in self.pins.iter().enumerate() {
            for &(v2, n2) in &self.pins[i + 1..] {
                if v1 != v2 && n1 == n2 {
                    return StopReason::Exhausted;
                }
            }
        }
        if let Some(cs) = self.cand {
            // A pin outside the simulation relation cannot anchor any
            // match (sim contains every match).
            for &(v, node) in &self.pins {
                if cs.sets[v.index()].binary_search(&node).is_err() {
                    return StopReason::Exhausted;
                }
            }
        }
        // Refill the per-pattern caches inside the (possibly adopted)
        // scratch: degree lower bounds, candidate counts, search order.
        {
            let q = self.q;
            let s = &mut self.scratch;
            s.min_out.clear();
            s.min_out
                .extend(q.vars().map(|v| distinct_neighbors(q.out(v))));
            s.min_in.clear();
            s.min_in
                .extend(q.vars().map(|v| distinct_neighbors(q.inn(v))));
            s.counts.clear();
            match self.cand {
                Some(cs) => s.counts.extend(cs.sets.iter().map(Vec::len)),
                None => s.counts.resize(n, usize::MAX),
            }
            s.pinned.clear();
            s.pinned.extend(self.pins.iter().map(|&(v, _)| v));
        }
        let mut order = std::mem::take(&mut self.scratch.order);
        {
            let SearchScratch {
                counts,
                visited,
                pinned,
                ..
            } = &mut self.scratch;
            search_order_into(self.q, pinned, counts, visited, &mut order);
        }
        let mut assigned = std::mem::take(&mut self.scratch.assigned);
        assigned.clear();
        assigned.resize(n, NodeId(u32::MAX));
        for &(v, node) in &self.pins {
            assigned[v.index()] = node;
        }
        if self.scratch.pools.len() < n {
            self.scratch.pools.resize_with(n, Vec::new);
        }
        let result = self.run(&order, 0, &mut assigned, f);
        self.scratch.order = order;
        self.scratch.assigned = assigned;
        match result {
            Ok(()) => StopReason::Exhausted,
            Err(reason) => reason,
        }
    }

    /// Collects all matches (component-local variable indexing).
    pub fn collect_all(&mut self) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        self.for_each(&mut |m| {
            out.push(m.to_vec());
            Flow::Continue
        });
        out
    }

    /// Streams every match into a flat [`MatchTable`] row — the
    /// allocation-free bulk-collection fast path (one arena instead of
    /// one `Vec` per match). The table's stride must equal the
    /// pattern's variable count. Returns how the search ended.
    pub fn collect_into(&mut self, table: &mut MatchTable) -> StopReason {
        debug_assert_eq!(
            table.arity(),
            self.q.node_count(),
            "table stride must equal the component arity"
        );
        self.for_each(&mut |m| {
            table.push_row(m);
            Flow::Continue
        })
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::dual_simulation;
    use gfd_pattern::PatternBuilder;

    /// G2 of Fig. 1 (the fake-accounts graph), reduced: acct1 posts p5,
    /// acct2 posts p6, both like p1 p2.
    fn social() -> (Graph, Vec<NodeId>) {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("account");
        let a2 = b.add_node_labeled("account");
        let p1 = b.add_node_labeled("blog");
        let p2 = b.add_node_labeled("blog");
        let p5 = b.add_node_labeled("blog");
        let p6 = b.add_node_labeled("blog");
        for a in [a1, a2] {
            b.add_edge_labeled(a, p1, "like");
            b.add_edge_labeled(a, p2, "like");
        }
        b.add_edge_labeled(a1, p5, "post");
        b.add_edge_labeled(a2, p6, "post");
        (b.freeze(), vec![a1, a2, p1, p2, p5, p6])
    }

    #[test]
    fn single_edge_pattern() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).collect_all();
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&vec![ns[0], ns[4]]));
        assert!(matches.contains(&vec![ns[1], ns[5]]));
    }

    #[test]
    fn pinned_search_is_local() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).pin(x, ns[1]).collect_all();
        assert_eq!(matches, vec![vec![ns[1], ns[5]]]);
        // Pin to a non-account node: no matches.
        let matches = ComponentSearch::new(&q, &g).pin(x, ns[2]).collect_all();
        assert!(matches.is_empty());
    }

    #[test]
    fn injectivity_within_component() {
        // Pattern: account likes two distinct blogs.
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y1 = b.node("y1", "blog");
        let y2 = b.node("y2", "blog");
        b.edge(x, y1, "like");
        b.edge(x, y2, "like");
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).collect_all();
        // Per account: ordered pairs (p1,p2) and (p2,p1) → 2 each.
        assert_eq!(matches.len(), 4);
        for m in &matches {
            assert_ne!(m[1], m[2], "y1 and y2 must be distinct nodes");
        }
    }

    #[test]
    fn restriction_excludes_outside_nodes() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let block = NodeSet::from_vec(vec![ns[0], ns[4]]);
        let matches = ComponentSearch::new(&q, &g).restrict(&block).collect_all();
        assert_eq!(matches, vec![vec![ns[0], ns[4]]]);
    }

    #[test]
    fn wildcard_pattern_matches_all_edges() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).collect_all();
        assert_eq!(matches.len(), g.edge_count());
    }

    #[test]
    fn budget_stops_search() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let mut search = ComponentSearch::new(&q, &g).max_steps(2);
        let mut n = 0usize;
        let reason = search.for_each(&mut |_| {
            n += 1;
            Flow::Continue
        });
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert!(n < g.edge_count());
    }

    #[test]
    fn callback_break_stops_early() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("x", "account");
        let q = b.build();
        let mut search = ComponentSearch::new(&q, &g);
        let mut n = 0usize;
        let reason = search.for_each(&mut |_| {
            n += 1;
            Flow::Break
        });
        assert_eq!(reason, StopReason::CallbackBreak);
        assert_eq!(n, 1);
    }

    #[test]
    fn candidate_space_preserves_matches() {
        // The same enumeration with and without the simulation filter.
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y1 = b.node("y1", "blog");
        let y2 = b.node("y2", "blog");
        b.edge(x, y1, "like");
        b.edge(x, y2, "post");
        let q = b.build();
        let plain = ComponentSearch::new(&q, &g).collect_all();
        let cs = dual_simulation(&q, &g, None);
        let mut filtered = ComponentSearch::new(&q, &g)
            .candidate_space(&cs)
            .collect_all();
        let mut plain = plain;
        plain.sort();
        filtered.sort();
        assert_eq!(plain, filtered);
        assert!(!plain.is_empty());
    }

    /// Satellite regression: `search_order` must be fully
    /// deterministic under ties. A wildcard 4-cycle makes every
    /// primary key (visited-neighbor count, candidate count, degree)
    /// tie, so the order is decided purely by the stable secondary key
    /// on the variable id.
    #[test]
    fn search_order_breaks_ties_deterministically() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let v0 = b.wildcard_node("v0");
        let v1 = b.wildcard_node("v1");
        let v2 = b.wildcard_node("v2");
        let v3 = b.wildcard_node("v3");
        b.wildcard_edge(v0, v1);
        b.wildcard_edge(v1, v2);
        b.wildcard_edge(v2, v3);
        b.wildcard_edge(v3, v0);
        let q = b.build();
        let counts = vec![usize::MAX; 4];
        let first = search_order(&q, &[], &counts);
        // All primary keys tie at every step, so `Reverse(v.0)` must
        // pick the smallest id among the most-connected candidates:
        // v0, then its smaller neighbor v1, then v2 (now adjacent to
        // a visited var), then v3.
        assert_eq!(first, vec![v0, v1, v2, v3]);
        for _ in 0..10 {
            assert_eq!(search_order(&q, &[], &counts), first);
        }
        // Pinning reorders the prefix but stays deterministic.
        let pinned = search_order(&q, &[v2], &counts);
        assert_eq!(pinned[0], v2);
        for _ in 0..10 {
            assert_eq!(search_order(&q, &[v2], &counts), pinned);
        }
    }

    /// Scratch buffers survive recycling across searches of different
    /// patterns and keep results identical.
    #[test]
    fn scratch_reuse_across_searches() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y1 = b.node("y1", "blog");
        let y2 = b.node("y2", "blog");
        b.edge(x, y1, "like");
        b.edge(x, y2, "like");
        let two_likes = b.build();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let post = b.build();

        let baseline_a = ComponentSearch::new(&two_likes, &g).collect_all();
        let baseline_b = ComponentSearch::new(&post, &g).collect_all();

        let mut scratch = SearchScratch::default();
        for _ in 0..3 {
            let mut s = ComponentSearch::new(&two_likes, &g).with_scratch(scratch);
            assert_eq!(s.collect_all(), baseline_a);
            let mut t = ComponentSearch::new(&post, &g).with_scratch(s.into_scratch());
            assert_eq!(t.collect_all(), baseline_b);
            scratch = t.into_scratch();
        }
    }

    #[test]
    fn pin_outside_candidate_space_is_empty() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let cs = dual_simulation(&q, &g, None);
        // ns[2] is a blog that nobody posts: not in sim(x).
        let matches = ComponentSearch::new(&q, &g)
            .candidate_space(&cs)
            .pin(x, ns[2])
            .collect_all();
        assert!(matches.is_empty());
    }
}
