//! Backtracking search for matches of one *connected* pattern
//! component in a data graph.
//!
//! The search is candidate-driven: after the first variable, every
//! variable is expanded from the adjacency list of an already-matched
//! pattern neighbor, so the search never scans the whole graph once it
//! is anchored — this is what makes pivoted work-unit processing local
//! (§5.2: matches are enumerated "by only accessing `G_z̄`").

use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_pattern::{PatLabel, Pattern, VarId};

use crate::types::Flow;

/// True if `g` has an edge `u → v` admitted by the pattern label.
#[inline]
pub(crate) fn edge_ok(g: &Graph, u: NodeId, v: NodeId, label: PatLabel) -> bool {
    match label {
        PatLabel::Sym(s) => g.has_edge(u, v, s),
        PatLabel::Wildcard => g.has_edge_any(u, v),
    }
}

/// Connectivity-aware static variable order: pinned variables first,
/// then always the unvisited variable with the most visited neighbors
/// (ties: higher degree, then lower id).
pub(crate) fn search_order(q: &Pattern, pinned: &[VarId]) -> Vec<VarId> {
    let n = q.node_count();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for &p in pinned {
        if !visited[p.index()] {
            visited[p.index()] = true;
            order.push(p);
        }
    }
    while order.len() < n {
        let next = q
            .vars()
            .filter(|v| !visited[v.index()])
            .max_by_key(|&v| {
                let connected = q.neighbors(v).filter(|u| visited[u.index()]).count();
                (connected, q.degree(v), std::cmp::Reverse(v.0))
            })
            .expect("unvisited variable exists");
        visited[next.index()] = true;
        order.push(next);
    }
    order
}

/// Single-component matcher.
pub struct ComponentSearch<'a> {
    q: &'a Pattern,
    g: &'a Graph,
    restriction: Option<&'a NodeSet>,
    pins: Vec<(VarId, NodeId)>,
    max_steps: u64,
    steps: u64,
}

/// Why an enumeration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The search space was exhausted: the enumeration is complete.
    Exhausted,
    /// The callback asked to stop.
    CallbackBreak,
    /// The step budget ran out: results may be incomplete.
    BudgetExhausted,
}

impl<'a> ComponentSearch<'a> {
    /// Creates a search for `q` (which must be connected) in `g`.
    pub fn new(q: &'a Pattern, g: &'a Graph) -> Self {
        ComponentSearch {
            q,
            g,
            restriction: None,
            pins: Vec::new(),
            max_steps: u64::MAX,
            steps: 0,
        }
    }

    /// Restricts images to a node set (a data block).
    pub fn restrict(mut self, set: &'a NodeSet) -> Self {
        self.restriction = Some(set);
        self
    }

    /// Pins `h(var) = node`.
    pub fn pin(mut self, var: VarId, node: NodeId) -> Self {
        self.pins.push((var, node));
        self
    }

    /// Caps backtracking steps.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    #[inline]
    fn allowed(&self, node: NodeId) -> bool {
        self.restriction.is_none_or(|r| r.contains(node))
    }

    /// Is `gv` a viable image for `sv`, given partial `assigned`?
    fn compatible(&self, assigned: &[NodeId], sv: VarId, gv: NodeId) -> bool {
        if !self.q.label(sv).admits(self.g.label(gv)) || !self.allowed(gv) {
            return false;
        }
        if self.q.out(sv).len() > self.g.out_degree(gv)
            || self.q.inn(sv).len() > self.g.in_degree(gv)
        {
            return false;
        }
        // Injectivity within the component.
        if assigned.contains(&gv) {
            return false;
        }
        for &(t, l) in self.q.out(sv) {
            if t == sv {
                if !edge_ok(self.g, gv, gv, l) {
                    return false;
                }
                continue;
            }
            let ta = assigned[t.index()];
            if ta.0 != u32::MAX && !edge_ok(self.g, gv, ta, l) {
                return false;
            }
        }
        for &(s, l) in self.q.inn(sv) {
            if s == sv {
                continue;
            }
            let sa = assigned[s.index()];
            if sa.0 != u32::MAX && !edge_ok(self.g, sa, gv, l) {
                return false;
            }
        }
        true
    }

    /// Candidate pool for `sv`: from an assigned pattern neighbor's
    /// adjacency when possible, else from the label extent, else from
    /// the restriction, else all nodes.
    fn candidates(&self, assigned: &[NodeId], sv: VarId) -> Vec<NodeId> {
        // Prefer expansion from an assigned neighbor (smallest list).
        let mut best: Option<Vec<NodeId>> = None;
        let mut consider = |cands: Vec<NodeId>| {
            if best.as_ref().is_none_or(|b| cands.len() < b.len()) {
                best = Some(cands);
            }
        };
        for &(t, l) in self.q.out(sv) {
            let ta = assigned[t.index()];
            if t != sv && ta.0 != u32::MAX {
                // A labeled pattern edge reads one contiguous CSR
                // subrange; only wildcards scan the whole run.
                let cands: Vec<NodeId> = match l {
                    PatLabel::Sym(el) => self
                        .g
                        .in_neighbors_labeled(ta, el)
                        .iter()
                        .map(|a| a.node)
                        .collect(),
                    PatLabel::Wildcard => self.g.in_slice(ta).iter().map(|a| a.node).collect(),
                };
                consider(cands);
            }
        }
        for &(s, l) in self.q.inn(sv) {
            let sa = assigned[s.index()];
            if s != sv && sa.0 != u32::MAX {
                let cands: Vec<NodeId> = match l {
                    PatLabel::Sym(el) => self
                        .g
                        .neighbors_labeled(sa, el)
                        .iter()
                        .map(|a| a.node)
                        .collect(),
                    PatLabel::Wildcard => self.g.out_slice(sa).iter().map(|a| a.node).collect(),
                };
                consider(cands);
            }
        }
        if let Some(mut cands) = best {
            cands.sort_unstable();
            cands.dedup();
            return cands;
        }
        // Component start: label extent / restriction / everything.
        match self.q.label(sv) {
            PatLabel::Sym(s) => {
                let extent = self.g.extent(s);
                match self.restriction {
                    Some(r) if r.len() < extent.len() => {
                        r.iter().filter(|&u| self.g.label(u) == s).collect()
                    }
                    _ => extent.to_vec(),
                }
            }
            PatLabel::Wildcard => match self.restriction {
                Some(r) => r.iter().collect(),
                None => self.g.nodes().collect(),
            },
        }
    }

    fn run(
        &mut self,
        order: &[VarId],
        depth: usize,
        assigned: &mut Vec<NodeId>,
        f: &mut dyn FnMut(&[NodeId]) -> Flow,
    ) -> Result<(), StopReason> {
        if depth == order.len() {
            return match f(assigned) {
                Flow::Continue => Ok(()),
                Flow::Break => Err(StopReason::CallbackBreak),
            };
        }
        let sv = order[depth];
        if assigned[sv.index()].0 != u32::MAX {
            // Pinned: validate in place (pin target must also satisfy
            // injectivity against other pins, checked by caller).
            let gv = assigned[sv.index()];
            let saved = std::mem::replace(&mut assigned[sv.index()], NodeId(u32::MAX));
            let ok = self.compatible(assigned, sv, gv);
            assigned[sv.index()] = saved;
            if ok {
                return self.run(order, depth + 1, assigned, f);
            }
            return Ok(());
        }
        for gv in self.candidates(assigned, sv) {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(StopReason::BudgetExhausted);
            }
            if !self.compatible(assigned, sv, gv) {
                continue;
            }
            assigned[sv.index()] = gv;
            let r = self.run(order, depth + 1, assigned, f);
            assigned[sv.index()] = NodeId(u32::MAX);
            r?;
        }
        Ok(())
    }

    /// Enumerates matches, invoking `f` per match (images indexed by
    /// this component's variable ids). Returns how the search ended.
    pub fn for_each(&mut self, f: &mut dyn FnMut(&[NodeId]) -> Flow) -> StopReason {
        let mut assigned = vec![NodeId(u32::MAX); self.q.node_count()];
        // Reject pin pairs that collide (injectivity between pins).
        let pins = self.pins.clone();
        for (i, &(v1, n1)) in pins.iter().enumerate() {
            for &(v2, n2) in &pins[i + 1..] {
                if v1 != v2 && n1 == n2 {
                    return StopReason::Exhausted;
                }
            }
        }
        for &(v, n) in &pins {
            assigned[v.index()] = n;
        }
        let pinned: Vec<VarId> = pins.iter().map(|&(v, _)| v).collect();
        let order = search_order(self.q, &pinned);
        match self.run(&order, 0, &mut assigned, f) {
            Ok(()) => StopReason::Exhausted,
            Err(reason) => reason,
        }
    }

    /// Collects all matches (component-local variable indexing).
    pub fn collect_all(&mut self) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        self.for_each(&mut |m| {
            out.push(m.to_vec());
            Flow::Continue
        });
        out
    }

    /// Steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_pattern::PatternBuilder;

    /// G2 of Fig. 1 (the fake-accounts graph), reduced: acct1 posts p5,
    /// acct2 posts p6, both like p1 p2.
    fn social() -> (Graph, Vec<NodeId>) {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("account");
        let a2 = b.add_node_labeled("account");
        let p1 = b.add_node_labeled("blog");
        let p2 = b.add_node_labeled("blog");
        let p5 = b.add_node_labeled("blog");
        let p6 = b.add_node_labeled("blog");
        for a in [a1, a2] {
            b.add_edge_labeled(a, p1, "like");
            b.add_edge_labeled(a, p2, "like");
        }
        b.add_edge_labeled(a1, p5, "post");
        b.add_edge_labeled(a2, p6, "post");
        (b.freeze(), vec![a1, a2, p1, p2, p5, p6])
    }

    #[test]
    fn single_edge_pattern() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).collect_all();
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&vec![ns[0], ns[4]]));
        assert!(matches.contains(&vec![ns[1], ns[5]]));
    }

    #[test]
    fn pinned_search_is_local() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).pin(x, ns[1]).collect_all();
        assert_eq!(matches, vec![vec![ns[1], ns[5]]]);
        // Pin to a non-account node: no matches.
        let matches = ComponentSearch::new(&q, &g).pin(x, ns[2]).collect_all();
        assert!(matches.is_empty());
    }

    #[test]
    fn injectivity_within_component() {
        // Pattern: account likes two distinct blogs.
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y1 = b.node("y1", "blog");
        let y2 = b.node("y2", "blog");
        b.edge(x, y1, "like");
        b.edge(x, y2, "like");
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).collect_all();
        // Per account: ordered pairs (p1,p2) and (p2,p1) → 2 each.
        assert_eq!(matches.len(), 4);
        for m in &matches {
            assert_ne!(m[1], m[2], "y1 and y2 must be distinct nodes");
        }
    }

    #[test]
    fn restriction_excludes_outside_nodes() {
        let (g, ns) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "account");
        let y = b.node("y", "blog");
        b.edge(x, y, "post");
        let q = b.build();
        let block = NodeSet::from_vec(vec![ns[0], ns[4]]);
        let matches = ComponentSearch::new(&q, &g).restrict(&block).collect_all();
        assert_eq!(matches, vec![vec![ns[0], ns[4]]]);
    }

    #[test]
    fn wildcard_pattern_matches_all_edges() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let matches = ComponentSearch::new(&q, &g).collect_all();
        assert_eq!(matches.len(), g.edge_count());
    }

    #[test]
    fn budget_stops_search() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let mut search = ComponentSearch::new(&q, &g).max_steps(2);
        let mut n = 0usize;
        let reason = search.for_each(&mut |_| {
            n += 1;
            Flow::Continue
        });
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert!(n < g.edge_count());
    }

    #[test]
    fn callback_break_stops_early() {
        let (g, _) = social();
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("x", "account");
        let q = b.build();
        let mut search = ComponentSearch::new(&q, &g);
        let mut n = 0usize;
        let reason = search.for_each(&mut |_| {
            n += 1;
            Flow::Break
        });
        assert_eq!(reason, StopReason::CallbackBreak);
        assert_eq!(n, 1);
    }
}
