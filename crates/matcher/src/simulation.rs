//! Graph (dual) simulation.
//!
//! `disVal`'s *partial detection* scheme (§6.2) estimates the number of
//! partial matches "via graph simulation from pattern `Q[x̄]` to `F_i`"
//! before deciding whether to ship partial matches or data blocks.
//! Dual simulation is the standard polynomial relaxation of subgraph
//! isomorphism: a relation `sim ⊆ V_Q × V` such that `(v, u) ∈ sim`
//! implies every pattern edge at `v` (both directions) can be followed
//! from `u` to some simulated partner. Every subgraph-isomorphism match
//! is contained in the simulation, so `|sim(v)|` upper-bounds the
//! candidates of `v` — which also makes simulation a sound pruning
//! filter for the exact matcher.

use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_pattern::{PatLabel, Pattern, VarId};

/// The simulation relation: per pattern variable, the set of data nodes
/// simulating it (sorted).
#[derive(Clone, Debug)]
pub struct Simulation {
    /// `sets[v] = sim(v)`, indexed by variable id.
    pub sets: Vec<Vec<NodeId>>,
}

impl Simulation {
    /// Candidate set of a variable.
    pub fn of(&self, v: VarId) -> &[NodeId] {
        &self.sets[v.index()]
    }

    /// True if some variable has an empty simulation set — then the
    /// pattern has no match at all (in the searched scope).
    pub fn is_empty_anywhere(&self) -> bool {
        self.sets.iter().any(|s| s.is_empty())
    }

    /// Total size of the relation (the paper's partial-match size
    /// estimate).
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

fn admits_any_edge(
    g: &Graph,
    from: NodeId,
    label: PatLabel,
    target_ok: impl Fn(NodeId) -> bool,
) -> bool {
    match label {
        PatLabel::Sym(s) => g
            .neighbors_labeled(from, s)
            .iter()
            .any(|a| target_ok(a.node)),
        PatLabel::Wildcard => g.out_slice(from).iter().any(|a| target_ok(a.node)),
    }
}

fn admits_any_in_edge(
    g: &Graph,
    to: NodeId,
    label: PatLabel,
    source_ok: impl Fn(NodeId) -> bool,
) -> bool {
    match label {
        PatLabel::Sym(s) => g
            .in_neighbors_labeled(to, s)
            .iter()
            .any(|a| source_ok(a.node)),
        PatLabel::Wildcard => g.in_slice(to).iter().any(|a| source_ok(a.node)),
    }
}

/// Computes the maximal dual simulation of `q` in `g`, optionally
/// restricted to a node set (fragment-local simulation).
pub fn dual_simulation(q: &Pattern, g: &Graph, scope: Option<&NodeSet>) -> Simulation {
    let nvars = q.node_count();
    // membership[v] is a boolean map over data nodes for variable v.
    let mut membership: Vec<Vec<bool>> = vec![vec![false; g.node_count()]; nvars];
    for v in q.vars() {
        match (q.label(v), scope) {
            (PatLabel::Sym(s), _) => {
                for &u in g.extent(s) {
                    if scope.is_none_or(|r| r.contains(u)) {
                        membership[v.index()][u.index()] = true;
                    }
                }
            }
            (PatLabel::Wildcard, Some(r)) => {
                for u in r.iter() {
                    membership[v.index()][u.index()] = true;
                }
            }
            (PatLabel::Wildcard, None) => {
                membership[v.index()].iter_mut().for_each(|b| *b = true);
            }
        }
    }

    // Refine to fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for v in q.vars() {
            for ui in 0..g.node_count() {
                if !membership[v.index()][ui] {
                    continue;
                }
                let u = NodeId(ui as u32);
                let ok = q.out(v).iter().all(|&(t, l)| {
                    admits_any_edge(g, u, l, |cand| membership[t.index()][cand.index()])
                }) && q.inn(v).iter().all(|&(s, l)| {
                    admits_any_in_edge(g, u, l, |cand| membership[s.index()][cand.index()])
                });
                if !ok {
                    membership[v.index()][ui] = false;
                    changed = true;
                }
            }
        }
    }

    let sets = membership
        .into_iter()
        .map(|bits| {
            bits.iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| NodeId(i as u32))
                .collect()
        })
        .collect();
    Simulation { sets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_pattern::PatternBuilder;

    fn chain_graph() -> Graph {
        // a1 -> b1 -> c1 ; a2 -> b2 (no c); c_orphan
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        b.add_node_labeled("c");
        b.add_edge_labeled(a1, b1, "e");
        b.add_edge_labeled(b1, c1, "e");
        b.add_edge_labeled(a2, b2, "e");
        b.freeze()
    }

    fn chain_pattern(g: &Graph) -> Pattern {
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        let z = b.node("z", "c");
        b.edge(x, y, "e");
        b.edge(y, z, "e");
        b.build()
    }

    #[test]
    fn simulation_prunes_dead_branches() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let sim = dual_simulation(&q, &g, None);
        // Only the a1->b1->c1 chain survives: a2/b2 lack the c
        // continuation, orphan c lacks the incoming b.
        assert_eq!(sim.of(VarId(0)), &[NodeId(0)]);
        assert_eq!(sim.of(VarId(1)), &[NodeId(1)]);
        assert_eq!(sim.of(VarId(2)), &[NodeId(2)]);
        assert!(!sim.is_empty_anywhere());
        assert_eq!(sim.total_size(), 3);
    }

    #[test]
    fn simulation_superset_of_matches() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let sim = dual_simulation(&q, &g, None);
        let ms = crate::api::find_matches(&q, &g, &crate::types::MatchOptions::unrestricted());
        for m in &ms {
            for v in q.vars() {
                assert!(sim.of(v).contains(&m.get(v)));
            }
        }
    }

    #[test]
    fn empty_simulation_means_no_match() {
        let mut gb = gfd_graph::GraphBuilder::with_fresh_vocab();
        gb.add_node_labeled("a");
        let g = gb.freeze();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "a");
        let y = b.node("y", "zzz");
        b.edge(x, y, "e");
        let q = b.build();
        let sim = dual_simulation(&q, &g, None);
        assert!(sim.is_empty_anywhere());
        assert!(!crate::api::has_match(
            &q,
            &g,
            &crate::types::MatchOptions::unrestricted()
        ));
    }

    #[test]
    fn scoped_simulation_restricts() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        // Scope excluding c1 kills the whole chain.
        let scope = NodeSet::from_vec(vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
        let sim = dual_simulation(&q, &g, Some(&scope));
        assert!(sim.is_empty_anywhere());
    }

    #[test]
    fn wildcard_simulation_covers_everything_cycle() {
        // A 3-cycle with wildcard pattern edge x->y: every node simulates.
        let mut gb = gfd_graph::GraphBuilder::with_fresh_vocab();
        let ns: Vec<_> = (0..3).map(|_| gb.add_node_labeled("v")).collect();
        for i in 0..3 {
            gb.add_edge_labeled(ns[i], ns[(i + 1) % 3], "e");
        }
        let g = gb.freeze();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let sim = dual_simulation(&q, &g, None);
        assert_eq!(sim.of(x).len(), 3);
        assert_eq!(sim.of(y).len(), 3);
    }
}
