//! Graph (dual) simulation as a worklist fixpoint, producing the
//! [`CandidateSpace`] that drives the exact matcher.
//!
//! `disVal`'s *partial detection* scheme (§6.2) estimates the number of
//! partial matches "via graph simulation from pattern `Q[x̄]` to `F_i`"
//! before deciding whether to ship partial matches or data blocks.
//! Dual simulation is the standard polynomial relaxation of subgraph
//! isomorphism: a relation `sim ⊆ V_Q × V` such that `(v, u) ∈ sim`
//! implies every pattern edge at `v` (both directions) can be followed
//! from `u` to some simulated partner. Every subgraph-isomorphism match
//! is contained in the simulation, so `|sim(v)|` upper-bounds the
//! candidates of `v` — which also makes simulation a sound pruning
//! filter for the exact matcher (the *filter* half of filter-and-refine).
//!
//! ## Algorithm
//!
//! Instead of re-scanning the dense `vars × nodes` membership matrix to
//! fixpoint, the computation is edge-local: per directed pattern edge
//! `e = (a, b, l)` it keeps, for every candidate `u` of `a`, the count
//! of admitted graph edges `u → w` with `w` still simulating `b` (and
//! the mirror count for candidates of `b`). Seeding reads only label
//! extents; when a counter hits zero its node is removed and pushed on
//! a worklist, and each removal only touches the removed node's own
//! adjacency — `O(affected)` per removal, `O(Σ_e Σ_{u∈cand} deg_l(u))`
//! in total rather than `rounds × vars × |V|`.

use std::collections::VecDeque;

use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_pattern::{IsoWitness, PatLabel, Pattern, VarId};

/// Per-pattern-edge candidate adjacency: for every candidate of the
/// edge's source variable (by its index in the source candidate set),
/// the admitted neighbors that survive in the target candidate set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeCandidates {
    /// `targets[offsets[i]..offsets[i+1]]` is the run of candidate
    /// `i` of the source variable; runs are ascending by node id.
    pub offsets: Vec<u32>,
    /// Flattened runs of admitted, simulation-surviving neighbors.
    pub targets: Vec<NodeId>,
}

impl EdgeCandidates {
    /// The admitted target run of source-candidate index `i`.
    #[inline]
    pub fn run(&self, i: usize) -> &[NodeId] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The simulation relation, packaged for reuse: per pattern variable
/// the sorted set of data nodes simulating it, plus per pattern edge
/// the candidate-to-candidate adjacency (both directions).
///
/// This is the pruned search space the exact matcher refines: root
/// pools come from [`CandidateSpace::of`], expansion pools from
/// intersecting [`EdgeCandidates`] runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CandidateSpace {
    /// `sets[v] = sim(v)`, sorted ascending, indexed by variable id.
    pub sets: Vec<Vec<NodeId>>,
    /// Forward adjacency per pattern edge `(src → dst)`, indexed like
    /// `Pattern::edges()`.
    pub forward: Vec<EdgeCandidates>,
    /// Reverse adjacency per pattern edge (`dst → src`).
    pub reverse: Vec<EdgeCandidates>,
}

impl CandidateSpace {
    /// Candidate set of a variable.
    pub fn of(&self, v: VarId) -> &[NodeId] {
        &self.sets[v.index()]
    }

    /// True if some variable has an empty simulation set — then the
    /// pattern has no match at all (in the searched scope).
    pub fn is_empty_anywhere(&self) -> bool {
        self.sets.iter().any(|s| s.is_empty())
    }

    /// Total size of the relation (the paper's partial-match size
    /// estimate).
    pub fn total_size(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Approximate heap bytes held by the relation — candidate sets
    /// plus both per-edge adjacency CSRs. The byte-budget size key of
    /// [`crate::registry::ClassRegistry`]; an estimate (`Vec` headers
    /// and spare capacity are ignored), which is all eviction needs.
    pub fn approx_bytes(&self) -> usize {
        let node = std::mem::size_of::<NodeId>();
        let sets: usize = self.sets.iter().map(|s| s.len() * node).sum();
        let adj: usize = self
            .forward
            .iter()
            .chain(&self.reverse)
            .map(|e| e.offsets.len() * std::mem::size_of::<u32>() + e.targets.len() * node)
            .sum();
        sets + adj
    }

    /// Transports a space computed for `rep` onto the exact-label
    /// isomorphic pattern `member` along `w` (mapping member variables
    /// onto rep variables): candidate sets are permuted and the
    /// per-edge adjacency is re-indexed into member edge order. The
    /// result is *identical* to `dual_simulation(member, …)` on the
    /// same graph and scope — simulation commutes with variable
    /// renaming — without touching the graph at all (oracle-tested in
    /// `crates/matcher/tests/prop_registry.rs`). This is the paper's
    /// Example 10 move (work done for one component re-used for its
    /// isomorphic twin), lifted from match enumeration to the filter
    /// stage.
    pub fn transport(&self, rep: &Pattern, member: &Pattern, w: &IsoWitness) -> CandidateSpace {
        debug_assert!(
            w.verify(member, rep),
            "transport witness is not an exact-label isomorphism"
        );
        let sets = member
            .vars()
            .map(|v| self.sets[w.map(v).index()].clone())
            .collect();
        let mut forward = Vec::with_capacity(member.edge_count());
        let mut reverse = Vec::with_capacity(member.edge_count());
        for e in member.edges() {
            let (rs, rd) = (w.map(e.src), w.map(e.dst));
            let ri = rep
                .edges()
                .iter()
                .position(|re| re.src == rs && re.dst == rd && re.label == e.label)
                .expect("witness maps every member edge onto a rep edge");
            forward.push(self.forward[ri].clone());
            reverse.push(self.reverse[ri].clone());
        }
        CandidateSpace {
            sets,
            forward,
            reverse,
        }
    }
}

/// Dense per-variable membership bitmaps plus per-edge support
/// counters — the worklist state. Shared between the from-scratch
/// driver [`dual_simulation`] and the delta-repair driver
/// [`crate::incremental::IncrementalSpace`], which keeps a `SimCore`
/// alive across graph edits: the support counters are exactly the
/// bookkeeping an incremental algorithm needs to propagate removals in
/// `O(affected)`.
pub(crate) struct SimCore {
    /// `member[v][u]` — is node `u` currently simulating variable `v`?
    pub(crate) member: Vec<Vec<bool>>,
    /// `fwd[e][u]` — admitted out-edges of `u` into `sim(dst(e))`,
    /// maintained for `u ∈ sim(src(e))`.
    pub(crate) fwd: Vec<Vec<u32>>,
    /// `bwd[e][w]` — admitted in-edges of `w` from `sim(src(e))`,
    /// maintained for `w ∈ sim(dst(e))`.
    pub(crate) bwd: Vec<Vec<u32>>,
    pub(crate) queue: VecDeque<(VarId, NodeId)>,
}

impl SimCore {
    /// Flags `(v, u)` as removed and schedules the propagation; no-op
    /// if already removed.
    pub(crate) fn remove(&mut self, v: VarId, u: NodeId) {
        let m = &mut self.member[v.index()][u.index()];
        if *m {
            *m = false;
            self.queue.push_back((v, u));
        }
    }

    /// Drains the removal worklist to fixpoint: each pop touches only
    /// the removed node's own admitted adjacency per incident pattern
    /// edge, decrementing the support counters of surviving neighbors
    /// and cascading when one hits zero. When `removed` is given,
    /// every removed pair is appended to it (callers repairing sorted
    /// candidate sets need the list; from-scratch harvesting passes
    /// `None` and pays nothing for the log).
    pub(crate) fn drain(
        &mut self,
        q: &Pattern,
        g: &Graph,
        mut removed: Option<&mut Vec<(VarId, NodeId)>>,
    ) {
        while let Some((v, u)) = self.queue.pop_front() {
            if let Some(log) = removed.as_deref_mut() {
                log.push((v, u));
            }
            for (ei, e) in q.edges().iter().enumerate() {
                if e.src == v {
                    // u left sim(src): admitted edges u → w lose one
                    // unit of `bwd` support at w.
                    for a in admitted_out(g, u, e.label) {
                        let w = a.node;
                        if self.member[e.dst.index()][w.index()] {
                            let c = &mut self.bwd[ei][w.index()];
                            debug_assert!(*c > 0, "bwd support underflow at {w:?}");
                            *c -= 1;
                            if *c == 0 {
                                self.remove(e.dst, w);
                            }
                        }
                    }
                }
                if e.dst == v {
                    // u left sim(dst): admitted edges t → u lose one
                    // unit of `fwd` support at t.
                    for a in admitted_in(g, u, e.label) {
                        let t = a.node;
                        if self.member[e.src.index()][t.index()] {
                            let c = &mut self.fwd[ei][t.index()];
                            debug_assert!(*c > 0, "fwd support underflow at {t:?}");
                            *c -= 1;
                            if *c == 0 {
                                self.remove(e.src, t);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Iterates the admitted out-adjacency of `u` for a pattern label.
#[inline]
pub(crate) fn admitted_out(g: &Graph, u: NodeId, label: PatLabel) -> &[gfd_graph::Adj] {
    match label {
        PatLabel::Sym(s) => g.neighbors_labeled(u, s),
        PatLabel::Wildcard => g.out_slice(u),
    }
}

/// Iterates the admitted in-adjacency of `w` for a pattern label.
#[inline]
pub(crate) fn admitted_in(g: &Graph, w: NodeId, label: PatLabel) -> &[gfd_graph::Adj] {
    match label {
        PatLabel::Sym(s) => g.in_neighbors_labeled(w, s),
        PatLabel::Wildcard => g.in_slice(w),
    }
}

/// The seed candidate list of one variable: its label extent narrowed
/// by the optional scope (ascending — extents and scopes both are).
pub(crate) fn seed_candidates(
    q: &Pattern,
    g: &Graph,
    scope: Option<&NodeSet>,
    v: VarId,
) -> Vec<NodeId> {
    match (q.label(v), scope) {
        (PatLabel::Sym(s), None) => g.extent(s).to_vec(),
        (PatLabel::Sym(s), Some(r)) => {
            let extent = g.extent(s);
            if r.len() < extent.len() {
                r.iter().filter(|&u| g.label(u) == s).collect()
            } else {
                extent.iter().copied().filter(|&u| r.contains(u)).collect()
            }
        }
        (PatLabel::Wildcard, Some(r)) => r.iter().collect(),
        (PatLabel::Wildcard, None) => g.nodes().collect(),
    }
}

/// Runs the worklist fixpoint from the seed sets, returning the final
/// core state and the (ascending) surviving candidate sets.
pub(crate) fn simulate_core(
    q: &Pattern,
    g: &Graph,
    scope: Option<&NodeSet>,
) -> (SimCore, Vec<Vec<NodeId>>) {
    let nvars = q.node_count();
    let nnodes = g.node_count();
    let nedges = q.edge_count();

    // Seed candidate lists and membership bitmaps from label extents.
    let mut cands: Vec<Vec<NodeId>> = Vec::with_capacity(nvars);
    let mut member: Vec<Vec<bool>> = vec![vec![false; nnodes]; nvars];
    for v in q.vars() {
        let seed = seed_candidates(q, g, scope, v);
        for &u in &seed {
            member[v.index()][u.index()] = true;
        }
        cands.push(seed);
    }

    let mut core = SimCore {
        member,
        fwd: vec![Vec::new(); nedges],
        bwd: vec![Vec::new(); nedges],
        queue: VecDeque::new(),
    };

    // Phase 1: counters against the full seed membership. Removals are
    // only *scheduled* here so every later decrement is exact.
    for (ei, e) in q.edges().iter().enumerate() {
        let mut fwd = vec![0u32; nnodes];
        let mut bwd = vec![0u32; nnodes];
        for &u in &cands[e.src.index()] {
            fwd[u.index()] = admitted_out(g, u, e.label)
                .iter()
                .filter(|a| core.member[e.dst.index()][a.node.index()])
                .count() as u32;
        }
        for &w in &cands[e.dst.index()] {
            bwd[w.index()] = admitted_in(g, w, e.label)
                .iter()
                .filter(|a| core.member[e.src.index()][a.node.index()])
                .count() as u32;
        }
        core.fwd[ei] = fwd;
        core.bwd[ei] = bwd;
    }
    for (ei, e) in q.edges().iter().enumerate() {
        for &u in &cands[e.src.index()] {
            if core.fwd[ei][u.index()] == 0 {
                core.remove(e.src, u);
            }
        }
        for &w in &cands[e.dst.index()] {
            if core.bwd[ei][w.index()] == 0 {
                core.remove(e.dst, w);
            }
        }
    }

    // Phase 2: propagate removals to fixpoint.
    core.drain(q, g, None);

    // Harvest the surviving sets (seeds were ascending, so sets are).
    let sets: Vec<Vec<NodeId>> = cands
        .iter()
        .zip(&core.member)
        .map(|(seed, m)| seed.iter().copied().filter(|u| m[u.index()]).collect())
        .collect();
    (core, sets)
}

/// Builds the per-edge candidate adjacency (both directions) over the
/// final sets and packages the [`CandidateSpace`].
pub(crate) fn harvest_space(
    q: &Pattern,
    g: &Graph,
    core: &SimCore,
    sets: Vec<Vec<NodeId>>,
) -> CandidateSpace {
    let nedges = q.edge_count();
    let mut forward = Vec::with_capacity(nedges);
    let mut reverse = Vec::with_capacity(nedges);
    for e in q.edges() {
        forward.push(edge_adjacency(
            g,
            &sets[e.src.index()],
            &core.member[e.dst.index()],
            e.label,
            Direction::Out,
        ));
        reverse.push(edge_adjacency(
            g,
            &sets[e.dst.index()],
            &core.member[e.src.index()],
            e.label,
            Direction::In,
        ));
    }
    CandidateSpace {
        sets,
        forward,
        reverse,
    }
}

/// Computes the maximal dual simulation of `q` in `g`, optionally
/// restricted to a node set (fragment-/block-local simulation), and
/// packages it as a [`CandidateSpace`].
pub fn dual_simulation(q: &Pattern, g: &Graph, scope: Option<&NodeSet>) -> CandidateSpace {
    let (core, sets) = simulate_core(q, g, scope);
    harvest_space(q, g, &core, sets)
}

pub(crate) enum Direction {
    Out,
    In,
}

/// Builds one CSR of admitted, surviving neighbors per source
/// candidate. Labeled runs arrive sorted by node; wildcard runs span
/// labels and are re-sorted per run.
pub(crate) fn edge_adjacency(
    g: &Graph,
    sources: &[NodeId],
    target_member: &[bool],
    label: PatLabel,
    dir: Direction,
) -> EdgeCandidates {
    let mut offsets = Vec::with_capacity(sources.len() + 1);
    let mut targets = Vec::new();
    offsets.push(0u32);
    for &u in sources {
        let run = match dir {
            Direction::Out => admitted_out(g, u, label),
            Direction::In => admitted_in(g, u, label),
        };
        let start = targets.len();
        targets.extend(
            run.iter()
                .map(|a| a.node)
                .filter(|w| target_member[w.index()]),
        );
        if matches!(label, PatLabel::Wildcard) && targets.len() > start + 1 {
            // Wildcard runs span labels: re-sort by node and drop the
            // repeats that parallel edges under distinct labels leave.
            targets[start..].sort_unstable();
            let mut w = start + 1;
            for i in start + 1..targets.len() {
                if targets[i] != targets[w - 1] {
                    targets[w] = targets[i];
                    w += 1;
                }
            }
            targets.truncate(w);
        }
        offsets.push(targets.len() as u32);
    }
    EdgeCandidates { offsets, targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_pattern::PatternBuilder;

    fn chain_graph() -> Graph {
        // a1 -> b1 -> c1 ; a2 -> b2 (no c); c_orphan
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        b.add_node_labeled("c");
        b.add_edge_labeled(a1, b1, "e");
        b.add_edge_labeled(b1, c1, "e");
        b.add_edge_labeled(a2, b2, "e");
        b.freeze()
    }

    fn chain_pattern(g: &Graph) -> Pattern {
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        let z = b.node("z", "c");
        b.edge(x, y, "e");
        b.edge(y, z, "e");
        b.build()
    }

    #[test]
    fn simulation_prunes_dead_branches() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let sim = dual_simulation(&q, &g, None);
        // Only the a1->b1->c1 chain survives: a2/b2 lack the c
        // continuation, orphan c lacks the incoming b.
        assert_eq!(sim.of(VarId(0)), &[NodeId(0)]);
        assert_eq!(sim.of(VarId(1)), &[NodeId(1)]);
        assert_eq!(sim.of(VarId(2)), &[NodeId(2)]);
        assert!(!sim.is_empty_anywhere());
        assert_eq!(sim.total_size(), 3);
    }

    #[test]
    fn edge_candidate_runs_follow_the_relation() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let sim = dual_simulation(&q, &g, None);
        // Edge 0 is x -> y: candidate a1 reaches exactly b1.
        assert_eq!(sim.forward[0].run(0), &[NodeId(1)]);
        // Reverse of edge 1 (y -> z): candidate c1 is reached from b1.
        assert_eq!(sim.reverse[1].run(0), &[NodeId(1)]);
    }

    #[test]
    fn simulation_superset_of_matches() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        let sim = dual_simulation(&q, &g, None);
        let ms = crate::api::find_matches(&q, &g, &crate::types::MatchOptions::unrestricted());
        for m in &ms {
            for v in q.vars() {
                assert!(sim.of(v).contains(&m.get(v)));
            }
        }
    }

    #[test]
    fn empty_simulation_means_no_match() {
        let mut gb = gfd_graph::GraphBuilder::with_fresh_vocab();
        gb.add_node_labeled("a");
        let g = gb.freeze();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "a");
        let y = b.node("y", "zzz");
        b.edge(x, y, "e");
        let q = b.build();
        let sim = dual_simulation(&q, &g, None);
        assert!(sim.is_empty_anywhere());
        assert!(!crate::api::has_match(
            &q,
            &g,
            &crate::types::MatchOptions::unrestricted()
        ));
    }

    #[test]
    fn scoped_simulation_restricts() {
        let g = chain_graph();
        let q = chain_pattern(&g);
        // Scope excluding c1 kills the whole chain.
        let scope = NodeSet::from_vec(vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
        let sim = dual_simulation(&q, &g, Some(&scope));
        assert!(sim.is_empty_anywhere());
    }

    #[test]
    fn wildcard_simulation_covers_everything_cycle() {
        // A 3-cycle with wildcard pattern edge x->y: every node simulates.
        let mut gb = gfd_graph::GraphBuilder::with_fresh_vocab();
        let ns: Vec<_> = (0..3).map(|_| gb.add_node_labeled("v")).collect();
        for i in 0..3 {
            gb.add_edge_labeled(ns[i], ns[(i + 1) % 3], "e");
        }
        let g = gb.freeze();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.wildcard_node("x");
        let y = b.wildcard_node("y");
        b.wildcard_edge(x, y);
        let q = b.build();
        let sim = dual_simulation(&q, &g, None);
        assert_eq!(sim.of(x).len(), 3);
        assert_eq!(sim.of(y).len(), 3);
    }

    #[test]
    fn self_loop_pattern_edge() {
        // x -[e]-> x matches only nodes with a self-loop.
        let mut gb = gfd_graph::GraphBuilder::with_fresh_vocab();
        let a = gb.add_node_labeled("v");
        let b2 = gb.add_node_labeled("v");
        gb.add_edge_labeled(a, a, "e");
        gb.add_edge_labeled(a, b2, "e");
        let g = gb.freeze();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "v");
        b.edge(x, x, "e");
        let q = b.build();
        let sim = dual_simulation(&q, &g, None);
        assert_eq!(sim.of(x), &[a]);
    }
}
