//! Factorized match representations: count and aggregate in
//! width-polynomial time, never materializing the match set.
//!
//! A [`Factorization`] is a *d-representation* (FDB, Olteanu et al.)
//! of one connected component's match set, laid out over the
//! [`QueryPlan`]'s bag tree:
//!
//! * **union nodes** enumerate the alternatives of one variable under
//!   a fixed context — per-bag tries over each bag's fresh variables,
//!   with pools drawn from the exact same [`CandidateSpace`] adjacency
//!   the fused WCOJ executor intersects ([`crate::plan`]);
//! * **product nodes** stitch child bags along the tree: once a bag is
//!   fully bound, each child bag's residual solve depends only on its
//!   *separator* binding (running intersection), so the children are
//!   independent and combine as a Cartesian product;
//! * child solves are **memoized on (bag, separator binding)** — the
//!   sharing that makes the representation polynomial in the
//!   decomposition width while the flat match set is exponential.
//!
//! Every node carries its subtree count, so counting is a single
//! bottom-up fold (done during construction — [`Factorization::count`]
//! is `O(1)`), and per-binding *marginal* counts come from one
//! root-to-leaf walk ([`Factorization::compute_marginals`], the FAQ
//! variable-elimination pass).
//!
//! ## Exactness
//!
//! A bag-local evaluation enforces injectivity only among variables
//! that co-occur in some bag; the fused executor enforces it globally.
//! The factorized counts are therefore an **upper bound**
//! ([`Factorization::raw_count`]) that is *exact* precisely when every
//! variable pair sharing no bag has disjoint candidate sets — a cheap
//! sorted-merge precondition checked at build time
//! ([`Factorization::is_exact`]). Single-bag plans (triangles, K4 —
//! most mined cyclic rules) are trivially exact. Counting consumers
//! fall back to enumeration when the precondition fails; *emptiness*
//! and marginal-zero tests stay valid unconditionally (the represented
//! set is a superset of the match set), which is what the validation
//! fast paths rely on.
//!
//! ## Expansion
//!
//! Consumers that genuinely need tuples expand lazily
//! ([`Factorization::for_each_expanded`]): the walk re-applies global
//! injectivity per binding, so expansion yields exactly the match set
//! even when the counts are inexact — the oracle suite pins expansion
//! against [`crate::component::ComponentSearch::collect_into`].

use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_pattern::{Pattern, VarId};
use gfd_util::FxHashMap;

use crate::plan::{bag_candidate_ok, fill_bag_pool, QueryPlan};
use crate::simulation::CandidateSpace;
use crate::table::MatchTable;
use crate::types::Flow;

/// Largest separator the memo key holds inline; plans whose
/// decomposition has a wider separator are declined (callers fall back
/// to enumeration). Mined rules never get near this.
const MAX_SEP: usize = 8;

/// Sentinel for "no node" (an empty factorization's root).
const NO_NODE: u32 = u32::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// All variables of this branch are bound; count 1.
    Leaf,
    /// Alternatives of one variable: `edges[lo..hi]` holds
    /// `(binding, child)` pairs; count = Σ child counts.
    Union,
    /// Independent child-bag solves: `parts[lo..hi]` holds child node
    /// indices; count = Π part counts.
    Product,
}

#[derive(Clone, Copy, Debug)]
struct FNode {
    kind: Kind,
    /// The bound variable (`Union` only; `u32::MAX` otherwise).
    var: u32,
    lo: u32,
    hi: u32,
}

/// Memo key: one bag under one separator binding. Separator values
/// appear in the bag's ascending variable order, so the key is a pure
/// function of the binding.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    bag: u32,
    len: u8,
    sep: [u32; MAX_SEP],
}

/// A factorized d-representation of one connected pattern's match set.
/// Built by [`factorize`] / [`FactorScratch::build`]; immutable
/// afterwards (marginals attach via [`compute_marginals`]
/// (Factorization::compute_marginals) before the value is shared).
#[derive(Clone, Debug, Default)]
pub struct Factorization {
    nodes: Vec<FNode>,
    /// Subtree count per node (represented assignments, saturating).
    counts: Vec<u64>,
    /// Union alternatives: `(binding, child node)`.
    edges: Vec<(NodeId, u32)>,
    /// Product parts: child node indices.
    parts: Vec<u32>,
    root: u32,
    n_vars: usize,
    /// True when `raw_count` equals the injective match count: every
    /// variable pair sharing no bag has disjoint candidate sets, and
    /// no count saturated.
    exact: bool,
    /// True when some count saturated at `u64::MAX`: subtree counts
    /// and marginals are then unreliable even as upper-bound *sums*
    /// (a saturated total breaks `Σ marginal = raw_count`), so
    /// aggregate consumers must decline. Inexactness without overflow
    /// keeps those identities — only injectivity is over-counted.
    overflow: bool,
    /// Per-`(var, node)` marginal counts — how many represented
    /// assignments bind `var` to `node`. `None` until
    /// [`compute_marginals`](Factorization::compute_marginals) runs.
    marginals: Option<FxHashMap<(u32, u32), u64>>,
}

impl Factorization {
    /// Number of represented assignments (saturating). An upper bound
    /// on the match count; equal to it iff [`is_exact`]
    /// (Factorization::is_exact). A zero here is *always* conclusive:
    /// the represented set contains every match.
    pub fn raw_count(&self) -> u64 {
        if self.root == NO_NODE {
            0
        } else {
            self.counts[self.root as usize]
        }
    }

    /// The exact match count, when the factorization is exact.
    pub fn count(&self) -> Option<u64> {
        self.exact.then(|| self.raw_count())
    }

    /// True when the subtree counts equal injective match counts (see
    /// the module docs' exactness precondition).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// True when counting saturated: every derived aggregate
    /// (`raw_count`, marginals) is garbage beyond "huge". Superset
    /// arguments that compare marginal sums against `raw_count` must
    /// check this — mere inexactness preserves those identities,
    /// saturation does not.
    pub fn overflowed(&self) -> bool {
        self.overflow
    }

    /// Number of variables of the factorized pattern.
    pub fn arity(&self) -> usize {
        self.n_vars
    }

    /// Number of union/product nodes — the size counting actually
    /// touches, versus `raw_count()` flat rows.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes — the registry's accounting measure,
    /// same contract as `CandidateSpace::approx_bytes`.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<FNode>()
            + self.counts.len() * 8
            + self.edges.len() * std::mem::size_of::<(NodeId, u32)>()
            + self.parts.len() * 4
            + self.marginals.as_ref().map_or(0, |m| {
                m.len() * (std::mem::size_of::<((u32, u32), u64)>() + 8)
            })
    }

    /// Computes all per-binding marginal counts in one root-to-leaf
    /// pass (down-weights × subtree counts): `marginal(v, n)` is the
    /// number of represented assignments with `h(v) = n` — the FAQ
    /// answer for every singleton free variable at once. A no-op when
    /// already computed or when a count saturated (marginals would be
    /// meaningless).
    pub fn compute_marginals(&mut self) {
        if self.marginals.is_some() || self.root == NO_NODE {
            if self.marginals.is_none() {
                self.marginals = Some(FxHashMap::default());
            }
            return;
        }
        let mut marginals: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        // Children always precede parents in the arena (post-order
        // construction), so a descending sweep sees every parent
        // before its children.
        let mut outer = vec![0u128; self.nodes.len()];
        outer[self.root as usize] = 1;
        for idx in (0..self.nodes.len()).rev() {
            let o = outer[idx];
            if o == 0 {
                continue;
            }
            let node = self.nodes[idx];
            match node.kind {
                Kind::Leaf => {}
                Kind::Union => {
                    for &(gv, child) in &self.edges[node.lo as usize..node.hi as usize] {
                        outer[child as usize] += o;
                        let add = o.saturating_mul(self.counts[child as usize] as u128);
                        let m = marginals.entry((node.var, gv.0)).or_insert(0);
                        *m = m.saturating_add(add.min(u64::MAX as u128) as u64);
                    }
                }
                Kind::Product => {
                    let parts = &self.parts[node.lo as usize..node.hi as usize];
                    // Reachable products have no zero-count part (they
                    // would have been pruned), so sibling weight is an
                    // exact division of the total.
                    let total: u128 = parts.iter().fold(1u128, |a, &p| {
                        a.saturating_mul(self.counts[p as usize] as u128)
                    });
                    for &p in parts {
                        let siblings = total / (self.counts[p as usize] as u128).max(1);
                        outer[p as usize] += o.saturating_mul(siblings);
                    }
                }
            }
        }
        self.marginals = Some(marginals);
    }

    /// The marginal count of `h(var) = node` over represented
    /// assignments — exact match marginals iff [`is_exact`]
    /// (Factorization::is_exact), an upper bound otherwise (a zero is
    /// always conclusive). `None` until
    /// [`compute_marginals`](Factorization::compute_marginals) ran.
    pub fn marginal(&self, var: VarId, node: NodeId) -> Option<u64> {
        self.marginals
            .as_ref()
            .map(|m| m.get(&(var.0, node.0)).copied().unwrap_or(0))
    }

    /// True once [`compute_marginals`](Factorization::compute_marginals)
    /// ran (the registry computes them before sharing a factorization).
    pub fn has_marginals(&self) -> bool {
        self.marginals.is_some()
    }

    /// Lazily expands the factorization into flat matches, re-applying
    /// **global** injectivity per binding — the stream is exactly the
    /// match set even when the counts are inexact. Returns `false` if
    /// the callback broke early.
    pub fn for_each_expanded(&self, f: &mut dyn FnMut(&[NodeId]) -> Flow) -> bool {
        if self.root == NO_NODE {
            return true;
        }
        let mut assigned = vec![NodeId(u32::MAX); self.n_vars];
        let mut pending: Vec<u32> = Vec::new();
        self.walk(self.root, &mut pending, &mut assigned, f).is_ok()
    }

    /// Expands every match into `table` (stride = pattern arity).
    pub fn expand_into(&self, table: &mut MatchTable) {
        debug_assert_eq!(table.arity(), self.n_vars);
        self.for_each_expanded(&mut |m| {
            table.push_row(m);
            Flow::Continue
        });
    }

    fn walk(
        &self,
        idx: u32,
        pending: &mut Vec<u32>,
        assigned: &mut Vec<NodeId>,
        f: &mut dyn FnMut(&[NodeId]) -> Flow,
    ) -> Result<(), ()> {
        let node = self.nodes[idx as usize];
        match node.kind {
            Kind::Leaf => {
                // Continue with the next pending product part, or emit.
                if let Some(next) = pending.pop() {
                    let r = self.walk(next, pending, assigned, f);
                    pending.push(next);
                    r
                } else {
                    match f(assigned) {
                        Flow::Continue => Ok(()),
                        Flow::Break => Err(()),
                    }
                }
            }
            Kind::Union => {
                for &(gv, child) in &self.edges[node.lo as usize..node.hi as usize] {
                    if assigned.contains(&gv) {
                        continue; // global injectivity
                    }
                    assigned[node.var as usize] = gv;
                    let r = self.walk(child, pending, assigned, f);
                    assigned[node.var as usize] = NodeId(u32::MAX);
                    r?;
                }
                Ok(())
            }
            Kind::Product => {
                let parts = &self.parts[node.lo as usize..node.hi as usize];
                for &p in parts[1..].iter().rev() {
                    pending.push(p);
                }
                let r = self.walk(parts[0], pending, assigned, f);
                for _ in 1..parts.len() {
                    pending.pop();
                }
                r
            }
        }
    }

    /// Transports a factorization computed for a class representative
    /// onto an isomorphic member: `map` sends representative variables
    /// to member variables (an `IsoWitness` inverse). The
    /// union/product structure, counts and exactness are
    /// label-invariant; only the variable ids on union nodes (and
    /// marginal keys) are rewritten.
    pub fn relabel(&self, map: impl Fn(VarId) -> VarId) -> Factorization {
        let nodes = self
            .nodes
            .iter()
            .map(|n| FNode {
                // Empty unions (dead-child markers) carry the same
                // `u32::MAX` sentinel as leaves — not a variable.
                var: if n.kind == Kind::Union && n.var != u32::MAX {
                    map(VarId(n.var)).0
                } else {
                    n.var
                },
                ..*n
            })
            .collect();
        let marginals = self.marginals.as_ref().map(|m| {
            m.iter()
                .map(|(&(v, n), &c)| ((map(VarId(v)).0, n), c))
                .collect()
        });
        Factorization {
            nodes,
            counts: self.counts.clone(),
            edges: self.edges.clone(),
            parts: self.parts.clone(),
            root: self.root,
            n_vars: self.n_vars,
            exact: self.exact,
            overflow: self.overflow,
            marginals,
        }
    }
}

/// Caller-owned reusable state for [`FactorScratch::build`]: the
/// output arenas, the memo table, and the per-depth pool/alternative
/// buffers. A warm caller re-factorizes (and re-counts) with zero
/// steady-state heap allocation — the property `alloc_probe` pins.
#[derive(Default)]
pub struct FactorScratch {
    fact: Factorization,
    memo: FxHashMap<MemoKey, u32>,
    pools: Vec<Vec<NodeId>>,
    alts: Vec<Vec<(NodeId, u32)>>,
    childbuf: Vec<Vec<u32>>,
    assigned: Vec<NodeId>,
    saved: Vec<(u32, NodeId)>,
    masks: Vec<u128>,
}

impl FactorScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The factorization of the last successful [`build`]
    /// (FactorScratch::build) — borrow it for counting; clone it (or
    /// use [`factorize`]) for an owned copy to share.
    pub fn fact(&self) -> &Factorization {
        &self.fact
    }

    /// Builds the factorization of `q`'s match set in `g` under `cs`
    /// into this scratch, honoring restriction and pins exactly like
    /// [`crate::plan::execute_plan`]. Returns `false` (leaving the
    /// scratch untouched for counting purposes) when the plan has no
    /// bag, more than one root (disconnected pattern), or a separator
    /// wider than the memo key — callers then fall back to
    /// enumeration.
    pub fn build(
        &mut self,
        q: &Pattern,
        g: &Graph,
        cs: &CandidateSpace,
        plan: &QueryPlan,
        restriction: Option<&NodeSet>,
        pins: &[(VarId, NodeId)],
    ) -> bool {
        debug_assert_eq!(
            plan.n_vars,
            q.node_count(),
            "plan built for another pattern"
        );
        let n = q.node_count();
        if plan.bags.is_empty()
            || plan.td.bags.iter().filter(|b| b.parent.is_none()).count() != 1
            || plan.td.max_separator() > MAX_SEP
        {
            return false;
        }
        // Reset arenas; node 0 is the shared leaf.
        let fact = &mut self.fact;
        fact.nodes.clear();
        fact.counts.clear();
        fact.edges.clear();
        fact.parts.clear();
        fact.marginals = None;
        fact.overflow = false;
        fact.n_vars = n;
        fact.nodes.push(FNode {
            kind: Kind::Leaf,
            var: u32::MAX,
            lo: 0,
            hi: 0,
        });
        fact.counts.push(1);
        // Exactness precondition: pairs sharing no bag must have
        // disjoint candidate sets (single-bag plans pass vacuously).
        let exact = if plan.td.var_bag_masks_into(n, &mut self.masks) {
            let masks = &self.masks;
            let mut ok = true;
            'outer: for u in 0..n {
                for v in u + 1..n {
                    if masks[u] & masks[v] == 0 && !disjoint(&cs.sets[u], &cs.sets[v]) {
                        ok = false;
                        break 'outer;
                    }
                }
            }
            ok
        } else {
            false
        };
        // Pin screening, mirroring `execute_plan`: colliding pins (or
        // pins outside the simulation relation) anchor nothing.
        for (i, &(v1, n1)) in pins.iter().enumerate() {
            for &(v2, n2) in &pins[i + 1..] {
                if v1 != v2 && n1 == n2 {
                    fact.root = NO_NODE;
                    fact.exact = true;
                    return true;
                }
            }
        }
        for &(v, node) in pins {
            if cs.sets[v.index()].binary_search(&node).is_err() {
                fact.root = NO_NODE;
                fact.exact = true;
                return true;
            }
        }
        self.memo.clear();
        if self.pools.len() < n + 1 {
            self.pools.resize_with(n + 1, Vec::new);
        }
        if self.alts.len() < n + 1 {
            self.alts.resize_with(n + 1, Vec::new);
        }
        if self.childbuf.len() < n + 1 {
            self.childbuf.resize_with(n + 1, Vec::new);
        }
        self.assigned.clear();
        self.assigned.resize(n, NodeId(u32::MAX));
        self.saved.clear();

        let root_bag = plan.seq[0] as usize;
        debug_assert!(plan.td.bags[root_bag].parent.is_none());
        let mut b = Builder {
            q,
            g,
            cs,
            restriction,
            pins,
            plan,
            fact: &mut self.fact,
            memo: &mut self.memo,
            pools: &mut self.pools,
            alts: &mut self.alts,
            childbuf: &mut self.childbuf,
            assigned: &mut self.assigned,
            saved: &mut self.saved,
            overflow: false,
        };
        let root = b.trie(root_bag, 0, 0);
        let overflow = b.overflow;
        self.fact.root = root;
        self.fact.exact = exact && !overflow;
        self.fact.overflow = overflow;
        true
    }

    /// One-shot exact count: builds into the scratch and reads the
    /// root fold. `None` when the plan was declined or the exactness
    /// precondition fails — the caller falls back to enumeration.
    #[allow(clippy::too_many_arguments)]
    pub fn count(
        &mut self,
        q: &Pattern,
        g: &Graph,
        cs: &CandidateSpace,
        plan: &QueryPlan,
        restriction: Option<&NodeSet>,
        pins: &[(VarId, NodeId)],
    ) -> Option<u64> {
        if !self.build(q, g, cs, plan, restriction, pins) {
            return None;
        }
        self.fact.count()
    }
}

/// Builds an owned [`Factorization`] of `q`'s unrestricted, unpinned
/// match set — the registry's per-class artifact (marginals included).
/// `None` when the plan shape is declined (see [`FactorScratch::build`]).
pub fn factorize(
    q: &Pattern,
    g: &Graph,
    cs: &CandidateSpace,
    plan: &QueryPlan,
) -> Option<Factorization> {
    let mut scratch = FactorScratch::new();
    if !scratch.build(q, g, cs, plan, None, &[]) {
        return None;
    }
    let mut fact = scratch.fact;
    fact.compute_marginals();
    Some(fact)
}

/// Sorted-slice disjointness (merge walk).
fn disjoint(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

struct Builder<'a> {
    q: &'a Pattern,
    g: &'a Graph,
    cs: &'a CandidateSpace,
    restriction: Option<&'a NodeSet>,
    pins: &'a [(VarId, NodeId)],
    plan: &'a QueryPlan,
    fact: &'a mut Factorization,
    memo: &'a mut FxHashMap<MemoKey, u32>,
    pools: &'a mut Vec<Vec<NodeId>>,
    alts: &'a mut Vec<Vec<(NodeId, u32)>>,
    childbuf: &'a mut Vec<Vec<u32>>,
    assigned: &'a mut Vec<NodeId>,
    saved: &'a mut Vec<(u32, NodeId)>,
    overflow: bool,
}

impl Builder<'_> {
    /// The union-trie over bag `bi`'s fresh variables, entered with
    /// `assigned` holding exactly the bag's separator binding.
    /// `gdepth` is the number of variables bound along the current
    /// root-to-here path (indexes the per-depth scratch buffers).
    fn trie(&mut self, bi: usize, d: usize, gdepth: usize) -> u32 {
        let bag = &self.plan.bags[bi];
        let mut d = d;
        // Separator variables are already bound — skip them, exactly
        // like the fused executor skips variables earlier bags bound.
        while d < bag.order.len() && self.assigned[bag.order[d].index()].0 != u32::MAX {
            d += 1;
        }
        if d == bag.order.len() {
            return self.product(bi, gdepth);
        }
        let sv = bag.order[d];
        let mut pool = std::mem::take(&mut self.pools[gdepth]);
        fill_bag_pool(
            self.q,
            self.cs,
            self.restriction,
            self.pins,
            bag,
            sv,
            self.assigned,
            &mut pool,
        );
        let mut alts = std::mem::take(&mut self.alts[gdepth]);
        alts.clear();
        let mut total = 0u64;
        for &gv in &pool {
            if !bag_candidate_ok(self.q, self.g, self.restriction, bag, sv, gv, self.assigned) {
                continue;
            }
            self.assigned[sv.index()] = gv;
            let child = self.trie(bi, d + 1, gdepth + 1);
            self.assigned[sv.index()] = NodeId(u32::MAX);
            let c = self.fact.counts[child as usize];
            if c == 0 {
                continue; // dead branch: prune
            }
            total = match total.checked_add(c) {
                Some(t) => t,
                None => {
                    self.overflow = true;
                    u64::MAX
                }
            };
            alts.push((gv, child));
        }
        let lo = self.fact.edges.len() as u32;
        self.fact.edges.extend_from_slice(&alts);
        let hi = self.fact.edges.len() as u32;
        self.fact.nodes.push(FNode {
            kind: Kind::Union,
            var: sv.0,
            lo,
            hi,
        });
        self.fact.counts.push(total);
        self.pools[gdepth] = pool;
        self.alts[gdepth] = alts;
        (self.fact.nodes.len() - 1) as u32
    }

    /// Bag `bi` is fully bound: combine its children's residual solves
    /// as a product, each child memoized on its separator binding.
    fn product(&mut self, bi: usize, gdepth: usize) -> u32 {
        let nbags = self.plan.td.bags.len();
        let mut buf = std::mem::take(&mut self.childbuf[gdepth]);
        buf.clear();
        let mut zero = false;
        for child in 0..nbags {
            if self.plan.td.bags[child].parent != Some(bi) {
                continue;
            }
            let node = self.solve_child(child, bi, gdepth);
            if self.fact.counts[node as usize] == 0 {
                zero = true;
                break;
            }
            buf.push(node);
        }
        let idx = if zero {
            // A dead child kills the whole binding: an empty union
            // (count 0) that the parent trie prunes.
            self.fact.nodes.push(FNode {
                kind: Kind::Union,
                var: u32::MAX,
                lo: 0,
                hi: 0,
            });
            self.fact.counts.push(0);
            (self.fact.nodes.len() - 1) as u32
        } else if buf.is_empty() {
            0 // the shared leaf
        } else if buf.len() == 1 {
            buf[0] // a product of one collapses to its part
        } else {
            let lo = self.fact.parts.len() as u32;
            self.fact.parts.extend_from_slice(&buf);
            let hi = self.fact.parts.len() as u32;
            let mut total = 1u64;
            for &p in &buf {
                total = match total.checked_mul(self.fact.counts[p as usize]) {
                    Some(t) => t,
                    None => {
                        self.overflow = true;
                        u64::MAX
                    }
                };
            }
            self.fact.nodes.push(FNode {
                kind: Kind::Product,
                var: u32::MAX,
                lo,
                hi,
            });
            self.fact.counts.push(total);
            (self.fact.nodes.len() - 1) as u32
        };
        self.childbuf[gdepth] = buf;
        idx
    }

    /// Solves child bag `c` under its separator binding (projected
    /// from the parent's full binding), memoized on
    /// `(c, separator values)` — the d-representation's sharing.
    fn solve_child(&mut self, c: usize, parent: usize, gdepth: usize) -> u32 {
        let mut key = MemoKey {
            bag: c as u32,
            len: 0,
            sep: [0; MAX_SEP],
        };
        for v in &self.plan.td.bags[c].vars {
            let a = self.assigned[v.index()];
            if a.0 != u32::MAX {
                key.sep[key.len as usize] = a.0;
                key.len += 1;
            }
        }
        if let Some(&node) = self.memo.get(&key) {
            return node;
        }
        // Clear everything the child cannot see (the parent's
        // non-separator variables), so the solve is a pure function of
        // the memo key — and bag-local injectivity inside the child is
        // checked against exactly its own visible binding.
        let mark = self.saved.len();
        for vi in 0..self.plan.td.bags[parent].vars.len() {
            let v = self.plan.td.bags[parent].vars[vi];
            if self.assigned[v.index()].0 != u32::MAX && !self.plan.td.bags[c].vars.contains(&v) {
                self.saved.push((v.0, self.assigned[v.index()]));
                self.assigned[v.index()] = NodeId(u32::MAX);
            }
        }
        let node = self.trie(c, 0, gdepth);
        for k in (mark..self.saved.len()).rev() {
            let (v, a) = self.saved[k];
            self.assigned[v as usize] = a;
        }
        self.saved.truncate(mark);
        self.memo.insert(key, node);
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentSearch;
    use crate::simulation::dual_simulation;
    use gfd_graph::GraphBuilder;
    use gfd_pattern::PatternBuilder;

    fn triangle_pattern(vocab: &std::sync::Arc<gfd_graph::Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        let z = b.node("z", "c");
        b.edge(x, y, "e1");
        b.edge(y, z, "e2");
        b.edge(z, x, "e3");
        b.build()
    }

    fn skewed_graph(per_layer: usize, closures: usize) -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let al: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("a")).collect();
        let bl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("b")).collect();
        let cl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("c")).collect();
        for &a in &al {
            for &x in &bl {
                b.add_edge_labeled(a, x, "e1");
            }
        }
        for i in 0..per_layer {
            b.add_edge_labeled(bl[i], cl[i], "e2");
        }
        for i in 0..closures.min(per_layer) {
            b.add_edge_labeled(cl[i], al[i], "e3");
        }
        b.freeze()
    }

    fn oracle(q: &Pattern, g: &Graph) -> Vec<Vec<NodeId>> {
        let mut out = ComponentSearch::new(q, g).collect_all();
        out.sort();
        out
    }

    fn build(q: &Pattern, g: &Graph) -> Factorization {
        let cs = dual_simulation(q, g, None);
        let plan = QueryPlan::new(q);
        factorize(q, g, &cs, &plan).expect("plan shape is factorizable")
    }

    #[test]
    fn triangle_count_is_exact() {
        let g = skewed_graph(12, 4);
        let q = triangle_pattern(g.vocab());
        let f = build(&q, &g);
        assert!(f.is_exact(), "single-bag plan is always exact");
        assert_eq!(f.count(), Some(oracle(&q, &g).len() as u64));
        assert_eq!(f.count(), Some(4));
    }

    #[test]
    fn four_cycle_count_and_expansion() {
        // Distinct labels per variable: the cross-bag pair has
        // disjoint candidate sets, so two-bag counting is exact.
        let mut b = GraphBuilder::with_fresh_vocab();
        let al: Vec<NodeId> = (0..4).map(|_| b.add_node_labeled("a")).collect();
        let bl: Vec<NodeId> = (0..4).map(|_| b.add_node_labeled("b")).collect();
        let cl: Vec<NodeId> = (0..4).map(|_| b.add_node_labeled("c")).collect();
        let dl: Vec<NodeId> = (0..4).map(|_| b.add_node_labeled("d")).collect();
        for i in 0..4 {
            for j in 0..4 {
                b.add_edge_labeled(al[i], bl[j], "e1");
                b.add_edge_labeled(cl[i], dl[j], "f3");
            }
            b.add_edge_labeled(bl[i], cl[i], "e2");
            b.add_edge_labeled(dl[i], al[i], "f4");
        }
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.node("x", "a");
        let y = pb.node("y", "b");
        let z = pb.node("z", "c");
        let w = pb.node("w", "d");
        pb.edge(x, y, "e1");
        pb.edge(y, z, "e2");
        pb.edge(z, w, "f3");
        pb.edge(w, x, "f4");
        let q = pb.build();
        let plan = QueryPlan::new(&q);
        assert_eq!(plan.bag_count(), 2, "4-cycle splits into two bags");
        let f = build(&q, &g);
        let want = oracle(&q, &g);
        assert!(f.is_exact());
        assert_eq!(f.count(), Some(want.len() as u64));
        let mut got = Vec::new();
        f.for_each_expanded(&mut |m| {
            got.push(m.to_vec());
            Flow::Continue
        });
        got.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn sharing_beats_materialization() {
        // Dense bipartite a→b layer under a 2-bag pattern: the match
        // count is quadratic in the layer while the factorization
        // stays linear — the whole point of the representation.
        let g = skewed_graph(40, 40);
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.node("x", "a");
        let y = pb.node("y", "b");
        let z = pb.node("z", "c");
        pb.edge(x, y, "e1");
        pb.edge(y, z, "e2");
        let q = pb.build();
        let f = build(&q, &g);
        assert!(f.is_exact());
        assert_eq!(f.count(), Some(40 * 40));
        assert!(
            (f.node_count() as u64) < f.raw_count(),
            "{} nodes must undercut {} rows",
            f.node_count(),
            f.raw_count()
        );
    }

    #[test]
    fn marginals_sum_to_total_per_variable() {
        let g = skewed_graph(10, 5);
        let q = triangle_pattern(g.vocab());
        let f = build(&q, &g);
        assert!(f.has_marginals());
        let total = f.raw_count();
        for v in q.vars() {
            let sum: u64 = g.nodes().filter_map(|n| f.marginal(v, n)).sum();
            assert_eq!(sum, total, "marginals of {v:?} must fold to the total");
        }
        // And each pinned enumeration agrees with its marginal.
        for n in g.nodes() {
            let x = q.var_by_name("x").unwrap();
            let pinned = ComponentSearch::new(&q, &g).pin(x, n).collect_all().len();
            assert_eq!(f.marginal(x, n), Some(pinned as u64));
        }
    }

    #[test]
    fn pins_and_restriction_flow_through_build() {
        let g = skewed_graph(8, 3);
        let q = triangle_pattern(g.vocab());
        let cs = dual_simulation(&q, &g, None);
        let plan = QueryPlan::new(&q);
        let x = q.var_by_name("x").unwrap();
        let all = oracle(&q, &g);
        let mut scratch = FactorScratch::new();
        for m in &all {
            let pins = [(x, m[x.index()])];
            let got = scratch.count(&q, &g, &cs, &plan, None, &pins);
            let want = ComponentSearch::new(&q, &g)
                .pin(x, m[x.index()])
                .collect_all()
                .len() as u64;
            assert_eq!(got, Some(want));
        }
        // Colliding pins are empty; restriction to one match's nodes
        // counts exactly that match.
        let y = q.var_by_name("y").unwrap();
        let node = all[0][x.index()];
        assert_eq!(
            scratch.count(&q, &g, &cs, &plan, None, &[(x, node), (y, node)]),
            Some(0)
        );
        let block = NodeSet::from_vec(all[0].clone());
        assert_eq!(
            scratch.count(&q, &g, &cs, &plan, Some(&block), &[]),
            Some(1)
        );
    }

    #[test]
    fn shared_label_overcount_is_detected_not_returned() {
        // All variables share one label: the cross-bag pair of a
        // 4-cycle has overlapping candidate sets, so bag-local
        // injectivity can overcount — `count()` must refuse.
        let mut b = GraphBuilder::with_fresh_vocab();
        let n: Vec<NodeId> = (0..6).map(|_| b.add_node_labeled("t")).collect();
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    b.add_edge_labeled(n[i], n[j], "e");
                }
            }
        }
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let vs: Vec<VarId> = (0..4).map(|i| pb.node(&format!("v{i}"), "t")).collect();
        for i in 0..4 {
            pb.edge(vs[i], vs[(i + 1) % 4], "e");
        }
        let q = pb.build();
        let plan = QueryPlan::new(&q);
        assert!(plan.bag_count() >= 2, "premise: a multi-bag plan");
        let f = build(&q, &g);
        assert!(!f.is_exact(), "overlapping cross-bag sets are inexact");
        assert_eq!(f.count(), None);
        assert!(f.raw_count() >= oracle(&q, &g).len() as u64, "upper bound");
        // Expansion re-applies global injectivity and stays exact.
        let mut got = Vec::new();
        f.for_each_expanded(&mut |m| {
            got.push(m.to_vec());
            Flow::Continue
        });
        got.sort();
        assert_eq!(got, oracle(&q, &g));
    }

    #[test]
    fn relabel_transports_counts_and_marginals() {
        use gfd_pattern::iso_witness;
        let g = skewed_graph(6, 3);
        let rep = triangle_pattern(g.vocab());
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let z = pb.node("z", "c");
        let x = pb.node("x", "a");
        let y = pb.node("y", "b");
        pb.edge(x, y, "e1");
        pb.edge(y, z, "e2");
        pb.edge(z, x, "e3");
        let member = pb.build();
        let w = iso_witness(&member, &rep).expect("isomorphic");
        let rep_fact = build(&rep, &g);
        let inv = w.inverse();
        let fact = rep_fact.relabel(|v| inv.map(v));
        assert_eq!(fact.count(), Some(oracle(&member, &g).len() as u64));
        let mx = member.var_by_name("x").unwrap();
        for n in g.nodes() {
            let pinned = ComponentSearch::new(&member, &g)
                .pin(mx, n)
                .collect_all()
                .len() as u64;
            assert_eq!(fact.marginal(mx, n), Some(pinned));
        }
    }

    #[test]
    fn empty_space_counts_zero() {
        let g = skewed_graph(4, 0); // no closures: no triangle
        let q = triangle_pattern(g.vocab());
        let f = build(&q, &g);
        assert_eq!(f.count(), Some(0));
        let mut rows = 0;
        f.for_each_expanded(&mut |_| {
            rows += 1;
            Flow::Continue
        });
        assert_eq!(rows, 0);
    }
}
