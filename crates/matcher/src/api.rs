//! Top-level matching API over full (possibly disconnected) patterns.
//!
//! Enumeration is filter-and-refine: each connected component may
//! first be *filtered* through [`dual_simulation`] (per the
//! [`SimFilter`] policy), which either proves the component matchless
//! or hands the refiner a pruned [`CandidateSpace`] to *refine*.
//! Connected patterns stream their matches straight to the callback;
//! only genuinely disconnected patterns buffer per-component matches
//! for the disjointness join.
//!
//! Refinement itself picks between two engines per component: cyclic
//! filtered components run a decomposition-based [`QueryPlan`] whose
//! bags are solved by worst-case-optimal multiway intersection
//! ([`crate::plan::execute_plan`]); everything else backtracks
//! ([`ComponentSearch`]). All entry points have `*_with` variants
//! taking a caller-owned [`MatchScratch`] so repeated detection calls
//! run allocation-free in steady state.

use gfd_graph::{Graph, NodeId};
use gfd_pattern::{signature::decompose, PatLabel, Pattern, VarId};

use crate::component::{ComponentSearch, SearchScratch, StopReason};
use crate::factorize::{FactorScratch, Factorization};
use crate::join::{join_tables, ComponentTable, JoinScratch};
use crate::plan::{execute_plan, PlanScratch, QueryPlan};
use crate::simulation::{dual_simulation, CandidateSpace};
use crate::table::MatchTable;
use crate::types::{Flow, Match, MatchOptions, SimFilter};

/// Caller-owned reusable buffers for the matching API: the
/// backtracker's [`SearchScratch`], the plan executor's
/// [`PlanScratch`], and the disconnected-pattern join state. A fresh
/// default is always valid; keeping one alive across calls removes
/// the per-call heap traffic of `for_each_match`/`count_matches`.
#[derive(Default)]
pub struct MatchScratch {
    search: SearchScratch,
    plan: PlanScratch,
    join: JoinScratch,
    tables: Vec<MatchTable>,
    factor: FactorScratch,
}

impl MatchScratch {
    /// The factorization left behind by the most recent factorized
    /// count — for introspecting exactness, node counts and byte size
    /// without re-deriving them.
    pub fn last_factorization(&self) -> &Factorization {
        self.factor.fact()
    }
}

/// Outcome of a streaming enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnumOutcome {
    /// All matches were visited.
    Complete,
    /// Stopped early: by callback, match cap, or step budget.
    Stopped(StopReason),
}

/// Smallest seed pool at which [`SimFilter::Auto`] turns simulation
/// on: below this, a raw backtracking scan is cheaper than computing
/// the filter.
///
/// Re-measured after pools moved to `CandidateSpace` (see
/// `crates/bench/tests/gate_measure.rs`, runnable with `--ignored`):
/// on the mined-rule corpus the filter's payoff is proving components
/// *matchless* before enumeration — on matchable cyclic components it
/// is overhead at every pool size, so the corpus-level winner is flat
/// for thresholds 128–1024 (Auto ≈ Never within noise, Auto ahead
/// when empty components occur) and distinctly worse at 32 (~25%
/// slower on 3-node rules). 128 is the start of that plateau; keep it.
const SIM_AUTO_MIN_POOL: usize = 128;

/// The `Auto` heuristic: filter when the component is *cyclic* (edges
/// ≥ nodes — includes parallel-edge multi-constraints) and its
/// cheapest entry pool is large enough for the filter to pay for
/// itself. On trees the refined backtracker already expands only
/// adjacency intersections, and measured mined-rule workloads run
/// faster unfiltered; cycles are where simulation prunes what
/// backtracking discovers late.
fn auto_simulate(cq: &Pattern, g: &Graph, opts: &MatchOptions) -> bool {
    if cq.edge_count() < cq.node_count() {
        return false;
    }
    let pool = |v| match cq.label(v) {
        PatLabel::Sym(s) => g.extent(s).len(),
        PatLabel::Wildcard => opts
            .restriction
            .as_ref()
            .map_or(g.node_count(), |r| r.len()),
    };
    cq.vars().map(pool).min().unwrap_or(0) >= SIM_AUTO_MIN_POOL
}

/// Computes the component's candidate space per the filter policy;
/// `None` means "search unfiltered".
fn filter_component(cq: &Pattern, g: &Graph, opts: &MatchOptions) -> Option<CandidateSpace> {
    let simulate = match opts.sim {
        SimFilter::Always => true,
        SimFilter::Never => false,
        SimFilter::Auto => auto_simulate(cq, g, opts),
    };
    simulate.then(|| dual_simulation(cq, g, opts.restriction.as_ref()))
}

/// Enumerates matches of `q` in `g`, calling `f` for each match
/// `h(x̄)` (node images indexed by variable id). Respects restriction,
/// pins and budget from `opts`.
pub fn for_each_match(
    q: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    for_each_match_with(q, g, opts, &mut MatchScratch::default(), f)
}

/// [`for_each_match`] with caller-owned scratch buffers — repeated
/// calls (detection loops, benchmarks) reuse every pool, table and
/// join arena instead of reallocating them per call.
pub fn for_each_match_with(
    q: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    scratch: &mut MatchScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    debug_assert!(
        std::sync::Arc::ptr_eq(q.vocab(), g.vocab()),
        "pattern and graph must share a vocabulary"
    );
    if q.node_count() == 0 {
        return EnumOutcome::Complete; // the empty pattern has no matches
    }

    // A connected pattern streams matches straight from the component
    // search — no buffering, no join, and (unlike `decompose`) no
    // pattern clone to check.
    if q.is_connected() {
        let cs = filter_component(q, g, opts);
        return stream_single_component(q, g, opts, cs.as_ref(), scratch, f);
    }

    let parts = decompose(q);
    let step_cap = opts.budget.max_steps.unwrap_or(u64::MAX);
    let mut steps_left = step_cap;
    let cap = opts.budget.max_matches.unwrap_or(usize::MAX);

    // Disconnected: enumerate matches per component (mapping pins into
    // local vars) into flat tables, then join under global injectivity
    // — the buffer is one scratch arena per component, not one `Vec`
    // per match.
    let MatchScratch {
        search: search_scratch,
        join,
        tables,
        ..
    } = scratch;
    if tables.len() < parts.len() {
        tables.resize_with(parts.len(), MatchTable::default);
    }
    let mut vars_per_part: Vec<&[VarId]> = Vec::with_capacity(parts.len());
    for ((cq, orig_vars), table) in parts.iter().zip(tables.iter_mut()) {
        let cs = filter_component(cq, g, opts);
        if cs.as_ref().is_some_and(CandidateSpace::is_empty_anywhere) {
            return EnumOutcome::Complete; // no match of this component → none of Q
        }
        let mut search = ComponentSearch::new(cq, g)
            .with_scratch(std::mem::take(search_scratch))
            .max_steps(steps_left);
        if let Some(r) = &opts.restriction {
            search = search.restrict(r);
        }
        if let Some(cs) = &cs {
            search = search.candidate_space(cs);
        }
        for &(var, node) in &opts.pins {
            if let Some(local) = orig_vars.iter().position(|&v| v == var) {
                search = search.pin(VarId(local as u32), node);
            }
        }
        table.reset(cq.node_count());
        let reason = search.collect_into(table);
        steps_left = steps_left.saturating_sub(search.steps());
        *search_scratch = search.into_scratch();
        if reason == StopReason::BudgetExhausted {
            return EnumOutcome::Stopped(StopReason::BudgetExhausted);
        }
        if table.is_empty() {
            return EnumOutcome::Complete; // no match of this component → none of Q
        }
        vars_per_part.push(orig_vars.as_slice());
    }

    // Join with global injectivity, honoring the match cap.
    let inputs: Vec<ComponentTable> = vars_per_part
        .iter()
        .zip(tables.iter())
        .map(|(vars, table)| ComponentTable {
            vars,
            table,
            perm: None,
        })
        .collect();
    let mut emitted = 0usize;
    let mut capped = false;
    let complete = join_tables(inputs.as_slice(), q.node_count(), join, &mut |assignment| {
        let flow = f(assignment);
        emitted += 1;
        if flow == Flow::Break {
            return Flow::Break;
        }
        if emitted >= cap {
            capped = true;
            return Flow::Break;
        }
        Flow::Continue
    });
    if complete {
        EnumOutcome::Complete
    } else if capped {
        EnumOutcome::Stopped(StopReason::BudgetExhausted)
    } else {
        EnumOutcome::Stopped(StopReason::CallbackBreak)
    }
}

/// Enumerates matches of a *connected* `q` drawing pools from a
/// caller-provided [`CandidateSpace`] instead of computing the filter
/// per call — the entry point for incremental consumers that maintain
/// a space across graph edits (see
/// [`crate::incremental::IncrementalSpace`]). Disconnected patterns
/// fall back to [`for_each_match`] (the space indexes full-pattern
/// variables, which the per-component searches cannot consume).
pub fn for_each_match_in_space(
    q: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    cs: &CandidateSpace,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    if q.node_count() == 0 {
        return EnumOutcome::Complete;
    }
    if !q.is_connected() {
        return for_each_match(q, g, opts, f);
    }
    stream_single_component(q, g, opts, Some(cs), &mut MatchScratch::default(), f)
}

/// [`for_each_match_in_space`] for callers that additionally hold a
/// precomputed [`QueryPlan`] and reusable scratch — the entry point
/// for [`crate::registry::ClassRegistry`] consumers
/// (`ClassRegistry::space_and_plan` hands out both). Cyclic plans run
/// the worst-case-optimal executor; acyclic ones fall back to the
/// refined backtracker. Disconnected patterns fall back to
/// [`for_each_match_with`] (spaces and plans index full-pattern
/// variables, which per-component searches cannot consume).
pub fn for_each_match_planned(
    q: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    cs: &CandidateSpace,
    plan: &QueryPlan,
    scratch: &mut MatchScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    if q.node_count() == 0 {
        return EnumOutcome::Complete;
    }
    if !q.is_connected() {
        return for_each_match_with(q, g, opts, scratch, f);
    }
    if cs.is_empty_anywhere() {
        return EnumOutcome::Complete;
    }
    if plan.is_cyclic() {
        return stream_component_plan(q, g, opts, cs, plan, &mut scratch.plan, f);
    }
    stream_component_backtrack(q, g, opts, Some(cs), &mut scratch.search, f)
}

/// Streams the matches of one connected component straight to the
/// callback, honoring restriction, pins and budget — the shared
/// backend of [`for_each_match`]'s connected path (per-call filter)
/// and [`for_each_match_in_space`] (caller-maintained filter).
/// Filtered cyclic components route to the plan executor; everything
/// else backtracks.
fn stream_single_component(
    cq: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    cs: Option<&CandidateSpace>,
    scratch: &mut MatchScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    if cs.is_some_and(CandidateSpace::is_empty_anywhere) {
        return EnumOutcome::Complete;
    }
    if let Some(cs) = cs {
        // The filter policies only attach a space to components worth
        // filtering, so the plan build (pure pattern structure, tiny
        // next to the enumeration) is not gated further. Registry
        // callers avoid even this via `for_each_match_planned`.
        let plan = QueryPlan::new(cq);
        if plan.is_cyclic() {
            return stream_component_plan(cq, g, opts, cs, &plan, &mut scratch.plan, f);
        }
    }
    stream_component_backtrack(cq, g, opts, cs, &mut scratch.search, f)
}

/// The worst-case-optimal path: executes a decomposition plan inside
/// the candidate space, wrapping the callback with the match cap.
#[allow(clippy::too_many_arguments)]
fn stream_component_plan(
    cq: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    cs: &CandidateSpace,
    plan: &QueryPlan,
    scratch: &mut PlanScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    let step_cap = opts.budget.max_steps.unwrap_or(u64::MAX);
    let cap = opts.budget.max_matches.unwrap_or(usize::MAX);
    // Out-of-range pins are ignored, matching the component mapping
    // that drops them for disconnected patterns (the common case
    // passes every pin through without buffering).
    let pins_buf: Vec<(VarId, NodeId)>;
    let pins: &[(VarId, NodeId)] = if opts.pins.iter().all(|&(v, _)| v.index() < cq.node_count()) {
        &opts.pins
    } else {
        pins_buf = opts
            .pins
            .iter()
            .copied()
            .filter(|&(v, _)| v.index() < cq.node_count())
            .collect();
        &pins_buf
    };
    let mut emitted = 0usize;
    let mut capped = false;
    let reason = execute_plan(
        cq,
        g,
        cs,
        plan,
        opts.restriction.as_ref(),
        pins,
        step_cap,
        scratch,
        &mut |m| {
            let flow = f(m);
            emitted += 1;
            if flow == Flow::Break {
                return Flow::Break;
            }
            if emitted >= cap {
                capped = true;
                return Flow::Break;
            }
            Flow::Continue
        },
    );
    match reason {
        StopReason::Exhausted => EnumOutcome::Complete,
        StopReason::BudgetExhausted => EnumOutcome::Stopped(StopReason::BudgetExhausted),
        StopReason::CallbackBreak if capped => EnumOutcome::Stopped(StopReason::BudgetExhausted),
        StopReason::CallbackBreak => EnumOutcome::Stopped(StopReason::CallbackBreak),
    }
}

/// The backtracking path, with the same cap semantics.
fn stream_component_backtrack(
    cq: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    cs: Option<&CandidateSpace>,
    scratch: &mut SearchScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> EnumOutcome {
    let step_cap = opts.budget.max_steps.unwrap_or(u64::MAX);
    let cap = opts.budget.max_matches.unwrap_or(usize::MAX);
    let mut search = ComponentSearch::new(cq, g)
        .with_scratch(std::mem::take(scratch))
        .max_steps(step_cap);
    if let Some(r) = &opts.restriction {
        search = search.restrict(r);
    }
    if let Some(cs) = cs {
        search = search.candidate_space(cs);
    }
    for &(var, node) in &opts.pins {
        // Out-of-range pins are ignored, matching the component
        // mapping that drops them for disconnected patterns.
        if var.index() < cq.node_count() {
            search = search.pin(var, node);
        }
    }
    let mut emitted = 0usize;
    let mut capped = false;
    let reason = search.for_each(&mut |m| {
        let flow = f(m);
        emitted += 1;
        if flow == Flow::Break {
            return Flow::Break;
        }
        if emitted >= cap {
            capped = true;
            return Flow::Break;
        }
        Flow::Continue
    });
    *scratch = search.into_scratch();
    match reason {
        StopReason::Exhausted => EnumOutcome::Complete,
        StopReason::BudgetExhausted => EnumOutcome::Stopped(StopReason::BudgetExhausted),
        StopReason::CallbackBreak if capped => EnumOutcome::Stopped(StopReason::BudgetExhausted),
        StopReason::CallbackBreak => EnumOutcome::Stopped(StopReason::CallbackBreak),
    }
}

/// Collects all matches (subject to `opts.budget`).
pub fn find_matches(q: &Pattern, g: &Graph, opts: &MatchOptions) -> Vec<Match> {
    let mut out = Vec::new();
    for_each_match(q, g, opts, &mut |m| {
        out.push(Match(m.to_vec()));
        Flow::Continue
    });
    out
}

/// Counts matches (subject to `opts.budget`).
pub fn count_matches(q: &Pattern, g: &Graph, opts: &MatchOptions) -> usize {
    count_matches_with(q, g, opts, &mut MatchScratch::default())
}

/// True when a count request is eligible for factorized (FAQ-style)
/// evaluation: uncapped (a budget changes the *observable* count, so
/// capped counts must enumerate) and with every pin addressable.
fn countable_without_enumeration(q: &Pattern, opts: &MatchOptions) -> bool {
    q.node_count() > 0
        && opts.budget.max_matches.is_none()
        && opts.budget.max_steps.is_none()
        && opts.pins.iter().all(|&(v, _)| v.index() < q.node_count())
}

/// [`count_matches`] with caller-owned scratch — the allocation-free
/// form for counting loops.
///
/// Connected patterns whose filter policy attaches a candidate space
/// are counted **without enumeration** when possible: the component's
/// match set is factorized over the plan's bag tree
/// ([`crate::factorize`]) and the count read off the root fold —
/// width-polynomial time even when the flat match set explodes. The
/// factorizer declines (and this falls back to streaming) when
/// cross-bag injectivity could make the folded count inexact.
pub fn count_matches_with(
    q: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    scratch: &mut MatchScratch,
) -> usize {
    if q.is_connected() && countable_without_enumeration(q, opts) {
        if let Some(cs) = filter_component(q, g, opts) {
            if cs.is_empty_anywhere() {
                return 0;
            }
            let plan = QueryPlan::new(q);
            if let Some(n) =
                scratch
                    .factor
                    .count(q, g, &cs, &plan, opts.restriction.as_ref(), &opts.pins)
            {
                return n.min(usize::MAX as u64) as usize;
            }
            // Inexact or unfactorizable: enumerate inside the space
            // already computed.
            let mut n = 0usize;
            stream_single_component(q, g, opts, Some(&cs), scratch, &mut |_| {
                n += 1;
                Flow::Continue
            });
            return n;
        }
    }
    let mut n = 0usize;
    for_each_match_with(q, g, opts, scratch, &mut |_| {
        n += 1;
        Flow::Continue
    });
    n
}

/// [`count_matches_with`] for registry consumers holding a cached
/// space and plan (`ClassRegistry::space_and_plan`): the factorization
/// is rebuilt into the caller's scratch arenas, so a warm counting
/// loop runs with **zero** steady-state heap allocation — no
/// simulation, no plan build, no enumeration. Falls back to
/// [`for_each_match_planned`] streaming when the factorizer declines
/// or the folded count would be inexact.
pub fn count_matches_planned(
    q: &Pattern,
    g: &Graph,
    opts: &MatchOptions,
    cs: &CandidateSpace,
    plan: &QueryPlan,
    scratch: &mut MatchScratch,
) -> usize {
    if q.is_connected() && countable_without_enumeration(q, opts) {
        if cs.is_empty_anywhere() {
            return 0;
        }
        if let Some(n) = scratch
            .factor
            .count(q, g, cs, plan, opts.restriction.as_ref(), &opts.pins)
        {
            return n.min(usize::MAX as u64) as usize;
        }
    }
    let mut n = 0usize;
    for_each_match_planned(q, g, opts, cs, plan, scratch, &mut |_| {
        n += 1;
        Flow::Continue
    });
    n
}

/// True if at least one match exists.
pub fn has_match(q: &Pattern, g: &Graph, opts: &MatchOptions) -> bool {
    let mut found = false;
    for_each_match(q, g, opts, &mut |_| {
        found = true;
        Flow::Break
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;

    /// G1 of Fig. 1: two flight entities with equal ids but different
    /// destinations.
    fn flights() -> (Graph, [NodeId; 2]) {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let mut mk = |id: &str, from: &str, to: &str| {
            let f = b.add_node_labeled("flight");
            let idn = b.add_node_labeled("id");
            let fr = b.add_node_labeled("city");
            let tn = b.add_node_labeled("city");
            let dp = b.add_node_labeled("time");
            let ar = b.add_node_labeled("time");
            b.add_edge_labeled(f, idn, "number");
            b.add_edge_labeled(f, fr, "from");
            b.add_edge_labeled(f, tn, "to");
            b.add_edge_labeled(f, dp, "depart");
            b.add_edge_labeled(f, ar, "arrive");
            b.set_attr_named(idn, "val", Value::str(id));
            b.set_attr_named(fr, "val", Value::str(from));
            b.set_attr_named(tn, "val", Value::str(to));
            b.set_attr_named(dp, "val", Value::str("14:50"));
            b.set_attr_named(ar, "val", Value::str("22:35"));
            f
        };
        let f1 = mk("DL1", "Paris", "NYC");
        let f2 = mk("DL1", "Paris", "Singapore");
        (b.freeze(), [f1, f2])
    }

    /// Q1 of Fig. 2 (two disconnected flight stars).
    fn q1(vocab: std::sync::Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        for side in ["x", "y"] {
            let hub = b.node(side, "flight");
            for (i, (leaf, edge)) in [
                ("id", "number"),
                ("city", "from"),
                ("city", "to"),
                ("time", "depart"),
                ("time", "arrive"),
            ]
            .iter()
            .enumerate()
            {
                let v = b.node(&format!("{side}{}", i + 1), leaf);
                b.edge(hub, v, edge);
            }
        }
        b.build()
    }

    /// The Auto gate, on both sides of each half of its conjunction
    /// (cyclic component ∧ smallest pool ≥ `SIM_AUTO_MIN_POOL`).
    #[test]
    fn auto_gate_boundary() {
        // A graph with exactly SIM_AUTO_MIN_POOL "big" nodes and one
        // "small" node, all wired into e-cycles.
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let big: Vec<NodeId> = (0..SIM_AUTO_MIN_POOL)
            .map(|_| b.add_node_labeled("big"))
            .collect();
        for w in big.windows(2) {
            b.add_edge_labeled(w[0], w[1], "e");
        }
        b.add_edge_labeled(*big.last().unwrap(), big[0], "e");
        let small = b.add_node_labeled("small");
        b.add_edge_labeled(small, big[0], "e");
        let g = b.freeze();
        let opts = MatchOptions::unrestricted();

        let cyclic = |labels: [&str; 2]| {
            let mut pb = PatternBuilder::new(g.vocab().clone());
            let x = pb.node("x", labels[0]);
            let y = pb.node("y", labels[1]);
            pb.edge(x, y, "e");
            pb.edge(y, x, "e");
            pb.build()
        };
        // Cyclic + every pool at the threshold: filter on.
        assert!(auto_simulate(&cyclic(["big", "big"]), &g, &opts));
        // Cyclic, but the cheapest pool (1 < threshold): filter off.
        assert!(!auto_simulate(&cyclic(["big", "small"]), &g, &opts));

        // Acyclic (tree) with huge pools: filter off.
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.node("x", "big");
        let y = pb.node("y", "big");
        pb.edge(x, y, "e");
        let tree = pb.build();
        assert!(!auto_simulate(&tree, &g, &opts));

        // A restriction shrinks wildcard pools below the threshold.
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let x = pb.wildcard_node("x");
        let y = pb.wildcard_node("y");
        pb.wildcard_edge(x, y);
        pb.wildcard_edge(y, x);
        let wild = pb.build();
        assert!(auto_simulate(&wild, &g, &opts));
        let restricted =
            MatchOptions::within(gfd_graph::NodeSet::from_vec(vec![big[0], big[1], small]));
        assert!(!auto_simulate(&wild, &g, &restricted));
    }

    #[test]
    fn disconnected_pattern_matches_across_entities() {
        let (g, [f1, f2]) = flights();
        let q = q1(g.vocab().clone());
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        let ms = find_matches(&q, &g, &MatchOptions::unrestricted());
        // x and y each range over the two flights, disjointly: 2 matches.
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_ne!(m.get(x), m.get(y));
            assert!([f1, f2].contains(&m.get(x)));
        }
    }

    #[test]
    fn pinned_disconnected_pattern() {
        let (g, [f1, f2]) = flights();
        let q = q1(g.vocab().clone());
        let x = q.var_by_name("x").unwrap();
        let ms = find_matches(&q, &g, &MatchOptions::unrestricted().pin(x, f1));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get(x), f1);
        assert_eq!(ms[0].get(q.var_by_name("y").unwrap()), f2);
    }

    #[test]
    fn count_and_has_match_agree() {
        let (g, _) = flights();
        let q = q1(g.vocab().clone());
        assert_eq!(count_matches(&q, &g, &MatchOptions::unrestricted()), 2);
        assert!(has_match(&q, &g, &MatchOptions::unrestricted()));
    }

    #[test]
    fn no_match_when_pattern_absent() {
        // Q2 (country with two capitals) has no match in the flights graph.
        let (g, _) = flights();
        let mut b = PatternBuilder::new(g.vocab().clone());
        let x = b.node("x", "country");
        let y = b.node("y", "city");
        let z = b.node("z", "city");
        b.edge(x, y, "capital");
        b.edge(x, z, "capital");
        let q2 = b.build();
        assert!(!has_match(&q2, &g, &MatchOptions::unrestricted()));
        assert_eq!(count_matches(&q2, &g, &MatchOptions::unrestricted()), 0);
    }

    #[test]
    fn match_cap_is_respected() {
        let (g, _) = flights();
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.wildcard_node("x");
        let q = b.build();
        let opts = MatchOptions::unrestricted().with_budget(crate::types::SearchBudget::matches(3));
        let ms = find_matches(&q, &g, &opts);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn single_node_pattern_matches_extent() {
        let (g, _) = flights();
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("x", "city");
        let q = b.build();
        assert_eq!(count_matches(&q, &g, &MatchOptions::unrestricted()), 4);
    }
}
