//! The unified serving-tier class registry: one bounded, concurrently
//! shared cache for candidate spaces, query plans, and match tables.
//!
//! Rule sets mined from real graphs are full of isomorphic pattern
//! components (the paper's Example 10), yet every consumer of
//! [`dual_simulation`](crate::simulation::dual_simulation) used to run
//! one worklist fixpoint *per component per rule* — `k` identical
//! simulations for a class with `k` members. [`ClassRegistry`] keys
//! every per-class artifact by **canonical isomorphism class**
//! ([`gfd_pattern::canonical_form`], complete — no hash-collision
//! exposure) and computes each class once:
//!
//! * the first registered member of a class becomes the
//!   *representative*; its space is computed by the worklist fixpoint
//!   (lazily — classes that are never queried cost nothing beyond the
//!   canonical form) and kept repairable as an [`IncrementalSpace`];
//! * every further member stores only the [`IsoWitness`] onto the
//!   representative, and its space is
//!   [`CandidateSpace::transport`]ed — a permutation of the computed
//!   relation, no graph access;
//! * decomposition-based [`QueryPlan`]s are built once per class and
//!   transported per member (pure pattern structure — graph edits
//!   never invalidate them, and they are exempt from eviction);
//! * pinned component enumerations are cached as flat [`MatchTable`]s
//!   keyed by `(class, representative pin variable, pivot node)` — an
//!   isomorphic twin reads a hit through a column-permutation
//!   [`TableView`], never a row copy;
//! * under graph edits, [`ClassRegistry::apply_normalized`] repairs
//!   **one** representative per class, keeps the plans, and drops
//!   exactly the transported spaces and match tables of classes whose
//!   relation (or per-edge adjacency) changed.
//!
//! One registry is shared across a whole rule set Σ — workload
//! estimation (`gfd-parallel`), violation detection (`gfd-core`),
//! their incremental maintainers, the threaded unit executor's
//! workers, and any number of standing-violation-service tenants all
//! share one `Arc<ClassRegistry>`. The registry is internally
//! synchronized (every method takes `&self`), in the spirit of
//! factorised / shared evaluation engines (FDB, FAQ) and of standing
//! indexes maintained under updates (Berkholz et al.): compute a
//! shared representation once, serve it to many readers.
//!
//! # The eviction / pinning contract
//!
//! The registry is **byte-budgeted**
//! ([`ClassRegistry::with_budget_bytes`]; default
//! [`DEFAULT_REGISTRY_BUDGET_BYTES`]). Accounted artifacts are match
//! tables ([`MatchTable::data_bytes`]), transported member spaces,
//! per-class incremental spaces (both via
//! [`CandidateSpace::approx_bytes`] — the simulation core's worklist
//! state rides along uncounted, a documented estimate), and per-class
//! factorized match representations with their member relabelings
//! ([`Factorization::approx_bytes`]). Plans and canonical forms are
//! tiny and exempt.
//!
//! When the budget is exceeded, entries are evicted **least recently
//! used first** (every hit touches its entry), with one hard rule: *an
//! artifact whose `Arc` is still held outside the registry is never
//! dropped* — eviction is refcount-aware, so a [`TableView`] held
//! across an eviction storm keeps reading correct rows, and a space
//! handle held across a repair keeps its snapshot (repairs
//! copy-on-write when shared). Pinned entries the evictor had to skip
//! while over budget are counted in
//! [`CacheStats::eviction_deferred_pinned`] and surface as the
//! [`ClassRegistry::deferred_pending`] gauge; once the pins drop, the
//! next insertion — or an explicit [`ClassRegistry::sweep`] — drains
//! them and the gauge returns to zero. A whole class (its incremental
//! space plus member transports) is reclaimable once unpinned; a later
//! query re-simulates against the then-current snapshot, and
//! intervening [`ClassRegistry::apply_normalized`] calls report the
//! class as conservatively changed so no consumer trusts stale pivot
//! feasibility.
//!
//! Lock discipline: simulation, transport, and plan construction run
//! under the registry lock (that is what guarantees "one simulation
//! per class" even under concurrent first queries); match-table
//! enumeration — the expensive, per-pivot work — runs *outside* the
//! lock, with racing duplicate builds tolerated (first insert wins).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

use gfd_graph::{Graph, GraphDelta, NodeId, NodeSet};
use gfd_pattern::{canonical_form, CanonicalForm, IsoWitness, Pattern, VarId};
use gfd_util::FxHashMap;

use crate::component::ComponentSearch;
use crate::factorize::{factorize, Factorization};
use crate::incremental::IncrementalSpace;
use crate::plan::QueryPlan;
use crate::simulation::{dual_simulation, CandidateSpace};
use crate::table::{MatchTable, TableView};

/// Handle to a pattern registered in a [`ClassRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpaceHandle(usize);

/// Default [`ClassRegistry`] byte budget: generous enough that no test
/// or benchmark workload in the suite evicts, small enough that a
/// long-lived multi-tenant service stays bounded (64 MiB of spaces and
/// match rows for the whole Σ, shared — not per worker).
pub const DEFAULT_REGISTRY_BUDGET_BYTES: usize = 64 << 20;

/// How many epochs of per-class change flags [`ClassRegistry::advance`]
/// keeps for replay to lagging tenants; beyond the window the replay
/// is conservatively all-changed.
const FLAG_HISTORY: usize = 64;

/// Hit/miss/eviction counters of the registry's match-table cache.
///
/// Probes record into the registry's global counters *and* into a
/// caller-supplied local `CacheStats`, so per-worker and per-tenant
/// shares of one shared registry stay attributable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Enumerations served from the cache.
    pub hits: u64,
    /// Enumerations that had to run.
    pub misses: u64,
    /// Unpinned entries dropped by the byte budget (LRU order).
    pub evicted_cold: u64,
    /// Eviction attempts skipped because the entry's `Arc` was still
    /// held outside the registry (one count per pinned entry per
    /// enforcement pass that ended over budget).
    pub eviction_deferred_pinned: u64,
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, o: CacheStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evicted_cold += o.evicted_cold;
        self.eviction_deferred_pinned += o.eviction_deferred_pinned;
    }
}

/// One cached pinned enumeration: rows stored in *representative*
/// variable order, valid for the block it was enumerated under.
struct TableEntry {
    table: Arc<MatchTable>,
    /// The data block the enumeration was restricted to. Hits require
    /// pointer equality — blocks are shared `Arc`s from the workload's
    /// block cache, so an edited (rebuilt) block never serves a stale
    /// table.
    block: Arc<NodeSet>,
    last_used: u64,
    bytes: usize,
}

/// One isomorphism class: the representative pattern and every cached
/// artifact that hangs off it.
struct ClassState {
    rep: Pattern,
    form: CanonicalForm,
    /// `None` until some member's space is first queried, and again
    /// after the class is evicted; repaired in place by
    /// [`ClassRegistry::apply_normalized`] while present.
    inc: Option<IncrementalSpace>,
    /// Accounted bytes of `inc` (the space estimate).
    inc_bytes: usize,
    /// Decomposition-based query plan, built lazily on the
    /// representative. Pure pattern structure: never invalidated,
    /// never evicted.
    plan: Option<Arc<QueryPlan>>,
    /// Member indices of this class, for invalidation and eviction.
    member_ids: Vec<usize>,
    /// True once the class has ever been simulated. An evicted class
    /// (`ever_simulated && inc.is_none()`) reports conservative
    /// all-changed flags from `apply`, because without the incremental
    /// state nobody can certify "unchanged".
    ever_simulated: bool,
    last_used: u64,
    /// Cached pinned enumerations, keyed by `(rep pin var, pivot)`.
    tables: FxHashMap<(VarId, NodeId), TableEntry>,
    /// Factorized match-set representation of the representative over
    /// the current snapshot, marginals included
    /// ([`crate::factorize`]). A derivation of the space: a graph
    /// delta that refreshes the class drops it (plans survive, facts
    /// do not), and eviction reclaims it like any other artifact.
    fact: Option<Arc<Factorization>>,
    fact_bytes: usize,
}

/// One registered pattern: its class and the witness onto the class
/// representative.
struct MemberState {
    q: Pattern,
    class: usize,
    witness: IsoWitness,
    /// Identity witnesses alias the representative's space directly.
    identity: bool,
    /// The witness as a table-column permutation (member var `j` ↦ rep
    /// var `perm[j]`), shared with every [`TableView`] handed out for
    /// this member. `None` for identity members.
    perm: Option<Arc<[u32]>>,
    /// Transported space, dropped whenever the representative changes
    /// (or evicted when cold).
    cached: Option<Arc<CandidateSpace>>,
    cached_bytes: usize,
    last_used: u64,
    /// Plan transported from the representative's (never invalidated —
    /// plans depend only on pattern structure).
    plan: Option<Arc<QueryPlan>>,
    /// Factorization transported (relabeled) from the class's, dropped
    /// with it on refresh or eviction.
    fact: Option<Arc<Factorization>>,
    fact_bytes: usize,
}

/// What the budget enforcer picked to drop.
enum Victim {
    Table(usize, (VarId, NodeId)),
    Transport(usize),
    Class(usize),
    ClassFact(usize),
    MemberFact(usize),
}

#[derive(Default)]
struct RegistryInner {
    classes: Vec<ClassState>,
    members: Vec<MemberState>,
    by_code: HashMap<Vec<u64>, usize>,
    /// Dedup of member registrations: a witness determines the member
    /// pattern up to variable names (member = rep relabeled along the
    /// inverse), so `(class, witness)` identifies a transported space
    /// — re-registering returns the existing handle instead of growing
    /// state, which keeps long-lived shared registries bounded across
    /// repeated `estimate_workload_in`/`detect_violations_shared`
    /// calls over one Σ.
    member_by_witness: HashMap<(usize, Vec<VarId>), usize>,
    simulations: usize,
    plans_built: usize,
    factorizations_built: usize,
    stats: CacheStats,
    /// Accounted bytes over tables, transports, and class spaces.
    bytes: usize,
    budget: usize,
    /// Pinned entries the latest enforcement pass had to skip while
    /// still over budget (zero whenever the budget holds).
    deferred_pending: u64,
    /// Global LRU clock; bumped on every touch.
    tick: u64,
    /// Repair epoch — bumped once per non-empty applied delta.
    version: u64,
    /// Per-class change flags of versions `base_version+1..=version`,
    /// for replay to lagging tenants.
    history: VecDeque<Vec<bool>>,
    base_version: u64,
}

/// The shared, bounded, per-Σ cache of candidate spaces, query plans,
/// and pinned match tables, keyed by canonical isomorphism class. See
/// the module docs for the sharing model and the eviction / pinning
/// contract.
#[derive(Default)]
pub struct ClassRegistry {
    inner: Mutex<RegistryInner>,
}

impl ClassRegistry {
    /// An empty registry with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget_bytes(DEFAULT_REGISTRY_BUDGET_BYTES)
    }

    /// An empty registry holding at most `budget` accounted bytes (the
    /// most recently touched entry is always kept, so a single
    /// artifact larger than the budget still serves).
    pub fn with_budget_bytes(budget: usize) -> Self {
        ClassRegistry {
            inner: Mutex::new(RegistryInner {
                budget,
                ..RegistryInner::default()
            }),
        }
    }

    /// Survives lock poisoning: the lock is held only across in-memory
    /// cache maintenance, and every invariant the cache relies on for
    /// *correctness* (as opposed to byte accounting) is re-established
    /// by the next repair or re-enumeration, so a worker that panicked
    /// mid-update must not wedge every other tenant of the registry.
    fn lock(&self) -> MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a pattern, resolving its isomorphism class (new
    /// classes make the pattern the representative; structurally
    /// identical re-registrations return the existing handle). Cheap —
    /// the simulation itself is deferred until [`space`](Self::space)
    /// is first called for the class.
    pub fn register(&self, q: &Pattern) -> SpaceHandle {
        let form = canonical_form(q);
        let mut inner = self.lock();
        let inner = &mut *inner;
        let (class, witness) = match inner.by_code.get(form.code()) {
            Some(&c) => (c, form.witness_onto(&inner.classes[c].form)),
            None => {
                let c = inner.classes.len();
                inner.by_code.insert(form.code().to_vec(), c);
                let witness = IsoWitness::identity(q.node_count());
                inner.classes.push(ClassState {
                    rep: q.clone(),
                    form,
                    inc: None,
                    inc_bytes: 0,
                    plan: None,
                    member_ids: Vec::new(),
                    ever_simulated: false,
                    last_used: 0,
                    tables: FxHashMap::default(),
                    fact: None,
                    fact_bytes: 0,
                });
                (c, witness)
            }
        };
        debug_assert!(
            Arc::ptr_eq(q.vocab(), inner.classes[class].rep.vocab()),
            "patterns in one registry must share a vocabulary"
        );
        let key = (class, witness.as_slice().to_vec());
        if let Some(&existing) = inner.member_by_witness.get(&key) {
            return SpaceHandle(existing);
        }
        let identity = witness.is_identity();
        let perm: Option<Arc<[u32]>> =
            (!identity).then(|| witness.as_slice().iter().map(|v| v.0).collect());
        let id = inner.members.len();
        inner.classes[class].member_ids.push(id);
        inner.members.push(MemberState {
            q: q.clone(),
            class,
            witness,
            identity,
            perm,
            cached: None,
            cached_bytes: 0,
            last_used: 0,
            plan: None,
            fact: None,
            fact_bytes: 0,
        });
        inner.member_by_witness.insert(key, id);
        SpaceHandle(id)
    }

    /// The member's candidate space over `g`: simulated once per class
    /// (on first query), transported — and cached — for every further
    /// member. `g` must be the snapshot the registry is synchronized
    /// with (the one passed to the last [`apply`](Self::apply), or the
    /// initial graph). The returned `Arc` stays valid across repairs
    /// and evictions (see the pinning contract in the module docs).
    pub fn space(&self, h: SpaceHandle, g: &Graph) -> Arc<CandidateSpace> {
        let mut inner = self.lock();
        let out = inner.space(h, g);
        inner.enforce_budget();
        out
    }

    /// The member's decomposition-based query plan: tree-decomposed
    /// once per class (on the representative, on first query) and
    /// transported — via relabeling along the inverse witness — for
    /// every further member. Plans are pure pattern structure, so
    /// graph edits never invalidate them and eviction never drops
    /// them.
    pub fn plan(&self, h: SpaceHandle) -> Arc<QueryPlan> {
        self.lock().plan(h)
    }

    /// Both the member's candidate space and its query plan under one
    /// lock acquisition — the call detection hot paths use to set up
    /// plan execution.
    pub fn space_and_plan(
        &self,
        h: SpaceHandle,
        g: &Graph,
    ) -> (Arc<CandidateSpace>, Arc<QueryPlan>) {
        let mut inner = self.lock();
        let space = inner.space(h, g);
        let plan = inner.plan(h);
        inner.enforce_budget();
        (space, plan)
    }

    /// True if `u` currently simulates `v` in the member's space.
    pub fn contains(&self, h: SpaceHandle, g: &Graph, v: VarId, u: NodeId) -> bool {
        self.space(h, g).sets[v.index()].binary_search(&u).is_ok()
    }

    /// The member's factorized match-set representation over `g`
    /// ([`crate::factorize`]), with marginals computed: factorized
    /// once per class and relabeled — the structure is
    /// permutation-invariant — for every further member. `None` when
    /// the class's plan shape is unfactorizable. Like spaces, a graph
    /// delta that touches the class invalidates the factorization;
    /// like tables, a held `Arc` defers its eviction.
    pub fn factorization(&self, h: SpaceHandle, g: &Graph) -> Option<Arc<Factorization>> {
        let mut inner = self.lock();
        let out = inner.factorization(h, g);
        inner.enforce_budget();
        out
    }

    /// Probe-only variant of [`factorization`](Self::factorization):
    /// serves the member's cached factorization if (and only if) it is
    /// already resident — never simulates, factorizes, or transports.
    /// The entry point for hot paths (the unit executor's dead-pivot
    /// screen) that want marginals when they are free but must not pay
    /// a build.
    pub fn cached_factorization(&self, h: SpaceHandle) -> Option<Arc<Factorization>> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        let m = &inner.members[h.0];
        let class = m.class;
        let identity = m.identity;
        let f = if identity {
            inner.classes[class].fact.as_ref()
        } else {
            m.fact.as_ref()
        };
        let f = Arc::clone(f?);
        inner.tick += 1;
        let tick = inner.tick;
        inner.classes[class].last_used = tick;
        inner.members[h.0].last_used = tick;
        Some(f)
    }

    /// The enumeration of the member's pattern pinned at `pin = pivot`
    /// and restricted to `block`, served from the per-class table
    /// cache: isomorphic members pinned at corresponding variables and
    /// the same pivot share one flat table (stored in representative
    /// variable order; non-identity members read it through their
    /// witness permutation — an `O(arity)` view header, never a row
    /// copy). Hits require the *same* shared block `Arc` — a rebuilt
    /// block is a miss, and the stale entry is replaced.
    ///
    /// Probes and misses are recorded both in the registry-global
    /// [`stats`](Self::stats) and in the caller's `stats` (the
    /// per-worker / per-tenant share). The enumeration itself runs
    /// outside the registry lock; racing duplicate builds are
    /// tolerated (the first inserted table wins and is shared).
    pub fn pinned_table(
        &self,
        h: SpaceHandle,
        g: &Graph,
        pin: VarId,
        pivot: NodeId,
        block: &Arc<NodeSet>,
        stats: &mut CacheStats,
    ) -> TableView {
        let (class, rep_pin, perm, q) = {
            let mut inner = self.lock();
            let inner = &mut *inner;
            let m = &inner.members[h.0];
            let class = m.class;
            let rep_pin = match &m.perm {
                Some(p) => VarId(p[pin.index()]),
                None => pin,
            };
            let perm = m.perm.clone();
            inner.tick += 1;
            let tick = inner.tick;
            inner.classes[class].last_used = tick;
            if let Some(e) = inner.classes[class].tables.get_mut(&(rep_pin, pivot)) {
                if Arc::ptr_eq(&e.block, block) {
                    e.last_used = tick;
                    inner.stats.hits += 1;
                    stats.hits += 1;
                    let table = Arc::clone(&e.table);
                    return Self::view(table, perm);
                }
            }
            inner.stats.misses += 1;
            stats.misses += 1;
            (class, rep_pin, perm, m.q.clone())
        };

        // Miss: enumerate the member's own pattern (outside the lock),
        // then permute rows into representative order at store time so
        // every class member can read the table through its own view.
        let arity = q.node_count();
        let mut table = MatchTable::new(arity);
        ComponentSearch::new(&q, g)
            .pin(pin, pivot)
            .restrict(block)
            .collect_into(&mut table);
        let stored = match &perm {
            None => table,
            Some(p) => {
                let mut t = MatchTable::with_capacity(arity, table.len());
                let mut buf = vec![NodeId(0); arity];
                for row in table.iter() {
                    for (j, &x) in row.iter().enumerate() {
                        buf[p[j] as usize] = x;
                    }
                    t.push_row(&buf);
                }
                t
            }
        };

        let mut inner = self.lock();
        let table = inner.insert_table(class, (rep_pin, pivot), block, Arc::new(stored));
        inner.enforce_budget();
        Self::view(table, perm)
    }

    fn view(table: Arc<MatchTable>, perm: Option<Arc<[u32]>>) -> TableView {
        match perm {
            Some(p) => TableView::permuted(table, p),
            None => TableView::identity(table),
        }
    }

    /// Sampled repair-invariant check: recomputes the member's
    /// candidate space from scratch (a fresh [`dual_simulation`] of
    /// the member pattern over `g`, no incremental state, no
    /// transport) and compares it with what the registry serves.
    /// `true` means the incremental repair chain is still exact for
    /// this member. This is the self-check a long-running service runs
    /// on a random member per epoch.
    pub fn verify_member(&self, h: SpaceHandle, g: &Graph) -> bool {
        let served = self.space(h, g);
        let q = self.lock().members[h.0].q.clone();
        let scratch = dual_simulation(&q, g, None);
        *served == scratch
    }

    /// Repairs the registry against one edit step: **one**
    /// [`IncrementalSpace`] repair per simulated class (classes never
    /// queried are skipped — a later first query simulates against the
    /// then-current snapshot), then drops the transported caches and
    /// match tables of every class whose relation or per-edge
    /// adjacency changed. Returns per-class flags that are true when
    /// the class's *candidate sets* (may have) changed — the signal
    /// workload maintenance keys on. An evicted class reports `true`
    /// conservatively; a never-simulated one reports `false`.
    pub fn apply(&self, g: &Graph, delta: &GraphDelta) -> Vec<bool> {
        self.apply_normalized(g, &delta.clone().normalize())
    }

    /// [`apply`](Self::apply) for an already-normalized delta. Empty
    /// deltas are no-ops and do **not** advance the repair epoch.
    pub fn apply_normalized(&self, g: &Graph, d: &GraphDelta) -> Vec<bool> {
        let mut inner = self.lock();
        if d.is_empty() {
            return vec![false; inner.classes.len()];
        }
        let flags = inner.apply_impl(g, d);
        inner.version += 1;
        inner.push_history(flags.clone());
        inner.enforce_budget();
        flags
    }

    /// Multi-tenant repair: applies the delta only if this tenant is
    /// the *first* to reach epoch `target` (`target == version() + 1`);
    /// tenants arriving later at an epoch the registry already passed
    /// get the recorded per-class change flags replayed instead (or
    /// conservative all-changed flags once the epoch has left the
    /// bounded history window). Tenants must ingest the same delta
    /// stream and bump their cursor once per *non-empty* normalized
    /// delta — normalization is deterministic, so every tenant skips
    /// exactly the same empties.
    pub fn advance(&self, g: &Graph, d: &GraphDelta, target: u64) -> Vec<bool> {
        let mut inner = self.lock();
        let n = inner.classes.len();
        if d.is_empty() {
            return vec![false; n];
        }
        if target <= inner.version {
            return inner.history_flags(target, n);
        }
        debug_assert_eq!(
            target,
            inner.version + 1,
            "tenant cursors must advance the shared registry in lockstep"
        );
        let flags = inner.apply_impl(g, d);
        inner.version = target;
        inner.push_history(flags.clone());
        inner.enforce_budget();
        flags
    }

    /// The repair epoch: how many non-empty deltas have been applied.
    /// A new tenant initializes its cursor from this.
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Drops every cached artifact — incremental spaces, transported
    /// member spaces, match tables — and clears the replay history, so
    /// every later query rebuilds against the then-current snapshot
    /// and every lagging tenant replays conservative flags. Sound at
    /// any point (the caches are pure derivations); used by detectors
    /// re-seeding after a degraded epoch, where a mid-repair panic may
    /// have torn the incremental state.
    pub fn invalidate_all(&self) {
        let mut inner = self.lock();
        let inner = &mut *inner;
        for cls in &mut inner.classes {
            if cls.inc.take().is_some() {
                inner.bytes -= cls.inc_bytes;
                cls.inc_bytes = 0;
            }
            for (_, e) in cls.tables.drain() {
                inner.bytes -= e.bytes;
            }
            if cls.fact.take().is_some() {
                inner.bytes -= cls.fact_bytes;
                cls.fact_bytes = 0;
            }
        }
        for m in &mut inner.members {
            if m.cached.take().is_some() {
                inner.bytes -= m.cached_bytes;
                m.cached_bytes = 0;
            }
            if m.fact.take().is_some() {
                inner.bytes -= m.fact_bytes;
                m.fact_bytes = 0;
            }
        }
        inner.history.clear();
        inner.base_version = inner.version;
        inner.deferred_pending = 0;
    }

    /// Runs one budget-enforcement pass without inserting anything —
    /// the hook for draining evictions that were deferred while their
    /// entries were pinned.
    pub fn sweep(&self) {
        let mut inner = self.lock();
        // Advance the clock so nothing counts as "just inserted" — a
        // sweep has no in-flight caller to protect.
        inner.tick += 1;
        inner.enforce_budget();
    }

    /// The class a registered pattern belongs to.
    pub fn class_of(&self, h: SpaceHandle) -> usize {
        self.lock().members[h.0].class
    }

    /// The member's class and its witness onto the representative as a
    /// column permutation (`None` = the member *is* in representative
    /// order) — what the multi-query index stores per component.
    pub fn class_and_perm(&self, h: SpaceHandle) -> (usize, Option<Arc<[u32]>>) {
        let inner = self.lock();
        let m = &inner.members[h.0];
        (m.class, m.perm.clone())
    }

    /// Number of structurally distinct members registered into a class
    /// (identical re-registrations collapse onto one handle, so this
    /// is *not* a per-rule count — callers gating on "how many rules
    /// of my Σ share this class" should count class occurrences over
    /// the handles of their own registration pass instead).
    pub fn class_members(&self, class: usize) -> usize {
        self.lock().classes[class].member_ids.len()
    }

    /// Number of distinct isomorphism classes registered.
    pub fn class_count(&self) -> usize {
        self.lock().classes.len()
    }

    /// Structurally distinct registered patterns.
    pub fn member_count(&self) -> usize {
        self.lock().members.len()
    }

    /// From-scratch worklist simulations run so far — the probe that
    /// asserts "one simulation per isomorphism class" in tests and
    /// benchmarks (a class evicted and re-queried simulates again).
    pub fn simulations(&self) -> usize {
        self.lock().simulations
    }

    /// From-scratch tree decompositions run so far — the "one plan per
    /// isomorphism class" probe (transports are not counted).
    pub fn plans_built(&self) -> usize {
        self.lock().plans_built
    }

    /// From-scratch factorizations built so far — the "one
    /// d-representation per isomorphism class per epoch" probe
    /// (relabeled member transports are not counted).
    pub fn factorizations_built(&self) -> usize {
        self.lock().factorizations_built
    }

    /// The registry-global cache counters (every tenant's probes
    /// combined).
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Accounted bytes currently held (tables + transported spaces +
    /// class spaces).
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.lock().budget
    }

    /// Pinned entries the latest enforcement pass skipped while still
    /// over budget; zero whenever the budget holds. Drains via
    /// [`sweep`](Self::sweep) (or any insertion) after pins drop.
    pub fn deferred_pending(&self) -> u64 {
        self.lock().deferred_pending
    }
}

impl RegistryInner {
    fn ensure_space(&mut self, class: usize, g: &Graph) {
        if self.classes[class].inc.is_none() {
            let inc = IncrementalSpace::new(&self.classes[class].rep, g, None);
            let b = inc.space().approx_bytes();
            let cls = &mut self.classes[class];
            cls.inc = Some(inc);
            cls.inc_bytes = b;
            cls.ever_simulated = true;
            self.bytes += b;
            self.simulations += 1;
        }
    }

    fn space(&mut self, h: SpaceHandle, g: &Graph) -> Arc<CandidateSpace> {
        let class = self.members[h.0].class;
        self.tick += 1;
        let tick = self.tick;
        self.classes[class].last_used = tick;
        self.ensure_space(class, g);
        if self.members[h.0].identity {
            return self.classes[class]
                .inc
                .as_ref()
                .expect("simulated above")
                .space_arc();
        }
        if self.members[h.0].cached.is_none() {
            let cls = &self.classes[class];
            let rep_space = cls.inc.as_ref().expect("simulated above").space();
            let m = &self.members[h.0];
            let transported = rep_space.transport(&cls.rep, &m.q, &m.witness);
            let b = transported.approx_bytes();
            let m = &mut self.members[h.0];
            m.cached = Some(Arc::new(transported));
            m.cached_bytes = b;
            self.bytes += b;
        }
        let m = &mut self.members[h.0];
        m.last_used = tick;
        Arc::clone(m.cached.as_ref().expect("filled above"))
    }

    fn ensure_class_plan(&mut self, class: usize) {
        if self.classes[class].plan.is_none() {
            let p = QueryPlan::new(&self.classes[class].rep);
            self.classes[class].plan = Some(Arc::new(p));
            self.plans_built += 1;
        }
    }

    fn plan(&mut self, h: SpaceHandle) -> Arc<QueryPlan> {
        let class = self.members[h.0].class;
        self.ensure_class_plan(class);
        if self.members[h.0].identity {
            return Arc::clone(self.classes[class].plan.as_ref().expect("built above"));
        }
        if self.members[h.0].plan.is_none() {
            let rep_plan = self.classes[class].plan.as_ref().expect("built above");
            let m = &self.members[h.0];
            // The witness maps member vars onto rep vars; transport
            // relabels the rep's decomposition back through the
            // inverse.
            let inv = m.witness.inverse();
            let transported = rep_plan.transport(&m.q, |v| inv.map(v));
            self.members[h.0].plan = Some(Arc::new(transported));
        }
        Arc::clone(self.members[h.0].plan.as_ref().expect("filled above"))
    }

    /// Builds (or serves) the member's factorization: factorized once
    /// per class on the representative's space and plan, relabeled
    /// along the inverse witness for every further member. `None` when
    /// the class's plan shape is unfactorizable (disconnected pattern
    /// or an oversized separator) — cheap to re-answer, so declines
    /// are not cached.
    fn factorization(&mut self, h: SpaceHandle, g: &Graph) -> Option<Arc<Factorization>> {
        let class = self.members[h.0].class;
        self.tick += 1;
        let tick = self.tick;
        self.classes[class].last_used = tick;
        self.ensure_space(class, g);
        self.ensure_class_plan(class);
        if self.classes[class].fact.is_none() {
            let cls = &self.classes[class];
            let space = cls.inc.as_ref().expect("simulated above").space();
            let plan = cls.plan.as_ref().expect("built above");
            let fact = factorize(&cls.rep, g, space, plan)?;
            let b = fact.approx_bytes();
            let cls = &mut self.classes[class];
            cls.fact = Some(Arc::new(fact));
            cls.fact_bytes = b;
            self.bytes += b;
            self.factorizations_built += 1;
        }
        if self.members[h.0].identity {
            return Some(Arc::clone(
                self.classes[class].fact.as_ref().expect("filled above"),
            ));
        }
        if self.members[h.0].fact.is_none() {
            let m = &self.members[h.0];
            let inv = m.witness.inverse();
            let transported = self.classes[class]
                .fact
                .as_ref()
                .expect("filled above")
                .relabel(|v| inv.map(v));
            let b = transported.approx_bytes();
            let m = &mut self.members[h.0];
            m.fact = Some(Arc::new(transported));
            m.fact_bytes = b;
            self.bytes += b;
        }
        let m = &mut self.members[h.0];
        m.last_used = tick;
        Some(Arc::clone(m.fact.as_ref().expect("filled above")))
    }

    /// Inserts a freshly built table; a racing build that lost keeps
    /// the existing entry (so `Arc::ptr_eq` sharing holds), and a
    /// stale-block entry under the same key is replaced.
    fn insert_table(
        &mut self,
        class: usize,
        key: (VarId, NodeId),
        block: &Arc<NodeSet>,
        table: Arc<MatchTable>,
    ) -> Arc<MatchTable> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.classes[class].tables.get_mut(&key) {
            if Arc::ptr_eq(&e.block, block) {
                e.last_used = tick;
                return Arc::clone(&e.table);
            }
            self.bytes -= e.bytes;
        }
        let bytes = table.data_bytes();
        self.bytes += bytes;
        self.classes[class].tables.insert(
            key,
            TableEntry {
                table: Arc::clone(&table),
                block: Arc::clone(block),
                last_used: tick,
                bytes,
            },
        );
        table
    }

    /// One repair pass over every class (no version bookkeeping).
    fn apply_impl(&mut self, g: &Graph, d: &GraphDelta) -> Vec<bool> {
        let n = self.classes.len();
        let mut sets_changed = vec![false; n];
        // Caches must also refresh on adjacency-only changes (a new
        // graph edge between surviving candidates moves the per-edge
        // runs without moving any set).
        let mut refresh = vec![false; n];
        let mut freed = 0usize;
        let mut grown = 0usize;
        for (c, cls) in self.classes.iter_mut().enumerate() {
            match cls.inc.as_mut() {
                Some(inc) => {
                    let report = inc.apply_normalized(g, d);
                    sets_changed[c] = !report.is_unchanged();
                    refresh[c] = sets_changed[c] || report.adjacency_changed;
                    let nb = inc.space().approx_bytes();
                    freed += cls.inc_bytes;
                    grown += nb;
                    cls.inc_bytes = nb;
                }
                None => {
                    // Without the incremental state nobody can certify
                    // "unchanged": an evicted class is conservatively
                    // changed, and any tables it still holds (tables
                    // don't require a simulated class) must go.
                    sets_changed[c] = cls.ever_simulated;
                    refresh[c] = true;
                }
            }
            if refresh[c] {
                for (_, e) in cls.tables.drain() {
                    freed += e.bytes;
                }
                if cls.fact.take().is_some() {
                    freed += cls.fact_bytes;
                    cls.fact_bytes = 0;
                }
            }
        }
        self.bytes = self.bytes + grown - freed;
        for m in &mut self.members {
            if refresh[m.class] {
                if m.cached.take().is_some() {
                    self.bytes -= m.cached_bytes;
                    m.cached_bytes = 0;
                }
                if m.fact.take().is_some() {
                    self.bytes -= m.fact_bytes;
                    m.fact_bytes = 0;
                }
            }
        }
        sets_changed
    }

    fn push_history(&mut self, flags: Vec<bool>) {
        self.history.push_back(flags);
        if self.history.len() > FLAG_HISTORY {
            self.history.pop_front();
            self.base_version += 1;
        }
    }

    /// Recorded flags of epoch `v`, padded with `true` for classes
    /// registered after that epoch; conservative all-changed once the
    /// epoch left the history window.
    fn history_flags(&self, v: u64, n: usize) -> Vec<bool> {
        if v > self.base_version && v <= self.version {
            let mut flags = self.history[(v - self.base_version - 1) as usize].clone();
            flags.resize(n, true);
            flags
        } else {
            vec![true; n]
        }
    }

    /// Evicts least-recently-used unpinned entries until the budget
    /// holds; pinned entries are skipped (and counted) — see the
    /// module-level contract.
    fn enforce_budget(&mut self) {
        loop {
            if self.bytes <= self.budget {
                self.deferred_pending = 0;
                return;
            }
            let mut victim: Option<(u64, Victim)> = None;
            let mut pinned = 0u64;
            fn consider(last: u64, v: Victim, best: &mut Option<(u64, Victim)>) {
                if best.as_ref().is_none_or(|(t, _)| last < *t) {
                    *best = Some((last, v));
                }
            }
            for (c, cls) in self.classes.iter().enumerate() {
                for (&key, e) in &cls.tables {
                    // Never evict the entry touched at the current
                    // tick — that is what the caller just asked for.
                    if e.last_used == self.tick {
                        continue;
                    }
                    if Arc::strong_count(&e.table) == 1 {
                        consider(e.last_used, Victim::Table(c, key), &mut victim);
                    } else {
                        pinned += 1;
                    }
                }
                if let Some(f) = &cls.fact {
                    if cls.last_used != self.tick {
                        if Arc::strong_count(f) == 1 {
                            consider(cls.last_used, Victim::ClassFact(c), &mut victim);
                        } else {
                            pinned += 1;
                        }
                    }
                }
                if let Some(inc) = &cls.inc {
                    if cls.last_used == self.tick {
                        continue;
                    }
                    let space_free = Arc::strong_count(inc.space_arc_ref()) == 1;
                    let transports_free = cls.member_ids.iter().all(|&mi| {
                        self.members[mi]
                            .cached
                            .as_ref()
                            .is_none_or(|cs| Arc::strong_count(cs) == 1)
                    });
                    if space_free && transports_free {
                        consider(cls.last_used, Victim::Class(c), &mut victim);
                    } else {
                        pinned += 1;
                    }
                }
            }
            for (mi, m) in self.members.iter().enumerate() {
                if m.last_used == self.tick {
                    continue;
                }
                if let Some(cs) = &m.cached {
                    if Arc::strong_count(cs) == 1 {
                        consider(m.last_used, Victim::Transport(mi), &mut victim);
                    } else {
                        pinned += 1;
                    }
                }
                if let Some(f) = &m.fact {
                    if Arc::strong_count(f) == 1 {
                        consider(m.last_used, Victim::MemberFact(mi), &mut victim);
                    } else {
                        pinned += 1;
                    }
                }
            }
            match victim {
                Some((_, Victim::Table(c, key))) => {
                    let e = self.classes[c].tables.remove(&key).expect("chosen above");
                    self.bytes -= e.bytes;
                    self.stats.evicted_cold += 1;
                }
                Some((_, Victim::Transport(mi))) => {
                    let m = &mut self.members[mi];
                    m.cached = None;
                    self.bytes -= m.cached_bytes;
                    m.cached_bytes = 0;
                    self.stats.evicted_cold += 1;
                }
                Some((_, Victim::ClassFact(c))) => {
                    self.classes[c].fact = None;
                    self.bytes -= self.classes[c].fact_bytes;
                    self.classes[c].fact_bytes = 0;
                    self.stats.evicted_cold += 1;
                }
                Some((_, Victim::MemberFact(mi))) => {
                    let m = &mut self.members[mi];
                    m.fact = None;
                    self.bytes -= m.fact_bytes;
                    m.fact_bytes = 0;
                    self.stats.evicted_cold += 1;
                }
                Some((_, Victim::Class(c))) => {
                    let member_ids = std::mem::take(&mut self.classes[c].member_ids);
                    for &mi in &member_ids {
                        let m = &mut self.members[mi];
                        if m.cached.take().is_some() {
                            self.bytes -= m.cached_bytes;
                            m.cached_bytes = 0;
                            self.stats.evicted_cold += 1;
                        }
                    }
                    self.classes[c].member_ids = member_ids;
                    self.classes[c].inc = None;
                    self.bytes -= self.classes[c].inc_bytes;
                    self.classes[c].inc_bytes = 0;
                    self.stats.evicted_cold += 1;
                }
                None => {
                    // Everything left is pinned (or just inserted):
                    // record the deferral and let a later sweep or
                    // insertion drain it once the pins drop.
                    self.stats.eviction_deferred_pinned += pinned;
                    self.deferred_pending = pinned;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::dual_simulation;
    use gfd_graph::GraphBuilder;
    use gfd_pattern::PatternBuilder;

    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        b.add_node_labeled("c");
        b.add_edge_labeled(a1, b1, "e");
        b.add_edge_labeled(b1, c1, "e");
        b.add_edge_labeled(a2, b2, "e");
        b.freeze()
    }

    /// The chain pattern with its variables declared in `order`.
    fn chain_pattern(g: &Graph, order: [usize; 3]) -> Pattern {
        let labels = ["a", "b", "c"];
        let names = ["x", "y", "z"];
        let mut b = PatternBuilder::new(g.vocab().clone());
        let mut vars = [VarId(0); 3];
        for &i in &order {
            vars[i] = b.node(names[i], labels[i]);
        }
        b.edge(vars[0], vars[1], "e");
        b.edge(vars[1], vars[2], "e");
        b.build()
    }

    fn full_block(g: &Graph) -> Arc<NodeSet> {
        Arc::new(NodeSet::from_vec(g.nodes().collect()))
    }

    #[test]
    fn one_simulation_serves_the_whole_class() {
        let g = chain_graph();
        let members = [
            chain_pattern(&g, [0, 1, 2]),
            chain_pattern(&g, [2, 0, 1]),
            chain_pattern(&g, [1, 2, 0]),
        ];
        let reg = ClassRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        assert_eq!(reg.class_count(), 1);
        assert_eq!(reg.member_count(), 3);
        assert_eq!(reg.simulations(), 0, "registration alone never simulates");
        for (q, &h) in members.iter().zip(&handles) {
            let got = reg.space(h, &g);
            let want = dual_simulation(q, &g, None);
            assert_eq!(got.sets, want.sets);
            for ei in 0..q.edge_count() {
                assert_eq!(got.forward[ei].offsets, want.forward[ei].offsets);
                assert_eq!(got.forward[ei].targets, want.forward[ei].targets);
                assert_eq!(got.reverse[ei].offsets, want.reverse[ei].offsets);
                assert_eq!(got.reverse[ei].targets, want.reverse[ei].targets);
            }
        }
        assert_eq!(reg.simulations(), 1, "one fixpoint for three members");
    }

    #[test]
    fn distinct_shapes_get_distinct_classes() {
        let g = chain_graph();
        let reg = ClassRegistry::new();
        let h1 = reg.register(&chain_pattern(&g, [0, 1, 2]));
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("solo", "a");
        let h2 = reg.register(&b.build());
        assert_ne!(reg.class_of(h1), reg.class_of(h2));
        assert_eq!(reg.class_count(), 2);
        assert_eq!(reg.class_members(reg.class_of(h1)), 1);
    }

    #[test]
    fn repair_is_per_class_and_members_follow() {
        let g = chain_graph();
        let members = [chain_pattern(&g, [0, 1, 2]), chain_pattern(&g, [2, 1, 0])];
        let reg = ClassRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        for &h in &handles {
            reg.space(h, &g);
        }
        assert_eq!(reg.simulations(), 1);

        // Killing the b1→c1 edge empties the relation for the class.
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        let changed = reg.apply(&g2, &delta);
        assert_eq!(changed, vec![true]);
        for (q, &h) in members.iter().zip(&handles) {
            let want = dual_simulation(q, &g2, None);
            assert_eq!(reg.space(h, &g2).sets, want.sets);
        }
        assert_eq!(reg.simulations(), 1, "repair must not re-simulate");
    }

    /// Re-registering a pattern (or its structural twin under other
    /// names) must return the existing handle — a registry shared
    /// across repeated estimation/detection calls stays bounded.
    #[test]
    fn reregistration_is_deduplicated() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h1 = reg.register(&q);
        let h2 = reg.register(&q);
        assert_eq!(h1, h2);
        // Same structure, different variable names: same handle too.
        let renamed = {
            let mut b = PatternBuilder::new(g.vocab().clone());
            let x = b.node("p", "a");
            let y = b.node("q", "b");
            let z = b.node("r", "c");
            b.edge(x, y, "e");
            b.edge(y, z, "e");
            b.build()
        };
        assert_eq!(reg.register(&renamed), h1);
        // A different declaration order is a different member…
        let h3 = reg.register(&chain_pattern(&g, [2, 0, 1]));
        assert_ne!(h3, h1);
        assert_eq!(reg.member_count(), 2);
        assert_eq!(reg.class_members(reg.class_of(h1)), 2);
        // …and ten rounds of re-registration grow nothing.
        for _ in 0..10 {
            reg.register(&q);
            reg.register(&chain_pattern(&g, [2, 0, 1]));
        }
        assert_eq!(reg.member_count(), 2);
        assert_eq!(reg.simulations(), 0);
    }

    /// The triangle pattern with its variables declared in `order`.
    fn triangle_pattern(g: &Graph, order: [usize; 3]) -> Pattern {
        let labels = ["a", "b", "c"];
        let names = ["x", "y", "z"];
        let mut b = PatternBuilder::new(g.vocab().clone());
        let mut vars = [VarId(0); 3];
        for &i in &order {
            vars[i] = b.node(names[i], labels[i]);
        }
        b.edge(vars[0], vars[1], "e");
        b.edge(vars[1], vars[2], "e");
        b.edge(vars[2], vars[0], "e");
        b.build()
    }

    fn triangle_graph() -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        let c2 = b.add_node_labeled("c");
        for (x, y, z) in [(a1, b1, c1), (a2, b2, c2)] {
            b.add_edge_labeled(x, y, "e");
            b.add_edge_labeled(y, z, "e");
            b.add_edge_labeled(z, x, "e");
        }
        // A dangling a→b edge that closes no triangle.
        b.add_edge_labeled(a1, b2, "e");
        b.freeze()
    }

    #[test]
    fn one_plan_serves_the_whole_class() {
        let g = triangle_graph();
        let members = [
            triangle_pattern(&g, [0, 1, 2]),
            triangle_pattern(&g, [2, 0, 1]),
            triangle_pattern(&g, [1, 2, 0]),
        ];
        let reg = ClassRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        assert_eq!(reg.class_count(), 1);
        assert_eq!(reg.plans_built(), 0, "registration alone never plans");
        for (q, &h) in members.iter().zip(&handles) {
            let plan = reg.plan(h);
            assert_eq!(plan.width(), 2, "a triangle decomposes into one 3-var bag");
            assert_eq!(plan.decomposition().bag_count(), 1);
            assert_eq!(q.node_count(), 3);
        }
        assert_eq!(reg.plans_built(), 1, "one decomposition for three members");
    }

    #[test]
    fn transported_plan_enumerates_the_member_exactly() {
        use crate::component::ComponentSearch;
        use crate::plan::{execute_plan, PlanScratch};
        use crate::types::Flow;

        let g = triangle_graph();
        let members = [
            triangle_pattern(&g, [0, 1, 2]),
            triangle_pattern(&g, [2, 0, 1]),
        ];
        let reg = ClassRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        let mut scratch = PlanScratch::default();
        for (q, &h) in members.iter().zip(&handles) {
            let (cs, plan) = reg.space_and_plan(h, &g);
            let mut got = Vec::new();
            execute_plan(
                q,
                &g,
                &cs,
                &plan,
                None,
                &[],
                u64::MAX,
                &mut scratch,
                &mut |m| {
                    got.push(m.to_vec());
                    Flow::Continue
                },
            );
            let mut want = ComponentSearch::new(q, &g).collect_all();
            got.sort();
            want.sort();
            assert_eq!(got, want, "plan output must equal backtracking");
            assert_eq!(got.len(), 2, "two triangles in the graph");
        }
        assert_eq!(reg.plans_built(), 1);
        assert_eq!(reg.simulations(), 1);
    }

    #[test]
    fn lazy_class_simulates_against_current_snapshot() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h = reg.register(&q);
        // Edit before ever querying: apply skips the unsimulated class…
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        let changed = reg.apply(&g2, &delta);
        assert_eq!(changed, vec![false]);
        assert_eq!(reg.simulations(), 0);
        // …and the first query simulates against the edited snapshot.
        assert_eq!(reg.space(h, &g2).sets, dual_simulation(&q, &g2, None).sets);
        assert_eq!(reg.simulations(), 1);
    }

    /// Isomorphic members share one pinned enumeration by pointer: the
    /// second member's probe is a hit on the table the first stored,
    /// read through the witness permutation.
    #[test]
    fn isomorphic_members_share_pinned_tables() {
        let g = chain_graph();
        let fwd = chain_pattern(&g, [0, 1, 2]);
        let rev = chain_pattern(&g, [2, 1, 0]);
        let reg = ClassRegistry::new();
        let h_fwd = reg.register(&fwd);
        let h_rev = reg.register(&rev);
        let block = full_block(&g);
        let mut s1 = CacheStats::default();
        let mut s2 = CacheStats::default();
        // Pin both members at their own "y" variable and the same
        // pivot: corresponding pins map to one rep pin.
        let v1 = reg.pinned_table(
            h_fwd,
            &g,
            fwd.var_by_name("y").unwrap(),
            NodeId(1),
            &block,
            &mut s1,
        );
        let v2 = reg.pinned_table(
            h_rev,
            &g,
            rev.var_by_name("y").unwrap(),
            NodeId(1),
            &block,
            &mut s2,
        );
        assert_eq!((s1.hits, s1.misses), (0, 1));
        assert_eq!((s2.hits, s2.misses), (1, 0));
        assert!(
            Arc::ptr_eq(v1.table(), v2.table()),
            "hit must share the cached table, not copy it"
        );
        assert_eq!(v1.len(), 1, "premise: one chain match through b1");
        // Both views read the same logical row in their own order.
        for (q, v) in [(&fwd, &v1), (&rev, &v2)] {
            assert_eq!(v.get(0, q.var_by_name("x").unwrap().index()), NodeId(0));
            assert_eq!(v.get(0, q.var_by_name("y").unwrap().index()), NodeId(1));
            assert_eq!(v.get(0, q.var_by_name("z").unwrap().index()), NodeId(2));
        }
        let global = reg.stats();
        assert_eq!((global.hits, global.misses), (1, 1));
    }

    /// A rebuilt block (new `Arc`, same pivot) must not serve the old
    /// enumeration: the probe misses and the entry is replaced.
    #[test]
    fn rebuilt_block_invalidates_the_table() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h = reg.register(&q);
        let pin = q.var_by_name("y").unwrap();
        let mut stats = CacheStats::default();
        let b1 = full_block(&g);
        reg.pinned_table(h, &g, pin, NodeId(1), &b1, &mut stats);
        reg.pinned_table(h, &g, pin, NodeId(1), &b1, &mut stats);
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let b2 = full_block(&g); // same contents, different Arc
        let v = reg.pinned_table(h, &g, pin, NodeId(1), &b2, &mut stats);
        assert_eq!((stats.hits, stats.misses), (1, 2), "new block ⇒ miss");
        assert_eq!(v.len(), 1);
        reg.pinned_table(h, &g, pin, NodeId(1), &b2, &mut stats);
        assert_eq!((stats.hits, stats.misses), (2, 2), "replacement serves");
    }

    /// LRU eviction: over budget, the *least recently touched*
    /// unpinned table goes first — a touch-on-hit keeps hot entries.
    #[test]
    fn eviction_is_lru_with_touch_on_hit() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        // Each pinned chain table holds 1 row × 3 cols × 4 bytes = 12
        // bytes; a 24-byte budget holds two.
        let reg = ClassRegistry::with_budget_bytes(24);
        let h = reg.register(&q);
        let block = full_block(&g);
        let mut stats = CacheStats::default();
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        let z = q.var_by_name("z").unwrap();
        reg.pinned_table(h, &g, x, NodeId(0), &block, &mut stats);
        reg.pinned_table(h, &g, y, NodeId(1), &block, &mut stats);
        // Touch the x-table so the y-table becomes the LRU victim.
        reg.pinned_table(h, &g, x, NodeId(0), &block, &mut stats);
        assert_eq!((stats.hits, stats.misses), (1, 2));
        reg.pinned_table(h, &g, z, NodeId(2), &block, &mut stats);
        assert!(reg.bytes() <= 24, "budget must hold after insertion");
        assert_eq!(reg.stats().evicted_cold, 1);
        reg.pinned_table(h, &g, x, NodeId(0), &block, &mut stats);
        assert_eq!(stats.hits, 2, "the touched table survived");
        reg.pinned_table(h, &g, y, NodeId(1), &block, &mut stats);
        assert_eq!(stats.misses, 4, "the cold table was evicted");
    }

    /// The pinning contract: a view held across an eviction storm is
    /// never dropped (deferred instead) and keeps reading correct
    /// rows; once the pin drops, a sweep drains the deferral.
    #[test]
    fn pinned_tables_defer_eviction_and_drain_after_release() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::with_budget_bytes(12);
        let h = reg.register(&q);
        let block = full_block(&g);
        let mut stats = CacheStats::default();
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        let z = q.var_by_name("z").unwrap();
        let held = reg.pinned_table(h, &g, x, NodeId(0), &block, &mut stats);
        // Storm: new tables keep arriving while `held` pins the first;
        // each insertion evicts its cold predecessor but can never
        // reach the budget because of the pin.
        for _ in 0..3 {
            for (var, node) in [(y, NodeId(1)), (z, NodeId(2))] {
                reg.pinned_table(h, &g, var, node, &block, &mut stats);
            }
        }
        assert!(reg.stats().evicted_cold > 0, "the storm did evict");
        assert!(reg.deferred_pending() > 0, "the held pin must defer");
        assert!(reg.stats().eviction_deferred_pinned > 0);
        // The held view still reads the correct enumeration.
        assert_eq!(held.len(), 1);
        assert_eq!(held.get(0, x.index()), NodeId(0));
        assert_eq!(held.get(0, y.index()), NodeId(1));
        drop(held);
        reg.sweep();
        assert_eq!(reg.deferred_pending(), 0, "pins dropped ⇒ drained");
        assert!(reg.bytes() <= 12);
    }

    /// One factorization serves the whole class: isomorphic members
    /// get relabeled copies of one build, counts agree with
    /// enumeration, and a graph delta that touches the class drops the
    /// cached factorization (epoch invalidation — like spaces, never
    /// plans).
    #[test]
    fn factorizations_are_shared_and_invalidated_per_epoch() {
        let g = triangle_graph();
        let members = [
            triangle_pattern(&g, [0, 1, 2]),
            triangle_pattern(&g, [2, 0, 1]),
        ];
        let reg = ClassRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        assert!(
            reg.cached_factorization(handles[0]).is_none(),
            "probe never builds"
        );
        for (q, &h) in members.iter().zip(&handles) {
            let f = reg.factorization(h, &g).expect("triangles factorize");
            assert_eq!(f.count(), Some(2), "two triangles in the graph");
            assert!(f.has_marginals());
            // Marginals agree with per-pivot enumeration on the
            // member's own variable numbering.
            let x = q.var_by_name("x").unwrap();
            for n in g.nodes() {
                let pinned = ComponentSearch::new(q, &g).pin(x, n).collect_all().len();
                assert_eq!(f.marginal(x, n), Some(pinned as u64));
            }
        }
        assert_eq!(reg.simulations(), 1);
        assert_eq!(reg.plans_built(), 1);
        assert!(
            reg.cached_factorization(handles[1]).is_some(),
            "resident after build"
        );
        // An edit that touches the class invalidates the factorization…
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(0), NodeId(1), "e");
        });
        reg.apply(&g2, &delta);
        assert!(
            reg.cached_factorization(handles[0]).is_none(),
            "delta drops facts"
        );
        // …and the rebuild counts against the new snapshot.
        let f = reg.factorization(handles[0], &g2).unwrap();
        assert_eq!(f.count(), Some(1), "one triangle left");
    }

    /// The satellite-2 contract: factorization bytes count against the
    /// global budget, a held factorization handle defers its eviction
    /// through a storm, and the deferral drains only after release.
    #[test]
    fn pinned_factorizations_defer_eviction_and_drain_after_release() {
        let g = triangle_graph();
        let q = triangle_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h = reg.register(&q);
        let held = reg.factorization(h, &g).expect("triangles factorize");
        let fact_bytes = held.approx_bytes();
        assert!(reg.bytes() >= fact_bytes, "facts are accounted");
        // Shrink the budget below the factorization alone, then storm
        // the registry with tables: every pass stays over budget, the
        // held factorization is skipped (deferred), everything else
        // drains.
        let reg = ClassRegistry::with_budget_bytes(fact_bytes / 2);
        let h = reg.register(&q);
        let held = reg.factorization(h, &g).expect("factorizes");
        let block = full_block(&g);
        let mut stats = CacheStats::default();
        for var in [VarId(0), VarId(1), VarId(2)] {
            for n in g.nodes() {
                reg.pinned_table(h, &g, var, n, &block, &mut stats);
            }
        }
        reg.sweep();
        assert!(reg.deferred_pending() > 0, "the held fact must defer");
        assert_eq!(held.count(), Some(2), "held handle still reads correctly");
        drop(held);
        reg.sweep();
        assert_eq!(reg.deferred_pending(), 0, "pin dropped ⇒ drained");
        assert!(reg.bytes() <= reg.budget_bytes());
    }

    /// A whole evicted class reports conservative change flags from
    /// `apply` and re-simulates against the current snapshot on the
    /// next query.
    #[test]
    fn evicted_class_is_conservative_and_resimulates() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::with_budget_bytes(0);
        let h = reg.register(&q);
        drop(reg.space(h, &g));
        assert_eq!(reg.simulations(), 1);
        reg.sweep();
        assert!(reg.stats().evicted_cold >= 1, "zero budget must evict");
        assert_eq!(reg.bytes(), 0);
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        let changed = reg.apply(&g2, &delta);
        assert_eq!(
            changed,
            vec![true],
            "an evicted, previously-simulated class must report changed"
        );
        assert_eq!(reg.space(h, &g2).sets, dual_simulation(&q, &g2, None).sets);
        assert_eq!(reg.simulations(), 2, "re-query re-simulates");
    }

    /// Multi-tenant `advance`: the first tenant at an epoch repairs,
    /// laggards replay the recorded flags; epochs beyond the bounded
    /// history replay conservatively.
    #[test]
    fn advance_replays_flags_to_lagging_tenants() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h = reg.register(&q);
        reg.space(h, &g);
        assert_eq!(reg.version(), 0);

        let (g2, d1) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        let d1 = d1.normalize();
        let first = reg.advance(&g2, &d1, 1);
        assert_eq!(first, vec![true]);
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.simulations(), 1);

        // A second tenant reaches epoch 1 later: same flags, no second
        // repair (the space is already at epoch 1).
        let replay = reg.advance(&g2, &d1, 1);
        assert_eq!(replay, first);
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.space(h, &g2).sets, dual_simulation(&q, &g2, None).sets);

        // An empty delta advances nobody.
        let (g3, d_empty) = g2.edit_with_delta(|_| {});
        assert_eq!(reg.advance(&g3, &d_empty.normalize(), 2), vec![false]);
        assert_eq!(reg.version(), 1);

        // Age epoch 1 out of the bounded history window: flip the
        // a1→b1 edge back and forth, one non-empty delta per epoch.
        let mut cur = g2;
        let mut present = true; // a1→b1 survived epoch 1; toggle it
        for v in 2..(2 + FLAG_HISTORY as u64 + 4) {
            let (next, d) = cur.edit_with_delta(|b| {
                if present {
                    b.remove_edge_labeled(NodeId(0), NodeId(1), "e");
                } else {
                    b.add_edge_labeled(NodeId(0), NodeId(1), "e");
                }
            });
            present = !present;
            reg.advance(&next, &d.normalize(), v);
            cur = next;
        }
        assert!(reg.version() > FLAG_HISTORY as u64);
        assert_eq!(
            reg.advance(&cur, &d1, 1),
            vec![true],
            "evicted history replays conservatively"
        );
    }

    /// `invalidate_all` drops every derived artifact; later queries
    /// rebuild against the current snapshot and later applies are
    /// conservative.
    #[test]
    fn invalidate_all_rebuilds_from_current_snapshot() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h = reg.register(&q);
        reg.space(h, &g);
        let mut stats = CacheStats::default();
        let block = full_block(&g);
        reg.pinned_table(h, &g, VarId(0), NodeId(0), &block, &mut stats);
        assert!(reg.bytes() > 0);
        reg.invalidate_all();
        assert_eq!(reg.bytes(), 0);
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        assert_eq!(reg.apply(&g2, &delta), vec![true], "conservative");
        assert_eq!(reg.space(h, &g2).sets, dual_simulation(&q, &g2, None).sets);
        assert_eq!(reg.simulations(), 2);
    }

    /// A space handle held across a repair keeps its pre-repair
    /// snapshot (copy-on-write), while fresh queries see the repair.
    #[test]
    fn held_space_snapshot_survives_repair() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let reg = ClassRegistry::new();
        let h = reg.register(&q);
        let before = reg.space(h, &g);
        let sets_before = before.sets.clone();
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        reg.apply(&g2, &delta);
        assert_eq!(before.sets, sets_before, "held snapshot is immutable");
        assert!(
            reg.space(h, &g2).is_empty_anywhere(),
            "fresh queries see the repair"
        );
    }
}
