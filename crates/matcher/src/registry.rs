//! The isomorphism-class-keyed candidate-space registry: simulate
//! once per class, transport everywhere.
//!
//! Rule sets mined from real graphs are full of isomorphic pattern
//! components (the paper's Example 10), yet every consumer of
//! [`dual_simulation`](crate::simulation::dual_simulation) used to run
//! one worklist fixpoint *per component per rule* — `k` identical
//! simulations for a class with `k` members. [`SpaceRegistry`] keys
//! [`CandidateSpace`]s by **canonical isomorphism class**
//! ([`gfd_pattern::canonical_form`], complete — no hash-collision
//! exposure) and computes each class once:
//!
//! * the first registered member of a class becomes the
//!   *representative*; its space is computed by the worklist fixpoint
//!   (lazily — classes that are never queried cost nothing beyond the
//!   canonical form);
//! * every further member stores only the [`IsoWitness`] onto the
//!   representative, and its space is
//!   [`CandidateSpace::transport`]ed — a permutation of the computed
//!   relation, no graph access;
//! * under graph edits, [`SpaceRegistry::apply`] repairs **one
//!   representative per class** through
//!   [`IncrementalSpace::apply_normalized`] and invalidates the
//!   members' transported caches, so the per-edit cost is also paid
//!   once per class.
//!
//! One registry is shared across a whole rule set Σ — workload
//! estimation (`gfd-parallel`), violation detection (`gfd-core`) and
//! their incremental maintainers all borrow the same instance, in the
//! spirit of factorised / shared evaluation engines (FDB, FAQ): compute
//! a shared representation once, reuse it across structurally
//! identical subqueries.
//!
//! Registry spaces are whole-graph (unscoped); block- and
//! fragment-local simulations stay per-call.

use std::collections::HashMap;

use gfd_graph::{Graph, GraphDelta, NodeId};
use gfd_pattern::{canonical_form, CanonicalForm, IsoWitness, Pattern, VarId};

use crate::incremental::IncrementalSpace;
use crate::plan::QueryPlan;
use crate::simulation::{dual_simulation, CandidateSpace};

/// Handle to a pattern registered in a [`SpaceRegistry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpaceHandle(usize);

/// One isomorphism class: the representative pattern and its (lazily
/// computed, incrementally repaired) simulation state.
struct ClassState {
    rep: Pattern,
    form: CanonicalForm,
    /// `None` until some member's space is first queried; repaired in
    /// place by [`SpaceRegistry::apply`] afterwards.
    inc: Option<IncrementalSpace>,
    /// Decomposition-based query plan, built lazily on the
    /// representative. Pure pattern structure: graph edits never
    /// invalidate it.
    plan: Option<QueryPlan>,
    members: usize,
}

/// One registered pattern: its class and the witness onto the class
/// representative.
struct MemberState {
    q: Pattern,
    class: usize,
    witness: IsoWitness,
    /// Identity witnesses alias the representative's space directly.
    identity: bool,
    /// Transported space, dropped whenever the representative changes.
    cached: Option<CandidateSpace>,
    /// Plan transported from the representative's (never invalidated —
    /// plans depend only on pattern structure).
    plan: Option<QueryPlan>,
}

/// A cache of [`CandidateSpace`]s keyed by canonical isomorphism
/// class; see the module docs.
#[derive(Default)]
pub struct SpaceRegistry {
    classes: Vec<ClassState>,
    members: Vec<MemberState>,
    by_code: HashMap<Vec<u64>, usize>,
    /// Dedup of member registrations: a witness determines the member
    /// pattern up to variable names (member = rep relabeled along the
    /// inverse), so `(class, witness)` identifies a transported space
    /// — re-registering returns the existing handle instead of growing
    /// state, which keeps long-lived shared registries bounded across
    /// repeated `estimate_workload_in`/`detect_violations_shared`
    /// calls over one Σ.
    member_by_witness: HashMap<(usize, Vec<VarId>), usize>,
    simulations: usize,
    plans_built: usize,
}

impl SpaceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pattern, resolving its isomorphism class (new
    /// classes make the pattern the representative; structurally
    /// identical re-registrations return the existing handle). Cheap —
    /// the simulation itself is deferred until [`space`](Self::space)
    /// is first called for the class.
    pub fn register(&mut self, q: &Pattern) -> SpaceHandle {
        let form = canonical_form(q);
        let (class, witness) = match self.by_code.get(form.code()) {
            Some(&c) => (c, form.witness_onto(&self.classes[c].form)),
            None => {
                let c = self.classes.len();
                self.by_code.insert(form.code().to_vec(), c);
                let witness = IsoWitness::identity(q.node_count());
                self.classes.push(ClassState {
                    rep: q.clone(),
                    form,
                    inc: None,
                    plan: None,
                    members: 0,
                });
                (c, witness)
            }
        };
        debug_assert!(
            std::sync::Arc::ptr_eq(q.vocab(), self.classes[class].rep.vocab()),
            "patterns in one registry must share a vocabulary"
        );
        let key = (class, witness.as_slice().to_vec());
        if let Some(&existing) = self.member_by_witness.get(&key) {
            return SpaceHandle(existing);
        }
        self.classes[class].members += 1;
        let identity = witness.is_identity();
        self.members.push(MemberState {
            q: q.clone(),
            class,
            witness,
            identity,
            cached: None,
            plan: None,
        });
        self.member_by_witness.insert(key, self.members.len() - 1);
        SpaceHandle(self.members.len() - 1)
    }

    /// The member's candidate space over `g`: simulated once per class
    /// (on first query), transported — and cached — for every further
    /// member. `g` must be the snapshot the registry is synchronized
    /// with (the one passed to the last [`apply`](Self::apply), or the
    /// initial graph).
    pub fn space(&mut self, h: SpaceHandle, g: &Graph) -> &CandidateSpace {
        let class = self.members[h.0].class;
        if self.classes[class].inc.is_none() {
            let inc = IncrementalSpace::new(&self.classes[class].rep, g, None);
            self.classes[class].inc = Some(inc);
            self.simulations += 1;
        }
        if self.members[h.0].identity {
            return self.classes[class]
                .inc
                .as_ref()
                .expect("simulated above")
                .space();
        }
        if self.members[h.0].cached.is_none() {
            let cls = &self.classes[class];
            let rep_space = cls.inc.as_ref().expect("simulated above").space();
            let m = &self.members[h.0];
            let transported = rep_space.transport(&cls.rep, &m.q, &m.witness);
            self.members[h.0].cached = Some(transported);
        }
        self.members[h.0].cached.as_ref().expect("filled above")
    }

    /// The member's decomposition-based query plan: tree-decomposed
    /// once per class (on the representative, on first query) and
    /// transported — via relabeling along the inverse witness — for
    /// every further member. Plans are pure pattern structure, so
    /// graph edits never invalidate them.
    pub fn plan(&mut self, h: SpaceHandle) -> &QueryPlan {
        let class = self.members[h.0].class;
        if self.classes[class].plan.is_none() {
            let p = QueryPlan::new(&self.classes[class].rep);
            self.classes[class].plan = Some(p);
            self.plans_built += 1;
        }
        if self.members[h.0].identity {
            return self.classes[class].plan.as_ref().expect("built above");
        }
        if self.members[h.0].plan.is_none() {
            let rep_plan = self.classes[class].plan.as_ref().expect("built above");
            let m = &self.members[h.0];
            // The witness maps member vars onto rep vars; transport
            // relabels the rep's decomposition back through the
            // inverse.
            let inv = m.witness.inverse();
            let transported = rep_plan.transport(&m.q, |v| inv.map(v));
            self.members[h.0].plan = Some(transported);
        }
        self.members[h.0].plan.as_ref().expect("filled above")
    }

    /// Both the member's candidate space and its query plan, each
    /// lazily built and cached as in [`space`](Self::space) /
    /// [`plan`](Self::plan) — the single call detection hot paths use
    /// to set up plan execution.
    pub fn space_and_plan(&mut self, h: SpaceHandle, g: &Graph) -> (&CandidateSpace, &QueryPlan) {
        self.space(h, g);
        self.plan(h);
        let m = &self.members[h.0];
        let cls = &self.classes[m.class];
        let space = if m.identity {
            cls.inc.as_ref().expect("filled by space()").space()
        } else {
            m.cached.as_ref().expect("filled by space()")
        };
        let plan = if m.identity {
            cls.plan.as_ref().expect("filled by plan()")
        } else {
            m.plan.as_ref().expect("filled by plan()")
        };
        (space, plan)
    }

    /// True if `u` currently simulates `v` in the member's space.
    pub fn contains(&mut self, h: SpaceHandle, g: &Graph, v: VarId, u: NodeId) -> bool {
        self.space(h, g).sets[v.index()].binary_search(&u).is_ok()
    }

    /// Sampled repair-invariant check: recomputes the member's
    /// candidate space from scratch (a fresh [`dual_simulation`] of
    /// the member pattern over `g`, no incremental state, no
    /// transport) and compares it with what the registry serves —
    /// the repaired representative read through the member's witness.
    /// `true` means the incremental repair chain is still exact for
    /// this member.
    ///
    /// This is the self-check a long-running service runs on a random
    /// member per epoch: one simulation's worth of work, so it is
    /// affordable at a sampling cadence, and any divergence (a repair
    /// bug, memory corruption, a consumer mutating shared state)
    /// surfaces as `false` instead of silently wrong match results.
    pub fn verify_member(&mut self, h: SpaceHandle, g: &Graph) -> bool {
        let served = self.space(h, g).clone();
        let scratch = dual_simulation(&self.members[h.0].q, g, None);
        served == scratch
    }

    /// Repairs the registry against one edit step: **one**
    /// [`IncrementalSpace`] repair per simulated class (classes never
    /// queried are skipped — a later first query simulates against the
    /// then-current snapshot), then invalidates the transported caches
    /// of every class whose space contents changed. Returns per-class
    /// flags that are true when the class's *candidate sets* changed —
    /// the signal workload maintenance keys on (members inherit their
    /// representative's flag exactly: transport is a bijection of
    /// contents).
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) -> Vec<bool> {
        self.apply_normalized(g, &delta.clone().normalize())
    }

    /// [`apply`](Self::apply) for an already-normalized delta.
    pub fn apply_normalized(&mut self, g: &Graph, d: &GraphDelta) -> Vec<bool> {
        let mut sets_changed = vec![false; self.classes.len()];
        if d.is_empty() {
            return sets_changed;
        }
        // Caches must also refresh on adjacency-only changes (a new
        // graph edge between surviving candidates moves the per-edge
        // runs without moving any set).
        let mut refresh = vec![false; self.classes.len()];
        for (c, cls) in self.classes.iter_mut().enumerate() {
            if let Some(inc) = cls.inc.as_mut() {
                let report = inc.apply_normalized(g, d);
                sets_changed[c] = !report.is_unchanged();
                refresh[c] = sets_changed[c] || report.adjacency_changed;
            }
        }
        for m in &mut self.members {
            if refresh[m.class] {
                m.cached = None;
            }
        }
        sets_changed
    }

    /// The class a registered pattern belongs to.
    pub fn class_of(&self, h: SpaceHandle) -> usize {
        self.members[h.0].class
    }

    /// Number of structurally distinct members registered into a class
    /// (identical re-registrations collapse onto one handle, so this
    /// is *not* a per-rule count — callers gating on "how many rules
    /// of my Σ share this class" should count class occurrences over
    /// the handles of their own registration pass instead).
    pub fn class_members(&self, class: usize) -> usize {
        self.classes[class].members
    }

    /// Number of distinct isomorphism classes registered.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Structurally distinct registered patterns.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// From-scratch worklist simulations run so far — the probe that
    /// asserts "one simulation per isomorphism class" in tests and
    /// benchmarks.
    pub fn simulations(&self) -> usize {
        self.simulations
    }

    /// From-scratch tree decompositions run so far — the "one plan per
    /// isomorphism class" probe (transports are not counted).
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::dual_simulation;
    use gfd_graph::GraphBuilder;
    use gfd_pattern::PatternBuilder;

    fn chain_graph() -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        b.add_node_labeled("c");
        b.add_edge_labeled(a1, b1, "e");
        b.add_edge_labeled(b1, c1, "e");
        b.add_edge_labeled(a2, b2, "e");
        b.freeze()
    }

    /// The chain pattern with its variables declared in `order`.
    fn chain_pattern(g: &Graph, order: [usize; 3]) -> Pattern {
        let labels = ["a", "b", "c"];
        let names = ["x", "y", "z"];
        let mut b = PatternBuilder::new(g.vocab().clone());
        let mut vars = [VarId(0); 3];
        for &i in &order {
            vars[i] = b.node(names[i], labels[i]);
        }
        b.edge(vars[0], vars[1], "e");
        b.edge(vars[1], vars[2], "e");
        b.build()
    }

    #[test]
    fn one_simulation_serves_the_whole_class() {
        let g = chain_graph();
        let members = [
            chain_pattern(&g, [0, 1, 2]),
            chain_pattern(&g, [2, 0, 1]),
            chain_pattern(&g, [1, 2, 0]),
        ];
        let mut reg = SpaceRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        assert_eq!(reg.class_count(), 1);
        assert_eq!(reg.member_count(), 3);
        assert_eq!(reg.simulations(), 0, "registration alone never simulates");
        for (q, &h) in members.iter().zip(&handles) {
            let got = reg.space(h, &g).clone();
            let want = dual_simulation(q, &g, None);
            assert_eq!(got.sets, want.sets);
            for ei in 0..q.edge_count() {
                assert_eq!(got.forward[ei].offsets, want.forward[ei].offsets);
                assert_eq!(got.forward[ei].targets, want.forward[ei].targets);
                assert_eq!(got.reverse[ei].offsets, want.reverse[ei].offsets);
                assert_eq!(got.reverse[ei].targets, want.reverse[ei].targets);
            }
        }
        assert_eq!(reg.simulations(), 1, "one fixpoint for three members");
    }

    #[test]
    fn distinct_shapes_get_distinct_classes() {
        let g = chain_graph();
        let mut reg = SpaceRegistry::new();
        let h1 = reg.register(&chain_pattern(&g, [0, 1, 2]));
        let mut b = PatternBuilder::new(g.vocab().clone());
        b.node("solo", "a");
        let h2 = reg.register(&b.build());
        assert_ne!(reg.class_of(h1), reg.class_of(h2));
        assert_eq!(reg.class_count(), 2);
        assert_eq!(reg.class_members(reg.class_of(h1)), 1);
    }

    #[test]
    fn repair_is_per_class_and_members_follow() {
        let g = chain_graph();
        let members = [chain_pattern(&g, [0, 1, 2]), chain_pattern(&g, [2, 1, 0])];
        let mut reg = SpaceRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        for &h in &handles {
            reg.space(h, &g);
        }
        assert_eq!(reg.simulations(), 1);

        // Killing the b1→c1 edge empties the relation for the class.
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        let changed = reg.apply(&g2, &delta);
        assert_eq!(changed, vec![true]);
        for (q, &h) in members.iter().zip(&handles) {
            let want = dual_simulation(q, &g2, None);
            assert_eq!(reg.space(h, &g2).sets, want.sets);
        }
        assert_eq!(reg.simulations(), 1, "repair must not re-simulate");
    }

    /// Re-registering a pattern (or its structural twin under other
    /// names) must return the existing handle — a registry shared
    /// across repeated estimation/detection calls stays bounded.
    #[test]
    fn reregistration_is_deduplicated() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let mut reg = SpaceRegistry::new();
        let h1 = reg.register(&q);
        let h2 = reg.register(&q);
        assert_eq!(h1, h2);
        // Same structure, different variable names: same handle too.
        let renamed = {
            let mut b = PatternBuilder::new(g.vocab().clone());
            let x = b.node("p", "a");
            let y = b.node("q", "b");
            let z = b.node("r", "c");
            b.edge(x, y, "e");
            b.edge(y, z, "e");
            b.build()
        };
        assert_eq!(reg.register(&renamed), h1);
        // A different declaration order is a different member…
        let h3 = reg.register(&chain_pattern(&g, [2, 0, 1]));
        assert_ne!(h3, h1);
        assert_eq!(reg.member_count(), 2);
        assert_eq!(reg.class_members(reg.class_of(h1)), 2);
        // …and ten rounds of re-registration grow nothing.
        for _ in 0..10 {
            reg.register(&q);
            reg.register(&chain_pattern(&g, [2, 0, 1]));
        }
        assert_eq!(reg.member_count(), 2);
        assert_eq!(reg.simulations(), 0);
    }

    /// The triangle pattern with its variables declared in `order`.
    fn triangle_pattern(g: &Graph, order: [usize; 3]) -> Pattern {
        let labels = ["a", "b", "c"];
        let names = ["x", "y", "z"];
        let mut b = PatternBuilder::new(g.vocab().clone());
        let mut vars = [VarId(0); 3];
        for &i in &order {
            vars[i] = b.node(names[i], labels[i]);
        }
        b.edge(vars[0], vars[1], "e");
        b.edge(vars[1], vars[2], "e");
        b.edge(vars[2], vars[0], "e");
        b.build()
    }

    fn triangle_graph() -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let a1 = b.add_node_labeled("a");
        let b1 = b.add_node_labeled("b");
        let c1 = b.add_node_labeled("c");
        let a2 = b.add_node_labeled("a");
        let b2 = b.add_node_labeled("b");
        let c2 = b.add_node_labeled("c");
        for (x, y, z) in [(a1, b1, c1), (a2, b2, c2)] {
            b.add_edge_labeled(x, y, "e");
            b.add_edge_labeled(y, z, "e");
            b.add_edge_labeled(z, x, "e");
        }
        // A dangling a→b edge that closes no triangle.
        b.add_edge_labeled(a1, b2, "e");
        b.freeze()
    }

    #[test]
    fn one_plan_serves_the_whole_class() {
        let g = triangle_graph();
        let members = [
            triangle_pattern(&g, [0, 1, 2]),
            triangle_pattern(&g, [2, 0, 1]),
            triangle_pattern(&g, [1, 2, 0]),
        ];
        let mut reg = SpaceRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        assert_eq!(reg.class_count(), 1);
        assert_eq!(reg.plans_built(), 0, "registration alone never plans");
        for (q, &h) in members.iter().zip(&handles) {
            let w = reg.plan(h).width();
            assert_eq!(w, 2, "a triangle decomposes into one 3-var bag");
            assert_eq!(reg.plan(h).decomposition().bag_count(), 1);
            assert_eq!(q.node_count(), 3);
        }
        assert_eq!(reg.plans_built(), 1, "one decomposition for three members");
    }

    #[test]
    fn transported_plan_enumerates_the_member_exactly() {
        use crate::component::ComponentSearch;
        use crate::plan::{execute_plan, PlanScratch};
        use crate::types::Flow;

        let g = triangle_graph();
        let members = [
            triangle_pattern(&g, [0, 1, 2]),
            triangle_pattern(&g, [2, 0, 1]),
        ];
        let mut reg = SpaceRegistry::new();
        let handles: Vec<SpaceHandle> = members.iter().map(|q| reg.register(q)).collect();
        let mut scratch = PlanScratch::default();
        for (q, &h) in members.iter().zip(&handles) {
            let (cs, plan) = reg.space_and_plan(h, &g);
            let mut got = Vec::new();
            execute_plan(
                q,
                &g,
                cs,
                plan,
                None,
                &[],
                u64::MAX,
                &mut scratch,
                &mut |m| {
                    got.push(m.to_vec());
                    Flow::Continue
                },
            );
            let mut want = ComponentSearch::new(q, &g).collect_all();
            got.sort();
            want.sort();
            assert_eq!(got, want, "plan output must equal backtracking");
            assert_eq!(got.len(), 2, "two triangles in the graph");
        }
        assert_eq!(reg.plans_built(), 1);
        assert_eq!(reg.simulations(), 1);
    }

    #[test]
    fn lazy_class_simulates_against_current_snapshot() {
        let g = chain_graph();
        let q = chain_pattern(&g, [0, 1, 2]);
        let mut reg = SpaceRegistry::new();
        let h = reg.register(&q);
        // Edit before ever querying: apply skips the unsimulated class…
        let (g2, delta) = g.edit_with_delta(|b| {
            b.remove_edge_labeled(NodeId(1), NodeId(2), "e");
        });
        let changed = reg.apply(&g2, &delta);
        assert_eq!(changed, vec![false]);
        assert_eq!(reg.simulations(), 0);
        // …and the first query simulates against the edited snapshot.
        assert_eq!(reg.space(h, &g2).sets, dual_simulation(&q, &g2, None).sets);
        assert_eq!(reg.simulations(), 1);
    }
}
