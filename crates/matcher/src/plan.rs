//! Decomposition-plan execution: worst-case-optimal multiway matching
//! for cyclic pattern components.
//!
//! The edge-at-a-time backtracker ([`crate::component`]) can pay the
//! worst intermediate-result blowup of a bad branch order on cyclic
//! patterns — a skewed triangle enumerates every `(x, y)` edge pair
//! before discovering that almost none close the cycle. A
//! [`QueryPlan`] instead executes along a tree decomposition of the
//! pattern ([`gfd_pattern::decomp`]):
//!
//! * each **bag** is solved by a *worst-case-optimal multiway step* —
//!   at every variable, ALL pattern-edge-constrained sorted runs from
//!   the [`CandidateSpace`] adjacency are intersected at once
//!   ([`gfd_graph::intersect::intersect_k`], leapfrog-style
//!   smallest-first seeding), so the work at each level is bounded by
//!   the *smallest* constraining run rather than the enumeration
//!   frontier of one edge;
//! * bags are **fused** along the tree: one recursion solves them in
//!   parent-before-child order, a variable bound by an earlier bag
//!   stays fixed, and only each bag's fresh variables are placed —
//!   every parent binding constrains the child's multiway steps
//!   directly. (Materializing bag tables and equi-joining them was
//!   measured strictly worse: a child bag enumerated *independently*
//!   pays its full unconstrained frontier, which on cyclic benches
//!   costs more than all per-binding residual solves combined.)
//! * acyclic components never get here: plans of width ≤ 1 are routed
//!   to the existing backtracker by the gate in [`crate::api`], which
//!   is already worst-case optimal on forests.
//!
//! All state lives in a caller-owned [`PlanScratch`] (same discipline
//! as [`crate::join::JoinScratch`]): a warm caller executes plans with
//! zero steady-state heap allocation.
//!
//! Plans are a pure function of the pattern — no graph statistics —
//! and therefore isomorphism-invariant: the registry computes one plan
//! per canonical class and [`QueryPlan::transport`]s it to members
//! along their witnesses, exactly like candidate spaces.

use gfd_graph::intersect::{intersect_in_place, intersect_k};
use gfd_graph::{Graph, NodeId, NodeSet};
use gfd_pattern::{tree_decomposition, Pattern, TreeDecomposition, VarId};

use crate::component::{edge_ok, StopReason};
use crate::simulation::CandidateSpace;
use crate::types::Flow;

/// Constraining runs are intersected in stack batches of this size —
/// no variable of a mined rule has anywhere near 16 constraining
/// edges, but the fold below stays correct if one does.
const MAX_RUNS: usize = 16;

/// Execution info for one bag: the variable placement order and the
/// pattern edges the bag enforces.
#[derive(Clone, Debug)]
pub(crate) struct BagPlan {
    /// Bag variables in placement order: greedy most-constrained-first
    /// (most already-placed bag neighbors, then highest bag-internal
    /// degree, then smallest id — fully deterministic).
    pub(crate) order: Vec<VarId>,
    /// Indices into `Pattern::edges()` of every edge with both
    /// endpoints in this bag. An edge shared by several bags is
    /// enforced in each of them — redundant but sound, and it keeps
    /// every bag's frontier as tight as the simulation allows.
    pub(crate) edges: Vec<u32>,
}

/// A decomposition-based execution plan for one connected pattern.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    pub(crate) td: TreeDecomposition,
    pub(crate) bags: Vec<BagPlan>,
    /// Bag indices in parent-before-child (DFS) order — the fused
    /// execution sequence. With the running-intersection property this
    /// guarantees that at the first-processed bag containing both
    /// endpoints of an edge, at least one endpoint is still fresh, so
    /// every edge is enforced exactly where it first becomes local.
    pub(crate) seq: Vec<u32>,
    /// Per-`seq`-position offset into the shared pool array (bags use
    /// disjoint pool slots so nested fills never collide).
    pub(crate) pool_base: Vec<u32>,
    pub(crate) n_vars: usize,
}

impl QueryPlan {
    /// Plans `q` from scratch (tree decomposition + per-bag orders).
    pub fn new(q: &Pattern) -> QueryPlan {
        Self::from_decomposition(q, tree_decomposition(q))
    }

    /// Plans `q` along a precomputed decomposition.
    pub fn from_decomposition(q: &Pattern, td: TreeDecomposition) -> QueryPlan {
        let bags = td
            .bags
            .iter()
            .map(|bag| {
                let edges: Vec<u32> = q
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| bag.vars.contains(&e.src) && bag.vars.contains(&e.dst))
                    .map(|(i, _)| i as u32)
                    .collect();
                BagPlan {
                    order: bag_order(q, &bag.vars, &edges),
                    edges,
                }
            })
            .collect();
        let seq = dfs_order(&td);
        let mut pool_base = Vec::with_capacity(seq.len());
        let mut base = 0u32;
        for &bi in &seq {
            pool_base.push(base);
            base += td.bags[bi as usize].vars.len() as u32;
        }
        QueryPlan {
            td,
            bags,
            seq,
            pool_base,
            n_vars: q.node_count(),
        }
    }

    /// The decomposition's width — the planner's cost signal: width ≤ 1
    /// means the component is a forest and the plain backtracker is
    /// the right executor; width ≥ 2 marks a cyclic component whose
    /// bags are worth the multiway step.
    pub fn width(&self) -> usize {
        self.td.width()
    }

    /// True if the plan has any cyclic bag (width ≥ 2).
    pub fn is_cyclic(&self) -> bool {
        self.width() >= 2
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// The underlying tree decomposition.
    pub fn decomposition(&self) -> &TreeDecomposition {
        &self.td
    }

    /// Transports a plan computed for a class representative onto the
    /// isomorphic pattern `member`; `map` sends representative
    /// variables to member variables (an [`gfd_pattern::IsoWitness`]
    /// `inverse`). The bag structure and width carry over unchanged;
    /// placement orders and edge lists are rebuilt against the
    /// member's own numbering.
    pub fn transport(&self, member: &Pattern, map: impl Fn(VarId) -> VarId) -> QueryPlan {
        Self::from_decomposition(member, self.td.relabel(map))
    }
}

/// Bag indices in parent-before-child order: roots first, then each
/// bag immediately after its parent's subtree is entered (iterative
/// DFS; deterministic — children visit in ascending index order).
fn dfs_order(td: &TreeDecomposition) -> Vec<u32> {
    let n = td.bags.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack = Vec::new();
    for root in 0..n {
        if td.bags[root].parent.is_some() || visited[root] {
            continue;
        }
        stack.push(root);
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut visited[b], true) {
                continue;
            }
            order.push(b as u32);
            // Push children in descending order so they pop ascending.
            for c in (0..n).rev() {
                if td.bags[c].parent == Some(b) && !visited[c] {
                    stack.push(c);
                }
            }
        }
    }
    // Defensive: a malformed parent cycle would strand bags; append
    // them in index order rather than silently dropping coverage.
    for (b, seen) in visited.iter().enumerate() {
        if !seen {
            order.push(b as u32);
        }
    }
    order
}

/// Deterministic placement order for one bag's variables.
fn bag_order(q: &Pattern, vars: &[VarId], edges: &[u32]) -> Vec<VarId> {
    let mut order: Vec<VarId> = Vec::with_capacity(vars.len());
    let internal_degree = |v: VarId| {
        edges
            .iter()
            .filter(|&&ei| {
                let e = &q.edges()[ei as usize];
                (e.src == v || e.dst == v) && e.src != e.dst
            })
            .count()
    };
    while order.len() < vars.len() {
        let next = vars
            .iter()
            .copied()
            .filter(|v| !order.contains(v))
            .max_by_key(|&v| {
                let constrained = edges
                    .iter()
                    .filter(|&&ei| {
                        let e = &q.edges()[ei as usize];
                        (e.src == v && order.contains(&e.dst))
                            || (e.dst == v && order.contains(&e.src))
                    })
                    .count();
                (constrained, internal_degree(v), std::cmp::Reverse(v.0))
            })
            .expect("unplaced variable exists");
        order.push(next);
    }
    order
}

/// Caller-owned scratch for [`execute_plan`]: per-bag-and-depth
/// candidate pools and the assignment array. A warm caller re-executes
/// plans with zero heap allocation.
#[derive(Debug, Default)]
pub struct PlanScratch {
    pools: Vec<Vec<NodeId>>,
    assigned: Vec<NodeId>,
}

impl PlanScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Folds a batch of constraining runs into the pool: the first
/// batch seeds via smallest-first k-way intersection, later
/// batches (only under pathological fan-in) refine pairwise.
fn fold_batch(pool: &mut Vec<NodeId>, runs: &mut [&[NodeId]], seeded: bool) {
    if !seeded {
        intersect_k(pool, runs);
    } else {
        for run in runs.iter() {
            if pool.is_empty() {
                return;
            }
            intersect_in_place(pool, run, |&x| x);
        }
    }
}

/// Fills `pool` with the worst-case-optimal candidate pool for `sv`:
/// the k-way intersection of the candidate-adjacency runs of every
/// already-assigned bag neighbor (every constraining edge at once). An
/// unconstrained variable seeds from its simulation set, narrowed by
/// the restriction. A pinned variable's pool collapses to the pin if
/// it survives the intersection.
///
/// Shared between the fused executor below and the factorization
/// builder ([`crate::factorize`]) — both must draw bag pools from the
/// exact same candidate adjacency for the oracle equivalences to hold.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_bag_pool(
    q: &Pattern,
    cs: &CandidateSpace,
    restriction: Option<&NodeSet>,
    pins: &[(VarId, NodeId)],
    bag: &BagPlan,
    sv: VarId,
    assigned: &[NodeId],
    pool: &mut Vec<NodeId>,
) {
    pool.clear();
    let mut runs: [&[NodeId]; MAX_RUNS] = [&[]; MAX_RUNS];
    let mut nruns = 0usize;
    let mut seeded = false;
    for &ei in &bag.edges {
        let e = &q.edges()[ei as usize];
        if e.src == e.dst {
            continue; // self-loops are checked per candidate
        }
        let run = if e.src == sv {
            let ta = assigned[e.dst.index()];
            if ta.0 == u32::MAX {
                continue;
            }
            match cs.sets[e.dst.index()].binary_search(&ta) {
                Ok(i) => cs.reverse[ei as usize].run(i),
                Err(_) => {
                    // Assigned images always come from the space's
                    // own sets, so this is unreachable — but an
                    // empty pool is the sound answer.
                    debug_assert!(false, "assigned image outside its simulation set");
                    pool.clear();
                    return;
                }
            }
        } else if e.dst == sv {
            let sa = assigned[e.src.index()];
            if sa.0 == u32::MAX {
                continue;
            }
            match cs.sets[e.src.index()].binary_search(&sa) {
                Ok(i) => cs.forward[ei as usize].run(i),
                Err(_) => {
                    debug_assert!(false, "assigned image outside its simulation set");
                    pool.clear();
                    return;
                }
            }
        } else {
            continue;
        };
        if nruns == MAX_RUNS {
            fold_batch(pool, &mut runs[..nruns], seeded);
            seeded = true;
            nruns = 0;
            if pool.is_empty() {
                return;
            }
        }
        runs[nruns] = run;
        nruns += 1;
    }
    if nruns > 0 {
        fold_batch(pool, &mut runs[..nruns], seeded);
        seeded = true;
    }
    if !seeded {
        // No constraining edge yet (bag start, or a bag member tied
        // to the rest only through fill edges): the simulation set,
        // narrowed by the restriction when one is present.
        pool.extend_from_slice(cs.of(sv));
        if let Some(r) = restriction {
            intersect_in_place(pool, r.as_slice(), |&x| x);
        }
    }
    if let Some(&(_, pn)) = pins.iter().find(|&&(pv, _)| pv == sv) {
        let keep = pool.binary_search(&pn).is_ok();
        pool.clear();
        if keep {
            pool.push(pn);
        }
    }
}

/// Per-candidate checks the runs cannot express: restriction
/// membership, injectivity against the partial assignment, and
/// self-loop edges. Shared with [`crate::factorize`], where `assigned`
/// holds only the bag-visible bindings.
pub(crate) fn bag_candidate_ok(
    q: &Pattern,
    g: &Graph,
    restriction: Option<&NodeSet>,
    bag: &BagPlan,
    sv: VarId,
    gv: NodeId,
    assigned: &[NodeId],
) -> bool {
    if restriction.is_some_and(|r| !r.contains(gv)) {
        return false;
    }
    if assigned.contains(&gv) {
        return false;
    }
    for &ei in &bag.edges {
        let e = &q.edges()[ei as usize];
        if e.src == sv && e.dst == sv && !edge_ok(g, gv, gv, e.label) {
            return false;
        }
    }
    true
}

struct Exec<'a> {
    q: &'a Pattern,
    g: &'a Graph,
    cs: &'a CandidateSpace,
    restriction: Option<&'a NodeSet>,
    pins: &'a [(VarId, NodeId)],
    max_steps: u64,
    steps: u64,
}

impl Exec<'_> {
    #[inline]
    fn fill_pool(&self, bag: &BagPlan, sv: VarId, assigned: &[NodeId], pool: &mut Vec<NodeId>) {
        fill_bag_pool(
            self.q,
            self.cs,
            self.restriction,
            self.pins,
            bag,
            sv,
            assigned,
            pool,
        );
    }

    #[inline]
    fn candidate_ok(&self, bag: &BagPlan, sv: VarId, gv: NodeId, assigned: &[NodeId]) -> bool {
        bag_candidate_ok(self.q, self.g, self.restriction, bag, sv, gv, assigned)
    }

    /// The fused multiway recursion: bag `plan.seq[si]` at placement
    /// `depth`. A variable an earlier bag bound is skipped — every
    /// pattern edge between two bound variables was already enforced
    /// at the first bag that contained both (see [`QueryPlan::seq`]) —
    /// so each bag solves only its residual variables under the
    /// parent's bindings. When the last bag completes, `assigned` is a
    /// full match.
    fn solve_bags(
        &mut self,
        plan: &QueryPlan,
        si: usize,
        depth: usize,
        assigned: &mut Vec<NodeId>,
        pools: &mut [Vec<NodeId>],
        f: &mut dyn FnMut(&[NodeId]) -> Flow,
    ) -> Result<(), StopReason> {
        let Some(&bi) = plan.seq.get(si) else {
            return match f(assigned) {
                Flow::Continue => Ok(()),
                Flow::Break => Err(StopReason::CallbackBreak),
            };
        };
        let bag = &plan.bags[bi as usize];
        if depth == bag.order.len() {
            return self.solve_bags(plan, si + 1, 0, assigned, pools, f);
        }
        let sv = bag.order[depth];
        if assigned[sv.index()].0 != u32::MAX {
            return self.solve_bags(plan, si, depth + 1, assigned, pools, f);
        }
        let mut pool = std::mem::take(&mut pools[plan.pool_base[si] as usize + depth]);
        self.fill_pool(bag, sv, assigned, &mut pool);
        let mut result = Ok(());
        for &gv in &pool {
            self.steps += 1;
            if self.steps > self.max_steps {
                result = Err(StopReason::BudgetExhausted);
                break;
            }
            if !self.candidate_ok(bag, sv, gv, assigned) {
                continue;
            }
            assigned[sv.index()] = gv;
            let r = self.solve_bags(plan, si, depth + 1, assigned, pools, f);
            assigned[sv.index()] = NodeId(u32::MAX);
            if r.is_err() {
                result = r;
                break;
            }
        }
        pools[plan.pool_base[si] as usize + depth] = pool;
        result
    }
}

/// Executes a plan: enumerates every match of the (connected) pattern
/// `q` in `g` within the candidate space `cs`, honoring the
/// restriction, pins and step budget exactly like
/// [`crate::component::ComponentSearch`]; `f` receives images indexed
/// by variable id. Matches stream straight out of the fused multiway
/// recursion — nothing is materialized, regardless of bag count.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan(
    q: &Pattern,
    g: &Graph,
    cs: &CandidateSpace,
    plan: &QueryPlan,
    restriction: Option<&NodeSet>,
    pins: &[(VarId, NodeId)],
    max_steps: u64,
    scratch: &mut PlanScratch,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> StopReason {
    debug_assert_eq!(
        plan.n_vars,
        q.node_count(),
        "plan built for another pattern"
    );
    // Pin screening, mirroring `ComponentSearch::for_each`: colliding
    // pins and pins outside the simulation relation anchor nothing.
    for (i, &(v1, n1)) in pins.iter().enumerate() {
        for &(v2, n2) in &pins[i + 1..] {
            if v1 != v2 && n1 == n2 {
                return StopReason::Exhausted;
            }
        }
    }
    for &(v, node) in pins {
        if cs.sets[v.index()].binary_search(&node).is_err() {
            return StopReason::Exhausted;
        }
    }
    let n = q.node_count();
    let pool_slots = plan.pool_base.last().map_or(0, |&b| b as usize)
        + plan
            .seq
            .last()
            .map_or(0, |&bi| plan.bags[bi as usize].order.len());
    let PlanScratch { pools, assigned } = scratch;
    if pools.len() < pool_slots {
        pools.resize_with(pool_slots, Vec::new);
    }
    assigned.clear();
    assigned.resize(n, NodeId(u32::MAX));
    let mut ex = Exec {
        q,
        g,
        cs,
        restriction,
        pins,
        max_steps,
        steps: 0,
    };
    match ex.solve_bags(plan, 0, 0, assigned, pools, f) {
        Ok(()) => StopReason::Exhausted,
        Err(reason) => reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentSearch;
    use crate::simulation::dual_simulation;
    use gfd_graph::GraphBuilder;
    use gfd_pattern::PatternBuilder;

    fn triangle_pattern(vocab: &std::sync::Arc<gfd_graph::Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "a");
        let y = b.node("y", "b");
        let z = b.node("z", "c");
        b.edge(x, y, "e1");
        b.edge(y, z, "e2");
        b.edge(z, x, "e3");
        b.build()
    }

    /// A skewed triangle workload: dense a→b layer, sparse cycle
    /// closures — the shape where edge-at-a-time enumeration drowns.
    fn skewed_graph(per_layer: usize, closures: usize) -> Graph {
        let mut b = GraphBuilder::with_fresh_vocab();
        let al: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("a")).collect();
        let bl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("b")).collect();
        let cl: Vec<NodeId> = (0..per_layer).map(|_| b.add_node_labeled("c")).collect();
        for &a in &al {
            for &x in &bl {
                b.add_edge_labeled(a, x, "e1");
            }
        }
        for i in 0..per_layer {
            b.add_edge_labeled(bl[i], cl[i], "e2");
        }
        for i in 0..closures.min(per_layer) {
            b.add_edge_labeled(cl[i], al[i], "e3");
        }
        b.freeze()
    }

    fn run_plan(q: &Pattern, g: &Graph, pins: &[(VarId, NodeId)]) -> Vec<Vec<NodeId>> {
        let cs = dual_simulation(q, g, None);
        let plan = QueryPlan::new(q);
        let mut scratch = PlanScratch::new();
        let mut out = Vec::new();
        let reason = execute_plan(
            q,
            g,
            &cs,
            &plan,
            None,
            pins,
            u64::MAX,
            &mut scratch,
            &mut |m| {
                out.push(m.to_vec());
                Flow::Continue
            },
        );
        assert_eq!(reason, StopReason::Exhausted);
        out.sort();
        out
    }

    fn run_oracle(q: &Pattern, g: &Graph, pins: &[(VarId, NodeId)]) -> Vec<Vec<NodeId>> {
        let mut s = ComponentSearch::new(q, g);
        for &(v, n) in pins {
            s = s.pin(v, n);
        }
        let mut out = s.collect_all();
        out.sort();
        out
    }

    #[test]
    fn triangle_plan_matches_oracle() {
        let g = skewed_graph(12, 4);
        let q = triangle_pattern(g.vocab());
        assert_eq!(QueryPlan::new(&q).bag_count(), 1);
        assert_eq!(run_plan(&q, &g, &[]), run_oracle(&q, &g, &[]));
        assert_eq!(run_plan(&q, &g, &[]).len(), 4);
    }

    #[test]
    fn four_cycle_plan_fuses_two_bags() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let n: Vec<NodeId> = (0..8).map(|_| b.add_node_labeled("t")).collect();
        // Two 4-cycles sharing structure plus noise edges.
        for c in [[0usize, 1, 2, 3], [4, 5, 6, 7], [0, 5, 2, 7]] {
            for i in 0..4 {
                b.add_edge_labeled(n[c[i]], n[c[(i + 1) % 4]], "e");
            }
        }
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let vs: Vec<VarId> = (0..4).map(|i| pb.node(&format!("v{i}"), "t")).collect();
        for i in 0..4 {
            pb.edge(vs[i], vs[(i + 1) % 4], "e");
        }
        let q = pb.build();
        let plan = QueryPlan::new(&q);
        assert_eq!(plan.bag_count(), 2);
        assert_eq!(plan.width(), 2);
        assert_eq!(run_plan(&q, &g, &[]), run_oracle(&q, &g, &[]));
        assert!(!run_plan(&q, &g, &[]).is_empty());
    }

    #[test]
    fn pins_restrict_plan_output() {
        let g = skewed_graph(8, 3);
        let q = triangle_pattern(g.vocab());
        let x = q.var_by_name("x").unwrap();
        // Pin x to each closure anchor and to a non-anchor.
        let all = run_oracle(&q, &g, &[]);
        for m in &all {
            let pins = [(x, m[x.index()])];
            assert_eq!(run_plan(&q, &g, &pins), run_oracle(&q, &g, &pins));
        }
        // A colliding pin pair yields nothing.
        let y = q.var_by_name("y").unwrap();
        let node = all[0][x.index()];
        assert!(run_plan(&q, &g, &[(x, node), (y, node)]).is_empty());
    }

    #[test]
    fn restriction_respected() {
        let g = skewed_graph(6, 6);
        let q = triangle_pattern(g.vocab());
        let cs = dual_simulation(&q, &g, None);
        let plan = QueryPlan::new(&q);
        let full = run_plan(&q, &g, &[]);
        // Restrict to the nodes of the first match only.
        let block = NodeSet::from_vec(full[0].clone());
        let mut scratch = PlanScratch::new();
        let mut out = Vec::new();
        execute_plan(
            &q,
            &g,
            &cs,
            &plan,
            Some(&block),
            &[],
            u64::MAX,
            &mut scratch,
            &mut |m| {
                out.push(m.to_vec());
                Flow::Continue
            },
        );
        assert_eq!(out, vec![full[0].clone()]);
    }

    #[test]
    fn budget_and_break_stop_the_plan() {
        let g = skewed_graph(8, 8);
        let q = triangle_pattern(g.vocab());
        let cs = dual_simulation(&q, &g, None);
        let plan = QueryPlan::new(&q);
        let mut scratch = PlanScratch::new();
        let reason = execute_plan(&q, &g, &cs, &plan, None, &[], 2, &mut scratch, &mut |_| {
            Flow::Continue
        });
        assert_eq!(reason, StopReason::BudgetExhausted);
        let mut n = 0;
        let reason = execute_plan(
            &q,
            &g,
            &cs,
            &plan,
            None,
            &[],
            u64::MAX,
            &mut scratch,
            &mut |_| {
                n += 1;
                Flow::Break
            },
        );
        assert_eq!(reason, StopReason::CallbackBreak);
        assert_eq!(n, 1);
    }

    #[test]
    fn self_loop_enforced_by_plan() {
        let mut b = GraphBuilder::with_fresh_vocab();
        let n: Vec<NodeId> = (0..3).map(|_| b.add_node_labeled("t")).collect();
        for i in 0..3 {
            b.add_edge_labeled(n[i], n[(i + 1) % 3], "e");
        }
        b.add_edge_labeled(n[0], n[0], "s");
        let g = b.freeze();
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let vs: Vec<VarId> = (0..3).map(|i| pb.node(&format!("v{i}"), "t")).collect();
        for i in 0..3 {
            pb.edge(vs[i], vs[(i + 1) % 3], "e");
        }
        pb.edge(vs[0], vs[0], "s");
        let q = pb.build();
        assert_eq!(run_plan(&q, &g, &[]), run_oracle(&q, &g, &[]));
        assert_eq!(run_plan(&q, &g, &[]).len(), 1);
    }

    #[test]
    fn transported_plan_executes_on_member() {
        use gfd_pattern::iso_witness;
        let g = skewed_graph(6, 3);
        // Member declares its variables in a different order.
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let z = pb.node("z", "c");
        let x = pb.node("x", "a");
        let y = pb.node("y", "b");
        pb.edge(x, y, "e1");
        pb.edge(y, z, "e2");
        pb.edge(z, x, "e3");
        let member = pb.build();
        let rep = triangle_pattern(g.vocab());
        let w = iso_witness(&member, &rep).expect("isomorphic");
        let rep_plan = QueryPlan::new(&rep);
        let inv = w.inverse();
        let plan = rep_plan.transport(&member, |v| inv.map(v));
        let cs = dual_simulation(&member, &g, None);
        let mut scratch = PlanScratch::new();
        let mut out = Vec::new();
        execute_plan(
            &member,
            &g,
            &cs,
            &plan,
            None,
            &[],
            u64::MAX,
            &mut scratch,
            &mut |m| {
                out.push(m.to_vec());
                Flow::Continue
            },
        );
        out.sort();
        assert_eq!(out, run_oracle(&member, &g, &[]));
        assert!(!out.is_empty());
    }

    /// The scratch is genuinely reusable: repeated executions agree
    /// and reuse the same buffers (the zero-allocation claim itself is
    /// asserted with the counting allocator in `gfd-bench`).
    #[test]
    fn scratch_reuse_across_patterns_of_different_arity() {
        let g = skewed_graph(6, 2);
        let tri = triangle_pattern(g.vocab());
        // An undirected 4-cycle inside the dense bipartite a→b layer:
        // two `a` variables each pointing at the same two `b`s.
        let mut pb = PatternBuilder::new(g.vocab().clone());
        let a0 = pb.node("a0", "a");
        let b0 = pb.node("b0", "b");
        let a1 = pb.node("a1", "a");
        let b1 = pb.node("b1", "b");
        pb.edge(a0, b0, "e1");
        pb.edge(a1, b0, "e1");
        pb.edge(a1, b1, "e1");
        pb.edge(a0, b1, "e1");
        let square = pb.build();
        let mut scratch = PlanScratch::new();
        for q in [&tri, &square, &tri] {
            let cs = dual_simulation(q, &g, None);
            let plan = QueryPlan::new(q);
            let mut out = Vec::new();
            execute_plan(
                q,
                &g,
                &cs,
                &plan,
                None,
                &[],
                u64::MAX,
                &mut scratch,
                &mut |m| {
                    out.push(m.to_vec());
                    Flow::Continue
                },
            );
            out.sort();
            assert_eq!(out, run_oracle(q, &g, &[]));
        }
    }
}
