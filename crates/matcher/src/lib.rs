//! # gfd-match — graph pattern matching via subgraph isomorphism
//!
//! The matching machinery of *Functional Dependencies for Graphs*
//! (Fan, Wu & Xu, SIGMOD 2016). A *match* of pattern `Q[x̄]` in graph
//! `G` is an injective mapping `h : V_Q → V` such that node labels are
//! admitted (wildcard matches anything) and every pattern edge maps to
//! a graph edge with an admitted label — the paper's "subgraph of `G`
//! isomorphic to `Q`" (§2), since the witnessing subgraph can always be
//! taken edge-exact.
//!
//! Features the GFD algorithms rely on:
//!
//! * **disconnected patterns**: components are matched independently
//!   and joined under global injectivity (`Q1`/`Q4` of Fig. 2 relate
//!   entities that may be arbitrarily far apart);
//! * **pivoted local matching**: fix `h(z) = v` for pivot `z` and
//!   search only inside a data block `G_z̄` (work-unit processing,
//!   §5.2/§6.1);
//! * **streaming enumeration** with early termination — validation
//!   often only needs the first violating match;
//! * **graph simulation** (module [`simulation`]) — the polynomial
//!   over-approximation `disVal` uses to estimate partial-match sizes
//!   before shipping them (§6.2), computed as a worklist fixpoint and
//!   reused as the *filter* stage of filter-and-refine enumeration:
//!   the resulting [`simulation::CandidateSpace`] prunes the exact
//!   backtracker's candidate pools.

//!
//! On top of filter-and-refine sits a **planner layer** (module
//! [`plan`]): cyclic components get a tree-decomposition-based
//! [`plan::QueryPlan`] whose bags are solved by worst-case-optimal
//! multiway intersection and joined along the tree, cached once per
//! canonical class in the [`registry::ClassRegistry`] — the bounded,
//! internally synchronized serving tier that also holds candidate
//! spaces, pinned match tables, and factorizations for every consumer
//! of one Σ.
//!
//! Over the same bag tree sits the **factorized layer** (module
//! [`factorize`]): a [`factorize::Factorization`] is a d-representation
//! of a component's match set whose size tracks per-bag work while the
//! represented set multiplies across bags, so counting is a bottom-up
//! fold, per-binding marginals are one root-to-node pass, and tuple
//! consumers expand lazily — aggregate consumers (`count_matches_*`,
//! the validators' constant-consequent fast path, workload costing)
//! never materialize the match set.

pub mod api;
pub mod component;
pub mod factorize;
pub mod incremental;
pub mod join;
pub mod plan;
pub mod registry;
pub mod simulation;
pub mod table;
pub mod types;

pub use api::{
    count_matches, count_matches_planned, count_matches_with, find_matches, for_each_match,
    for_each_match_in_space, for_each_match_planned, for_each_match_with, has_match, MatchScratch,
};
pub use component::{ComponentSearch, SearchScratch, StopReason};
pub use factorize::{factorize, FactorScratch, Factorization};
pub use incremental::{IncrementalSpace, RepairReport};
pub use plan::{execute_plan, PlanScratch, QueryPlan};
pub use registry::{CacheStats, ClassRegistry, SpaceHandle, DEFAULT_REGISTRY_BUDGET_BYTES};
pub use simulation::{dual_simulation, CandidateSpace};
pub use table::{MatchTable, TableView};
pub use types::{Match, MatchOptions, SearchBudget, SimFilter};
