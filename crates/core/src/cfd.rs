//! Relational FDs and CFDs as special cases of GFDs (§3, Example 5).
//!
//! A relation instance is represented as a graph in which each tuple
//! is a node labeled with the relation name and carrying one attribute
//! per column. Then:
//!
//! * an FD `R(X → Y)` becomes `ϕ4 = (Q4[x, y], X' → Y')` over the
//!   two-node pattern `Q4` (two `R` tuples), with `x.A = y.A` for
//!   `A ∈ X` and `x.B = y.B` for `B ∈ Y` — variable literals only;
//! * a CFD with constant conditions becomes the same with added
//!   constant literals (e.g. `R(country=44, zip → street)`);
//! * a single-tuple constant CFD (`R(country=44, area_code=131 →
//!   city=Edi)`) becomes `ϕ''4` over the one-node pattern.

use gfd_graph::{GraphBuilder, NodeId, Value, Vocab};
use gfd_pattern::PatternBuilder;
use std::sync::Arc;

use crate::gfd::Gfd;
use crate::literal::{Dependency, Literal};

/// A tiny relation instance for encoding into graphs.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Relation name (becomes the node label).
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows; each row must have one value per column.
    pub tuples: Vec<Vec<Value>>,
}

impl Relation {
    /// Builds a relation, checking arity.
    ///
    /// # Panics
    /// Panics if a tuple's arity differs from the column count.
    pub fn new(name: &str, columns: &[&str], tuples: Vec<Vec<Value>>) -> Self {
        for t in &tuples {
            assert_eq!(t.len(), columns.len(), "tuple arity mismatch");
        }
        Relation {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            tuples,
        }
    }

    /// Materializes the relation into `g`: one node per tuple, labeled
    /// with the relation name, one attribute per column. Returns the
    /// tuple nodes.
    pub fn to_graph(&self, g: &mut GraphBuilder) -> Vec<NodeId> {
        self.tuples
            .iter()
            .map(|row| {
                let n = g.add_node_labeled(&self.name);
                for (col, v) in self.columns.iter().zip(row) {
                    g.set_attr_named(n, col, v.clone());
                }
                n
            })
            .collect()
    }
}

/// Encodes the FD `R(lhs → rhs)` as the GFD `ϕ4` (Example 5 (4)).
pub fn fd_as_gfd(vocab: &Arc<Vocab>, relation: &str, lhs: &[&str], rhs: &[&str]) -> Gfd {
    cfd_as_gfd(vocab, relation, &[], lhs, rhs)
}

/// Encodes a (two-tuple) CFD `R(cond, lhs → rhs)` with constant
/// conditions applied to both tuples — e.g. `ϕ'4` for
/// `R(country = 44, zip → street)`.
pub fn cfd_as_gfd(
    vocab: &Arc<Vocab>,
    relation: &str,
    cond: &[(&str, Value)],
    lhs: &[&str],
    rhs: &[&str],
) -> Gfd {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", relation);
    let y = b.node("y", relation);
    let q4 = b.build();
    let mut x_lits = Vec::new();
    for (col, v) in cond {
        let a = vocab.intern(col);
        x_lits.push(Literal::const_eq(x, a, v.clone()));
        x_lits.push(Literal::const_eq(y, a, v.clone()));
    }
    for col in lhs {
        let a = vocab.intern(col);
        x_lits.push(Literal::var_eq(x, a, y, a));
    }
    let y_lits = rhs
        .iter()
        .map(|col| {
            let a = vocab.intern(col);
            Literal::var_eq(x, a, y, a)
        })
        .collect();
    Gfd::new(
        format!("cfd:{relation}({lhs:?}->{rhs:?})"),
        q4,
        Dependency::new(x_lits, y_lits),
    )
}

/// Encodes a single-tuple constant CFD `R(cond → concl)` as `ϕ''4` —
/// e.g. `R(country = 44, area_code = 131 → city = Edi)`.
pub fn constant_cfd_as_gfd(
    vocab: &Arc<Vocab>,
    relation: &str,
    cond: &[(&str, Value)],
    concl: &[(&str, Value)],
) -> Gfd {
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node("x", relation);
    let q = b.build();
    let x_lits = cond
        .iter()
        .map(|(col, v)| Literal::const_eq(x, vocab.intern(col), v.clone()))
        .collect();
    let y_lits = concl
        .iter()
        .map(|(col, v)| Literal::const_eq(x, vocab.intern(col), v.clone()))
        .collect();
    Gfd::new(
        format!("ccfd:{relation}"),
        q,
        Dependency::new(x_lits, y_lits),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::GfdSet;
    use crate::validate::{detect_violations, graph_satisfies};

    fn uk_addresses() -> Relation {
        Relation::new(
            "R",
            &["country", "zip", "street", "area_code", "city"],
            vec![
                vec![
                    Value::Int(44),
                    Value::str("EH8"),
                    Value::str("Mayfield"),
                    Value::Int(131),
                    Value::str("Edi"),
                ],
                vec![
                    Value::Int(44),
                    Value::str("EH8"),
                    Value::str("Crichton"), // violates zip → street
                    Value::Int(131),
                    Value::str("Edi"),
                ],
                vec![
                    Value::Int(1),
                    Value::str("EH8"), // different country: condition off
                    Value::str("Whatever"),
                    Value::Int(212),
                    Value::str("NYC"),
                ],
            ],
        )
    }

    #[test]
    fn cfd_phi4_prime_catches_zip_street_violation() {
        // Example 5: R(country = 44, zip → street).
        let vocab = Vocab::shared();
        let mut b = GraphBuilder::new(vocab.clone());
        uk_addresses().to_graph(&mut b);
        let g = b.freeze();
        let gfd = cfd_as_gfd(
            &vocab,
            "R",
            &[("country", Value::Int(44))],
            &["zip"],
            &["street"],
        );
        assert!(
            !gfd.is_constant() && !gfd.is_variable(),
            "ϕ'4 is neither constant nor variable (Example 5)"
        );
        let sigma = GfdSet::new(vec![gfd]);
        let vio = detect_violations(&sigma, &g);
        // Tuples 0 and 1 in both orders; tuple 2 is filtered by country.
        assert_eq!(vio.len(), 2);
    }

    #[test]
    fn fd_as_gfd_is_variable_only() {
        let vocab = Vocab::shared();
        let gfd = fd_as_gfd(&vocab, "R", &["zip"], &["street"]);
        assert!(gfd.is_variable(), "ϕ4 uses variable literals only");
        let mut b = GraphBuilder::new(vocab.clone());
        uk_addresses().to_graph(&mut b);
        let g = b.freeze();
        // Without the country guard, tuple 2 shares the zip but not the
        // street: violations now pair tuple 2 against 0/1 too.
        let vio = detect_violations(&GfdSet::new(vec![gfd]), &g);
        assert_eq!(vio.len(), 6); // all ordered pairs of the 3 same-zip tuples
    }

    #[test]
    fn constant_cfd_phi4_doubleprime() {
        // R(country = 44, area_code = 131 → city = Edi).
        let vocab = Vocab::shared();
        let gfd = constant_cfd_as_gfd(
            &vocab,
            "R",
            &[("country", Value::Int(44)), ("area_code", Value::Int(131))],
            &[("city", Value::str("Edi"))],
        );
        assert!(gfd.is_constant(), "ϕ''4 is a constant GFD");
        let mut b = GraphBuilder::new(vocab.clone());
        uk_addresses().to_graph(&mut b);
        let g = b.freeze();
        assert!(graph_satisfies(&GfdSet::new(vec![gfd.clone()]), &g));

        // Corrupt a city: caught.
        let mut bad = uk_addresses();
        bad.tuples[0][4] = Value::str("Glasgow");
        let mut b2 = GraphBuilder::new(vocab);
        bad.to_graph(&mut b2);
        let g2 = b2.freeze();
        let vio = detect_violations(&GfdSet::new(vec![gfd]), &g2);
        assert_eq!(vio.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn relation_arity_checked() {
        Relation::new("R", &["a", "b"], vec![vec![Value::Int(1)]]);
    }
}
