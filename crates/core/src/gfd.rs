//! GFDs and GFD sets (§3).

use gfd_pattern::{analysis, Pattern, VarId};

use crate::literal::{Dependency, Literal};

/// A graph functional dependency `ϕ = (Q[x̄], X → Y)`.
#[derive(Clone, Debug)]
pub struct Gfd {
    /// A diagnostic name (rule id in error reports).
    pub name: String,
    /// The pattern `Q[x̄]` — the topological constraint / scope.
    pub pattern: Pattern,
    /// The attribute dependency `X → Y`.
    pub dep: Dependency,
}

impl Gfd {
    /// Builds a GFD, validating that every literal only mentions
    /// variables of the pattern.
    ///
    /// # Panics
    /// Panics if a literal mentions a variable outside `x̄`.
    pub fn new(name: impl Into<String>, pattern: Pattern, dep: Dependency) -> Self {
        let arity = pattern.node_count() as u32;
        for lit in dep.literals() {
            assert!(
                lit.max_var().0 < arity,
                "literal mentions variable outside the pattern"
            );
        }
        Gfd {
            name: name.into(),
            pattern,
            dep,
        }
    }

    /// `|ϕ| = |Q| + |X| + |Y|`.
    pub fn size(&self) -> usize {
        self.pattern.size() + self.dep.size()
    }

    /// A *constant GFD*: `X` and `Y` consist of constant literals only
    /// (subsumes constant CFDs, §3).
    pub fn is_constant(&self) -> bool {
        self.dep.literals().all(Literal::is_constant)
    }

    /// A *variable GFD*: `X` and `Y` consist of variable literals only
    /// (analogous to traditional FDs, §3).
    pub fn is_variable(&self) -> bool {
        self.dep.literals().all(Literal::is_variable)
    }

    /// True if `X = ∅` (the `(Q, ∅ → Y)` form central to
    /// satisfiability, Corollary 4).
    pub fn has_empty_lhs(&self) -> bool {
        self.dep.x.is_empty()
    }

    /// True if the pattern is a tree (tractable cases, Corollaries 4
    /// and 8).
    pub fn has_tree_pattern(&self) -> bool {
        analysis::is_tree(&self.pattern)
    }

    /// Normal form (§4.2): one GFD per consequent literal, dropping
    /// tautologies `x.A = x.A`… except that under GFD semantics a
    /// tautology in `Y` asserts attribute existence, so tautologies are
    /// kept (the paper drops them only for the implication analysis,
    /// which [`crate::implication::implies`] handles itself).
    pub fn normalize(&self) -> Vec<Gfd> {
        self.dep
            .y
            .iter()
            .enumerate()
            .map(|(i, lit)| Gfd {
                name: format!("{}#{}", self.name, i),
                pattern: self.pattern.clone(),
                dep: Dependency::new(self.dep.x.clone(), vec![lit.clone()]),
            })
            .collect()
    }

    /// The variables of the pattern (convenience).
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.pattern.vars()
    }
}

/// A set `Σ` of GFDs.
#[derive(Clone, Debug, Default)]
pub struct GfdSet {
    gfds: Vec<Gfd>,
}

impl GfdSet {
    /// Builds `Σ` from a list of GFDs.
    pub fn new(gfds: Vec<Gfd>) -> Self {
        GfdSet { gfds }
    }

    /// Number of rules `‖Σ‖`.
    pub fn len(&self) -> usize {
        self.gfds.len()
    }

    /// True if `Σ` is empty.
    pub fn is_empty(&self) -> bool {
        self.gfds.is_empty()
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &Gfd> {
        self.gfds.iter()
    }

    /// The rules as a slice.
    pub fn as_slice(&self) -> &[Gfd] {
        &self.gfds
    }

    /// The rule at `index`.
    pub fn get(&self, index: usize) -> &Gfd {
        &self.gfds[index]
    }

    /// Adds a rule.
    pub fn push(&mut self, gfd: Gfd) {
        self.gfds.push(gfd);
    }

    /// Removes and returns the rule at `index`.
    pub fn remove(&mut self, index: usize) -> Gfd {
        self.gfds.remove(index)
    }

    /// Total size `|Σ| = Σ|ϕ|`.
    pub fn size(&self) -> usize {
        self.gfds.iter().map(Gfd::size).sum()
    }

    /// Average pattern size `|Q|` (the x-axis of Fig. 5(e)(g)(i)).
    pub fn avg_pattern_size(&self) -> f64 {
        if self.gfds.is_empty() {
            return 0.0;
        }
        self.gfds.iter().map(|g| g.pattern.size()).sum::<usize>() as f64 / self.gfds.len() as f64
    }
}

impl FromIterator<Gfd> for GfdSet {
    fn from_iter<T: IntoIterator<Item = Gfd>>(iter: T) -> Self {
        GfdSet::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a GfdSet {
    type Item = &'a Gfd;
    type IntoIter = std::slice::Iter<'a, Gfd>;
    fn into_iter(self) -> Self::IntoIter {
        self.gfds.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gfd_graph::Vocab;
    use gfd_pattern::PatternBuilder;

    fn single_node_gfd(dep: Dependency) -> Gfd {
        let mut b = PatternBuilder::new(Vocab::shared());
        b.node("x", "R");
        Gfd::new("t", b.build(), dep)
    }

    #[test]
    fn classification() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let c = single_node_gfd(Dependency::always(vec![Literal::const_eq(
            VarId(0),
            a,
            "v",
        )]));
        assert!(c.is_constant() && !c.is_variable());
        assert!(c.has_empty_lhs());

        let v = single_node_gfd(Dependency::always(vec![Literal::var_eq(
            VarId(0),
            a,
            VarId(0),
            a,
        )]));
        assert!(v.is_variable() && !v.is_constant());

        let mixed = single_node_gfd(Dependency::new(
            vec![Literal::const_eq(VarId(0), a, 44i64)],
            vec![Literal::var_eq(VarId(0), a, VarId(0), a)],
        ));
        assert!(!mixed.is_constant() && !mixed.is_variable());
        assert!(!mixed.has_empty_lhs());
    }

    #[test]
    #[should_panic(expected = "outside the pattern")]
    fn out_of_range_literal_rejected() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        single_node_gfd(Dependency::always(vec![Literal::const_eq(
            VarId(5),
            a,
            "v",
        )]));
    }

    #[test]
    fn normalize_splits_consequents() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let b_attr = vocab.intern("B");
        let g = single_node_gfd(Dependency::new(
            vec![Literal::const_eq(VarId(0), a, 1i64)],
            vec![
                Literal::const_eq(VarId(0), b_attr, 2i64),
                Literal::var_eq(VarId(0), a, VarId(0), b_attr),
            ],
        ));
        let parts = g.normalize();
        assert_eq!(parts.len(), 2);
        for p in &parts {
            assert_eq!(p.dep.y.len(), 1);
            assert_eq!(p.dep.x, g.dep.x);
        }
    }

    #[test]
    fn set_operations() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let mut sigma = GfdSet::default();
        assert!(sigma.is_empty());
        sigma.push(single_node_gfd(Dependency::always(vec![
            Literal::const_eq(VarId(0), a, "v"),
        ])));
        assert_eq!(sigma.len(), 1);
        assert!(sigma.size() > 0);
        assert!(sigma.avg_pattern_size() > 0.0);
        let removed = sigma.remove(0);
        assert_eq!(removed.name, "t");
        assert!(sigma.is_empty());
    }
}
