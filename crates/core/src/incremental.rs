//! Incremental violation detection: maintaining `Vio(Σ, G)` across
//! graph edits.
//!
//! The sequential `detVio` (module [`crate::validate`]) re-enumerates
//! every match of every rule per run. When the graph evolves by small
//! deltas (noise injection, repair loops, live updates), almost all of
//! that work re-derives unchanged facts. [`IncrementalDetector`] keeps
//! per-rule state across edits:
//!
//! * one shared [`ClassRegistry`] handle — rule patterns register by
//!   isomorphism class, each class's dual-simulation candidate space
//!   is computed once and *repaired* (not recomputed) against each
//!   [`GraphDelta`] at its representative, and the twin rules read
//!   transported copies. The registry is `Arc`-shared and versioned:
//!   several detectors (and the threaded executor) can serve off one
//!   registry, and a detector lagging behind the registry's repair
//!   epoch replays the recorded per-class change flags instead of
//!   repairing twice;
//! * the current violating matches of each rule.
//!
//! On a delta, a rule is re-examined only around the *affected nodes*
//! (delta edge endpoints, relabeled/attribute-touched nodes, added
//! nodes):
//!
//! * stored violations that touch no affected node are still matches
//!   and still violating (their edges, labels and attribute values
//!   are untouched) and survive without re-enumeration;
//! * stored violations touching affected nodes are re-checked
//!   directly (edges + labels + dependency), in `O(|Q|)` each;
//! * new violations must contain an affected node (a match that
//!   gained violation status either changed structurally or had an
//!   attribute change on one of its images), so the detector
//!   enumerates only matches *pinned* at affected candidate nodes —
//!   using the repaired candidate space as the search filter — and
//!   re-checks those.

use std::collections::HashSet;
use std::sync::Arc;

use gfd_graph::{Graph, GraphDelta, NodeId};
use gfd_match::types::Flow;
use gfd_match::{
    for_each_match, for_each_match_in_space, ClassRegistry, Match, MatchOptions, SpaceHandle,
};
use gfd_pattern::signature::decompose;

use crate::gfd::GfdSet;
use crate::validate::{
    const_y_satisfied_everywhere, detect_violations, for_each_violation, match_satisfies, Violation,
};

/// The change `apply_diff` made to `Vio(Σ, G)` in one edit step: what
/// a standing-violation service pushes to subscribers instead of the
/// absolute set. Added and retracted are disjoint (a match that stops
/// violating cannot be re-found by the same step's pinned
/// enumeration, which only yields currently-violating matches).
#[derive(Clone, Debug, Default)]
pub struct VioDiff {
    /// Violations that appeared in this step.
    pub added: Vec<Violation>,
    /// Violations that disappeared in this step.
    pub retracted: Vec<Violation>,
}

impl VioDiff {
    /// True if the step changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.retracted.is_empty()
    }
}

/// Per-rule incremental state.
struct RuleState {
    /// Handle of the rule's full pattern in the shared registry.
    handle: SpaceHandle,
    /// True if the rule's pattern is connected (the space then drives
    /// enumeration directly).
    connected: bool,
    /// Current violating matches.
    violations: HashSet<Match>,
}

/// Maintains `Vio(Σ, G)` across graph edits; see the module docs.
///
/// The maintained set is always identical to what
/// [`detect_violations`] computes from scratch on the current
/// snapshot (asserted by the oracle test below and the end-to-end
/// inject→detect→fix loop in `gfd-datagen`).
pub struct IncrementalDetector {
    sigma: GfdSet,
    /// Candidate spaces for all rules, keyed by isomorphism class —
    /// one simulation and one per-delta repair per class, however many
    /// isomorphic rules Σ holds. The registry may be shared with other
    /// detectors, services and the threaded executor.
    registry: Arc<ClassRegistry>,
    /// The registry repair epoch this detector is synchronized with.
    version: u64,
    rules: Vec<RuleState>,
}

impl IncrementalDetector {
    /// Full detection pass over `g`, retaining all per-rule state for
    /// later [`apply`](IncrementalDetector::apply) calls, over a
    /// private registry.
    pub fn new(sigma: &GfdSet, g: &Graph) -> Self {
        Self::with_registry(sigma, g, Arc::new(ClassRegistry::new()))
    }

    /// [`new`](IncrementalDetector::new) over a shared registry:
    /// several detectors over one `ClassRegistry` share simulations,
    /// plans and repairs across tenants.
    pub fn with_registry(sigma: &GfdSet, g: &Graph, registry: Arc<ClassRegistry>) -> Self {
        let rules = sigma
            .iter()
            .map(|gfd| {
                let handle = registry.register(&gfd.pattern);
                let connected = decompose(&gfd.pattern).len() == 1;
                let mut violations = HashSet::new();
                if !gfd.dep.y.is_empty() {
                    let cs = registry.space(handle, g);
                    if !cs.is_empty_anywhere() {
                        // Factorized fast path for the initial full
                        // pass: an all-constant-`Y` rule whose
                        // per-variable marginal aggregates show every
                        // represented binding satisfying `Y` seeds an
                        // empty violation set without enumerating —
                        // the same superset argument as `detVio`'s
                        // shared route. Later deltas re-examine only
                        // affected pins either way.
                        let skip = connected
                            && const_y_satisfied_everywhere(&gfd.dep, g, &cs, &registry, handle);
                        if !skip {
                            let opts = MatchOptions::unrestricted();
                            for_each_match_in_space(&gfd.pattern, g, &opts, &cs, &mut |m| {
                                if !match_satisfies(&gfd.dep, g, m) {
                                    violations.insert(Match(m.to_vec()));
                                }
                                Flow::Continue
                            });
                        }
                    }
                }
                RuleState {
                    handle,
                    connected,
                    violations,
                }
            })
            .collect();
        let version = registry.version();
        IncrementalDetector {
            sigma: sigma.clone(),
            registry,
            version,
            rules,
        }
    }

    /// The shared registry this detector repairs through.
    pub fn registry(&self) -> &Arc<ClassRegistry> {
        &self.registry
    }

    /// The current violation set, in rule order (match order within a
    /// rule is unspecified).
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (rule, state) in self.rules.iter().enumerate() {
            for m in &state.violations {
                out.push(Violation {
                    rule,
                    mapping: m.clone(),
                });
            }
        }
        out
    }

    /// The incremental validation answer: does the current snapshot
    /// satisfy `Σ`?
    pub fn satisfied(&self) -> bool {
        self.rules.iter().all(|s| s.violations.is_empty())
    }

    /// Total number of current violations.
    pub fn violation_count(&self) -> usize {
        self.rules.iter().map(|s| s.violations.len()).sum()
    }

    /// Seeds a detector from an externally computed violation set
    /// (e.g. a parallel from-scratch recompute) instead of running the
    /// sequential full pass [`new`](IncrementalDetector::new) does.
    /// The caller asserts `violations` *is* `Vio(Σ, g)`; candidate
    /// spaces register lazily and simulate against the then-current
    /// snapshot on first use, so the handoff carries no stale state.
    ///
    /// This is the graceful-degradation re-entry point: after a
    /// divergence or a repair-path panic, a service recomputes from
    /// scratch (on panic-isolated workers) and resumes incremental
    /// maintenance from the recomputed truth.
    pub fn from_violations(sigma: &GfdSet, violations: &[Violation]) -> Self {
        Self::from_violations_in(sigma, violations, Arc::new(ClassRegistry::new()))
    }

    /// [`from_violations`](IncrementalDetector::from_violations) over
    /// a shared registry. The caller is responsible for the registry's
    /// cached state being valid for the snapshot `violations` was
    /// computed on — a degraded service calls
    /// [`ClassRegistry::invalidate_all`] first, so every space
    /// re-simulates lazily against the recovered snapshot.
    pub fn from_violations_in(
        sigma: &GfdSet,
        violations: &[Violation],
        registry: Arc<ClassRegistry>,
    ) -> Self {
        let mut rules: Vec<RuleState> = sigma
            .iter()
            .map(|gfd| RuleState {
                handle: registry.register(&gfd.pattern),
                connected: decompose(&gfd.pattern).len() == 1,
                violations: HashSet::new(),
            })
            .collect();
        for v in violations {
            rules[v.rule].violations.insert(v.mapping.clone());
        }
        let version = registry.version();
        IncrementalDetector {
            sigma: sigma.clone(),
            registry,
            version,
            rules,
        }
    }

    /// The stored violating matches of one rule (unordered).
    pub fn rule_violations(&self, rule: usize) -> impl Iterator<Item = &Match> + '_ {
        self.rules[rule].violations.iter()
    }

    /// Sampled repair-invariant check for one rule: re-derives the
    /// rule's violation set from scratch — a fresh enumeration that
    /// shares none of the detector's incremental state — and compares
    /// it with the maintained set. `true` means the maintained state
    /// is still exact for this rule.
    ///
    /// One rule's worth of work, so a long-running service can afford
    /// it at a sampling cadence per epoch; a `false` is the signal to
    /// degrade to a full recompute instead of serving drifted answers.
    pub fn verify_rule(&self, rule: usize, g: &Graph) -> bool {
        let gfd = self.sigma.get(rule);
        let mut scratch: HashSet<Match> = HashSet::new();
        for_each_violation(gfd, g, &MatchOptions::unrestricted(), &mut |m| {
            scratch.insert(Match(m.to_vec()));
            Flow::Continue
        });
        scratch == self.rules[rule].violations
    }

    /// Fault-injection hook: perturbs the stored state of one rule
    /// (drops a stored violation, or plants an impossible one if the
    /// rule has none) to model repair-invariant drift. Only the
    /// robustness harness calls this — it exists so the
    /// sampled-oracle → degradation path can be exercised
    /// deterministically in soak tests.
    #[doc(hidden)]
    pub fn inject_drift(&mut self, rule: usize) {
        let state = &mut self.rules[rule];
        if let Some(m) = state.violations.iter().next().cloned() {
            state.violations.remove(&m);
        } else {
            let arity = self.sigma.get(rule).pattern.node_count();
            state
                .violations
                .insert(Match(vec![NodeId(u32::MAX); arity.max(1)]));
        }
    }

    /// Repairs the detector against one edit step: `g` is the edited
    /// snapshot, `delta` the recorded difference from the snapshot the
    /// detector was last synchronized with.
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) {
        self.apply_diff(g, delta);
    }

    /// [`apply`](IncrementalDetector::apply), additionally reporting
    /// exactly which violations appeared and disappeared — the
    /// subscriber-facing change stream of a standing-violation
    /// service (`Vio(Σ, G)` *changes*, not absolute sets).
    pub fn apply_diff(&mut self, g: &Graph, delta: &GraphDelta) -> VioDiff {
        let mut diff = VioDiff::default();
        let d = delta.clone().normalize();
        if d.is_empty() {
            return diff;
        }
        let affected = d.touched_nodes();
        let is_affected = |u: NodeId| affected.binary_search(&u).is_ok();

        // Repair the candidate spaces first — one repair per
        // isomorphism class, shared by every rule of the class; pinned
        // re-enumeration below draws pools from the repaired spaces.
        // `advance` is epoch-aware: if another tenant of the shared
        // registry already repaired this step, the flags replay from
        // history instead of repairing twice.
        self.version += 1;
        let Self {
            ref sigma,
            ref registry,
            ref mut rules,
            version,
        } = *self;
        registry.advance(g, &d, version);

        for (rule, state) in rules.iter_mut().enumerate() {
            let gfd = sigma.get(rule);
            if gfd.dep.y.is_empty() {
                continue; // X → ∅ can never be violated
            }

            // 1. Re-check stored violations that touch the delta; the
            //    rest are untouched matches with untouched attribute
            //    values and survive as-is. Failures are retractions.
            state.violations.retain(|m| {
                if !m.nodes().iter().copied().any(is_affected) {
                    return true;
                }
                if still_violates(gfd, g, m) {
                    return true;
                }
                diff.retracted.push(Violation {
                    rule,
                    mapping: m.clone(),
                });
                false
            });

            // 2. New violations contain an affected node: enumerate
            //    matches pinned there (per variable whose candidate
            //    set admits the node), via the repaired class space.
            let cs = registry.space(state.handle, g);
            if cs.is_empty_anywhere() {
                debug_assert!(state.violations.is_empty());
                continue;
            }
            for &u in &affected {
                for v in gfd.pattern.vars() {
                    if cs.sets[v.index()].binary_search(&u).is_err() {
                        continue;
                    }
                    let opts = MatchOptions::unrestricted().pin(v, u);
                    let enumerate = &mut |m: &[NodeId]| {
                        if !match_satisfies(&gfd.dep, g, m)
                            && state.violations.insert(Match(m.to_vec()))
                        {
                            // First sighting only: the same match can
                            // be re-found via several pins.
                            diff.added.push(Violation {
                                rule,
                                mapping: Match(m.to_vec()),
                            });
                        }
                        Flow::Continue
                    };
                    if state.connected {
                        for_each_match_in_space(&gfd.pattern, g, &opts, &cs, enumerate);
                    } else {
                        for_each_match(&gfd.pattern, g, &opts, enumerate);
                    }
                }
            }
        }
        diff
    }
}

/// Direct `O(|Q|)` re-check of a previously stored violating match:
/// still a structural match, and still violating?
fn still_violates(gfd: &crate::gfd::Gfd, g: &Graph, m: &Match) -> bool {
    let q = &gfd.pattern;
    let images = m.nodes();
    if images.iter().any(|u| u.index() >= g.node_count()) {
        return false;
    }
    for v in q.vars() {
        if !q.label(v).admits(g.label(images[v.index()])) {
            return false;
        }
    }
    for e in q.edges() {
        let (s, t) = (images[e.src.index()], images[e.dst.index()]);
        let ok = match e.label {
            gfd_pattern::PatLabel::Sym(l) => g.has_edge(s, t, l),
            gfd_pattern::PatLabel::Wildcard => g.has_edge_any(s, t),
        };
        if !ok {
            return false;
        }
    }
    !match_satisfies(&gfd.dep, g, images)
}

/// Convenience oracle used by tests and callers that want to
/// cross-check: the from-scratch violation set as a comparable form.
pub fn violation_set(sigma: &GfdSet, g: &Graph) -> HashSet<(usize, Match)> {
    detect_violations(sigma, g)
        .into_iter()
        .map(|v| (v.rule, v.mapping))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use crate::literal::{Dependency, Literal};
    use gfd_graph::{GraphBuilder, Value};
    use gfd_pattern::PatternBuilder;
    use gfd_util::{prop::check, Rng};

    fn detector_set(det: &IncrementalDetector) -> HashSet<(usize, Match)> {
        det.violations()
            .into_iter()
            .map(|v| (v.rule, v.mapping))
            .collect()
    }

    /// A small random property-graph world with attribute values and a
    /// same-label/same-val ⇒ same-peer rule that noise can break.
    fn random_world(rng: &mut Rng) -> (Graph, GfdSet) {
        let mut b = GraphBuilder::with_fresh_vocab();
        let n = rng.gen_range(4..10);
        let hubs: Vec<_> = (0..n).map(|_| b.add_node_labeled("hub")).collect();
        for &h in &hubs {
            let leaf = b.add_node_labeled("leaf");
            b.add_edge_labeled(h, leaf, "owns");
            b.set_attr_named(leaf, "val", Value::Int(rng.gen_range(0..3) as i64));
            b.set_attr_named(h, "val", Value::Int(rng.gen_range(0..2) as i64));
        }
        let g = b.freeze();
        let vocab = g.vocab().clone();
        let val = vocab.intern("val");

        // Connected rule: hub → leaf, hub.val determines leaf.val.
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node("x", "hub");
        let y = pb.node("y", "leaf");
        pb.edge(x, y, "owns");
        let q1 = pb.build();
        let phi1 = Gfd::new(
            "hub-leaf",
            q1,
            Dependency::new(
                vec![Literal::const_eq(x, val, Value::Int(0))],
                vec![Literal::const_eq(y, val, Value::Int(0))],
            ),
        );

        // Disconnected rule: two hubs with equal val must carry val 0
        // (Example 5 shape — two independent pivots far apart).
        let mut pb = PatternBuilder::new(vocab.clone());
        let a = pb.node("a", "hub");
        let c = pb.node("c", "hub");
        let q2 = pb.build();
        let phi2 = Gfd::new(
            "hub-pair",
            q2,
            Dependency::new(
                vec![Literal::var_eq(a, val, c, val)],
                vec![Literal::const_eq(a, val, Value::Int(0))],
            ),
        );
        (g, GfdSet::new(vec![phi1, phi2]))
    }

    #[test]
    fn initial_state_matches_scratch() {
        check("IncrementalDetector::new ≡ detVio", 40, |rng| {
            let (g, sigma) = random_world(rng);
            let det = IncrementalDetector::new(&sigma, &g);
            let scratch = violation_set(&sigma, &g);
            if detector_set(&det) != scratch {
                return Err(format!(
                    "initial sets diverge: {} vs {}",
                    det.violation_count(),
                    scratch.len()
                ));
            }
            if det.satisfied() != scratch.is_empty() {
                return Err("satisfied() disagrees".into());
            }
            Ok(())
        });
    }

    #[test]
    fn diff_stream_folds_to_maintained_set() {
        // A subscriber that only ever sees VioDiffs must be able to
        // reconstruct the absolute set: baseline + Σ diffs ≡ scratch.
        // Added/retracted must also be disjoint and non-redundant.
        check("Σ VioDiff ≡ detVio over edit scripts", 25, |rng| {
            let (mut g, sigma) = random_world(rng);
            let mut det = IncrementalDetector::new(&sigma, &g);
            let mut folded = detector_set(&det);
            for step in 0..12 {
                let r1 = rng.gen_range(0..g.node_count());
                let r2 = rng.gen_range(0..g.node_count());
                let (g2, delta) = g.edit_with_delta(|b| {
                    if rng.gen_bool(0.5) {
                        b.add_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "owns");
                    } else {
                        let a = b.vocab().intern("val");
                        b.set_attr(NodeId(r1 as u32), a, Value::Int(rng.gen_range(0..3) as i64));
                    }
                });
                let diff = det.apply_diff(&g2, &delta);
                for v in &diff.retracted {
                    if !folded.remove(&(v.rule, v.mapping.clone())) {
                        return Err(format!("step {step}: retraction of absent violation"));
                    }
                }
                for v in &diff.added {
                    if !folded.insert((v.rule, v.mapping.clone())) {
                        return Err(format!("step {step}: re-added live violation"));
                    }
                }
                if folded != violation_set(&sigma, &g2) {
                    return Err(format!("step {step}: folded diff diverges from scratch"));
                }
                g = g2;
            }
            Ok(())
        });
    }

    #[test]
    fn verify_rule_accepts_sound_state_and_catches_drift() {
        check("verify_rule soundness + drift detection", 20, |rng| {
            let (g, sigma) = random_world(rng);
            let mut det = IncrementalDetector::new(&sigma, &g);
            for rule in 0..sigma.len() {
                if !det.verify_rule(rule, &g) {
                    return Err(format!("sound rule {rule} flagged as drifted"));
                }
            }
            let rule = rng.gen_range(0..sigma.len());
            det.inject_drift(rule);
            if det.verify_rule(rule, &g) {
                return Err(format!("injected drift on rule {rule} not detected"));
            }
            Ok(())
        });
    }

    #[test]
    fn from_violations_resumes_incremental_maintenance() {
        check("from_violations ≡ new, then keeps repairing", 20, |rng| {
            let (g, sigma) = random_world(rng);
            let scratch = detect_violations(&sigma, &g);
            let mut det = IncrementalDetector::from_violations(&sigma, &scratch);
            if detector_set(&det) != violation_set(&sigma, &g) {
                return Err("seeded state diverges from scratch".into());
            }
            // And it must keep maintaining correctly from there.
            let r1 = rng.gen_range(0..g.node_count());
            let (g2, delta) = g.edit_with_delta(|b| {
                let a = b.vocab().intern("val");
                b.set_attr(NodeId(r1 as u32), a, Value::Int(1));
            });
            det.apply(&g2, &delta);
            if detector_set(&det) != violation_set(&sigma, &g2) {
                return Err("post-handoff repair diverges".into());
            }
            Ok(())
        });
    }

    #[test]
    fn repaired_detector_equals_scratch_over_edit_scripts() {
        check(
            "IncrementalDetector ≡ detVio over edit scripts",
            25,
            |rng| {
                let (mut g, sigma) = random_world(rng);
                let mut det = IncrementalDetector::new(&sigma, &g);
                for step in 0..12 {
                    let kind = rng.gen_range(0..5);
                    let r1 = rng.gen_range(0..g.node_count());
                    let r2 = rng.gen_range(0..g.node_count());
                    let r3 = rng.gen_range(0..4);
                    let (g2, delta) = g.edit_with_delta(|b| match kind {
                        0 => {
                            b.add_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "owns");
                        }
                        1 => {
                            b.remove_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "owns");
                        }
                        2 => {
                            let a = b.vocab().intern("val");
                            b.set_attr(NodeId(r1 as u32), a, Value::Int(r3 as i64));
                        }
                        3 => {
                            let a = b.vocab().intern("val");
                            b.remove_attr(NodeId(r1 as u32), a);
                        }
                        _ => {
                            let h = b.add_node_labeled("hub");
                            let a = b.vocab().intern("val");
                            b.set_attr(h, a, Value::Int(r3 as i64));
                            b.add_edge_labeled(h, NodeId(r2 as u32), "owns");
                        }
                    });
                    det.apply(&g2, &delta);
                    let scratch = violation_set(&sigma, &g2);
                    if detector_set(&det) != scratch {
                        return Err(format!(
                            "step {step} (kind {kind}): {} maintained vs {} scratch",
                            det.violation_count(),
                            scratch.len()
                        ));
                    }
                    g = g2;
                }
                Ok(())
            },
        );
    }
}
