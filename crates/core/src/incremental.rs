//! Incremental violation detection: maintaining `Vio(Σ, G)` across
//! graph edits.
//!
//! The sequential `detVio` (module [`crate::validate`]) re-enumerates
//! every match of every rule per run. When the graph evolves by small
//! deltas (noise injection, repair loops, live updates), almost all of
//! that work re-derives unchanged facts. [`IncrementalDetector`] keeps
//! per-rule state across edits:
//!
//! * one shared [`SpaceRegistry`] across the whole Σ — rule patterns
//!   register by isomorphism class, each class's dual-simulation
//!   candidate space is computed once and *repaired* (not recomputed)
//!   against each [`GraphDelta`] at its representative, and the twin
//!   rules read transported copies;
//! * the current violating matches of each rule.
//!
//! On a delta, a rule is re-examined only around the *affected nodes*
//! (delta edge endpoints, relabeled/attribute-touched nodes, added
//! nodes):
//!
//! * stored violations that touch no affected node are still matches
//!   and still violating (their edges, labels and attribute values
//!   are untouched) and survive without re-enumeration;
//! * stored violations touching affected nodes are re-checked
//!   directly (edges + labels + dependency), in `O(|Q|)` each;
//! * new violations must contain an affected node (a match that
//!   gained violation status either changed structurally or had an
//!   attribute change on one of its images), so the detector
//!   enumerates only matches *pinned* at affected candidate nodes —
//!   using the repaired candidate space as the search filter — and
//!   re-checks those.

use std::collections::HashSet;

use gfd_graph::{Graph, GraphDelta, NodeId};
use gfd_match::types::Flow;
use gfd_match::{
    for_each_match, for_each_match_in_space, Match, MatchOptions, SpaceHandle, SpaceRegistry,
};
use gfd_pattern::signature::decompose;

use crate::gfd::GfdSet;
use crate::validate::{detect_violations, match_satisfies, Violation};

/// Per-rule incremental state.
struct RuleState {
    /// Handle of the rule's full pattern in the shared registry.
    handle: SpaceHandle,
    /// True if the rule's pattern is connected (the space then drives
    /// enumeration directly).
    connected: bool,
    /// Current violating matches.
    violations: HashSet<Match>,
}

/// Maintains `Vio(Σ, G)` across graph edits; see the module docs.
///
/// The maintained set is always identical to what
/// [`detect_violations`] computes from scratch on the current
/// snapshot (asserted by the oracle test below and the end-to-end
/// inject→detect→fix loop in `gfd-datagen`).
pub struct IncrementalDetector {
    sigma: GfdSet,
    /// Candidate spaces for all rules, keyed by isomorphism class —
    /// one simulation and one per-delta repair per class, however many
    /// isomorphic rules Σ holds.
    registry: SpaceRegistry,
    rules: Vec<RuleState>,
}

impl IncrementalDetector {
    /// Full detection pass over `g`, retaining all per-rule state for
    /// later [`apply`](IncrementalDetector::apply) calls.
    pub fn new(sigma: &GfdSet, g: &Graph) -> Self {
        let mut registry = SpaceRegistry::new();
        let rules = sigma
            .iter()
            .map(|gfd| {
                let handle = registry.register(&gfd.pattern);
                let connected = decompose(&gfd.pattern).len() == 1;
                let mut violations = HashSet::new();
                if !gfd.dep.y.is_empty() {
                    let cs = registry.space(handle, g);
                    if !cs.is_empty_anywhere() {
                        let opts = MatchOptions::unrestricted();
                        for_each_match_in_space(&gfd.pattern, g, &opts, cs, &mut |m| {
                            if !match_satisfies(&gfd.dep, g, m) {
                                violations.insert(Match(m.to_vec()));
                            }
                            Flow::Continue
                        });
                    }
                }
                RuleState {
                    handle,
                    connected,
                    violations,
                }
            })
            .collect();
        IncrementalDetector {
            sigma: sigma.clone(),
            registry,
            rules,
        }
    }

    /// The current violation set, in rule order (match order within a
    /// rule is unspecified).
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (rule, state) in self.rules.iter().enumerate() {
            for m in &state.violations {
                out.push(Violation {
                    rule,
                    mapping: m.clone(),
                });
            }
        }
        out
    }

    /// The incremental validation answer: does the current snapshot
    /// satisfy `Σ`?
    pub fn satisfied(&self) -> bool {
        self.rules.iter().all(|s| s.violations.is_empty())
    }

    /// Total number of current violations.
    pub fn violation_count(&self) -> usize {
        self.rules.iter().map(|s| s.violations.len()).sum()
    }

    /// Repairs the detector against one edit step: `g` is the edited
    /// snapshot, `delta` the recorded difference from the snapshot the
    /// detector was last synchronized with.
    pub fn apply(&mut self, g: &Graph, delta: &GraphDelta) {
        let d = delta.clone().normalize();
        if d.is_empty() {
            return;
        }
        let affected = d.touched_nodes();
        let is_affected = |u: NodeId| affected.binary_search(&u).is_ok();

        // Repair the candidate spaces first — one repair per
        // isomorphism class, shared by every rule of the class; pinned
        // re-enumeration below draws pools from the repaired spaces.
        let Self {
            ref sigma,
            ref mut registry,
            ref mut rules,
        } = *self;
        registry.apply_normalized(g, &d);

        for (rule, state) in rules.iter_mut().enumerate() {
            let gfd = sigma.get(rule);
            if gfd.dep.y.is_empty() {
                continue; // X → ∅ can never be violated
            }

            // 1. Re-check stored violations that touch the delta; the
            //    rest are untouched matches with untouched attribute
            //    values and survive as-is.
            state.violations.retain(|m| {
                if !m.nodes().iter().copied().any(is_affected) {
                    return true;
                }
                still_violates(gfd, g, m)
            });

            // 2. New violations contain an affected node: enumerate
            //    matches pinned there (per variable whose candidate
            //    set admits the node), via the repaired class space.
            let cs = registry.space(state.handle, g);
            if cs.is_empty_anywhere() {
                debug_assert!(state.violations.is_empty());
                continue;
            }
            for &u in &affected {
                for v in gfd.pattern.vars() {
                    if cs.sets[v.index()].binary_search(&u).is_err() {
                        continue;
                    }
                    let opts = MatchOptions::unrestricted().pin(v, u);
                    let enumerate = &mut |m: &[NodeId]| {
                        if !match_satisfies(&gfd.dep, g, m) {
                            state.violations.insert(Match(m.to_vec()));
                        }
                        Flow::Continue
                    };
                    if state.connected {
                        for_each_match_in_space(&gfd.pattern, g, &opts, cs, enumerate);
                    } else {
                        for_each_match(&gfd.pattern, g, &opts, enumerate);
                    }
                }
            }
        }
    }
}

/// Direct `O(|Q|)` re-check of a previously stored violating match:
/// still a structural match, and still violating?
fn still_violates(gfd: &crate::gfd::Gfd, g: &Graph, m: &Match) -> bool {
    let q = &gfd.pattern;
    let images = m.nodes();
    if images.iter().any(|u| u.index() >= g.node_count()) {
        return false;
    }
    for v in q.vars() {
        if !q.label(v).admits(g.label(images[v.index()])) {
            return false;
        }
    }
    for e in q.edges() {
        let (s, t) = (images[e.src.index()], images[e.dst.index()]);
        let ok = match e.label {
            gfd_pattern::PatLabel::Sym(l) => g.has_edge(s, t, l),
            gfd_pattern::PatLabel::Wildcard => g.has_edge_any(s, t),
        };
        if !ok {
            return false;
        }
    }
    !match_satisfies(&gfd.dep, g, images)
}

/// Convenience oracle used by tests and callers that want to
/// cross-check: the from-scratch violation set as a comparable form.
pub fn violation_set(sigma: &GfdSet, g: &Graph) -> HashSet<(usize, Match)> {
    detect_violations(sigma, g)
        .into_iter()
        .map(|v| (v.rule, v.mapping))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use crate::literal::{Dependency, Literal};
    use gfd_graph::{GraphBuilder, Value};
    use gfd_pattern::PatternBuilder;
    use gfd_util::{prop::check, Rng};

    fn detector_set(det: &IncrementalDetector) -> HashSet<(usize, Match)> {
        det.violations()
            .into_iter()
            .map(|v| (v.rule, v.mapping))
            .collect()
    }

    /// A small random property-graph world with attribute values and a
    /// same-label/same-val ⇒ same-peer rule that noise can break.
    fn random_world(rng: &mut Rng) -> (Graph, GfdSet) {
        let mut b = GraphBuilder::with_fresh_vocab();
        let n = rng.gen_range(4..10);
        let hubs: Vec<_> = (0..n).map(|_| b.add_node_labeled("hub")).collect();
        for &h in &hubs {
            let leaf = b.add_node_labeled("leaf");
            b.add_edge_labeled(h, leaf, "owns");
            b.set_attr_named(leaf, "val", Value::Int(rng.gen_range(0..3) as i64));
            b.set_attr_named(h, "val", Value::Int(rng.gen_range(0..2) as i64));
        }
        let g = b.freeze();
        let vocab = g.vocab().clone();
        let val = vocab.intern("val");

        // Connected rule: hub → leaf, hub.val determines leaf.val.
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node("x", "hub");
        let y = pb.node("y", "leaf");
        pb.edge(x, y, "owns");
        let q1 = pb.build();
        let phi1 = Gfd::new(
            "hub-leaf",
            q1,
            Dependency::new(
                vec![Literal::const_eq(x, val, Value::Int(0))],
                vec![Literal::const_eq(y, val, Value::Int(0))],
            ),
        );

        // Disconnected rule: two hubs with equal val must carry val 0
        // (Example 5 shape — two independent pivots far apart).
        let mut pb = PatternBuilder::new(vocab.clone());
        let a = pb.node("a", "hub");
        let c = pb.node("c", "hub");
        let q2 = pb.build();
        let phi2 = Gfd::new(
            "hub-pair",
            q2,
            Dependency::new(
                vec![Literal::var_eq(a, val, c, val)],
                vec![Literal::const_eq(a, val, Value::Int(0))],
            ),
        );
        (g, GfdSet::new(vec![phi1, phi2]))
    }

    #[test]
    fn initial_state_matches_scratch() {
        check("IncrementalDetector::new ≡ detVio", 40, |rng| {
            let (g, sigma) = random_world(rng);
            let det = IncrementalDetector::new(&sigma, &g);
            let scratch = violation_set(&sigma, &g);
            if detector_set(&det) != scratch {
                return Err(format!(
                    "initial sets diverge: {} vs {}",
                    det.violation_count(),
                    scratch.len()
                ));
            }
            if det.satisfied() != scratch.is_empty() {
                return Err("satisfied() disagrees".into());
            }
            Ok(())
        });
    }

    #[test]
    fn repaired_detector_equals_scratch_over_edit_scripts() {
        check(
            "IncrementalDetector ≡ detVio over edit scripts",
            25,
            |rng| {
                let (mut g, sigma) = random_world(rng);
                let mut det = IncrementalDetector::new(&sigma, &g);
                for step in 0..12 {
                    let kind = rng.gen_range(0..5);
                    let r1 = rng.gen_range(0..g.node_count());
                    let r2 = rng.gen_range(0..g.node_count());
                    let r3 = rng.gen_range(0..4);
                    let (g2, delta) = g.edit_with_delta(|b| match kind {
                        0 => {
                            b.add_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "owns");
                        }
                        1 => {
                            b.remove_edge_labeled(NodeId(r1 as u32), NodeId(r2 as u32), "owns");
                        }
                        2 => {
                            let a = b.vocab().intern("val");
                            b.set_attr(NodeId(r1 as u32), a, Value::Int(r3 as i64));
                        }
                        3 => {
                            let a = b.vocab().intern("val");
                            b.remove_attr(NodeId(r1 as u32), a);
                        }
                        _ => {
                            let h = b.add_node_labeled("hub");
                            let a = b.vocab().intern("val");
                            b.set_attr(h, a, Value::Int(r3 as i64));
                            b.add_edge_labeled(h, NodeId(r2 as u32), "owns");
                        }
                    });
                    det.apply(&g2, &delta);
                    let scratch = violation_set(&sigma, &g2);
                    if detector_set(&det) != scratch {
                        return Err(format!(
                            "step {step} (kind {kind}): {} maintained vs {} scratch",
                            det.violation_count(),
                            scratch.len()
                        ));
                    }
                    g = g2;
                }
                Ok(())
            },
        );
    }
}
