//! The implication problem for GFDs (§4.2; NP-complete, Thm. 5).
//!
//! `Σ ⊨ ϕ` iff every graph satisfying `Σ` also satisfies `ϕ`. Lemma 7
//! characterizes this by *deducibility*: for `ϕ = (Q[x̄], X → Y)` in
//! normal form, `Σ ⊨ ϕ` iff `Y ∈ closure(Σ_Q, X)` for some set `Σ_Q`
//! of GFDs embedded in `Q` and derived from `Σ`.
//!
//! The paper's NP algorithm guesses the subset `Σ' ⊆ Σ` and the
//! embeddings; closure is monotone in the embedded set, so the
//! deterministic version simply enumerates **all** embeddings of all
//! rules (module [`crate::closure`]) and computes one maximal closure
//! — complete, with the exponential confined to pattern-to-pattern
//! matching.
//!
//! Conventions following §4.2:
//! * `Y = ∅` or a tautology `x.A = x.A` ⟹ trivially implied;
//! * if `closure(Σ_Q, X)` is conflicting, no graph can satisfy `Σ`
//!   and `X` on a match of `Q` simultaneously, so the implication
//!   holds vacuously;
//! * `Σ` is assumed satisfiable ([`implies_checked`] verifies it
//!   first and follows the paper's extended algorithm).

use crate::closure::{chase, embedded_deps, ground_literal, GroundLiteral};
use crate::gfd::{Gfd, GfdSet};
use crate::literal::Literal;
use crate::sat::{check_satisfiability, SatOutcome};

/// Result of the checked implication analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplicationOutcome {
    /// `Σ ⊨ ϕ`.
    Implied,
    /// `Σ ⊭ ϕ` (a counterexample model exists).
    NotImplied,
    /// `Σ` itself is unsatisfiable — the paper's algorithm reports the
    /// input as invalid.
    SigmaUnsatisfiable,
}

fn identity_grounding(lit: &Literal) -> GroundLiteral {
    ground_literal(lit, &|v| v.0)
}

/// Decides `Σ ⊨ ϕ`, assuming `Σ` is satisfiable (§4.2's standing
/// assumption). Deterministic and complete via full embedding
/// enumeration.
pub fn implies(sigma: &GfdSet, phi: &Gfd) -> bool {
    // Normal form: each consequent literal separately; ∅ → trivially true.
    let consequents: Vec<&Literal> = phi.dep.y.iter().collect();
    if consequents.is_empty() {
        return true;
    }

    let deps = embedded_deps(sigma, &phi.pattern);
    let base: Vec<GroundLiteral> = phi.dep.x.iter().map(identity_grounding).collect();
    let rel = chase(&deps, &base);

    // Conflicting closure: X cannot hold on any Σ-satisfying match of
    // Q, so the implication is vacuous.
    if rel.has_conflict() {
        return true;
    }

    consequents.iter().all(|lit| {
        if lit.is_tautology() {
            // §4.2 treats tautologies as trivially implied. (Note the
            // subtlety: under the attribute-existence semantics of §3 a
            // tautology in Y is not vacuous; the implication analysis
            // follows the paper's normal-form convention regardless.)
            return true;
        }
        identity_grounding(lit).entailed_by(&rel)
    })
}

/// The paper's extended algorithm: first check that `Σ` is satisfiable
/// and that `X` is satisfiable, then decide.
pub fn implies_checked(sigma: &GfdSet, phi: &Gfd) -> ImplicationOutcome {
    if matches!(
        check_satisfiability(sigma),
        SatOutcome::Unsatisfiable { .. }
    ) {
        return ImplicationOutcome::SigmaUnsatisfiable;
    }
    // X unsatisfiable on its own ⇒ ϕ holds trivially.
    let base: Vec<GroundLiteral> = phi.dep.x.iter().map(identity_grounding).collect();
    if chase(&[], &base).has_conflict() {
        return ImplicationOutcome::Implied;
    }
    if implies(sigma, phi) {
        ImplicationOutcome::Implied
    } else {
        ImplicationOutcome::NotImplied
    }
}

/// Removes rules implied by the rest of the set — the *workload
/// reduction* optimization of the appendix: if `Σ \ {ϕ} ⊨ ϕ`, then
/// `ϕ` can be dropped without changing `Vio(Σ, G)`.
pub fn minimize(sigma: &GfdSet) -> GfdSet {
    let mut kept: Vec<Gfd> = sigma.iter().cloned().collect();
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i].clone();
        let rest = GfdSet::new(
            kept.iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, g)| g.clone())
                .collect(),
        );
        if !rest.is_empty() && implies(&rest, &candidate) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    GfdSet::new(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Dependency;
    use gfd_graph::Vocab;
    use gfd_pattern::{Pattern, PatternBuilder, VarId};
    use std::sync::Arc;

    fn q8(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        let z = b.node("z", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        b.build()
    }

    fn q9(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        let z = b.node("z", "tau");
        let w = b.node("w", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        b.edge(y, w, "l");
        b.edge(z, w, "l");
        b.build()
    }

    /// Example 8: Σ = { (Q8, x.A=y.A → x.B=y.B), (Q9, x.B=y.B → z.C=w.C) }
    /// implies ϕ11 = (Q9, x.A=y.A → z.C=w.C).
    #[test]
    fn example8_implication_holds() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let b_at = vocab.intern("B");
        let c_at = vocab.intern("C");
        let g8 = Gfd::new(
            "s1",
            q8(vocab.clone()),
            Dependency::new(
                vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
                vec![Literal::var_eq(VarId(0), b_at, VarId(1), b_at)],
            ),
        );
        let g9 = Gfd::new(
            "s2",
            q9(vocab.clone()),
            Dependency::new(
                vec![Literal::var_eq(VarId(0), b_at, VarId(1), b_at)],
                vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
            ),
        );
        let sigma = GfdSet::new(vec![g8, g9]);
        let phi11 = Gfd::new(
            "phi11",
            q9(vocab.clone()),
            Dependency::new(
                vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
                vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
            ),
        );
        assert!(implies(&sigma, &phi11));
        assert_eq!(implies_checked(&sigma, &phi11), ImplicationOutcome::Implied);

        // The reverse direction does not hold.
        let phi_rev = Gfd::new(
            "rev",
            q9(vocab),
            Dependency::new(
                vec![Literal::var_eq(VarId(2), c_at, VarId(3), c_at)],
                vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
            ),
        );
        assert!(!implies(&sigma, &phi_rev));
    }

    #[test]
    fn empty_consequent_trivially_implied() {
        let vocab = Vocab::shared();
        let phi = Gfd::new("e", q8(vocab), Dependency::new(vec![], vec![]));
        assert!(implies(&GfdSet::default(), &phi));
    }

    #[test]
    fn tautology_trivially_implied() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let phi = Gfd::new(
            "taut",
            q8(vocab),
            Dependency::always(vec![Literal::var_eq(VarId(0), a, VarId(0), a)]),
        );
        assert!(implies(&GfdSet::default(), &phi));
    }

    #[test]
    fn unsatisfiable_x_is_vacuous() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let b_at = vocab.intern("B");
        let phi = Gfd::new(
            "vacuous",
            q8(vocab),
            Dependency::new(
                vec![
                    Literal::const_eq(VarId(0), a, "c"),
                    Literal::const_eq(VarId(0), a, "d"),
                ],
                vec![Literal::const_eq(VarId(1), b_at, "whatever")],
            ),
        );
        assert_eq!(
            implies_checked(&GfdSet::default(), &phi),
            ImplicationOutcome::Implied
        );
    }

    #[test]
    fn unsatisfiable_sigma_reported() {
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("x", "tau");
        let q = b.build();
        let c1 = Gfd::new(
            "c",
            q.clone(),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let d1 = Gfd::new(
            "d",
            q.clone(),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "d")]),
        );
        let sigma = GfdSet::new(vec![c1, d1]);
        let phi = Gfd::new(
            "any",
            q,
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "e")]),
        );
        assert_eq!(
            implies_checked(&sigma, &phi),
            ImplicationOutcome::SigmaUnsatisfiable
        );
    }

    #[test]
    fn constant_transitivity_implication() {
        // Σ: (τ, ∅ → x.A = c). ϕ: (τ→τ edge pattern, ∅ → x.A = y.A):
        // both endpoints' A are forced to c, hence equal.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("x", "tau");
        let single = b.build();
        let rule = Gfd::new(
            "all-c",
            single,
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        b.edge(x, y, "l");
        let edge_q = b.build();
        let phi = Gfd::new(
            "equal",
            edge_q,
            Dependency::always(vec![Literal::var_eq(VarId(0), a, VarId(1), a)]),
        );
        assert!(implies(&GfdSet::new(vec![rule]), &phi));
    }

    #[test]
    fn minimize_drops_implied_rules() {
        // Same-pattern duplicate: the second copy is implied.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let mk = |name: &str| {
            Gfd::new(
                name,
                q8(vocab.clone()),
                Dependency::new(
                    vec![Literal::var_eq(VarId(0), a, VarId(1), a)],
                    vec![Literal::var_eq(VarId(1), a, VarId(2), a)],
                ),
            )
        };
        let sigma = GfdSet::new(vec![mk("one"), mk("two")]);
        let minimized = minimize(&sigma);
        assert_eq!(minimized.len(), 1);

        // Unrelated rules are kept.
        let other = Gfd::new(
            "other",
            q9(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(3), a, "v")]),
        );
        let sigma2 = GfdSet::new(vec![mk("one"), other]);
        assert_eq!(minimize(&sigma2).len(), 2);
    }
}
