//! Embedded GFDs and equality closures (§4).
//!
//! For a pattern `Q` and a set `Σ`, the GFDs *embedded in `Q` and
//! derived from `Σ`* are `(Q, f(X') → f(Y'))` for every `ϕ' = (Q', X'
//! → Y')` in `Σ` and every embedding `f` of `Q'` into `Q`. Closures
//! over those embedded dependencies drive both static analyses:
//!
//! * `enforced(Σ_Q)` — the fixpoint starting from nothing, used by
//!   satisfiability;
//! * `closure(Σ_Q, X)` — the fixpoint starting from `X`, used by
//!   implication.
//!
//! The same machinery is reused by the satisfiability chase with graph
//! *nodes* instead of pattern variables as term owners, so the literal
//! form here is "ground": owners are plain `u32` indices.

use gfd_graph::{Sym, Value};
use gfd_pattern::{embeddings, Pattern};

use crate::eqrel::EqRel;
use crate::gfd::GfdSet;
use crate::literal::{Dependency, Literal};

/// A literal whose variables have been resolved to owner indices
/// (pattern variables for implication, graph nodes for the
/// satisfiability chase).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundLiteral {
    /// `o.A = c`.
    Const {
        /// Owner index.
        owner: u32,
        /// Attribute.
        attr: Sym,
        /// The constant.
        value: Value,
    },
    /// `o1.A = o2.B`.
    Vars {
        /// Left owner.
        o1: u32,
        /// Left attribute.
        a1: Sym,
        /// Right owner.
        o2: u32,
        /// Right attribute.
        a2: Sym,
    },
}

impl GroundLiteral {
    /// Is the literal already derivable from `rel`?
    pub fn entailed_by(&self, rel: &EqRel) -> bool {
        match self {
            GroundLiteral::Const { owner, attr, value } => rel.entails_const(*owner, *attr, value),
            GroundLiteral::Vars { o1, a1, o2, a2 } => rel.entails_var(*o1, *a1, *o2, *a2),
        }
    }

    /// Asserts the literal into `rel` (creating terms as needed).
    pub fn assert_into(&self, rel: &mut EqRel) {
        match self {
            GroundLiteral::Const { owner, attr, value } => {
                let t = rel.attr_term(*owner, *attr);
                let c = rel.const_term(value);
                rel.union(t, c);
            }
            GroundLiteral::Vars { o1, a1, o2, a2 } => {
                let t1 = rel.attr_term(*o1, *a1);
                let t2 = rel.attr_term(*o2, *a2);
                rel.union(t1, t2);
            }
        }
    }
}

/// A dependency with ground literals.
#[derive(Clone, Debug)]
pub struct GroundDep {
    /// Antecedent.
    pub x: Vec<GroundLiteral>,
    /// Consequent.
    pub y: Vec<GroundLiteral>,
}

/// Grounds a literal through an owner assignment.
pub fn ground_literal(
    lit: &Literal,
    owner_of: &dyn Fn(gfd_pattern::VarId) -> u32,
) -> GroundLiteral {
    match lit {
        Literal::Const { var, attr, value } => GroundLiteral::Const {
            owner: owner_of(*var),
            attr: *attr,
            value: value.clone(),
        },
        Literal::Vars { x, a, y, b } => GroundLiteral::Vars {
            o1: owner_of(*x),
            a1: *a,
            o2: owner_of(*y),
            a2: *b,
        },
    }
}

/// Grounds a whole dependency.
pub fn ground_dep(dep: &Dependency, owner_of: &dyn Fn(gfd_pattern::VarId) -> u32) -> GroundDep {
    GroundDep {
        x: dep.x.iter().map(|l| ground_literal(l, owner_of)).collect(),
        y: dep.y.iter().map(|l| ground_literal(l, owner_of)).collect(),
    }
}

/// Derives all GFDs of `Σ` embedded in `Q` (owners are `Q`'s variable
/// indices). One [`GroundDep`] per (rule, embedding) pair.
pub fn embedded_deps(sigma: &GfdSet, q: &Pattern) -> Vec<GroundDep> {
    let mut out = Vec::new();
    for gfd in sigma {
        for emb in embeddings(&gfd.pattern, q) {
            out.push(ground_dep(&gfd.dep, &|v| emb[v.index()].0));
        }
    }
    out
}

/// Runs the equality chase: asserts `base`, then fires every
/// dependency whose antecedent is derivable, to fixpoint. Returns the
/// resulting relation (check [`EqRel::has_conflict`] afterwards).
///
/// With `base = []` this computes `enforced(Σ_Q)`; with `base = X` it
/// computes `closure(Σ_Q, X)`.
pub fn chase(deps: &[GroundDep], base: &[GroundLiteral]) -> EqRel {
    let mut rel = EqRel::new();
    for lit in base {
        lit.assert_into(&mut rel);
    }
    let mut fired = vec![false; deps.len()];
    loop {
        let mut progress = false;
        for (i, dep) in deps.iter().enumerate() {
            if fired[i] {
                continue;
            }
            if dep.x.iter().all(|l| l.entailed_by(&rel)) {
                fired[i] = true;
                progress = true;
                for lit in &dep.y {
                    lit.assert_into(&mut rel);
                }
            }
        }
        if !progress {
            return rel;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use gfd_graph::Vocab;
    use gfd_pattern::{PatternBuilder, VarId};

    fn sym(v: &Vocab, s: &str) -> Sym {
        v.intern(s)
    }

    #[test]
    fn chase_base_only() {
        let v = Vocab::shared();
        let a = sym(&v, "A");
        let base = vec![GroundLiteral::Const {
            owner: 0,
            attr: a,
            value: Value::str("c"),
        }];
        let rel = chase(&[], &base);
        assert!(rel.entails_const(0, a, &Value::str("c")));
        assert!(!rel.has_conflict());
    }

    #[test]
    fn chase_fires_transitively() {
        // dep1: o0.A = c → o1.B = c; dep2: o1.B = c → o2.C = d.
        let v = Vocab::shared();
        let (a, b, c_attr) = (sym(&v, "A"), sym(&v, "B"), sym(&v, "C"));
        let deps = vec![
            GroundDep {
                x: vec![GroundLiteral::Const {
                    owner: 0,
                    attr: a,
                    value: Value::str("c"),
                }],
                y: vec![GroundLiteral::Const {
                    owner: 1,
                    attr: b,
                    value: Value::str("c"),
                }],
            },
            GroundDep {
                x: vec![GroundLiteral::Const {
                    owner: 1,
                    attr: b,
                    value: Value::str("c"),
                }],
                y: vec![GroundLiteral::Const {
                    owner: 2,
                    attr: c_attr,
                    value: Value::str("d"),
                }],
            },
        ];
        let base = vec![GroundLiteral::Const {
            owner: 0,
            attr: a,
            value: Value::str("c"),
        }];
        let rel = chase(&deps, &base);
        assert!(rel.entails_const(2, c_attr, &Value::str("d")));
    }

    #[test]
    fn chase_detects_conflict() {
        // Example 7: ∅ → x.A = c and ∅ → x.A = d conflict.
        let v = Vocab::shared();
        let a = sym(&v, "A");
        let deps = vec![
            GroundDep {
                x: vec![],
                y: vec![GroundLiteral::Const {
                    owner: 0,
                    attr: a,
                    value: Value::str("c"),
                }],
            },
            GroundDep {
                x: vec![],
                y: vec![GroundLiteral::Const {
                    owner: 0,
                    attr: a,
                    value: Value::str("d"),
                }],
            },
        ];
        let rel = chase(&deps, &[]);
        assert!(rel.has_conflict());
    }

    #[test]
    fn unfired_deps_do_not_leak() {
        let v = Vocab::shared();
        let a = sym(&v, "A");
        let deps = vec![GroundDep {
            x: vec![GroundLiteral::Const {
                owner: 0,
                attr: a,
                value: Value::str("never"),
            }],
            y: vec![GroundLiteral::Const {
                owner: 1,
                attr: a,
                value: Value::str("x"),
            }],
        }];
        let rel = chase(&deps, &[]);
        assert!(!rel.entails_const(1, a, &Value::str("x")));
    }

    #[test]
    fn embedded_deps_follow_embeddings() {
        // Σ = { (single τ node, ∅ → x.A = c) }; Q = τ → τ edge.
        // The single node embeds twice, so both Q-variables get the dep.
        let vocab = Vocab::shared();
        let a = sym(&vocab, "A");
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("x", "tau");
        let q_single = b.build();
        let phi = Gfd::new(
            "c",
            q_single,
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let sigma = GfdSet::new(vec![phi]);

        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        b.edge(x, y, "l");
        let q = b.build();

        let deps = embedded_deps(&sigma, &q);
        assert_eq!(deps.len(), 2);
        let rel = chase(&deps, &[]);
        assert!(rel.entails_const(0, a, &Value::str("c")));
        assert!(rel.entails_const(1, a, &Value::str("c")));
    }

    #[test]
    fn variable_literal_grounding() {
        let v = Vocab::shared();
        let a = sym(&v, "A");
        let lit = Literal::var_eq(VarId(0), a, VarId(1), a);
        let g = ground_literal(&lit, &|vid| vid.0 + 10);
        assert_eq!(
            g,
            GroundLiteral::Vars {
                o1: 10,
                a1: a,
                o2: 11,
                a2: a
            }
        );
    }
}
