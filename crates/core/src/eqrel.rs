//! Equality reasoning over attribute terms and constants.
//!
//! Both `enforced(Σ_Q)` (§4.1) and `closure(Σ_Q, X)` (§4.2) are
//! fixpoints of equality atoms closed under "the transitivity of
//! equality atoms". The natural engine for that is a union–find whose
//! elements are *terms*: either an attribute term `o.A` (where `o` is
//! a pattern variable or a graph node, generically an *owner* index)
//! or a constant. A class containing two **distinct** constants is a
//! *conflict* — exactly the paper's notion of a conflicting `Σ_Q`.

use std::collections::HashMap;

use gfd_graph::{Sym, Value};

/// Handle to a term inside an [`EqRel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TermId(u32);

/// A union–find over attribute terms `owner.attr` and constants.
#[derive(Clone, Debug, Default)]
pub struct EqRel {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Representative constant of a class (by root), if any.
    constant: Vec<Option<Value>>,
    attr_terms: HashMap<(u32, Sym), TermId>,
    const_terms: HashMap<Value, TermId>,
    conflict: Option<(Value, Value)>,
}

impl EqRel {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh(&mut self, constant: Option<Value>) -> TermId {
        let id = TermId(self.parent.len() as u32);
        self.parent.push(id.0);
        self.rank.push(0);
        self.constant.push(constant);
        id
    }

    /// Interns the attribute term `owner.attr`.
    pub fn attr_term(&mut self, owner: u32, attr: Sym) -> TermId {
        if let Some(&t) = self.attr_terms.get(&(owner, attr)) {
            return t;
        }
        let t = self.fresh(None);
        self.attr_terms.insert((owner, attr), t);
        t
    }

    /// Looks up `owner.attr` without creating it. A term that was never
    /// mentioned cannot participate in a derivation (the paper's
    /// closures only connect literals that were actually enforced).
    pub fn try_attr_term(&self, owner: u32, attr: Sym) -> Option<TermId> {
        self.attr_terms.get(&(owner, attr)).copied()
    }

    /// Interns a constant term.
    pub fn const_term(&mut self, value: &Value) -> TermId {
        if let Some(&t) = self.const_terms.get(value) {
            return t;
        }
        let t = self.fresh(Some(value.clone()));
        self.const_terms.insert(value.clone(), t);
        t
    }

    /// Looks up a constant term without creating it.
    pub fn try_const_term(&self, value: &Value) -> Option<TermId> {
        self.const_terms.get(value).copied()
    }

    fn find(&mut self, t: TermId) -> TermId {
        let mut root = t.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = t.0;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        TermId(root)
    }

    /// Non-mutating find (no compression) for read-only queries.
    fn find_ro(&self, t: TermId) -> TermId {
        let mut root = t.0;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        TermId(root)
    }

    /// Merges the classes of `a` and `b`. Returns `true` if the
    /// relation changed. Records a conflict when two classes with
    /// distinct constants merge (but still merges, so derivations can
    /// proceed — the conflict flag is what reasoning inspects).
    pub fn union(&mut self, a: TermId, b: TermId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        match (&self.constant[ra.0 as usize], &self.constant[rb.0 as usize]) {
            (Some(ca), Some(cb)) if ca != cb && self.conflict.is_none() => {
                self.conflict = Some((ca.clone(), cb.clone()));
            }
            _ => {}
        }
        let (big, small) = if self.rank[ra.0 as usize] >= self.rank[rb.0 as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small.0 as usize] = big.0;
        if self.rank[big.0 as usize] == self.rank[small.0 as usize] {
            self.rank[big.0 as usize] += 1;
        }
        if self.constant[big.0 as usize].is_none() {
            self.constant[big.0 as usize] = self.constant[small.0 as usize].clone();
        }
        true
    }

    /// Are two terms known equal?
    pub fn same(&self, a: TermId, b: TermId) -> bool {
        self.find_ro(a) == self.find_ro(b)
    }

    /// The constant a term is bound to, if any.
    pub fn constant_of(&self, t: TermId) -> Option<&Value> {
        self.constant[self.find_ro(t).0 as usize].as_ref()
    }

    /// True if two distinct constants were ever merged — the paper's
    /// "(x.A, a) and (x.A, b) … with a ≠ b".
    pub fn has_conflict(&self) -> bool {
        self.conflict.is_some()
    }

    /// The first conflicting constant pair, for diagnostics.
    pub fn conflict_witness(&self) -> Option<(&Value, &Value)> {
        self.conflict.as_ref().map(|(a, b)| (a, b))
    }

    /// Does `owner.attr = value` already follow from the relation?
    pub fn entails_const(&self, owner: u32, attr: Sym, value: &Value) -> bool {
        let Some(t) = self.try_attr_term(owner, attr) else {
            return false;
        };
        match self.constant_of(t) {
            Some(c) => c == value,
            None => false,
        }
    }

    /// Does `o1.a1 = o2.a2` already follow from the relation?
    pub fn entails_var(&self, o1: u32, a1: Sym, o2: u32, a2: Sym) -> bool {
        if o1 == o2 && a1 == a2 {
            // Tautology — derivable only if the term is mentioned at
            // all? The paper's closure contains X ⊆ closure, so a
            // mentioned tautology holds; an unmentioned one is treated
            // as holding too (it is an equality between identical
            // terms).
            return true;
        }
        match (self.try_attr_term(o1, a1), self.try_attr_term(o2, a2)) {
            (Some(t1), Some(t2)) => self.same(t1, t2),
            _ => false,
        }
    }

    /// All attribute terms with their owners, attributes and class
    /// constants (used to materialize models from chases).
    pub fn attr_assignments(&self) -> Vec<(u32, Sym, TermId, Option<Value>)> {
        self.attr_terms
            .iter()
            .map(|(&(owner, attr), &t)| {
                let root = self.find_ro(t);
                (owner, attr, root, self.constant[root.0 as usize].clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn transitivity_through_constants() {
        // x.A = c and y.B = c  ⟹  x.A = y.B (the paper's example of
        // transitivity).
        let mut r = EqRel::new();
        let xa = r.attr_term(0, s(0));
        let yb = r.attr_term(1, s(1));
        let c = r.const_term(&Value::str("c"));
        r.union(xa, c);
        r.union(yb, c);
        assert!(r.entails_var(0, s(0), 1, s(1)));
        assert!(r.entails_const(0, s(0), &Value::str("c")));
        assert!(!r.has_conflict());
    }

    #[test]
    fn conflict_on_distinct_constants() {
        let mut r = EqRel::new();
        let xa = r.attr_term(0, s(0));
        let c = r.const_term(&Value::str("c"));
        let d = r.const_term(&Value::str("d"));
        r.union(xa, c);
        assert!(!r.has_conflict());
        r.union(xa, d);
        assert!(r.has_conflict());
        let (w1, w2) = r.conflict_witness().unwrap();
        assert_ne!(w1, w2);
    }

    #[test]
    fn unmentioned_terms_do_not_entail() {
        let r = EqRel::new();
        assert!(!r.entails_const(0, s(0), &Value::Int(1)));
        assert!(!r.entails_var(0, s(0), 1, s(0)));
        // …except tautologies.
        assert!(r.entails_var(0, s(0), 0, s(0)));
    }

    #[test]
    fn union_is_idempotent() {
        let mut r = EqRel::new();
        let a = r.attr_term(0, s(0));
        let b = r.attr_term(1, s(0));
        assert!(r.union(a, b));
        assert!(!r.union(a, b));
        assert!(r.same(a, b));
    }

    #[test]
    fn constant_propagates_to_class() {
        let mut r = EqRel::new();
        let a = r.attr_term(0, s(0));
        let b = r.attr_term(1, s(0));
        r.union(a, b);
        let c = r.const_term(&Value::Int(7));
        r.union(b, c);
        assert_eq!(r.constant_of(a), Some(&Value::Int(7)));
        assert!(r.entails_const(1, s(0), &Value::Int(7)));
        assert!(!r.entails_const(1, s(0), &Value::Int(8)));
    }

    #[test]
    fn same_constant_never_conflicts() {
        let mut r = EqRel::new();
        let a = r.attr_term(0, s(0));
        let c1 = r.const_term(&Value::str("v"));
        r.union(a, c1);
        let c2 = r.const_term(&Value::str("v"));
        r.union(a, c2);
        assert!(!r.has_conflict());
    }
}
