//! GFD validation and error detection (§5.1).
//!
//! A match `h(x̄)` of `Q` in `G` is a *violation* of
//! `ϕ = (Q[x̄], X → Y)` if `h ⊨ X` but `h ⊭ Y`. `Vio(Σ, G)` collects
//! the violations of all rules; `G ⊨ Σ` iff it is empty.
//!
//! Literal satisfaction follows §3 exactly:
//! * `h ⊨ x.A = c` iff node `h(x)` **has** attribute `A` and its value
//!   is `c`; similarly for `x.A = y.B`;
//! * a missing attribute in `X` makes the GFD hold trivially for that
//!   match (semi-structured data!), while a missing attribute in `Y`
//!   is a violation (when `X` held).
//!
//! The sequential reference algorithm `detVio` enumerates all matches
//! per rule and checks the dependency — exponential in the worst case
//! (validation is coNP-complete, Prop. 9), which is why the parallel
//! crate exists. A budgeted variant is provided so callers can bound
//! the effort.

use gfd_graph::{Graph, NodeId};
use gfd_match::component::ComponentSearch;
use gfd_match::table::MatchTable;
use gfd_match::{
    for_each_match, for_each_match_planned, for_each_match_with, types::Flow, CandidateSpace,
    ClassRegistry, Match, MatchOptions, MatchScratch, SearchBudget, SpaceHandle,
};
use gfd_pattern::analysis::connected_components;
use gfd_pattern::signature::decompose;
use gfd_pattern::VarId;
use gfd_util::FxHashMap;

use crate::gfd::{Gfd, GfdSet};
use crate::literal::{Dependency, Literal};

/// One violation: which rule, and the violating match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated GFD in `Σ`.
    pub rule: usize,
    /// The violating match `h(x̄)`.
    pub mapping: Match,
}

/// Does `h ⊨ lit` in `g`? (`m` is indexed by variable id.)
pub fn literal_holds(lit: &Literal, g: &Graph, m: &[NodeId]) -> bool {
    match lit {
        Literal::Const { var, attr, value } => g.attr(m[var.index()], *attr) == Some(value),
        Literal::Vars { x, a, y, b } => {
            match (g.attr(m[x.index()], *a), g.attr(m[y.index()], *b)) {
                (Some(va), Some(vb)) => va == vb,
                _ => false,
            }
        }
    }
}

/// Does `h ⊨ X → Y` (i.e. `h ⊨ Y` whenever `h ⊨ X`)?
pub fn match_satisfies(dep: &Dependency, g: &Graph, m: &[NodeId]) -> bool {
    let x_holds = dep.x.iter().all(|l| literal_holds(l, g, m));
    if !x_holds {
        return true;
    }
    dep.y.iter().all(|l| literal_holds(l, g, m))
}

/// Enumerates the violations of a single GFD, streaming them to `f`;
/// returns `true` if the enumeration was complete.
pub fn for_each_violation(
    gfd: &Gfd,
    g: &Graph,
    opts: &MatchOptions,
    f: &mut dyn FnMut(&[NodeId]) -> Flow,
) -> bool {
    if gfd.dep.y.is_empty() {
        // `X → ∅` holds for every match — skip the enumeration.
        return true;
    }
    let outcome = for_each_match(&gfd.pattern, g, opts, &mut |m| {
        if match_satisfies(&gfd.dep, g, m) {
            Flow::Continue
        } else {
            f(m)
        }
    });
    matches!(outcome, gfd_match::api::EnumOutcome::Complete)
}

/// The sequential algorithm `detVio` (§5.1): computes `Vio(Σ, G)` with
/// a single processor by full match enumeration per rule, sharing
/// simulation work across isomorphic rule patterns through a
/// call-local [`ClassRegistry`].
pub fn detect_violations(sigma: &GfdSet, g: &Graph) -> Vec<Violation> {
    detect_violations_shared(sigma, g, &ClassRegistry::new())
}

/// `detVio` borrowing a caller-owned [`ClassRegistry`] shared across
/// the whole Σ (and, if the caller wishes, with workload estimation):
/// every rule pattern registers into it, and a **connected** rule
/// whose isomorphism class is shared by ≥ 2 rules *of this Σ* (class
/// occurrences are counted over this call's own registrations, so a
/// warm registry carried across calls never distorts the gate)
/// enumerates through the class's candidate space — simulated once,
/// transported to the twins — instead of re-deriving its own filter.
/// Singleton classes and disconnected patterns keep the per-call
/// [`for_each_match`] path (with its size-gated filter policy), so
/// sharing costs at most one simulation per multi-member class,
/// amortized over that class's rules; unqueried classes cost only
/// their canonical form.
pub fn detect_violations_shared(
    sigma: &GfdSet,
    g: &Graph,
    registry: &ClassRegistry,
) -> Vec<Violation> {
    detect_violations_with(sigma, g, registry, &mut DetScratch::default())
}

/// Caller-owned reusable state for repeated `detVio` runs: the match
/// engine's [`MatchScratch`] plus the per-call registration
/// bookkeeping. Keep one alive — next to the shared [`ClassRegistry`]
/// — across detection iterations and the steady state is
/// allocation-free up to the violations output itself.
#[derive(Default)]
pub struct DetScratch {
    matching: MatchScratch,
    handles: Vec<SpaceHandle>,
    rules_in_class: FxHashMap<usize, usize>,
}

/// [`detect_violations_shared`] with caller-owned scratch. Shared
/// connected rules additionally pull the class's cached
/// decomposition plan from the registry
/// ([`ClassRegistry::space_and_plan`]), so cyclic patterns run the
/// worst-case-optimal executor without rebuilding the plan per call.
pub fn detect_violations_with(
    sigma: &GfdSet,
    g: &Graph,
    registry: &ClassRegistry,
    scratch: &mut DetScratch,
) -> Vec<Violation> {
    scratch.handles.clear();
    scratch
        .handles
        .extend(sigma.iter().map(|gfd| registry.register(&gfd.pattern)));
    // How many rules of THIS Σ land in each class (identical patterns
    // share a handle, so count rule registrations, not handles).
    scratch.rules_in_class.clear();
    for &h in &scratch.handles {
        *scratch
            .rules_in_class
            .entry(registry.class_of(h))
            .or_insert(0) += 1;
    }
    let mut out = Vec::new();
    for (i, gfd) in sigma.iter().enumerate() {
        if gfd.dep.y.is_empty() {
            continue; // `X → ∅` holds for every match
        }
        let opts = MatchOptions::unrestricted();
        let ncomp = connected_components(&gfd.pattern).len();
        let shared =
            ncomp == 1 && scratch.rules_in_class[&registry.class_of(scratch.handles[i])] >= 2;
        // Disconnected rule with a cross-component X literal: joined on
        // the literal's attribute values instead of enumerating every
        // disjoint pair. (Gated on the component count computed above,
        // so connected rules never pay for a decompose.)
        if ncomp == 2 && detect_disconnected_indexed(gfd, g, i, &mut out) {
            continue;
        }
        let mut visit = |m: &[NodeId]| {
            if !match_satisfies(&gfd.dep, g, m) {
                out.push(Violation {
                    rule: i,
                    mapping: Match(m.to_vec()),
                });
            }
            Flow::Continue
        };
        if shared {
            let (cs, plan) = registry.space_and_plan(scratch.handles[i], g);
            // FAQ-style skip for all-constant-`Y` rules: if, per the
            // class's factorized marginals, every *represented*
            // binding already satisfies `Y`, no match violates `ϕ` —
            // the represented set is a superset of the match set.
            // Variable elimination in place of enumeration.
            if const_y_satisfied_everywhere(&gfd.dep, g, &cs, registry, scratch.handles[i]) {
                continue;
            }
            for_each_match_planned(
                &gfd.pattern,
                g,
                &opts,
                &cs,
                &plan,
                &mut scratch.matching,
                &mut visit,
            );
        } else {
            for_each_match_with(&gfd.pattern, g, &opts, &mut scratch.matching, &mut visit);
        }
    }
    out
}

/// The factorized aggregate fast path for `detVio`: when every `Y`
/// literal is a constant `v.A = c`, "no violation" is a per-variable
/// aggregate question, answered from the class's cached factorization
/// without enumerating a single match. For each literal, the marginal
/// mass of candidates of `v` that carry the constant is summed; if it
/// equals the represented total for *every* literal, every represented
/// binding satisfies `Y` — and since the represented set is a superset
/// of the match set (bag-local injectivity only relaxes it), no match
/// can violate `ϕ`, whatever `X` says. Sound even when the counts are
/// inexact: over-counting preserves `Σ_n marginal(v, n) = raw_count`,
/// which is all the comparison uses. Declines (returns `false`) when
/// the factorizer declined the pattern, marginals are absent, or
/// counting saturated — saturation breaks the sum identity.
pub(crate) fn const_y_satisfied_everywhere(
    dep: &Dependency,
    g: &Graph,
    cs: &CandidateSpace,
    registry: &ClassRegistry,
    h: SpaceHandle,
) -> bool {
    if dep.y.is_empty() || !dep.y.iter().all(|l| matches!(l, Literal::Const { .. })) {
        return false;
    }
    let Some(fact) = registry.factorization(h, g) else {
        return false;
    };
    if fact.overflowed() || !fact.has_marginals() {
        return false;
    }
    let total = fact.raw_count();
    dep.y.iter().all(|l| {
        let Literal::Const { var, attr, value } = l else {
            return false;
        };
        let mut sat = 0u64;
        for &node in cs.of(*var) {
            if g.attr(node, *attr) == Some(value) {
                sat += fact.marginal(*var, node).unwrap_or(0);
            }
        }
        sat == total
    })
}

/// Value-indexed join fast path for `detVio` on **disconnected**
/// two-component rules: when `X` carries a cross-component literal
/// `x.A = y.B`, a match can only violate `ϕ` if `X` holds — so instead
/// of forming every disjoint pair of component matches (quadratic) and
/// filtering, the two flat match tables are joined *on that literal*:
/// the smaller side is indexed by attribute value, the larger side
/// probes, and rows whose attribute is missing are skipped outright
/// (`X` fails ⇒ no violation). This is the factorized-evaluation move
/// of the FDB/FAQ line of work applied to `Vio(Σ, G)`: cost is
/// output-proportional in value-agreeing pairs rather than in all
/// pairs. Returns `false` (and emits nothing) when the rule lacks the
/// shape, leaving the generic path to handle it.
fn detect_disconnected_indexed(
    gfd: &Gfd,
    g: &Graph,
    rule: usize,
    out: &mut Vec<Violation>,
) -> bool {
    let parts = decompose(&gfd.pattern);
    if parts.len() != 2 {
        return false;
    }
    // A cross-component equality literal in X to join on.
    let comp_of = |v: VarId| parts[0].1.contains(&v);
    let Some((jx, ja, jy, jb)) = gfd.dep.x.iter().find_map(|l| match *l {
        Literal::Vars { x, a, y, b } if comp_of(x) != comp_of(y) => Some((x, a, y, b)),
        _ => None,
    }) else {
        return false;
    };
    // Orient so that (vx, va) lives in component 0.
    let ((vx, va), (vy, vb)) = if comp_of(jx) {
        ((jx, ja), (jy, jb))
    } else {
        ((jy, jb), (jx, ja))
    };

    // Enumerate both components into flat tables.
    let mut tables = Vec::with_capacity(2);
    for (cq, _) in &parts {
        let mut t = MatchTable::new(cq.node_count());
        ComponentSearch::new(cq, g).collect_into(&mut t);
        if t.is_empty() {
            return true; // no match of this component → none of Q
        }
        tables.push(t);
    }
    let local = |part: usize, v: VarId| {
        parts[part]
            .1
            .iter()
            .position(|&ov| ov == v)
            .expect("literal var is in its component")
    };
    let (c0, c1) = (local(0, vx), local(1, vy));

    // Index the smaller side by its join-attribute value; probe with
    // the larger. Rows missing the attribute never satisfy X.
    let (build, probe, bcol, pcol, battr, pattr, build_is_0) = if tables[0].len() <= tables[1].len()
    {
        (&tables[0], &tables[1], c0, c1, va, vb, true)
    } else {
        (&tables[1], &tables[0], c1, c0, vb, va, false)
    };
    let mut index: FxHashMap<&gfd_graph::Value, Vec<u32>> = FxHashMap::default();
    for (r, row) in build.iter().enumerate() {
        if let Some(v) = g.attr(row[bcol], battr) {
            index.entry(v).or_default().push(r as u32);
        }
    }
    let vars0 = &parts[0].1;
    let vars1 = &parts[1].1;
    let mut assignment = vec![NodeId(u32::MAX); gfd.pattern.node_count()];
    for prow in probe.iter() {
        let Some(v) = g.attr(prow[pcol], pattr) else {
            continue;
        };
        let Some(partners) = index.get(v) else {
            continue;
        };
        'pair: for &br in partners {
            let brow = build.row(br as usize);
            let (row0, row1) = if build_is_0 {
                (brow, prow)
            } else {
                (prow, brow)
            };
            // Disjointness (h is injective across components).
            for &n in row0 {
                if row1.contains(&n) {
                    continue 'pair;
                }
            }
            for (j, &n) in row0.iter().enumerate() {
                assignment[vars0[j].index()] = n;
            }
            for (j, &n) in row1.iter().enumerate() {
                assignment[vars1[j].index()] = n;
            }
            if !match_satisfies(&gfd.dep, g, &assignment) {
                out.push(Violation {
                    rule,
                    mapping: Match(assignment.clone()),
                });
            }
        }
    }
    true
}

/// Budgeted `detVio`; the boolean is `true` when the enumeration was
/// exhaustive (no budget cut-off).
pub fn detect_violations_budgeted(
    sigma: &GfdSet,
    g: &Graph,
    budget: SearchBudget,
) -> (Vec<Violation>, bool) {
    let mut out = Vec::new();
    let mut complete = true;
    for (i, gfd) in sigma.iter().enumerate() {
        let opts = MatchOptions::unrestricted().with_budget(budget);
        let c = for_each_violation(gfd, g, &opts, &mut |m| {
            out.push(Violation {
                rule: i,
                mapping: Match(m.to_vec()),
            });
            Flow::Continue
        });
        complete &= c;
    }
    (out, complete)
}

/// The validation problem: does `G ⊨ Σ`? Early-exits on the first
/// violation.
pub fn graph_satisfies(sigma: &GfdSet, g: &Graph) -> bool {
    for gfd in sigma {
        let mut violated = false;
        for_each_violation(gfd, g, &MatchOptions::unrestricted(), &mut |_| {
            violated = true;
            Flow::Break
        });
        if violated {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use gfd_graph::{Value, Vocab};
    use gfd_pattern::PatternBuilder;
    use std::sync::Arc;

    /// Builds G1 of Fig. 1 plus ϕ1 of Example 5 (flights with same id
    /// must share destination).
    fn flights_fixture() -> (Graph, GfdSet) {
        let mut b = gfd_graph::GraphBuilder::with_fresh_vocab();
        let mut mk = |id: &str, from: &str, to: &str| {
            let f = b.add_node_labeled("flight");
            let idn = b.add_node_labeled("id");
            let fr = b.add_node_labeled("city");
            let tn = b.add_node_labeled("city");
            let dp = b.add_node_labeled("time");
            let ar = b.add_node_labeled("time");
            b.add_edge_labeled(f, idn, "number");
            b.add_edge_labeled(f, fr, "from");
            b.add_edge_labeled(f, tn, "to");
            b.add_edge_labeled(f, dp, "depart");
            b.add_edge_labeled(f, ar, "arrive");
            for (n, v) in [
                (idn, id),
                (fr, from),
                (tn, to),
                (dp, "14:50"),
                (ar, "22:35"),
            ] {
                b.set_attr_named(n, "val", Value::str(v));
            }
        };
        mk("DL1", "Paris", "NYC");
        mk("DL1", "Paris", "Singapore");
        let g = b.freeze();
        let sigma = GfdSet::new(vec![phi1(g.vocab().clone())]);
        (g, sigma)
    }

    /// ϕ1 = (Q1[x,…,y,…], x1.val = y1.val → x2.val = y2.val ∧ x3.val = y3.val).
    fn phi1(vocab: Arc<Vocab>) -> Gfd {
        let mut b = PatternBuilder::new(vocab.clone());
        let mut sides = Vec::new();
        for side in ["x", "y"] {
            let hub = b.node(side, "flight");
            let mut leaves = Vec::new();
            for (i, (leaf, edge)) in [
                ("id", "number"),
                ("city", "from"),
                ("city", "to"),
                ("time", "depart"),
                ("time", "arrive"),
            ]
            .iter()
            .enumerate()
            {
                let v = b.node(&format!("{side}{}", i + 1), leaf);
                b.edge(hub, v, edge);
            }
            let _ = hub;
            for i in 1..=5 {
                leaves.push(format!("{side}{i}"));
            }
            sides.push(leaves);
        }
        let q = b.build();
        let val = vocab.intern("val");
        let var = |n: &str| q.var_by_name(n).unwrap();
        let dep = Dependency::new(
            vec![Literal::var_eq(var("x1"), val, var("y1"), val)],
            vec![
                Literal::var_eq(var("x2"), val, var("y2"), val),
                Literal::var_eq(var("x3"), val, var("y3"), val),
            ],
        );
        Gfd::new("phi1-flight", q, dep)
    }

    #[test]
    fn example6_g1_violates_phi1() {
        let (g, sigma) = flights_fixture();
        let vio = detect_violations(&sigma, &g);
        // Both orderings (x↦flight1,y↦flight2) and the swap violate.
        assert_eq!(vio.len(), 2);
        assert!(!graph_satisfies(&sigma, &g));
    }

    #[test]
    fn fixing_the_error_clears_violations() {
        let (g, sigma) = flights_fixture();
        // Make the second flight's destination NYC as well.
        let val = g.vocab().lookup("val").unwrap();
        let to_node = g
            .nodes()
            .find(|&n| g.attr(n, val) == Some(&Value::str("Singapore")))
            .unwrap();
        let g = g.edit(|b| b.set_attr(to_node, val, Value::str("NYC")));
        assert!(graph_satisfies(&sigma, &g));
        assert!(detect_violations(&sigma, &g).is_empty());
    }

    #[test]
    fn missing_attribute_in_x_is_trivial_satisfaction() {
        let (g, sigma) = flights_fixture();
        // Remove the id value from one flight: X no longer holds for
        // any match, so ϕ1 is trivially satisfied.
        let val = g.vocab().lookup("val").unwrap();
        let id_node = g
            .nodes()
            .find(|&n| g.attr(n, val) == Some(&Value::str("DL1")))
            .unwrap();
        let g = g.edit(|b| {
            b.remove_attr(id_node, val);
        });
        assert!(graph_satisfies(&sigma, &g));
    }

    #[test]
    fn missing_attribute_in_y_is_a_violation() {
        // Example 6 logic: Y requires the attribute to exist.
        let vocab = Vocab::shared();
        let mut gb = gfd_graph::GraphBuilder::new(vocab.clone());
        let n = gb.add_node_labeled("item");
        let _ = n;
        let g = gb.freeze();
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("x", "item");
        let q = b.build();
        let a = vocab.intern("A");
        // ∅ → x.A = x.A: forces attribute A to exist (§3, type info).
        let gfd = Gfd::new(
            "must-have-A",
            q,
            Dependency::always(vec![Literal::var_eq(
                gfd_pattern::VarId(0),
                a,
                gfd_pattern::VarId(0),
                a,
            )]),
        );
        let sigma = GfdSet::new(vec![gfd]);
        assert!(!graph_satisfies(&sigma, &g));
        // Give it the attribute: satisfied.
        let mut gb2 = gfd_graph::GraphBuilder::new(vocab);
        let n2 = gb2.add_node_labeled("item");
        gb2.set_attr_named(n2, "A", Value::Int(1));
        assert!(graph_satisfies(&sigma, &gb2.freeze()));
    }

    #[test]
    fn example6b_no_match_means_satisfied() {
        // G3 ⊨ ϕ2: the single-capital country has no match of Q2.
        let vocab = Vocab::shared();
        let mut gb = gfd_graph::GraphBuilder::new(vocab.clone());
        let country = gb.add_node_labeled("country");
        let city = gb.add_node_labeled("city");
        gb.add_edge_labeled(country, city, "capital");
        let g = gb.freeze();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "country");
        let y = b.node("y", "city");
        let z = b.node("z", "city");
        b.edge(x, y, "capital");
        b.edge(x, z, "capital");
        let q2 = b.build();
        let val = vocab.intern("val");
        let phi2 = Gfd::new(
            "capital",
            q2,
            Dependency::always(vec![Literal::var_eq(y, val, z, val)]),
        );
        assert!(graph_satisfies(&GfdSet::new(vec![phi2]), &g));
    }

    #[test]
    fn denial_style_gfd_flags_every_match() {
        // GFD 1 of Fig. 7: ∅ → x.val = c ∧ y.val = d with c ≠ d chosen
        // unsatisfiable: every match of the child/parent cycle violates.
        let vocab = Vocab::shared();
        let mut gb = gfd_graph::GraphBuilder::new(vocab.clone());
        let p1 = gb.add_node_labeled("person");
        let p2 = gb.add_node_labeled("person");
        gb.add_edge_labeled(p1, p2, "hasChild");
        gb.add_edge_labeled(p2, p1, "hasChild");
        gb.set_attr_named(p1, "val", Value::str("Alice"));
        gb.set_attr_named(p2, "val", Value::str("Bob"));
        let g = gb.freeze();

        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node("x", "person");
        let y = b.node("y", "person");
        b.edge(x, y, "hasChild");
        b.edge(y, x, "hasChild");
        let q10 = b.build();
        let val = vocab.intern("val");
        let gfd1 = Gfd::new(
            "no-child-parent-cycle",
            q10,
            Dependency::always(vec![
                Literal::const_eq(x, val, "__impossible_c"),
                Literal::const_eq(y, val, "__impossible_d"),
            ]),
        );
        let vio = detect_violations(&GfdSet::new(vec![gfd1]), &g);
        assert_eq!(vio.len(), 2); // both orientations of the cycle
    }

    /// The value-indexed disconnected join must equal the generic
    /// pair-enumeration path on random attribute worlds — including
    /// rows with missing attributes (X fails ⇒ skipped) and equal
    /// values spread across many nodes.
    #[test]
    fn indexed_disconnected_join_equals_generic_enumeration() {
        use gfd_util::{prop::check, Rng};
        check("indexed join ≡ generic detVio", 60, |rng: &mut Rng| {
            let vocab = Vocab::shared();
            let mut b = gfd_graph::GraphBuilder::new(vocab.clone());
            let n = rng.gen_range(4..10);
            for _ in 0..n {
                let h = b.add_node_labeled("hub");
                let l = b.add_node_labeled("leaf");
                b.add_edge_labeled(h, l, "owns");
                // Sparse attributes: some nodes miss them entirely.
                if rng.gen_bool(0.8) {
                    b.set_attr_named(h, "val", Value::Int(rng.gen_range(0..3) as i64));
                }
                if rng.gen_bool(0.8) {
                    b.set_attr_named(l, "val", Value::Int(rng.gen_range(0..3) as i64));
                }
            }
            let g = b.freeze();
            let val = vocab.intern("val");
            // Two disconnected hub→leaf stars; X joins the leaves'
            // values across components, Y constrains the hubs.
            let mut pb = PatternBuilder::new(vocab.clone());
            let x = pb.node("x", "hub");
            let xl = pb.node("xl", "leaf");
            pb.edge(x, xl, "owns");
            let y = pb.node("y", "hub");
            let yl = pb.node("yl", "leaf");
            pb.edge(y, yl, "owns");
            let gfd = Gfd::new(
                "pair",
                pb.build(),
                Dependency::new(
                    vec![Literal::var_eq(xl, val, yl, val)],
                    vec![Literal::var_eq(x, val, y, val)],
                ),
            );
            let sigma = GfdSet::new(vec![gfd.clone()]);

            let mut fast = detect_violations(&sigma, &g);
            // Generic oracle: unbudgeted full pair enumeration.
            let mut slow = Vec::new();
            for_each_violation(&gfd, &g, &MatchOptions::unrestricted(), &mut |m| {
                slow.push(Violation {
                    rule: 0,
                    mapping: Match(m.to_vec()),
                });
                Flow::Continue
            });
            let key = |v: &Violation| (v.rule, v.mapping.nodes().to_vec());
            fast.sort_by_key(key);
            slow.sort_by_key(key);
            if fast != slow {
                return Err(format!("{} indexed vs {} generic", fast.len(), slow.len()));
            }
            Ok(())
        });
    }

    /// Two rules sharing a cyclic (triangle) pattern class must route
    /// through the registry's cached plan (WCOJ executor) and agree
    /// with the fresh per-rule path — and a warm registry + scratch
    /// must keep agreeing across repeated runs.
    #[test]
    fn shared_cyclic_rules_use_cached_plan_and_agree() {
        let vocab = Vocab::shared();
        let mut gb = gfd_graph::GraphBuilder::new(vocab.clone());
        // Two directed triangles over "person" plus a dangling edge.
        let ps: Vec<_> = (0..7).map(|_| gb.add_node_labeled("person")).collect();
        for tri in [[0, 1, 2], [3, 4, 5]] {
            for k in 0..3 {
                gb.add_edge_labeled(ps[tri[k]], ps[tri[(k + 1) % 3]], "knows");
            }
        }
        gb.add_edge_labeled(ps[6], ps[0], "knows");
        for (i, &p) in ps.iter().enumerate() {
            gb.set_attr_named(p, "val", Value::Int(i as i64));
        }
        let g = gb.freeze();

        let triangle = |names: [&str; 3]| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(names[0], "person");
            let y = b.node(names[1], "person");
            let z = b.node(names[2], "person");
            b.edge(x, y, "knows");
            b.edge(y, z, "knows");
            b.edge(z, x, "knows");
            b.build()
        };
        let val = vocab.intern("val");
        let mk = |name: &str, q: gfd_pattern::Pattern| {
            Gfd::new(
                name,
                q,
                Dependency::always(vec![Literal::const_eq(VarId(0), val, "__never")]),
            )
        };
        let sigma = GfdSet::new(vec![
            mk("phi-a", triangle(["x", "y", "z"])),
            mk("phi-b", triangle(["p", "q", "r"])),
        ]);

        // Baseline: fresh registries, per-rule generic path.
        let mut want = detect_violations(&sigma, &g);
        // Every triangle rotation violates, for both rules.
        assert_eq!(want.len(), 12);

        let reg = ClassRegistry::new();
        let mut scratch = DetScratch::default();
        for _ in 0..3 {
            let mut got = detect_violations_with(&sigma, &g, &reg, &mut scratch);
            let key = |v: &Violation| (v.rule, v.mapping.nodes().to_vec());
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want);
        }
        assert_eq!(reg.class_count(), 1, "both rules share one class");
        assert_eq!(reg.simulations(), 1);
        assert_eq!(reg.plans_built(), 1);
    }

    /// The factorized aggregate fast path: two shared triangle rules
    /// whose constant `Y` holds for every node — detection must
    /// conclude "no violations" from the class's marginals alone,
    /// building one factorization and never enumerating. The sibling
    /// rule with an unsatisfiable constant (see
    /// `shared_cyclic_rules_use_cached_plan_and_agree`) pins the other
    /// direction: a failing aggregate must fall through to
    /// enumeration.
    #[test]
    fn shared_const_y_rules_skip_enumeration_via_marginals() {
        let vocab = Vocab::shared();
        let mut gb = gfd_graph::GraphBuilder::new(vocab.clone());
        let ps: Vec<_> = (0..6).map(|_| gb.add_node_labeled("person")).collect();
        for tri in [[0, 1, 2], [3, 4, 5]] {
            for k in 0..3 {
                gb.add_edge_labeled(ps[tri[k]], ps[tri[(k + 1) % 3]], "knows");
            }
        }
        for &p in &ps {
            gb.set_attr_named(p, "kind", Value::str("human"));
        }
        let g = gb.freeze();

        let triangle = |names: [&str; 3]| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(names[0], "person");
            let y = b.node(names[1], "person");
            let z = b.node(names[2], "person");
            b.edge(x, y, "knows");
            b.edge(y, z, "knows");
            b.edge(z, x, "knows");
            b.build()
        };
        let kind = vocab.intern("kind");
        let mk = |name: &str, q: gfd_pattern::Pattern, v: VarId| {
            Gfd::new(
                name,
                q,
                Dependency::always(vec![Literal::const_eq(v, kind, "human")]),
            )
        };
        let sigma = GfdSet::new(vec![
            mk("phi-a", triangle(["x", "y", "z"]), VarId(0)),
            mk("phi-b", triangle(["p", "q", "r"]), VarId(2)),
        ]);

        let reg = ClassRegistry::new();
        let mut scratch = DetScratch::default();
        for _ in 0..3 {
            let got = detect_violations_with(&sigma, &g, &reg, &mut scratch);
            assert!(got.is_empty(), "every node satisfies kind = human");
        }
        assert_eq!(reg.class_count(), 1, "both rules share one class");
        assert_eq!(
            reg.factorizations_built(),
            1,
            "one d-representation answers both rules across all runs"
        );
    }

    #[test]
    fn budgeted_detection_reports_incompleteness() {
        let (g, sigma) = flights_fixture();
        let (vio, complete) = detect_violations_budgeted(
            &sigma,
            &g,
            SearchBudget {
                max_matches: Some(1),
                max_steps: None,
            },
        );
        assert!(vio.len() <= 1);
        assert!(!complete);
    }
}
