//! The satisfiability problem for GFDs (§4.1; coNP-complete, Thm. 1).
//!
//! `Σ` is satisfiable iff it has a *model*: a graph `G ⊨ Σ` containing
//! a match of every pattern in `Σ`. Lemma 3 characterizes this via
//! conflicts of embedded GFDs; we implement the characterization as a
//! **canonical-model chase**:
//!
//! 1. materialize `G₀`, the disjoint union of all patterns of `Σ`
//!    (wildcard nodes/edges get fresh private labels, so they admit
//!    matches without accidentally enabling others);
//! 2. enumerate every match of every `ϕ ∈ Σ` in `G₀` — components of a
//!    pattern may map into *different* pattern copies, which is exactly
//!    the paper's interaction of GFDs "defined with different graph
//!    patterns" (Example 7);
//! 3. run the `enforced` fixpoint (module [`crate::closure`]) over the
//!    resulting ground dependencies.
//!
//! A conflict (one node attribute forced to two distinct constants)
//! transfers into *any* prospective model — every model contains a
//! match of each pattern, and every `G₀`-match factors through those —
//! so a conflict proves unsatisfiability. Conversely, a conflict-free
//! chase materializes attribute values (class constants, fresh values
//! for unconstrained classes) and yields an explicit model, which the
//! checker returns and which `G₀ ⊨ Σ` tests can verify independently.
//!
//! The syntactic shortcut cases of Corollary 4 (variable-only `Σ`, no
//! `∅ → Y` rules) are detected first; tree-pattern classification (the
//! PTIME case) is exposed via [`tractable_case`].

use std::collections::HashMap;

use gfd_graph::{Graph, GraphBuilder, NodeId, Value};
use gfd_match::{for_each_match, types::Flow, MatchOptions, SearchBudget};
use gfd_pattern::{analysis, PatLabel};

use crate::closure::{chase, ground_dep, GroundDep};
use crate::gfd::GfdSet;

/// Result of a satisfiability check.
#[derive(Debug)]
pub enum SatOutcome {
    /// Satisfiable, with an explicit model (a graph that satisfies `Σ`
    /// and matches every pattern).
    Satisfiable(Graph),
    /// Unsatisfiable, with the two conflicting constants forced onto
    /// one node attribute.
    Unsatisfiable {
        /// First conflicting constant.
        left: Value,
        /// Second conflicting constant.
        right: Value,
    },
    /// The match-enumeration budget ran out before an answer was found
    /// (only with [`check_satisfiability_budgeted`]).
    Unknown,
}

impl SatOutcome {
    /// True for the satisfiable outcome.
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, SatOutcome::Satisfiable(_))
    }
}

/// Which tractable sub-case (Corollary 4) a rule set falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TractableCase {
    /// All GFDs are variable GFDs — always satisfiable.
    AllVariable,
    /// No GFD has the form `(Q, ∅ → Y)` — always satisfiable.
    NoEmptyLhs,
    /// All patterns are trees — satisfiability decidable in PTIME.
    AllTreePatterns,
}

/// Classifies `Σ` into a tractable case of Corollary 4, if any.
pub fn tractable_case(sigma: &GfdSet) -> Option<TractableCase> {
    if sigma.iter().all(|g| g.is_variable()) {
        return Some(TractableCase::AllVariable);
    }
    if sigma.iter().all(|g| !g.has_empty_lhs()) {
        return Some(TractableCase::NoEmptyLhs);
    }
    if sigma.iter().all(|g| analysis::is_tree(&g.pattern)) {
        return Some(TractableCase::AllTreePatterns);
    }
    None
}

/// Builds the canonical graph `G₀`: one copy of each pattern of `Σ`.
/// Returns the frozen graph and, per rule, the node of each pattern
/// variable.
pub fn canonical_graph(sigma: &GfdSet) -> (Graph, Vec<Vec<NodeId>>) {
    let vocab = sigma
        .iter()
        .next()
        .map(|g| g.pattern.vocab().clone())
        .unwrap_or_else(gfd_graph::Vocab::shared);
    let mut g0 = GraphBuilder::new(vocab.clone());
    let mut images = Vec::with_capacity(sigma.len());
    let mut fresh = 0usize;
    for gfd in sigma {
        let q = &gfd.pattern;
        let mut map = HashMap::new();
        for v in q.vars() {
            let label = match q.label(v) {
                PatLabel::Sym(s) => s,
                PatLabel::Wildcard => {
                    fresh += 1;
                    vocab.intern(&format!("__wild_node_{fresh}"))
                }
            };
            map.insert(v, g0.add_node(label));
        }
        for e in q.edges() {
            let label = match e.label {
                PatLabel::Sym(s) => s,
                PatLabel::Wildcard => {
                    fresh += 1;
                    vocab.intern(&format!("__wild_edge_{fresh}"))
                }
            };
            g0.add_edge(map[&e.src], map[&e.dst], label);
        }
        images.push(q.vars().map(|v| map[&v]).collect());
    }
    (g0.freeze(), images)
}

/// Collects the ground dependencies of every match of every rule of
/// `Σ` in `graph`. Returns `None` if the budget was exhausted.
fn ground_deps_of_matches(
    sigma: &GfdSet,
    graph: &Graph,
    budget: SearchBudget,
) -> Option<Vec<GroundDep>> {
    let mut deps = Vec::new();
    for gfd in sigma {
        let opts = MatchOptions::unrestricted().with_budget(budget);
        let outcome = for_each_match(&gfd.pattern, graph, &opts, &mut |m| {
            let owners: Vec<u32> = m.iter().map(|n| n.0).collect();
            deps.push(ground_dep(&gfd.dep, &|v| owners[v.index()]));
            Flow::Continue
        });
        if !matches!(outcome, gfd_match::api::EnumOutcome::Complete) {
            return None;
        }
    }
    Some(deps)
}

/// Checks satisfiability with an explicit match-enumeration budget.
pub fn check_satisfiability_budgeted(sigma: &GfdSet, budget: SearchBudget) -> SatOutcome {
    if sigma.is_empty() {
        return SatOutcome::Satisfiable(GraphBuilder::with_fresh_vocab().freeze());
    }
    let (g0, _) = canonical_graph(sigma);
    let Some(deps) = ground_deps_of_matches(sigma, &g0, budget) else {
        return SatOutcome::Unknown;
    };
    let rel = chase(&deps, &[]);
    if rel.has_conflict() {
        let (l, r) = rel.conflict_witness().expect("conflict recorded");
        return SatOutcome::Unsatisfiable {
            left: l.clone(),
            right: r.clone(),
        };
    }
    // Materialize the model: every enforced attribute term gets its
    // class constant, or a fresh value private to its class. Fresh
    // values use a reserved prefix so they can never equal a rule
    // constant (rule constants with this prefix are rejected upstream
    // only by convention; collisions would merely make the model
    // satisfy more antecedents, which the chase already fired).
    let model = g0.edit(|b| {
        for (owner, attr, class, constant) in rel.attr_assignments() {
            let value = match constant {
                Some(v) => v,
                None => Value::Str(format!("__fresh_{:?}", class).into()),
            };
            b.set_attr(NodeId(owner), attr, value);
        }
    });
    SatOutcome::Satisfiable(model)
}

/// Default budget for reasoning chases: generous, but bounded so
/// adversarial rule sets cannot hang the analysis.
pub const DEFAULT_REASONING_BUDGET: SearchBudget = SearchBudget {
    max_matches: None,
    max_steps: Some(50_000_000),
};

/// The satisfiability check of Theorem 1 (with the default budget).
pub fn check_satisfiability(sigma: &GfdSet) -> SatOutcome {
    check_satisfiability_budgeted(sigma, DEFAULT_REASONING_BUDGET)
}

/// Convenience boolean form; treats budget exhaustion as "satisfiable
/// not disproven" = `true` is *not* assumed — it returns `false` only
/// on a definite conflict.
pub fn is_satisfiable(sigma: &GfdSet) -> bool {
    !matches!(
        check_satisfiability(sigma),
        SatOutcome::Unsatisfiable { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gfd::Gfd;
    use crate::literal::{Dependency, Literal};
    use crate::validate::graph_satisfies;
    use gfd_graph::Vocab;
    use gfd_pattern::{Pattern, PatternBuilder, VarId};
    use std::sync::Arc;

    fn q7(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        b.node("x", "tau");
        b.build()
    }

    fn q8(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        let z = b.node("z", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        b.build()
    }

    fn q9(vocab: Arc<Vocab>) -> Pattern {
        let mut b = PatternBuilder::new(vocab);
        let x = b.node("x", "tau");
        let y = b.node("y", "tau");
        let z = b.node("z", "tau");
        let w = b.node("w", "tau");
        b.edge(x, y, "l");
        b.edge(x, z, "l");
        b.edge(y, z, "l");
        b.edge(y, w, "l");
        b.edge(z, w, "l");
        b.build()
    }

    #[test]
    fn example7_same_pattern_conflict() {
        // ϕ7 = (Q7, ∅ → x.A = c), ϕ7' = (Q7, ∅ → x.A = d): unsatisfiable.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let phi7 = Gfd::new(
            "phi7",
            q7(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let phi7p = Gfd::new(
            "phi7p",
            q7(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "d")]),
        );
        let sigma = GfdSet::new(vec![phi7.clone(), phi7p]);
        assert!(!is_satisfiable(&sigma));

        // Each alone is satisfiable.
        assert!(is_satisfiable(&GfdSet::new(vec![phi7])));
    }

    #[test]
    fn example7_cross_pattern_conflict() {
        // ϕ8 = (Q8, ∅ → x.A = c), ϕ9 = (Q9, ∅ → x.A = d): Q8 embeds in
        // Q9 so any Q9 match carries both constraints — unsatisfiable.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let phi8 = Gfd::new(
            "phi8",
            q8(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let phi9 = Gfd::new(
            "phi9",
            q9(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "d")]),
        );
        assert!(is_satisfiable(&GfdSet::new(vec![phi8.clone()])));
        assert!(is_satisfiable(&GfdSet::new(vec![phi9.clone()])));
        assert!(!is_satisfiable(&GfdSet::new(vec![phi8, phi9])));
    }

    #[test]
    fn produced_model_satisfies_sigma() {
        // A satisfiable chain: x.A = c → x.B = d (plus ∅ → x.A = c).
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let b_attr = vocab.intern("B");
        let g1 = Gfd::new(
            "base",
            q7(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let g2 = Gfd::new(
            "step",
            q7(vocab.clone()),
            Dependency::new(
                vec![Literal::const_eq(VarId(0), a, "c")],
                vec![Literal::const_eq(VarId(0), b_attr, "d")],
            ),
        );
        let sigma = GfdSet::new(vec![g1, g2]);
        match check_satisfiability(&sigma) {
            SatOutcome::Satisfiable(model) => {
                assert!(graph_satisfies(&sigma, &model), "chase must emit a model");
                // The model's τ node carries both enforced attributes.
                let n = model.nodes().next().unwrap();
                assert_eq!(model.attr(n, a), Some(&Value::str("c")));
                assert_eq!(model.attr(n, b_attr), Some(&Value::str("d")));
            }
            other => panic!("expected satisfiable, got {other:?}"),
        }
    }

    #[test]
    fn variable_only_sets_are_satisfiable() {
        // Corollary 4, case 1.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let phi = Gfd::new(
            "var",
            q8(vocab.clone()),
            Dependency::always(vec![Literal::var_eq(VarId(0), a, VarId(1), a)]),
        );
        let sigma = GfdSet::new(vec![phi]);
        assert_eq!(tractable_case(&sigma), Some(TractableCase::AllVariable));
        assert!(is_satisfiable(&sigma));
    }

    #[test]
    fn no_empty_lhs_sets_are_satisfiable() {
        // Corollary 4, case 2: conflicting consequents guarded by
        // non-empty antecedents never fire in the no-attribute model.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let g1 = Gfd::new(
            "guarded-c",
            q7(vocab.clone()),
            Dependency::new(
                vec![Literal::const_eq(VarId(0), a, "trigger")],
                vec![Literal::const_eq(VarId(0), a, "c")],
            ),
        );
        let g2 = Gfd::new(
            "guarded-d",
            q7(vocab.clone()),
            Dependency::new(
                vec![Literal::const_eq(VarId(0), a, "trigger")],
                vec![Literal::const_eq(VarId(0), a, "d")],
            ),
        );
        let sigma = GfdSet::new(vec![g1, g2]);
        assert_eq!(tractable_case(&sigma), Some(TractableCase::NoEmptyLhs));
        assert!(is_satisfiable(&sigma));
    }

    #[test]
    fn guarded_chain_conflict_detected() {
        // ∅ → x.A = t;  x.A = t → x.B = c;  x.A = t → x.B = d: the
        // guards fire, so the consequents collide.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let b_attr = vocab.intern("B");
        let base = Gfd::new(
            "base",
            q7(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "t")]),
        );
        let c1 = Gfd::new(
            "c1",
            q7(vocab.clone()),
            Dependency::new(
                vec![Literal::const_eq(VarId(0), a, "t")],
                vec![Literal::const_eq(VarId(0), b_attr, "c")],
            ),
        );
        let c2 = Gfd::new(
            "c2",
            q7(vocab.clone()),
            Dependency::new(
                vec![Literal::const_eq(VarId(0), a, "t")],
                vec![Literal::const_eq(VarId(0), b_attr, "d")],
            ),
        );
        let out = check_satisfiability(&GfdSet::new(vec![base, c1, c2]));
        match out {
            SatOutcome::Unsatisfiable { left, right } => assert_ne!(left, right),
            other => panic!("expected unsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn empty_sigma_is_satisfiable() {
        assert!(is_satisfiable(&GfdSet::default()));
    }

    #[test]
    fn disconnected_pattern_components_interact() {
        // ϕa on pattern {two isolated τ nodes}: ∅ → x.A = y.A.
        // ϕb on single τ node: ∅ → x.A = c.
        // ϕc on single τ' node: nothing. Canonical model: the match of
        // ϕa's two components can land on the two τ copies, chaining
        // them to the same class as c — still satisfiable.
        let vocab = Vocab::shared();
        let a = vocab.intern("A");
        let mut b = PatternBuilder::new(vocab.clone());
        b.node("x", "tau");
        b.node("y", "tau");
        let two = b.build();
        let phi_a = Gfd::new(
            "pair",
            two,
            Dependency::always(vec![Literal::var_eq(VarId(0), a, VarId(1), a)]),
        );
        let phi_b = Gfd::new(
            "const-c",
            q7(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "c")]),
        );
        let sigma = GfdSet::new(vec![phi_a.clone(), phi_b.clone()]);
        assert!(is_satisfiable(&sigma));

        // Now add a second constant rule with d ≠ c on the same τ
        // label; the pair rule forces all τ nodes' A equal, and the two
        // constant rules disagree → unsatisfiable.
        let phi_d = Gfd::new(
            "const-d",
            q7(vocab.clone()),
            Dependency::always(vec![Literal::const_eq(VarId(0), a, "d")]),
        );
        let sigma2 = GfdSet::new(vec![phi_a, phi_b, phi_d]);
        assert!(!is_satisfiable(&sigma2));
    }
}
