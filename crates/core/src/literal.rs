//! Literals and dependencies `X → Y` (§3).
//!
//! A literal of `x̄` is `x.A = c` (a *constant* literal) or
//! `x.A = y.B` (a *variable* literal), where `A`, `B` are attribute
//! names not mentioned in the pattern and `c` is a constant.

use gfd_graph::{Sym, Value};
use gfd_pattern::VarId;

/// A single equality atom over pattern variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Literal {
    /// `x.A = c`.
    Const {
        /// The variable `x`.
        var: VarId,
        /// The attribute `A`.
        attr: Sym,
        /// The constant `c`.
        value: Value,
    },
    /// `x.A = y.B`.
    Vars {
        /// The variable `x`.
        x: VarId,
        /// The attribute `A`.
        a: Sym,
        /// The variable `y`.
        y: VarId,
        /// The attribute `B`.
        b: Sym,
    },
}

impl Literal {
    /// Builds `x.A = c`.
    pub fn const_eq(var: VarId, attr: Sym, value: impl Into<Value>) -> Self {
        Literal::Const {
            var,
            attr,
            value: value.into(),
        }
    }

    /// Builds `x.A = y.B`.
    pub fn var_eq(x: VarId, a: Sym, y: VarId, b: Sym) -> Self {
        Literal::Vars { x, a, y, b }
    }

    /// True for `x.A = c`.
    pub fn is_constant(&self) -> bool {
        matches!(self, Literal::Const { .. })
    }

    /// True for `x.A = y.B`.
    pub fn is_variable(&self) -> bool {
        matches!(self, Literal::Vars { .. })
    }

    /// True for the tautology `x.A = x.A`. (Note that even a tautology
    /// carries content under GFD semantics when it appears in `Y`: it
    /// forces attribute `A` to *exist* on `h(x)`, the paper's "GFDs can
    /// specify certain type information".)
    pub fn is_tautology(&self) -> bool {
        matches!(self, Literal::Vars { x, a, y, b } if x == y && a == b)
    }

    /// The variables mentioned by the literal.
    pub fn vars(&self) -> Vec<VarId> {
        match self {
            Literal::Const { var, .. } => vec![*var],
            Literal::Vars { x, y, .. } => {
                if x == y {
                    vec![*x]
                } else {
                    vec![*x, *y]
                }
            }
        }
    }

    /// The largest variable index mentioned (for arity validation).
    pub fn max_var(&self) -> VarId {
        match self {
            Literal::Const { var, .. } => *var,
            Literal::Vars { x, y, .. } => (*x).max(*y),
        }
    }

    /// Applies a variable substitution (`map[old] = new`), e.g. along a
    /// pattern embedding — the `f(X')` of embedded GFDs (§4.1).
    pub fn substitute(&self, map: &[VarId]) -> Literal {
        match self {
            Literal::Const { var, attr, value } => Literal::Const {
                var: map[var.index()],
                attr: *attr,
                value: value.clone(),
            },
            Literal::Vars { x, a, y, b } => Literal::Vars {
                x: map[x.index()],
                a: *a,
                y: map[y.index()],
                b: *b,
            },
        }
    }
}

/// An attribute dependency `X → Y`: two (possibly empty) sets of
/// literals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dependency {
    /// The antecedent `X`.
    pub x: Vec<Literal>,
    /// The consequent `Y`.
    pub y: Vec<Literal>,
}

impl Dependency {
    /// Builds `X → Y`.
    pub fn new(x: Vec<Literal>, y: Vec<Literal>) -> Self {
        Dependency { x, y }
    }

    /// `∅ → Y`.
    pub fn always(y: Vec<Literal>) -> Self {
        Dependency { x: Vec::new(), y }
    }

    /// All literals of both sides.
    pub fn literals(&self) -> impl Iterator<Item = &Literal> {
        self.x.iter().chain(self.y.iter())
    }

    /// `|X| + |Y|`, the dependency's size contribution to `|ϕ|`.
    pub fn size(&self) -> usize {
        self.x.len() + self.y.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> Sym {
        Sym(i)
    }

    #[test]
    fn constructors_and_kinds() {
        let c = Literal::const_eq(VarId(0), s(1), "Edi");
        assert!(c.is_constant() && !c.is_variable() && !c.is_tautology());
        let v = Literal::var_eq(VarId(0), s(1), VarId(2), s(1));
        assert!(v.is_variable() && !v.is_constant());
        let t = Literal::var_eq(VarId(0), s(1), VarId(0), s(1));
        assert!(t.is_tautology());
        // Same var, different attrs: not a tautology.
        let nt = Literal::var_eq(VarId(0), s(1), VarId(0), s(2));
        assert!(!nt.is_tautology());
    }

    #[test]
    fn vars_deduplicated() {
        let l = Literal::var_eq(VarId(3), s(0), VarId(3), s(1));
        assert_eq!(l.vars(), vec![VarId(3)]);
        let l = Literal::var_eq(VarId(3), s(0), VarId(5), s(1));
        assert_eq!(l.vars(), vec![VarId(3), VarId(5)]);
        assert_eq!(l.max_var(), VarId(5));
    }

    #[test]
    fn substitution_maps_variables() {
        let map = vec![VarId(10), VarId(11), VarId(12)];
        let l = Literal::var_eq(VarId(0), s(7), VarId(2), s(8));
        assert_eq!(
            l.substitute(&map),
            Literal::var_eq(VarId(10), s(7), VarId(12), s(8))
        );
        let c = Literal::const_eq(VarId(1), s(7), 44i64);
        assert_eq!(
            c.substitute(&map),
            Literal::const_eq(VarId(11), s(7), 44i64)
        );
    }

    #[test]
    fn dependency_accessors() {
        let d = Dependency::new(
            vec![Literal::const_eq(VarId(0), s(0), true)],
            vec![Literal::var_eq(VarId(0), s(1), VarId(1), s(1))],
        );
        assert_eq!(d.size(), 2);
        assert_eq!(d.literals().count(), 2);
        let e = Dependency::always(vec![]);
        assert_eq!(e.size(), 0);
    }
}
