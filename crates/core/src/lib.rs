//! # gfd-core — functional dependencies for graphs
//!
//! The primary contribution of *Functional Dependencies for Graphs*
//! (Fan, Wu & Xu, SIGMOD 2016), implemented in full:
//!
//! * **Syntax & semantics** (§3): a GFD `ϕ = (Q[x̄], X → Y)` pairs a
//!   topological constraint (graph pattern `Q`) with an attribute
//!   dependency between constant literals `x.A = c` and variable
//!   literals `x.A = y.B`. `G ⊨ ϕ` iff every match `h(x̄)` of `Q` in
//!   `G` with `h ⊨ X` also has `h ⊨ Y` (modules [`literal`], [`gfd`],
//!   [`validate`]).
//! * **Satisfiability** (§4.1, coNP-complete): whether a set `Σ` has a
//!   model containing a match of every pattern. Implemented via the
//!   conflict characterization of Lemma 3 as a canonical-model chase
//!   that also *produces* a model on success (module [`sat`]).
//! * **Implication** (§4.2, NP-complete): `Σ ⊨ ϕ` via deducibility of
//!   `Y` from `closure(Σ_Q, X)` over embedded GFDs, Lemma 7 (module
//!   [`implication`]).
//! * **Validation / error detection** (§5.1, coNP-complete): the set
//!   `Vio(Σ, G)` of violating matches, with the sequential reference
//!   algorithm `detVio` (module [`validate`]; the parallel-scalable
//!   algorithms live in the `gfd-parallel` crate).
//! * **Classical dependencies as special cases** (§3): encodings of
//!   relations, FDs and CFDs into graphs and GFDs (module [`cfd`]).
//!
//! The equality-atom reasoning shared by `enforced(Σ_Q)` and
//! `closure(Σ_Q, X)` is a union–find over attribute terms and
//! constants (module [`eqrel`]); derivation of embedded GFDs along
//! pattern embeddings lives in module [`closure`].

pub mod cfd;
pub mod closure;
pub mod eqrel;
pub mod gfd;
pub mod implication;
pub mod incremental;
pub mod literal;
pub mod sat;
pub mod validate;

pub use gfd::{Gfd, GfdSet};
pub use implication::implies;
pub use incremental::{IncrementalDetector, VioDiff};
pub use literal::{Dependency, Literal};
pub use sat::{check_satisfiability, is_satisfiable, SatOutcome};
pub use validate::{
    detect_violations, detect_violations_shared, detect_violations_with, graph_satisfies,
    DetScratch, Violation,
};
