//! Unique, self-cleaning temp directories for tests and benches.
//!
//! The durable-log tests and the `stream/durable_*` bench samples
//! create real files; without discipline, repeated local runs and CI
//! accumulate stale logs in the system temp dir. [`TempDir`] gives
//! every caller a unique directory (process id + monotonic counter +
//! wall-clock nanos) and removes it on drop — **except** when the
//! thread is panicking, in which case the directory is kept and its
//! path printed so a failing test's on-disk state can be inspected.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, io, thread, time};

/// Per-process counter so two `TempDir`s created in the same
/// nanosecond (parallel test threads) still get distinct paths.
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on
/// drop unless the thread is panicking (failure artifacts are kept).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<system-temp>/<prefix>-<pid>-<nanos>-<n>`, failing if
    /// the directory cannot be created.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        let nanos = time::SystemTime::now()
            .duration_since(time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = env::temp_dir().join(format!("{prefix}-{}-{nanos}-{n}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory itself.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory (not created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if thread::panicking() {
            // Keep the evidence: a failing durable-log test's on-disk
            // frames are exactly what the investigation needs.
            eprintln!("TempDir kept for inspection: {}", self.path.display());
            return;
        }
        // Best-effort: a failed removal must not turn a passing test
        // into a failing one.
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_paths_and_cleanup_on_drop() {
        let a = TempDir::new("gfd-tempdir-test").unwrap();
        let b = TempDir::new("gfd-tempdir-test").unwrap();
        assert_ne!(a.path(), b.path());
        fs::write(a.file("x.log"), b"payload").unwrap();
        assert!(a.file("x.log").exists());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop must remove the directory");
        drop(b);
    }
}
