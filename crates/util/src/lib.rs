//! # gfd-util — dependency-free workspace utilities
//!
//! This workspace builds in environments without a crates.io mirror,
//! so the usual suspects (`rand`, `proptest`, `criterion`) are
//! replaced by the minimal in-repo machinery the experiments actually
//! need:
//!
//! * [`rng`] — a seedable SplitMix64 PRNG with the handful of
//!   distribution helpers the data generators use (uniform ranges,
//!   Bernoulli draws, slice choice);
//! * [`prop`] — a tiny property-testing harness: run a property over a
//!   seed range and report the first failing seed so a failure is
//!   reproducible with a one-line test;
//! * [`fxhash`] — a multiply-rotate hasher for hot maps keyed by small
//!   internal tuples (`rustc-hash` stand-in);
//! * [`alloc`] (feature `count-alloc`, test/bench only) — a counting
//!   `#[global_allocator]` wrapper, so perf probes can assert
//!   zero-allocation hot paths.

#[cfg(feature = "count-alloc")]
pub mod alloc;
pub mod fxhash;
pub mod prop;
pub mod rng;

pub use fxhash::{FxHashMap, FxHashSet};
pub use rng::Rng;
