//! # gfd-util — dependency-free workspace utilities
//!
//! This workspace builds in environments without a crates.io mirror,
//! so the usual suspects (`rand`, `proptest`, `criterion`) are
//! replaced by the minimal in-repo machinery the experiments actually
//! need:
//!
//! * [`rng`] — a seedable SplitMix64 PRNG with the handful of
//!   distribution helpers the data generators use (uniform ranges,
//!   Bernoulli draws, slice choice);
//! * [`prop`] — a tiny property-testing harness: run a property over a
//!   seed range and report the first failing seed so a failure is
//!   reproducible with a one-line test;
//! * [`fxhash`] — a multiply-rotate hasher for hot maps keyed by small
//!   internal tuples (`rustc-hash` stand-in);
//! * [`checksum`] — a one-shot 64-bit frame checksum (xxhash-style,
//!   full avalanche) for the durable write-ahead log's on-disk
//!   records;
//! * [`tempdir`] — unique self-cleaning temp directories, so
//!   durable-log tests and benches never accumulate state across runs;
//! * [`alloc`] (feature `count-alloc`, test/bench only) — a counting
//!   `#[global_allocator]` wrapper, so perf probes can assert
//!   zero-allocation hot paths.

#[cfg(feature = "count-alloc")]
pub mod alloc;
pub mod checksum;
pub mod fxhash;
pub mod prop;
pub mod rng;
pub mod tempdir;

pub use checksum::checksum64;
pub use fxhash::{FxHashMap, FxHashSet};
pub use rng::Rng;
pub use tempdir::TempDir;
