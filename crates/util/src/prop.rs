//! A tiny property-testing harness (offline stand-in for `proptest`).
//!
//! A property is a closure over a seeded [`Rng`]; the harness runs it
//! for `cases` consecutive seeds and panics with the failing seed on
//! the first violation, so failures replay deterministically:
//!
//! ```
//! use gfd_util::prop::check;
//! check("addition commutes", 64, |rng| {
//!     let a = rng.gen_range(0..1000);
//!     let b = rng.gen_range(0..1000);
//!     if a + b != b + a {
//!         return Err(format!("{a} + {b}"));
//!     }
//!     Ok(())
//! });
//! ```

use crate::rng::Rng;

/// Runs `property` for seeds `0..cases`; panics on the first failure,
/// naming the property and the seed that reproduces it.
pub fn check<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    for seed in 0..cases {
        let mut rng = Rng::seed_from_u64(seed);
        if let Err(msg) = property(&mut rng) {
            panic!("property `{name}` failed at seed {seed}: {msg}");
        }
    }
}

/// `assert!`-style helper producing the `Result` form [`check`] wants.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_is_silent() {
        check("tautology", 16, |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "failed at seed 0")]
    fn failing_property_names_seed() {
        check("contradiction", 4, |_| Err("nope".into()));
    }

    #[test]
    fn prop_assert_macro_forms() {
        check("macro", 4, |rng| {
            let x = rng.gen_range(0..10);
            prop_assert!(x < 10);
            prop_assert!(x < 10, "x was {x}");
            Ok(())
        });
    }
}
