//! A dependency-free 64-bit content checksum for on-disk records.
//!
//! The durable `EditLog` (`gfd_parallel::wal`) frames plain bytes on
//! disk and must detect torn writes, truncated tails and bit rot
//! without pulling in a CRC crate. [`checksum64`] is an xxhash-style
//! multiply-rotate hash over 8-byte lanes with a SplitMix64 finalizer:
//! every input bit avalanches through two 64-bit multiplies, so a
//! single flipped bit anywhere in the frame changes the checksum with
//! probability ~1 − 2⁻⁶⁴ — the detection strength the write-ahead
//! log's truncate-at-first-corrupt-frame recovery rule relies on.
//! It is **not** a cryptographic MAC: the threat model is crashes and
//! media corruption, not an adversary who can rewrite checksums.
//!
//! The function is pure and stable: the same bytes produce the same
//! checksum on every platform and in every release, which makes it
//! part of the log's on-disk format (changing it is a format bump).

/// Golden-ratio increment, the SplitMix64 stream constant.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Lane multipliers (the SplitMix64 finalizer constants — odd, with
/// good avalanche properties under multiply-xor-shift mixing).
const M1: u64 = 0xBF58_476D_1CE4_E5B9;
const M2: u64 = 0x94D0_49BB_1331_11EB;

/// The SplitMix64 finalizer: a bijective 64-bit mix with full
/// avalanche (every input bit flips every output bit with p ≈ 1/2).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(M1);
    z = (z ^ (z >> 27)).wrapping_mul(M2);
    z ^ (z >> 31)
}

/// Checksums `bytes`: 8-byte little-endian lanes folded through a
/// multiply-rotate accumulator, the tail zero-padded, the length mixed
/// into the finalizer (so `"a"` and `"a\0"` differ). One-shot — log
/// frames are built in a buffer and checksummed whole.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = SEED ^ (bytes.len() as u64).wrapping_mul(M1);
    let mut chunks = bytes.chunks_exact(8);
    for lane in &mut chunks {
        let v = u64::from_le_bytes(lane.try_into().expect("chunks_exact yields 8-byte lanes"));
        h = (h ^ mix(v))
            .rotate_left(27)
            .wrapping_mul(M2)
            .wrapping_add(SEED);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut pad = [0u8; 8];
        pad[..tail.len()].copy_from_slice(tail);
        let v = u64::from_le_bytes(pad);
        h = (h ^ mix(v))
            .rotate_left(27)
            .wrapping_mul(M2)
            .wrapping_add(SEED);
    }
    mix(h ^ bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = checksum64(b"write-ahead");
        assert_eq!(a, checksum64(b"write-ahead"));
        assert_ne!(a, checksum64(b"write-ahead!"));
        assert_ne!(a, checksum64(b"write-ahEad"));
        assert_ne!(checksum64(b""), 0, "empty input must not hash to zero");
    }

    #[test]
    fn length_extension_padding_is_distinguished() {
        // Zero-padding the tail must not collide with explicit zeros:
        // the length factors into both the seed and the finalizer.
        assert_ne!(checksum64(b"a"), checksum64(b"a\0"));
        assert_ne!(checksum64(b"a\0\0\0\0\0\0\0"), checksum64(b"a"));
        assert_ne!(checksum64(&[0u8; 8]), checksum64(&[0u8; 16]));
        assert_ne!(checksum64(&[]), checksum64(&[0u8; 8]));
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        // Exhaustive over a frame-sized buffer: the recovery rule
        // truncates on checksum mismatch, so any one-bit corruption
        // (the injected fault family) must be visible.
        let mut buf: Vec<u8> = (0u8..=63).map(|i| i.wrapping_mul(37)).collect();
        let clean = checksum64(&buf);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(
                    checksum64(&buf),
                    clean,
                    "flip at byte {byte} bit {bit} went undetected"
                );
                buf[byte] ^= 1 << bit;
            }
        }
        assert_eq!(checksum64(&buf), clean, "flips must have been restored");
    }

    #[test]
    fn lane_order_matters() {
        let ab = checksum64(b"AAAAAAAABBBBBBBB");
        let ba = checksum64(b"BBBBBBBBAAAAAAAA");
        assert_ne!(ab, ba, "swapped lanes must not collide");
    }
}
