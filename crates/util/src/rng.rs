//! A seedable SplitMix64 PRNG.
//!
//! SplitMix64 passes BigCrush, needs 8 bytes of state, and is
//! deterministic across platforms — all the experiments need from a
//! generator (the paper's setup only requires reproducible draws, not
//! cryptographic ones).

/// A 64-bit SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut z = self.state;
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full double mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Modulo bias is < 2^-40 for the span sizes used here.
        range.start + (self.next_u64() % span) as usize
    }

    /// Uniform float in `lo..hi`.
    pub fn gen_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Rng::seed_from_u64(3);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.choose(&items).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert!(rng.choose::<i32>(&[]).is_none());
    }
}
