//! A counting `#[global_allocator]` wrapper (feature `count-alloc`).
//!
//! Dependency-free allocation instrumentation for tests and benches:
//! [`CountingAlloc`] forwards every call to [`std::alloc::System`] and
//! bumps relaxed atomic counters. Install it in a test or bench
//! *binary* —
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: gfd_util::alloc::CountingAlloc = gfd_util::alloc::CountingAlloc;
//! ```
//!
//! — then bracket the code under measurement with
//! [`allocation_count`] deltas. The counters are process-global, so
//! measurements from concurrently running threads interleave; probes
//! that assert exact counts should run the bracketed section several
//! times and take the minimum delta.
//!
//! The wrapper costs one relaxed `fetch_add` per allocator call and is
//! compiled only under the `count-alloc` feature, which only the
//! bench/test crates enable — production builds of the library crates
//! never pay for it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts calls; see the module docs.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is a fresh acquisition of heap space: count it as
        // an allocation so "zero allocations" really means the hot
        // path never grows a buffer.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Total allocator acquisitions (alloc + alloc_zeroed + realloc) since
/// process start. Meaningful only when [`CountingAlloc`] is installed
/// as the global allocator.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total deallocations since process start.
pub fn deallocation_count() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Runs `f` repeatedly (`rounds` times) and returns the **minimum**
/// allocation-count delta observed across rounds — the robust probe
/// statistic when unrelated threads (e.g. a test harness) may allocate
/// concurrently.
pub fn min_allocation_delta(rounds: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..rounds.max(1) {
        let before = allocation_count();
        f();
        best = best.min(allocation_count() - before);
    }
    best
}
