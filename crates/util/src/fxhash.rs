//! A fast, dependency-free hasher for hot in-memory maps.
//!
//! The workspace's hot paths key hash maps by small fixed-size tuples
//! (`(class, var, node)` in the match cache, `(node, radius)` in the
//! block cache). `std`'s default SipHash is DoS-resistant but costs
//! tens of nanoseconds per lookup — measurable when the detection loop
//! does several lookups per work unit. [`FxHasher`] is the classic
//! multiply-rotate word hasher (the scheme rustc uses): one rotate,
//! one xor and one multiply per word, no allocation, no state beyond a
//! `u64`.
//!
//! **Not** DoS-resistant — use only for internal keys derived from
//! graph/pattern ids, never for attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate word hasher; see the module docs.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier (2^64 / φ, forced odd).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(usize, u32), &str> = FxHashMap::default();
        for i in 0..1000usize {
            m.insert((i, (i * 7) as u32), "v");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&(123, 861)));
        assert!(!m.contains_key(&(123, 862)));
    }

    #[test]
    fn bytes_and_words_hash_consistently() {
        use std::hash::Hash;
        let mut a = FxHasher::default();
        (1u64, 2u32).hash(&mut a);
        let mut b = FxHasher::default();
        (1u64, 2u32).hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        (1u64, 3u32).hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }
}
